// Order-dependent matrix features (Section 3.2 of the paper).
//
// These four features are the quantities the study correlates with SpMV
// performance after reordering:
//  * bandwidth  — largest |i - j| over the nonzeros;
//  * profile    — sum over rows of the distance from the leftmost nonzero to
//                 the diagonal (Gibbs, Poole & Stockmeyer);
//  * off-diagonal nonzero count — nonzeros outside the k×k diagonal blocks
//                 of an even row/column blocking, equivalent to the edge-cut
//                 objective of GP under the 1D row split;
//  * load imbalance factor — max nonzeros per thread over the mean.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace ordo {

/// max_{a_ij != 0} |i - j|; 0 for an empty matrix.
index_t matrix_bandwidth(const CsrMatrix& a);

/// sum_i max(0, i - min{ j : a_ij != 0 }), i.e. the (lower) profile. Rows
/// whose leftmost entry lies right of the diagonal contribute 0.
std::int64_t matrix_profile(const CsrMatrix& a);

/// Number of nonzeros falling outside the diagonal blocks when the matrix is
/// partitioned into num_blocks-by-num_blocks equal blocks. With num_blocks
/// equal to the thread count this is the edge-cut the GP ordering minimises.
std::int64_t off_diagonal_block_nonzeros(const CsrMatrix& a,
                                         index_t num_blocks);

/// Imbalance factor of the 1D row-split SpMV: max nonzeros assigned to any
/// thread divided by the mean per thread. 1.0 indicates perfect balance.
double load_imbalance_1d(const CsrMatrix& a, int num_threads);

/// Imbalance factor of the 2D nonzero-split SpMV; equals 1 up to rounding
/// (the split differs by at most one nonzero per thread).
double load_imbalance_2d(const CsrMatrix& a, int num_threads);

/// A bundled feature report for one matrix under one ordering.
struct FeatureReport {
  index_t bandwidth = 0;
  std::int64_t profile = 0;
  std::int64_t off_diagonal_nonzeros = 0;
  double imbalance_1d = 1.0;
  double imbalance_2d = 1.0;
};

/// Computes all features; `num_threads` sets both the blocking for the
/// off-diagonal count and the thread count for the imbalance factors.
FeatureReport compute_features(const CsrMatrix& a, int num_threads);

}  // namespace ordo
