#include "features/features.hpp"

#include <algorithm>
#include <cmath>

#include "spmv/spmv.hpp"

namespace ordo {

index_t matrix_bandwidth(const CsrMatrix& a) {
  index_t bandwidth = 0;
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    if (cols.empty()) continue;
    // Columns are sorted: only the extremes can maximise |i - j|.
    bandwidth = std::max({bandwidth, std::abs(i - cols.front()),
                          std::abs(i - cols.back())});
  }
  return bandwidth;
}

std::int64_t matrix_profile(const CsrMatrix& a) {
  std::int64_t profile = 0;
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    if (!cols.empty() && cols.front() < i) {
      profile += static_cast<std::int64_t>(i - cols.front());
    }
  }
  return profile;
}

std::int64_t off_diagonal_block_nonzeros(const CsrMatrix& a,
                                         index_t num_blocks) {
  require(num_blocks >= 1,
          "off_diagonal_block_nonzeros: need at least one block");
  const index_t n = std::max(a.num_rows(), a.num_cols());
  if (n == 0) return 0;
  // Block of index v under an even split into num_blocks blocks.
  auto block_of = [&](index_t v) {
    return static_cast<index_t>(
        (static_cast<std::int64_t>(v) * num_blocks) / n);
  };
  std::int64_t count = 0;
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const index_t row_block = block_of(i);
    for (index_t j : a.row_cols(i)) {
      if (block_of(j) != row_block) ++count;
    }
  }
  return count;
}

double load_imbalance_1d(const CsrMatrix& a, int num_threads) {
  if (a.num_nonzeros() == 0) return 1.0;
  const std::vector<offset_t> counts = nnz_per_thread_1d(a, num_threads);
  const offset_t max_count = *std::max_element(counts.begin(), counts.end());
  const double mean = static_cast<double>(a.num_nonzeros()) /
                      static_cast<double>(num_threads);
  return static_cast<double>(max_count) / mean;
}

double load_imbalance_2d(const CsrMatrix& a, int num_threads) {
  if (a.num_nonzeros() == 0) return 1.0;
  const std::vector<offset_t> counts = nnz_per_thread_2d(a, num_threads);
  const offset_t max_count = *std::max_element(counts.begin(), counts.end());
  const double mean = static_cast<double>(a.num_nonzeros()) /
                      static_cast<double>(num_threads);
  return static_cast<double>(max_count) / mean;
}

FeatureReport compute_features(const CsrMatrix& a, int num_threads) {
  FeatureReport report;
  report.bandwidth = matrix_bandwidth(a);
  report.profile = matrix_profile(a);
  report.off_diagonal_nonzeros =
      off_diagonal_block_nonzeros(a, static_cast<index_t>(num_threads));
  report.imbalance_1d = load_imbalance_1d(a, num_threads);
  report.imbalance_2d = load_imbalance_2d(a, num_threads);
  return report;
}

}  // namespace ordo
