#include "features/matrix_stats.hpp"

#include <algorithm>
#include <numeric>

#include "sparse/csr_ops.hpp"

namespace ordo {

MatrixStats compute_matrix_stats(const CsrMatrix& a) {
  MatrixStats stats;
  stats.rows = a.num_rows();
  stats.cols = a.num_cols();
  stats.nnz = a.num_nonzeros();
  if (a.num_rows() == 0) return stats;

  stats.avg_row_nnz =
      static_cast<double>(stats.nnz) / static_cast<double>(stats.rows);
  stats.min_row_nnz = a.num_nonzeros();
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const offset_t row_nnz = a.row_nonzeros(i);
    stats.max_row_nnz = std::max(stats.max_row_nnz, row_nnz);
    stats.min_row_nnz = std::min(stats.min_row_nnz, row_nnz);
    if (row_nnz == 0) stats.empty_rows++;
  }

  if (a.is_square()) {
    stats.diagonal_coverage = static_cast<double>(diagonal_nonzeros(a)) /
                              static_cast<double>(a.num_rows());
    // Structural symmetry: off-diagonal entries with an existing mirror.
    const CsrMatrix at = transpose(a);
    std::int64_t off_diagonal = 0, mirrored = 0;
    for (index_t i = 0; i < a.num_rows(); ++i) {
      const auto cols = a.row_cols(i);
      const auto t_cols = at.row_cols(i);
      for (index_t j : cols) {
        if (j == i) continue;
        ++off_diagonal;
        if (std::binary_search(t_cols.begin(), t_cols.end(), j)) ++mirrored;
      }
    }
    stats.symmetry = off_diagonal == 0
                         ? 1.0
                         : static_cast<double>(mirrored) /
                               static_cast<double>(off_diagonal);
  }

  // Gini coefficient of the row-length distribution.
  std::vector<offset_t> lengths(static_cast<std::size_t>(a.num_rows()));
  for (index_t i = 0; i < a.num_rows(); ++i) {
    lengths[static_cast<std::size_t>(i)] = a.row_nonzeros(i);
  }
  std::sort(lengths.begin(), lengths.end());
  const double total = static_cast<double>(stats.nnz);
  if (total > 0) {
    double weighted = 0.0;
    for (std::size_t k = 0; k < lengths.size(); ++k) {
      weighted += static_cast<double>(k + 1) * static_cast<double>(lengths[k]);
    }
    const double n = static_cast<double>(lengths.size());
    stats.row_skew = std::max(0.0, (2.0 * weighted) / (n * total) -
                                       (n + 1.0) / n);
  }
  return stats;
}

}  // namespace ordo
