// Descriptive matrix statistics, used to characterise the corpus the way the
// paper characterises its SuiteSparse selection (Section 4.1) and to feed
// the per-family breakdown of the corpus report example.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace ordo {

struct MatrixStats {
  index_t rows = 0;
  index_t cols = 0;
  std::int64_t nnz = 0;
  double avg_row_nnz = 0.0;
  offset_t max_row_nnz = 0;
  offset_t min_row_nnz = 0;
  index_t empty_rows = 0;
  /// Structural symmetry: fraction of off-diagonal entries whose mirror
  /// entry also exists (1.0 for symmetric patterns).
  double symmetry = 1.0;
  /// Fraction of rows with a structurally nonzero diagonal entry.
  double diagonal_coverage = 0.0;
  /// Gini-style skew of the row-length distribution in [0, 1): 0 means
  /// perfectly uniform rows, values near 1 indicate a heavy-tailed
  /// (power-law) degree profile.
  double row_skew = 0.0;
};

/// Computes all statistics in O(nnz log nnz).
MatrixStats compute_matrix_stats(const CsrMatrix& a);

}  // namespace ordo
