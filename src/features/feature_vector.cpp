#include "features/feature_vector.hpp"

#include <cmath>

#include "features/features.hpp"
#include "obs/json.hpp"

namespace ordo::features {
namespace {

double log2_1p(double v) { return std::log2(1.0 + v); }

}  // namespace

const std::array<std::string, kSelectorFeatureCount>& selector_feature_names() {
  static const std::array<std::string, kSelectorFeatureCount> names = {
      "log2_rows",    "log2_nnz",     "mean_row_nnz", "rel_bandwidth",
      "log2_profile", "offdiag_frac", "imbalance_1d", "log2_threads"};
  return names;
}

SelectorFeatures make_selector_features(std::int64_t rows, std::int64_t nnz,
                                        std::int64_t bandwidth,
                                        std::int64_t profile,
                                        std::int64_t off_diagonal_nnz,
                                        double imbalance_1d, int threads) {
  const double r = static_cast<double>(rows);
  const double z = static_cast<double>(nnz);
  SelectorFeatures f{};
  f[0] = log2_1p(r);
  f[1] = log2_1p(z);
  f[2] = rows > 0 ? z / r : 0.0;
  f[3] = rows > 0 ? static_cast<double>(bandwidth) / r : 0.0;
  f[4] = log2_1p(static_cast<double>(profile));
  f[5] = nnz > 0 ? static_cast<double>(off_diagonal_nnz) / z : 0.0;
  f[6] = imbalance_1d;
  f[7] = std::log2(static_cast<double>(threads < 1 ? 1 : threads));
  return f;
}

SelectorFeatures compute_selector_features(const CsrMatrix& a, int threads) {
  const FeatureReport report = compute_features(a, threads);
  return make_selector_features(a.num_rows(), a.num_nonzeros(),
                                report.bandwidth, report.profile,
                                report.off_diagonal_nonzeros,
                                report.imbalance_1d, threads);
}

std::string selector_features_json(const std::string& name, int threads,
                                   const SelectorFeatures& f) {
  std::string out;
  out.reserve(256);
  out += "{\"schema_version\":";
  out += std::to_string(kSelectorFeatureVersion);
  out += ",\"name\":";
  obs::append_json_string(out, name);
  out += ",\"threads\":";
  out += std::to_string(threads);
  out += ",\"features\":{";
  const auto& names = selector_feature_names();
  for (std::size_t i = 0; i < kSelectorFeatureCount; ++i) {
    if (i > 0) out += ',';
    obs::append_json_string(out, names[i]);
    out += ':';
    obs::append_json_double(out, f[i]);
  }
  out += "}}";
  return out;
}

}  // namespace ordo::features
