// The selector feature vector (schema v1): the fixed, versioned set of
// numeric inputs the learned ordering selector (src/select/) sees before any
// reordering has happened. Every entry is derivable both from a CsrMatrix
// (compute_selector_features — the serving path) and from the Original
// columns of an artifact-style result row (make_selector_features — the
// training and row-annotation path), so the offline trainer
// (tools/ordo_train_selector.py) and the in-process inference are guaranteed
// to agree on what "the features" are.
//
// The schema is versioned: committed model coefficient tables record the
// feature version they were trained against, and src/select/model.cpp
// static_asserts the two match. Adding, removing, or reordering entries
// means bumping kSelectorFeatureVersion and retraining.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "sparse/csr.hpp"

namespace ordo::features {

/// Bump when the vector's layout changes (see file comment).
inline constexpr int kSelectorFeatureVersion = 1;

/// Number of entries in the vector (the model adds its own bias term).
inline constexpr std::size_t kSelectorFeatureCount = 8;

using SelectorFeatures = std::array<double, kSelectorFeatureCount>;

/// Index-aligned names, for exports and diagnostics:
///   log2_rows, log2_nnz, mean_row_nnz, rel_bandwidth, log2_profile,
///   offdiag_frac, imbalance_1d, log2_threads.
const std::array<std::string, kSelectorFeatureCount>& selector_feature_names();

/// Builds the vector from the raw ingredients — exactly the Original-ordering
/// columns of a result row plus the row's size/thread metadata. This is the
/// single source of truth for the feature formulas; the matrix overload and
/// the Python trainer both mirror it.
SelectorFeatures make_selector_features(std::int64_t rows, std::int64_t nnz,
                                        std::int64_t bandwidth,
                                        std::int64_t profile,
                                        std::int64_t off_diagonal_nnz,
                                        double imbalance_1d, int threads);

/// Computes the vector directly from a matrix (bandwidth/profile/off-diagonal
/// count/1D imbalance via compute_features) — the path a serving layer takes
/// when no study row exists yet.
SelectorFeatures compute_selector_features(const CsrMatrix& a, int threads);

/// One JSON object (single line, no trailing newline) describing the schema
/// and carrying one vector: {"schema_version":1,"name":...,"threads":...,
/// "features":{<name>:<value>,...}}. `run_study --export-features` emits one
/// such line per (matrix, distinct thread count).
std::string selector_features_json(const std::string& name, int threads,
                                   const SelectorFeatures& f);

}  // namespace ordo::features
