// Streamed corpus generation — the beyond-RAM producer path.
//
// The in-RAM generators (corpus/generators.hpp) assemble a CooMatrix and
// convert it, which needs ~3x the final CSR footprint in heap at peak. For
// matrices meant to exceed RAM that is a non-starter, so this module
// re-derives the banded family row by row and emits rows straight into a
// sparse/storage.hpp PagedCsrWriter: heap cost is O(rows + bandwidth)
// regardless of nnz.
//
// Determinism contract: generate_banded_streamed consumes the exact RNG
// stream of gen_banded and produces a bit-identical matrix for equal
// parameters (asserted by tests/storage_test.cpp), so a study row computed
// from a spilled matrix equals the row an in-RAM run would produce.
//
// Spill routing: when `spill_dir` is non-empty the matrix lands in an
// ORDOCSR file `<spill_dir>/<name>.ordocsr` behind the mmap backend;
// otherwise the same streaming code fills the in-RAM vector backend.
// ooc_dir_from_env() (ORDO_OOC_DIR) supplies the conventional directory.
#pragma once

#include <cstdint>
#include <string>

#include "corpus/corpus.hpp"
#include "sparse/csr.hpp"

namespace ordo {

/// Parameters of one streamed banded matrix (the gen_banded family).
struct StreamedBandedParams {
  index_t n = 0;                 ///< rows == cols
  index_t half_bandwidth = 8;    ///< entries live within |i-j| <= this
  double density = 0.3;          ///< per-slot fill probability inside the band
  std::uint64_t seed = 1;
};

/// Streams the banded matrix into `spill_dir` (mmap backend) or, when
/// `spill_dir` is empty, into the in-RAM backend. Bit-identical to
/// gen_banded(n, half_bandwidth, density, seed) either way. `name` names
/// the spill file.
CsrMatrix generate_banded_streamed(const StreamedBandedParams& params,
                                   const std::string& spill_dir,
                                   const std::string& name);

/// A ready-to-study corpus entry around generate_banded_streamed, spilled
/// under ORDO_OOC_DIR when that is set (group "banded_ooc"). This is the
/// entry the beyond-RAM walkthrough in docs/EXPERIMENTS.md and the RSS-
/// budget test build their corpora from.
CorpusEntry generate_streamed_entry(const std::string& name,
                                    const StreamedBandedParams& params);

/// Estimated CSR bytes of a streamed banded matrix — what the spill-routing
/// decision and the RSS-budget test size their limits against.
std::int64_t estimated_banded_csr_bytes(const StreamedBandedParams& params);

}  // namespace ordo
