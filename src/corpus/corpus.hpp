// Corpus assembly: a deterministic, scaled-down stand-in for the 490
// SuiteSparse matrices of the study, plus named stand-ins for every matrix
// the paper references by name (Fig. 1, Fig. 4, Table 5).
//
// The corpus mixes the same structural families the collection contains —
// meshes/FEM, circuits, road networks, power-law graphs, genome chains,
// saddle-point systems, banded and block matrices — in roughly the
// collection's proportions. Matrix sizes are log-uniform; a slice of the
// corpus gets an additional random symmetric permutation, mirroring
// collection matrices whose stored order is unrelated to their structure.
#pragma once

#include <string>
#include <vector>

#include "corpus/generators.hpp"
#include "sparse/csr.hpp"

namespace ordo {

struct CorpusOptions {
  /// Number of matrices to generate (the paper uses 490).
  int count = 490;
  /// Multiplies every matrix's target nonzero count. 1.0 gives a corpus of
  /// roughly 2e3..6e5 nonzeros per matrix — about 1e3 times smaller than the
  /// paper's 1e6..1e9 range; the performance model scales cache capacities
  /// by a matching factor (see perfmodel/spmv_model.hpp).
  double scale = 1.0;
  /// Master seed; every entry derives its own seed from it.
  std::uint64_t seed = 2023;
};

/// Reads ORDO_CORPUS_COUNT and ORDO_CORPUS_SCALE environment overrides.
CorpusOptions corpus_options_from_env();

struct CorpusEntry {
  std::string group;  ///< structural family ("mesh2d", "circuit", ...)
  std::string name;
  bool spd = false;   ///< symmetric-positive-definite-like (Fig. 6 subset)
  CsrMatrix matrix;
};

/// Generates the full corpus. Deterministic in options.seed.
std::vector<CorpusEntry> generate_corpus(const CorpusOptions& options);

/// Names of the paper's individually referenced matrices for which stand-ins
/// exist: 333SP, nv2, audikw_1, HV15R, Freescale2, com-Amazon, kmer_V1r,
/// delaunay_n24, europe_osm, Flan_1565, indochina-2004, kron_g500-logn21,
/// mycielskian19, nlpkkt240, vas_stokes_4M.
std::vector<std::string> named_standins();

/// Generates the stand-in for one named matrix; `scale` as in CorpusOptions.
CorpusEntry generate_named(const std::string& name, double scale);

}  // namespace ordo
