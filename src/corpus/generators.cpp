#include "corpus/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

#include "sparse/csr_ops.hpp"

namespace ordo {
namespace {

// Diagonal value large enough to keep generated symmetric matrices
// positive-definite-like regardless of off-diagonal count.
value_t diag_for_degree(double degree) { return degree + 4.0; }

}  // namespace

CsrMatrix gen_mesh2d(index_t nx, index_t ny, int stencil) {
  require(stencil == 5 || stencil == 9, "gen_mesh2d: stencil must be 5 or 9");
  const index_t n = nx * ny;
  CooMatrix coo(n, n);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      coo.add(id(x, y), id(x, y), static_cast<value_t>(stencil - 1));
      if (x + 1 < nx) coo.add_symmetric(id(x, y), id(x + 1, y), -1.0);
      if (y + 1 < ny) coo.add_symmetric(id(x, y), id(x, y + 1), -1.0);
      if (stencil == 9) {
        if (x + 1 < nx && y + 1 < ny) {
          coo.add_symmetric(id(x, y), id(x + 1, y + 1), -0.5);
        }
        if (x > 0 && y + 1 < ny) {
          coo.add_symmetric(id(x, y), id(x - 1, y + 1), -0.5);
        }
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_mesh3d(index_t nx, index_t ny, index_t nz, int stencil) {
  require(stencil == 7 || stencil == 27,
          "gen_mesh3d: stencil must be 7 or 27");
  const index_t n = nx * ny * nz;
  CooMatrix coo(n, n);
  auto id = [nx, ny](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        coo.add(id(x, y, z), id(x, y, z),
                static_cast<value_t>(stencil - 1));
        if (stencil == 7) {
          if (x + 1 < nx) coo.add_symmetric(id(x, y, z), id(x + 1, y, z), -1.0);
          if (y + 1 < ny) coo.add_symmetric(id(x, y, z), id(x, y + 1, z), -1.0);
          if (z + 1 < nz) coo.add_symmetric(id(x, y, z), id(x, y, z + 1), -1.0);
        } else {
          for (index_t dz = 0; dz <= 1; ++dz) {
            for (index_t dy = (dz == 0 ? 0 : -1); dy <= 1; ++dy) {
              for (index_t dx = (dz == 0 && dy == 0 ? 1 : -1); dx <= 1; ++dx) {
                const index_t x2 = x + dx, y2 = y + dy, z2 = z + dz;
                if (x2 < 0 || x2 >= nx || y2 < 0 || y2 >= ny || z2 >= nz)
                  continue;
                coo.add_symmetric(id(x, y, z), id(x2, y2, z2), -0.25);
              }
            }
          }
        }
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_fem_blocked(index_t nodes_x, index_t nodes_y, int dofs) {
  require(dofs >= 1, "gen_fem_blocked: dofs must be positive");
  const index_t nodes = nodes_x * nodes_y;
  const index_t n = nodes * dofs;
  CooMatrix coo(n, n);
  auto node_id = [nodes_x](index_t x, index_t y) { return y * nodes_x + x; };
  auto couple = [&](index_t a, index_t b) {
    // Dense dofs-by-dofs block between nodes a and b.
    for (int p = 0; p < dofs; ++p) {
      for (int q = 0; q < dofs; ++q) {
        const index_t i = a * dofs + p;
        const index_t j = b * dofs + q;
        const value_t v = (a == b && p == q) ? 8.0 * dofs : -0.5;
        if (a == b) {
          coo.add(i, j, v);
        } else {
          coo.add(i, j, v);
          coo.add(j, i, v);
        }
      }
    }
  };
  for (index_t y = 0; y < nodes_y; ++y) {
    for (index_t x = 0; x < nodes_x; ++x) {
      couple(node_id(x, y), node_id(x, y));
      if (x + 1 < nodes_x) couple(node_id(x, y), node_id(x + 1, y));
      if (y + 1 < nodes_y) couple(node_id(x, y), node_id(x, y + 1));
      if (x + 1 < nodes_x && y + 1 < nodes_y) {
        couple(node_id(x, y), node_id(x + 1, y + 1));
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_road_network(index_t n, std::uint64_t seed) {
  CooMatrix coo(n, n);
  std::mt19937_64 rng(seed);
  // Points on a coarse grid. OSM node ids are *locally* clustered (nodes are
  // numbered along ways) but not globally tidy, so labels are shuffled
  // within windows plus a small fraction of global strays — real road
  // matrices gain only modestly from reordering (e.g. europe_osm +22% with
  // RCM in Table 5 of the paper).
  const index_t side = std::max<index_t>(
      2, static_cast<index_t>(std::sqrt(static_cast<double>(n))));
  std::vector<index_t> label(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) label[static_cast<std::size_t>(i)] = i;
  const index_t window = 256;
  for (index_t begin = 0; begin < n; begin += window) {
    const index_t end = std::min<index_t>(begin + window, n);
    std::shuffle(label.begin() + begin, label.begin() + end, rng);
  }
  std::uniform_int_distribution<index_t> anywhere(0, n - 1);
  for (index_t s = 0; s < n / 50; ++s) {
    std::swap(label[static_cast<std::size_t>(anywhere(rng))],
              label[static_cast<std::size_t>(anywhere(rng))]);
  }

  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  for (index_t i = 0; i < n; ++i) {
    const index_t x = i % side;
    coo.add(label[static_cast<std::size_t>(i)],
            label[static_cast<std::size_t>(i)], diag_for_degree(3));
    // Connect to the right/down grid neighbour with high probability (road
    // segments), occasionally skip (dead ends / sparse rural areas).
    const index_t right = i + 1;
    if (x + 1 < side && right < n && uniform(rng) < 0.85) {
      coo.add_symmetric(label[static_cast<std::size_t>(i)],
                        label[static_cast<std::size_t>(right)], -1.0);
    }
    const index_t down = i + side;
    if (down < n && uniform(rng) < 0.55) {
      coo.add_symmetric(label[static_cast<std::size_t>(i)],
                        label[static_cast<std::size_t>(down)], -1.0);
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_geometric(index_t n, double radius_factor, std::uint64_t seed) {
  // Random points in the unit square joined when within radius; grid-bucket
  // neighbour search keeps generation near-linear.
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::vector<double> px(static_cast<std::size_t>(n)),
      py(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    px[static_cast<std::size_t>(i)] = uniform(rng);
    py[static_cast<std::size_t>(i)] = uniform(rng);
  }
  const double radius =
      radius_factor / std::sqrt(static_cast<double>(std::max<index_t>(n, 1)));
  const index_t buckets = std::max<index_t>(
      1, static_cast<index_t>(1.0 / std::max(radius, 1e-9)));
  // Mesh generators emit points in sweep order, so delaunay-family matrices
  // arrive with reasonable locality: sort the points by grid bucket
  // (row-major sweep) before assigning indices.
  {
    std::vector<index_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), index_t{0});
    auto key = [&](index_t i) {
      const index_t bx = std::min<index_t>(
          buckets - 1,
          static_cast<index_t>(px[static_cast<std::size_t>(i)] * buckets));
      const index_t by = std::min<index_t>(
          buckets - 1,
          static_cast<index_t>(py[static_cast<std::size_t>(i)] * buckets));
      return by * buckets + bx;
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](index_t a, index_t b) { return key(a) < key(b); });
    std::vector<double> sx(static_cast<std::size_t>(n)),
        sy(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      sx[static_cast<std::size_t>(i)] =
          px[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
      sy[static_cast<std::size_t>(i)] =
          py[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    }
    px.swap(sx);
    py.swap(sy);
  }
  std::vector<std::vector<index_t>> grid(
      static_cast<std::size_t>(buckets) * buckets);
  auto bucket_of = [&](double x, double y) {
    const index_t bx = std::min<index_t>(buckets - 1,
                                         static_cast<index_t>(x * buckets));
    const index_t by = std::min<index_t>(buckets - 1,
                                         static_cast<index_t>(y * buckets));
    return by * buckets + bx;
  };
  for (index_t i = 0; i < n; ++i) {
    grid[static_cast<std::size_t>(bucket_of(px[static_cast<std::size_t>(i)],
                                            py[static_cast<std::size_t>(i)]))]
        .push_back(i);
  }

  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, diag_for_degree(6));
    const index_t bx = std::min<index_t>(
        buckets - 1,
        static_cast<index_t>(px[static_cast<std::size_t>(i)] * buckets));
    const index_t by = std::min<index_t>(
        buckets - 1,
        static_cast<index_t>(py[static_cast<std::size_t>(i)] * buckets));
    for (index_t dy = -1; dy <= 1; ++dy) {
      for (index_t dx = -1; dx <= 1; ++dx) {
        const index_t nx = bx + dx, ny = by + dy;
        if (nx < 0 || nx >= buckets || ny < 0 || ny >= buckets) continue;
        for (index_t j : grid[static_cast<std::size_t>(ny * buckets + nx)]) {
          if (j <= i) continue;
          const double ddx = px[static_cast<std::size_t>(i)] -
                             px[static_cast<std::size_t>(j)];
          const double ddy = py[static_cast<std::size_t>(i)] -
                             py[static_cast<std::size_t>(j)];
          if (ddx * ddx + ddy * ddy <= radius * radius) {
            coo.add_symmetric(i, j, -1.0);
          }
        }
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_rmat(int scale, int edge_factor, double a, double b, double c,
                   std::uint64_t seed) {
  require(scale >= 1 && scale <= 26, "gen_rmat: scale out of range");
  const index_t n = index_t{1} << scale;
  const std::int64_t edges = static_cast<std::int64_t>(n) * edge_factor;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  CooMatrix coo(n, n);
  coo.reserve(2 * edges + n);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, diag_for_degree(edge_factor));
  for (std::int64_t e = 0; e < edges; ++e) {
    index_t row = 0, col = 0;
    for (int level = 0; level < scale; ++level) {
      const double r = uniform(rng);
      row <<= 1;
      col <<= 1;
      if (r < a) {
        // top-left quadrant
      } else if (r < a + b) {
        col |= 1;
      } else if (r < a + b + c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    if (row != col) coo.add_symmetric(row, col, -1.0);
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_community(index_t n, index_t community_size, double inter_prob,
                        std::uint64_t seed) {
  require(community_size >= 2, "gen_community: community size too small");
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::uniform_int_distribution<index_t> any(0, n - 1);
  CooMatrix coo(n, n);
  // Vertex labels are shuffled so communities are not contiguous in the
  // stored order — reordering should recover them.
  std::vector<index_t> label(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) label[static_cast<std::size_t>(i)] = i;
  std::shuffle(label.begin(), label.end(), rng);

  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, diag_for_degree(community_size / 2.0));
  }
  for (index_t start = 0; start < n; start += community_size) {
    const index_t end = std::min<index_t>(start + community_size, n);
    for (index_t i = start; i < end; ++i) {
      for (index_t j = i + 1; j < end; ++j) {
        if (uniform(rng) < 0.4) {
          coo.add_symmetric(label[static_cast<std::size_t>(i)],
                            label[static_cast<std::size_t>(j)], -1.0);
        }
      }
      if (uniform(rng) < inter_prob) {
        // Inter-community edges are mostly *local* in community space —
        // real co-purchase / social graphs have metric structure that a
        // good ordering can exploit.
        index_t j;
        if (uniform(rng) < 0.8) {
          const index_t offset =
              (any(rng) % (8 * community_size)) - 4 * community_size;
          j = std::clamp<index_t>(i + offset, 0, n - 1);
        } else {
          j = any(rng);
        }
        if (j != i) {
          coo.add_symmetric(label[static_cast<std::size_t>(i)],
                            label[static_cast<std::size_t>(j)], -1.0);
        }
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_debruijn_chain(index_t n, double branch_prob,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::uniform_int_distribution<index_t> any(0, n - 1);
  CooMatrix coo(n, n);
  // Scrambled labels: k-mer ids carry no chain locality.
  std::vector<index_t> label(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) label[static_cast<std::size_t>(i)] = i;
  std::shuffle(label.begin(), label.end(), rng);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, diag_for_degree(2));
    if (i + 1 < n && uniform(rng) < 0.97) {
      coo.add_symmetric(label[static_cast<std::size_t>(i)],
                        label[static_cast<std::size_t>(i + 1)], -1.0);
    }
    if (uniform(rng) < branch_prob) {  // a branching k-mer
      const index_t j = any(rng);
      if (j != i) {
        coo.add_symmetric(label[static_cast<std::size_t>(i)],
                          label[static_cast<std::size_t>(j)], -1.0);
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_circuit(index_t n, int dense_lines, double avg_degree,
                      std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<index_t> any(0, n - 1);
  std::poisson_distribution<int> degree(avg_degree);
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, diag_for_degree(avg_degree));
    const int k = degree(rng);
    for (int e = 0; e < k; ++e) {
      // Components couple mostly to nearby nodes (netlist locality), with
      // occasional long-range nets.
      std::uniform_int_distribution<index_t> local(
          std::max<index_t>(0, i - 200), std::min<index_t>(n - 1, i + 200));
      const index_t j = (any(rng) % 10 == 0) ? any(rng) : local(rng);
      if (j != i) coo.add(i, j, -0.5);
    }
  }
  // Power/ground rails: rows/columns far denser than the rest, but with a
  // bounded fan-out (real circuit rails connect thousands of cells, not a
  // constant fraction of the netlist).
  const index_t rail_degree = std::min<index_t>(n / 4, 1200);
  for (int line = 0; line < dense_lines; ++line) {
    const index_t rail = any(rng);
    const index_t stride = std::max<index_t>(1, n / std::max<index_t>(rail_degree, 1));
    for (index_t j = rail % stride; j < n; j += stride) {
      if (j != rail) {
        coo.add(rail, j, -0.1);
        coo.add(j, rail, -0.1);
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_cfd(index_t nx, index_t ny, index_t nz, int dofs,
                  std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  const index_t cells = nx * ny * nz;
  const index_t n = cells * dofs;
  CooMatrix coo(n, n);
  auto cell_id = [nx, ny](index_t x, index_t y, index_t z) {
    return (z * ny + y) * nx + x;
  };
  auto couple = [&](index_t a, index_t b, bool both_ways) {
    for (int p = 0; p < dofs; ++p) {
      for (int q = 0; q < dofs; ++q) {
        const value_t v = (a == b && p == q) ? 10.0 * dofs : -0.3;
        coo.add(a * dofs + p, b * dofs + q, v);
        if (both_ways && a != b) coo.add(b * dofs + q, a * dofs + p, v);
      }
    }
  };
  for (index_t z = 0; z < nz; ++z) {
    for (index_t y = 0; y < ny; ++y) {
      for (index_t x = 0; x < nx; ++x) {
        const index_t c = cell_id(x, y, z);
        couple(c, c, false);
        // Upwinded convection: downstream coupling is sometimes one-sided,
        // making the pattern mildly unsymmetric, as in HV15R.
        if (x + 1 < nx) couple(c, cell_id(x + 1, y, z), uniform(rng) < 0.7);
        if (y + 1 < ny) couple(c, cell_id(x, y + 1, z), uniform(rng) < 0.7);
        if (z + 1 < nz) couple(c, cell_id(x, y, z + 1), uniform(rng) < 0.7);
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_kkt(index_t nx, index_t ny, index_t nz, std::uint64_t seed) {
  // [H Bᵀ; B 0] with H a 7-point Laplacian on primal unknowns and B mapping
  // each constraint to a handful of primal variables.
  const CsrMatrix h = gen_mesh3d(nx, ny, nz, 7);
  const index_t np = h.num_rows();
  const index_t nc = np / 3 + 1;
  const index_t n = np + nc;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<index_t> primal(0, np - 1);
  CooMatrix coo(n, n);
  for (index_t i = 0; i < np; ++i) {
    const auto cols = h.row_cols(i);
    const auto vals = h.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(i, cols[k], vals[k]);
    }
  }
  for (index_t c = 0; c < nc; ++c) {
    coo.add(np + c, np + c, 1e-8);  // regularised (2,2) block
    for (int e = 0; e < 3; ++e) {
      const index_t j = primal(rng);
      coo.add(np + c, j, 1.0);
      coo.add(j, np + c, 1.0);
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_banded(index_t n, index_t half_bandwidth, double density,
                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, diag_for_degree(2.0 * half_bandwidth * density));
    for (index_t j = std::max<index_t>(0, i - half_bandwidth); j < i; ++j) {
      if (uniform(rng) < density) coo.add_symmetric(i, j, -0.5);
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_block_diagonal(index_t num_blocks, index_t block_size,
                             double coupling, std::uint64_t seed) {
  const index_t n = num_blocks * block_size;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  CooMatrix coo(n, n);
  for (index_t b = 0; b < num_blocks; ++b) {
    const index_t base = b * block_size;
    for (index_t i = 0; i < block_size; ++i) {
      coo.add(base + i, base + i, diag_for_degree(block_size * 0.6));
      for (index_t j = i + 1; j < block_size; ++j) {
        if (uniform(rng) < 0.6) coo.add_symmetric(base + i, base + j, -0.4);
      }
    }
    if (b + 1 < num_blocks) {
      for (index_t i = 0; i < block_size; ++i) {
        if (uniform(rng) < coupling) {
          coo.add_symmetric(base + i, base + block_size + i, -0.2);
        }
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_random_uniform(index_t n, double avg_degree,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<index_t> any(0, n - 1);
  std::poisson_distribution<int> degree(avg_degree);
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, diag_for_degree(avg_degree));
    const int k = degree(rng);
    for (int e = 0; e < k; ++e) {
      const index_t j = any(rng);
      if (j != i) coo.add(i, j, -0.5);
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_mycielskian(int k) {
  require(k >= 2 && k <= 16, "gen_mycielskian: k out of range");
  // Edge list representation; M_2 = K_2.
  std::vector<std::pair<index_t, index_t>> edges{{0, 1}};
  index_t n = 2;
  for (int step = 3; step <= k; ++step) {
    // Mycielski construction: vertices V ∪ U ∪ {w}; u_i adjacent to N(v_i)
    // and to w.
    std::vector<std::pair<index_t, index_t>> next = edges;
    for (const auto& [a, b] : edges) {
      next.emplace_back(n + a, b);   // u_a - v_b
      next.emplace_back(a, n + b);   // v_a - u_b
    }
    const index_t w = 2 * n;
    for (index_t i = 0; i < n; ++i) next.emplace_back(n + i, w);
    edges = std::move(next);
    n = 2 * n + 1;
  }
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 1.0);
  for (const auto& [a, b] : edges) coo.add_symmetric(a, b, -1.0);
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gen_dense_tall_skinny(index_t rows, index_t cols) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(rows) + 1);
  for (index_t i = 0; i <= rows; ++i) {
    row_ptr[static_cast<std::size_t>(i)] =
        static_cast<offset_t>(i) * cols;
  }
  std::vector<index_t> col_idx(static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(cols));
  std::vector<value_t> values(col_idx.size(), 1.0);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) {
      col_idx[static_cast<std::size_t>(i) * cols + j] = j;
    }
  }
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace ordo
