// Synthetic sparse-matrix generators covering the structural families found
// in the SuiteSparse Matrix Collection, from which the study draws its 490
// matrices (DESIGN.md, substitution table). Every generator is deterministic
// in its seed.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace ordo {

/// 2D grid Laplacian: 5-point (stencil=5) or 9-point (stencil=9) stencil.
/// SPD, symmetric pattern, natural (banded) ordering. PDE discretisations.
CsrMatrix gen_mesh2d(index_t nx, index_t ny, int stencil);

/// 3D grid Laplacian: 7-point or 27-point stencil. SPD.
CsrMatrix gen_mesh3d(index_t nx, index_t ny, index_t nz, int stencil);

/// FEM-style matrix: a 2D mesh of nodes with `dofs` unknowns per node, so
/// the pattern is made of small dense blocks (audikw_1-like solid
/// mechanics). SPD-like.
CsrMatrix gen_fem_blocked(index_t nodes_x, index_t nodes_y, int dofs);

/// Road-network-like graph (europe_osm): random points on a grid joined to
/// geometric near-neighbours plus a spanning path; degrees ~2-3, huge
/// diameter, symmetric.
CsrMatrix gen_road_network(index_t n, std::uint64_t seed);

/// Delaunay-like random planar proximity graph (delaunay_nXX family).
CsrMatrix gen_geometric(index_t n, double radius_factor, std::uint64_t seed);

/// R-MAT power-law graph (kron_g500 / social networks). `scale` gives
/// n = 2^scale vertices, edge_factor edges per vertex; pattern symmetrised.
CsrMatrix gen_rmat(int scale, int edge_factor, double a, double b, double c,
                   std::uint64_t seed);

/// Community-structured graph (com-Amazon-like): stochastic block model with
/// small dense communities plus sparse random inter-community edges.
CsrMatrix gen_community(index_t n, index_t community_size, double inter_prob,
                        std::uint64_t seed);

/// de-Bruijn-like genome assembly graph (kmer_V1r): long chains with sparse
/// branching, degree <= 4, extreme diameter.
CsrMatrix gen_debruijn_chain(index_t n, double branch_prob,
                             std::uint64_t seed);

/// Circuit-simulation matrix (Freescale-like): very sparse rows plus a few
/// dense rows/columns (power rails), unsymmetric pattern with full diagonal.
CsrMatrix gen_circuit(index_t n, int dense_lines, double avg_degree,
                      std::uint64_t seed);

/// CFD-like matrix (HV15R-like): 3D stencil with `dofs` coupled unknowns per
/// cell and a mildly unsymmetric pattern (upwinding).
CsrMatrix gen_cfd(index_t nx, index_t ny, index_t nz, int dofs,
                  std::uint64_t seed);

/// KKT/saddle-point matrix (nlpkkt-like): [H Bᵀ; B 0] with H a 3D mesh
/// Laplacian and B a sparse constraint coupling.
CsrMatrix gen_kkt(index_t nx, index_t ny, index_t nz, std::uint64_t seed);

/// Banded matrix with the given half-bandwidth and in-band fill density.
CsrMatrix gen_banded(index_t n, index_t half_bandwidth, double density,
                     std::uint64_t seed);

/// Block-diagonal matrix of dense blocks with sparse random coupling between
/// consecutive blocks.
CsrMatrix gen_block_diagonal(index_t num_blocks, index_t block_size,
                             double coupling, std::uint64_t seed);

/// Uniform (Erdős–Rényi) random pattern with a full diagonal.
CsrMatrix gen_random_uniform(index_t n, double avg_degree,
                             std::uint64_t seed);

/// Mycielskian graph M_k (mycielskian19 family): triangle-free graphs with
/// growing chromatic number, built by the Mycielski construction starting
/// from a single edge (M_2 = K_2). Dense-ish, highly irregular.
CsrMatrix gen_mycielskian(int k);

/// Tall-and-skinny dense matrix stored in CSR — the Section 4.2 bandwidth
/// reference (96000 x 4000 in the paper).
CsrMatrix gen_dense_tall_skinny(index_t rows, index_t cols);

}  // namespace ordo
