#include "corpus/stream.hpp"

#include <algorithm>
#include <deque>
#include <filesystem>
#include <memory>
#include <random>
#include <vector>

#include "sparse/storage.hpp"

namespace ordo {
namespace {

// One not-yet-emitted row of the sliding band window: the lower-triangle
// columns arrive while the row itself is processed, the upper-triangle
// columns arrive from the later rows that draw an edge back to it. Both
// arrive in ascending column order and the diagonal sits between them, so
// the concatenation is already CSR-sorted.
struct PendingRow {
  std::vector<index_t> cols;
  std::vector<value_t> values;
};

}  // namespace

std::int64_t estimated_banded_csr_bytes(const StreamedBandedParams& params) {
  // Expected nnz: one diagonal per row plus two mirrored entries per hit in
  // the lower band (interior rows draw half_bandwidth slots each).
  const double expected_nnz =
      static_cast<double>(params.n) *
      (1.0 + 2.0 * params.half_bandwidth * params.density);
  return static_cast<std::int64_t>(
      (params.n + 1) * sizeof(offset_t) +
      expected_nnz * (sizeof(index_t) + sizeof(value_t)));
}

CsrMatrix generate_banded_streamed(const StreamedBandedParams& params,
                                   const std::string& spill_dir,
                                   const std::string& name) {
  const index_t n = params.n;
  const index_t hb = params.half_bandwidth;
  require(n >= 0 && hb >= 0, "generate_banded_streamed: negative parameters");
  // diag_for_degree(2 * half_bandwidth * density) of the in-RAM generator —
  // tests/storage_test.cpp asserts bit-identity against gen_banded, so any
  // drift between the two formulas fails tier 1.
  const value_t diag = 2.0 * hb * params.density + 4.0;

  // Identical RNG discipline to gen_banded: one uniform draw per in-range
  // lower-band slot, consumed in (row, ascending column) order.
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  std::unique_ptr<PagedCsrWriter> writer;
  std::vector<offset_t> ram_row_ptr;
  std::vector<index_t> ram_cols;
  std::vector<value_t> ram_values;
  if (!spill_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(spill_dir);
    writer = std::make_unique<PagedCsrWriter>(
        (fs::path(spill_dir) / (name + ".ordocsr")).string(), n, n);
  } else {
    ram_row_ptr.reserve(static_cast<std::size_t>(n) + 1);
    ram_row_ptr.push_back(0);
  }
  auto emit = [&](const PendingRow& row) {
    if (writer) {
      writer->append_row(row.cols, row.values);
    } else {
      ram_cols.insert(ram_cols.end(), row.cols.begin(), row.cols.end());
      ram_values.insert(ram_values.end(), row.values.begin(),
                        row.values.end());
      ram_row_ptr.push_back(static_cast<offset_t>(ram_cols.size()));
    }
  };

  // Sliding window of pending rows [emit_next, i]: row j is complete once
  // every row through j + half_bandwidth has drawn its lower band, so the
  // window never holds more than half_bandwidth + 1 rows — the O(window)
  // memory bound of the whole path.
  std::deque<PendingRow> window;
  index_t emit_next = 0;
  for (index_t i = 0; i < n; ++i) {
    window.emplace_back();
    PendingRow& current = window.back();
    for (index_t j = std::max<index_t>(0, i - hb); j < i; ++j) {
      if (uniform(rng) < params.density) {
        current.cols.push_back(j);
        current.values.push_back(-0.5);
        PendingRow& mirror = window[static_cast<std::size_t>(j - emit_next)];
        mirror.cols.push_back(i);
        mirror.values.push_back(-0.5);
      }
    }
    // The diagonal lands after the lower-triangle run and before any upper
    // entry a later row appends — ascending order holds by construction.
    current.cols.push_back(i);
    current.values.push_back(diag);
    while (emit_next + hb <= i) {
      emit(window.front());
      window.pop_front();
      ++emit_next;
    }
  }
  while (!window.empty()) {
    emit(window.front());
    window.pop_front();
  }

  if (writer) return CsrMatrix(n, n, writer->finish());
  return CsrMatrix(n, n, std::move(ram_row_ptr), std::move(ram_cols),
                   std::move(ram_values));
}

CorpusEntry generate_streamed_entry(const std::string& name,
                                    const StreamedBandedParams& params) {
  CorpusEntry entry;
  entry.group = "banded_ooc";
  entry.name = name;
  entry.spd = true;  // same structural family as the corpus "banded" slot
  entry.matrix = generate_banded_streamed(params, ooc_dir_from_env(), name);
  return entry;
}

}  // namespace ordo
