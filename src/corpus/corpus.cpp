#include "corpus/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <random>

#include "obs/obs.hpp"
#include "sparse/csr_ops.hpp"
#include "sparse/permutation.hpp"

namespace ordo {
namespace {

index_t side_for(double target_nnz, double nnz_per_node, int dims) {
  const double nodes = std::max(16.0, target_nnz / nnz_per_node);
  return std::max<index_t>(
      2, static_cast<index_t>(std::round(std::pow(nodes, 1.0 / dims))));
}

// Symmetric permutation that shuffles indices only within windows of the
// given size: window >= n degenerates to a full shuffle, small windows leave
// locality almost intact. Drawing the window log-uniformly gives the corpus
// the full spectrum of "how badly is this matrix ordered" that the real
// collection has — most matrices arrive in moderately good application
// order, some in excellent order, a few in essentially random order.
CsrMatrix window_shuffle(const CsrMatrix& a, index_t window,
                         std::uint64_t seed) {
  const index_t n = a.num_rows();
  Permutation perm = identity_permutation(n);
  std::mt19937_64 rng(seed ^ 0x517bd05eULL);
  for (index_t begin = 0; begin < n; begin += window) {
    const index_t end = std::min<index_t>(begin + window, n);
    std::shuffle(perm.begin() + begin, perm.begin() + end, rng);
  }
  return permute_symmetric(a, perm);
}

// Adds `extra` symmetric long-range entries to about `row_fraction` of the
// rows, giving uniform-stencil matrices the heterogeneous row lengths real
// collection matrices have. The heavy rows are drawn from a *contiguous
// band* of the stored order, not uniformly: in real matrices the heavy rows
// cluster (constraint blocks appended at the end, hub vertices in one id
// range), which is what makes the original order load-imbalanced under the
// 1D row split and gives reordering its balance-repairing role (Section 4.4
// classes 2-3).
CsrMatrix sprinkle(const CsrMatrix& a, double row_fraction, int extra,
                   std::uint64_t seed) {
  std::mt19937_64 rng(seed ^ 0x5eed5eed5eedULL);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  std::uniform_int_distribution<index_t> any(0, a.num_rows() - 1);
  const index_t band_rows = std::max<index_t>(
      1, static_cast<index_t>(row_fraction * a.num_rows()));
  const index_t band_begin =
      any(rng) % std::max<index_t>(1, a.num_rows() - band_rows + 1);
  // Half of the sprinkled matrices cluster their heavy rows in one band,
  // half spread them uniformly — both patterns occur in the collection.
  const bool banded = (seed & 1) == 0;
  CooMatrix coo(a.num_rows(), a.num_cols());
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(i, cols[k], vals[k]);
    }
    const bool in_band = i >= band_begin && i < band_begin + band_rows;
    const bool hit = banded ? (in_band && uniform(rng) < 0.8)
                            : uniform(rng) < row_fraction;
    if (hit) {
      const int count = 1 + static_cast<int>(rng() % static_cast<unsigned>(extra));
      for (int e = 0; e < count; ++e) {
        const index_t j = any(rng);
        if (j != i) coo.add_symmetric(i, j, -0.01);
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

}  // namespace

CorpusOptions corpus_options_from_env() {
  CorpusOptions options;
  if (const char* count = std::getenv("ORDO_CORPUS_COUNT")) {
    options.count = std::max(1, std::atoi(count));
  }
  if (const char* scale = std::getenv("ORDO_CORPUS_SCALE")) {
    options.scale = std::max(0.01, std::atof(scale));
  }
  return options;
}

std::vector<CorpusEntry> generate_corpus(const CorpusOptions& options) {
  ORDO_SCOPE("corpus/generate");
  ORDO_COUNTER_ADD("corpus.generations", 1);
  obs::logf(obs::LogLevel::kProgress,
            "generating corpus: %d matrices (scale %.2f)", options.count,
            options.scale);
  std::vector<CorpusEntry> corpus;
  corpus.reserve(static_cast<std::size_t>(options.count));
  std::mt19937_64 rng(options.seed);
  // Log-uniform target nonzero counts, 2e3..6e5 at scale 1 (a handful of
  // entries exceed the scaled LLC, matching the paper's 77-of-490 ratio).
  std::uniform_real_distribution<double> log_nnz(std::log(2.0e3),
                                                 std::log(6.0e5));
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  // Family mix approximating the collection's composition among matrices
  // with 1e6..1e9 nonzeros.
  struct FamilySlot {
    const char* group;
    int weight;
    bool spd;
  };
  const std::vector<FamilySlot> families = {
      {"mesh2d", 9, true},     {"mesh3d", 8, true},
      {"fem", 8, true},        {"geometric", 5, true},
      {"circuit", 7, false},   {"cfd", 6, false},
      {"road", 4, true},       {"rmat", 6, true},
      {"community", 5, true},  {"debruijn", 3, true},
      {"kkt", 4, false},       {"banded", 4, true},
      {"blockdiag", 3, true},  {"random", 4, false},
  };
  std::vector<const FamilySlot*> wheel;
  for (const FamilySlot& f : families) {
    for (int w = 0; w < f.weight; ++w) wheel.push_back(&f);
  }

  for (int i = 0; i < options.count; ++i) {
    // Stride through the weighted wheel with a coprime step so that any
    // prefix of the corpus (small ORDO_CORPUS_COUNT runs) already mixes all
    // families instead of consuming them block by block.
    const FamilySlot& family =
        *wheel[(static_cast<std::size_t>(i) * 37) % wheel.size()];
    const double target = std::exp(log_nnz(rng)) * options.scale;
    const std::uint64_t seed = rng();
    // A slice of naturally ordered matrices gets a graded disturbance: the
    // window size spans "barely disturbed" to "fully random", mirroring the
    // spread of stored-order quality in the collection.
    const bool shuffle = uniform(rng) < 0.45;
    const double window_draw = uniform(rng);
    // Most real matrices have heterogeneous row lengths even when the
    // generator's stencil is uniform (boundaries, constraints, coupling
    // terms); sprinkling a few long-range entries onto a fraction of rows
    // restores that heterogeneity, which matters for the Gray ordering's
    // density split.
    const bool sprinkle_rows = uniform(rng) < 0.6;

    CorpusEntry entry;
    entry.group = family.group;
    entry.spd = family.spd;
    auto disturb = [&](CsrMatrix m) {
      if (!shuffle) return m;
      const double span = std::log(4.0 * std::max<index_t>(m.num_rows(), 2));
      const index_t window = std::max<index_t>(
          64, static_cast<index_t>(std::exp(std::log(64.0) +
                                            window_draw * span)));
      return window_shuffle(m, window, seed);
    };
    char name[64];
    std::snprintf(name, sizeof(name), "%s_%04d", family.group, i);
    entry.name = name;

    const std::string group = family.group;
    if (group == "mesh2d") {
      const index_t s = side_for(target, 5.0, 2);
      entry.matrix = disturb(gen_mesh2d(s, std::max<index_t>(2, s + static_cast<index_t>(seed % 7)),
                     seed % 2 == 0 ? 5 : 9));
      if (sprinkle_rows) entry.matrix = sprinkle(entry.matrix, 0.12, 4, seed);
    } else if (group == "mesh3d") {
      const index_t s = side_for(target, 7.0, 3);
      entry.matrix =
          disturb(gen_mesh3d(s, s, std::max<index_t>(2, s - 1), 7));
      if (sprinkle_rows) entry.matrix = sprinkle(entry.matrix, 0.12, 4, seed);
    } else if (group == "fem") {
      const int dofs = 2 + static_cast<int>(seed % 3);  // 2..4 dofs per node
      const index_t s = side_for(target / (dofs * dofs), 9.0, 2);
      entry.matrix = disturb(gen_fem_blocked(s, s, dofs));
      if (sprinkle_rows) entry.matrix = sprinkle(entry.matrix, 0.10, 3, seed);
    } else if (group == "geometric") {
      const index_t n = static_cast<index_t>(std::max(64.0, target / 7.0));
      entry.matrix = gen_geometric(n, 1.2 + 0.4 * uniform(rng), seed);
    } else if (group == "circuit") {
      const index_t n = static_cast<index_t>(std::max(64.0, target / 5.0));
      entry.matrix = gen_circuit(n, 1 + static_cast<int>(seed % 4),
                                 2.0 + 2.0 * uniform(rng), seed);
    } else if (group == "cfd") {
      const int dofs = 1 + static_cast<int>(seed % 4);
      const index_t s = side_for(target / (dofs * dofs), 7.0, 3);
      entry.matrix = disturb(gen_cfd(s, s, std::max<index_t>(2, s - 1), dofs, seed));
    } else if (group == "road") {
      const index_t n = static_cast<index_t>(std::max(64.0, target / 3.8));
      entry.matrix = gen_road_network(n, seed);
    } else if (group == "rmat") {
      const int scale_bits = std::max(
          6, static_cast<int>(std::log2(std::max(64.0, target / 17.0))));
      entry.matrix = gen_rmat(scale_bits, 8, 0.57, 0.19, 0.19, seed);
    } else if (group == "community") {
      const index_t n = static_cast<index_t>(std::max(128.0, target / 8.0));
      entry.matrix =
          gen_community(n, 16 + static_cast<index_t>(seed % 32), 0.3, seed);
    } else if (group == "debruijn") {
      const index_t n = static_cast<index_t>(std::max(128.0, target / 3.0));
      entry.matrix = gen_debruijn_chain(n, 0.02, seed);
    } else if (group == "kkt") {
      const index_t s = side_for(target / 1.6, 7.0, 3);
      entry.matrix = disturb(gen_kkt(s, s, s, seed));
      if (sprinkle_rows) entry.matrix = sprinkle(entry.matrix, 0.10, 3, seed);
    } else if (group == "banded") {
      const index_t bw = 8 + static_cast<index_t>(seed % 48);
      const double density = 0.3 + 0.5 * uniform(rng);
      const index_t n = static_cast<index_t>(
          std::max(64.0, target / (2.0 * bw * density + 1.0)));
      entry.matrix = disturb(gen_banded(n, bw, density, seed));
    } else if (group == "blockdiag") {
      const index_t bs = 8 + static_cast<index_t>(seed % 24);
      const index_t blocks = std::max<index_t>(
          2, static_cast<index_t>(target / (0.6 * bs * bs + 1.0)));
      entry.matrix = disturb(gen_block_diagonal(blocks, bs, 0.3, seed));
    } else {  // random
      const index_t n = static_cast<index_t>(std::max(64.0, target / 7.0));
      entry.matrix = gen_random_uniform(n, 6.0, seed);
      entry.spd = false;
    }
    corpus.push_back(std::move(entry));
  }
  return corpus;
}

std::vector<std::string> named_standins() {
  return {"333SP",        "nv2",          "audikw_1",
          "HV15R",        "Freescale2",   "com-Amazon",
          "kmer_V1r",     "delaunay_n24", "europe_osm",
          "Flan_1565",    "indochina-2004",
          "kron_g500-logn21", "mycielskian19", "nlpkkt240",
          "vas_stokes_4M"};
}

CorpusEntry generate_named(const std::string& name, double scale) {
  CorpusEntry entry;
  entry.name = name;
  // `scale` multiplies the *nonzero count*; grid sides therefore scale by
  // the matching root of it.
  auto sz = [scale](double base) {  // linear sizes (vertex counts)
    return static_cast<index_t>(std::max(64.0, base * scale));
  };
  auto side2 = [scale](double base) {  // sides of 2D grids
    return static_cast<index_t>(std::max(4.0, base * std::sqrt(scale)));
  };
  auto side3 = [scale](double base) {  // sides of 3D grids
    return static_cast<index_t>(std::max(3.0, base * std::cbrt(scale)));
  };
  if (name == "333SP") {
    // 2D triangulation (structural problem), stored order scrambled:
    // reordering restores locality while balance stays even — Class 1.
    entry.group = "mesh2d";
    entry.spd = true;
    const index_t side = side2(160);
    entry.matrix = permute_symmetric(
        gen_mesh2d(side, side, 9), random_permutation(side * side, 3331));
  } else if (name == "nv2") {
    // Semiconductor device simulation: 3D mesh, scrambled, with uneven row
    // weights — reordering improves locality and balance — Class 2.
    entry.group = "semiconductor";
    entry.spd = false;
    CsrMatrix base = gen_cfd(side3(18), side3(18), side3(18), 2, 42);
    entry.matrix = permute_symmetric(
        base, random_permutation(base.num_rows(), 1177));
  } else if (name == "audikw_1") {
    // Solid mechanics, blocked FEM in its natural (good) order but with
    // uneven block rows: 1D is imbalanced, 2D is fine — Class 3.
    entry.group = "fem";
    entry.spd = true;
    entry.matrix = gen_fem_blocked(side2(52), side2(52), 3);
  } else if (name == "HV15R") {
    // CFD matrix in its natural, already cache-friendly order: reordering
    // changes little — Class 4.
    entry.group = "cfd";
    entry.spd = false;
    entry.matrix = gen_cfd(side3(16), side3(16), side3(16), 4, 15);
  } else if (name == "Freescale2") {
    // Circuit simulation with power rails, scrambled stored order.
    entry.group = "circuit";
    entry.spd = false;
    CsrMatrix base = gen_circuit(sz(30000), 3, 2.2, 22);
    entry.matrix =
        permute_symmetric(base, random_permutation(base.num_rows(), 9));
  } else if (name == "com-Amazon") {
    entry.group = "community";
    entry.spd = true;
    entry.matrix = gen_community(sz(12000), 24, 0.35, 77);
  } else if (name == "kmer_V1r") {
    entry.group = "debruijn";
    entry.spd = true;
    entry.matrix = gen_debruijn_chain(sz(120000), 0.015, 41);
  } else if (name == "delaunay_n24") {
    entry.group = "geometric";
    entry.spd = true;
    entry.matrix = gen_geometric(sz(30000), 1.4, 24);
  } else if (name == "europe_osm") {
    entry.group = "road";
    entry.spd = true;
    entry.matrix = gen_road_network(sz(90000), 20);
  } else if (name == "Flan_1565") {
    entry.group = "fem";
    entry.spd = true;
    entry.matrix = gen_fem_blocked(side2(60), side2(60), 3);
  } else if (name == "indochina-2004") {
    entry.group = "web";
    entry.spd = true;
    entry.matrix = gen_rmat(
        std::max(8, static_cast<int>(std::log2(16384.0 * scale))), 8, 0.7,
        0.15, 0.1, 2004);
  } else if (name == "kron_g500-logn21") {
    entry.group = "rmat";
    entry.spd = true;
    entry.matrix = gen_rmat(
        std::max(8, static_cast<int>(std::log2(8192.0 * scale))), 16, 0.57,
        0.19, 0.19, 21);
  } else if (name == "mycielskian19") {
    entry.group = "mycielskian";
    entry.spd = true;
    entry.matrix = gen_mycielskian(
        std::clamp(11 + static_cast<int>(std::log2(std::max(scale, 0.01)) / 2),
                   6, 13));
  } else if (name == "nlpkkt240") {
    entry.group = "kkt";
    entry.spd = false;
    entry.matrix = gen_kkt(side3(28), side3(28), side3(28), 240);
  } else if (name == "vas_stokes_4M") {
    entry.group = "cfd";
    entry.spd = false;
    entry.matrix = gen_cfd(side3(18), side3(18), side3(18), 3, 4000000);
  } else {
    throw invalid_argument_error("generate_named: unknown stand-in " + name);
  }
  return entry;
}

}  // namespace ordo
