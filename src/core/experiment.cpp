#include "core/experiment.hpp"

#include "check/check.hpp"
#include "core/auto_order.hpp"
#include "engine/engine.hpp"
#include "features/features.hpp"
#include "obs/obs.hpp"
#include "obs/status/status.hpp"
#include "pipeline/journal.hpp"
#include "pipeline/shard.hpp"
#include "pipeline/study_pipeline.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace ordo {
namespace {

// The per-thread work columns come from the engine plan (the partition the
// execution layer actually runs); the timing columns from the model.
OrderingMeasurement to_measurement(const SpmvEstimate& estimate,
                                   const engine::ThreadWork& work) {
  OrderingMeasurement m;
  m.min_thread_nnz = work.min_nnz;
  m.max_thread_nnz = work.max_nnz;
  m.mean_thread_nnz = work.mean_nnz;
  m.imbalance = work.imbalance;
  m.seconds = estimate.seconds;
  m.gflops_max = estimate.gflops;
  // The artifact reports both the best of 100 runs and the mean of the warm
  // runs; the model is deterministic so the two coincide.
  m.gflops_mean = estimate.gflops;
  return m;
}

std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == ' ') c = '_';
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// Host-measured hardware counters for one (kernel, reordered matrix) pair.
// The modeled columns price the paper's eight machines; this executes the
// kernel on *this* host under a counter scope and reports what the silicon
// did — the ground truth the model columns can be checked against. valid
// stays false whenever the counter session is off or the perf backend
// degraded, so rows carry "absent", never fabricated zeros.
struct HostHwSample {
  bool valid = false;
  double ipc = 0.0;
  double llc_miss_rate = 0.0;
  double gbps = 0.0;
  double seconds = 0.0;
};

HostHwSample measure_host_hw(const CsrMatrix& matrix, const SpmvKernel& kernel,
                             const std::string& scope_name) {
  HostHwSample sample;
  if (!obs::hw::enabled()) return sample;
  const int threads = static_cast<int>(std::max(
      1u, std::thread::hardware_concurrency()));  // ordo-lint: allow(thread)
  const auto plan = engine::prepare_plan(matrix, kernel, threads);
  std::vector<value_t> x(static_cast<std::size_t>(matrix.num_cols()),
                         value_t{1});
  std::vector<value_t> y(static_cast<std::size_t>(matrix.num_rows()),
                         value_t{0});
  engine::spmv(*plan, matrix, x, y);  // warm-up: page faults, cache fill
  constexpr int kReps = 3;
  obs::hw::CounterScope scope(scope_name);
  obs::Stopwatch watch;
  for (int rep = 0; rep < kReps; ++rep) engine::spmv(*plan, matrix, x, y);
  const double window_seconds = watch.seconds();
  const obs::hw::CounterSet& counters = scope.stop();
  if (!counters.available) return sample;
  const obs::hw::DerivedMetrics derived =
      obs::hw::derive_metrics(counters, window_seconds);
  if (!derived.valid) return sample;
  sample.valid = true;
  sample.ipc = derived.ipc;
  sample.llc_miss_rate = derived.llc_miss_rate;
  sample.gbps = derived.gbps;
  sample.seconds = window_seconds / kReps;
  return sample;
}

}  // namespace

std::vector<SpmvKernel> study_kernels(const StudyOptions& options) {
  std::vector<SpmvKernel> kernels = {SpmvKernel::k1D, SpmvKernel::k2D};
  for (const std::string& id : options.kernels) {
    const engine::KernelDesc& desc = engine::kernel(id);  // throws on unknown
    require(!desc.caps.needs_symmetric,
            "study_kernels: kernel '" + id +
                "' requires symmetric lower-triangle storage, but the study "
                "corpus stores matrices in full");
    SpmvKernel kernel(id);
    if (std::find(kernels.begin(), kernels.end(), kernel) == kernels.end()) {
      kernels.push_back(std::move(kernel));
    }
  }
  return kernels;
}

std::vector<double> reordering_speedups(const MeasurementRow& row) {
  require(row.orderings.size() == 7,
          "reordering_speedups: row must have 7 ordering measurements");
  std::vector<double> speedups;
  speedups.reserve(6);
  for (std::size_t k = 1; k < 7; ++k) {
    speedups.push_back(row.orderings[k].gflops_max /
                       row.orderings[0].gflops_max);
  }
  return speedups;
}

MatrixStudyRows run_matrix_study(const CorpusEntry& entry,
                                 const StudyOptions& options) {
  obs::Span matrix_span("study/matrix/" + entry.name);
  ORDO_COUNTER_ADD("study.matrices", 1);

  const auto& machines = table2_architectures();
  const auto kinds = study_orderings();
  const std::vector<SpmvKernel> kernels = study_kernels(options);
  const std::atomic<bool>* cancel = options.reorder.cancel;

  // Arch-independent orderings, computed once. The GP ordering matches the
  // part count to the machine's cores (Section 3.3), so it is computed per
  // distinct core count instead.
  obs::status::set_phase("reorder");
  // Per-phase wall time feeds the tail-latency histograms ("phase.<name>"),
  // the per-phase overhead distributions the reordering-effectiveness
  // question hinges on. Boundary timestamps, not a Stopwatch window: the
  // phase deliberately includes its own logging and validation.
  std::int64_t phase_start_us = obs::trace_now_us();
  std::map<OrderingKind, CsrMatrix> reordered;
  for (OrderingKind kind : kinds) {
    if (kind == OrderingKind::kGp) continue;
    poll_cancelled(cancel, "run_matrix_study");
    // Scope-name construction before the stopwatch, and the elapsed-time
    // read right after the scope closes: the timed window covers only
    // reorder+apply, not metric-name strings or the validator below.
    obs::hw::CounterScope hw_scope("reorder." + ordering_name(kind));
    obs::Stopwatch watch;
    [[maybe_unused]] const auto it = reordered
        .emplace(kind, apply_ordering(
                           entry.matrix,
                           compute_ordering(entry.matrix, kind,
                                            options.reorder)))
        .first;
    const double reorder_millis = watch.millis();
    hw_scope.stop();
    ORDO_CHECK(validate_reordered_matrix(
        entry.matrix, it->second,
        "run_matrix_study(" + entry.name + "/" + ordering_name(kind) + ")"));
    obs::logf(obs::LogLevel::kDebug, "  %s reorder+apply: %.2f ms",
              ordering_name(kind).c_str(), reorder_millis);
  }
  std::map<int, CsrMatrix> gp_by_cores;
  for (const Architecture& arch : machines) {
    if (gp_by_cores.count(arch.cores)) continue;
    poll_cancelled(cancel, "run_matrix_study");
    ReorderOptions gp_options = options.reorder;
    gp_options.gp_parts = arch.cores;
    // Same ordering discipline as the loop above: nothing but
    // reorder+apply inside the watch window.
    obs::hw::CounterScope hw_scope("reorder.gp");
    obs::Stopwatch watch;
    [[maybe_unused]] const auto it = gp_by_cores
        .emplace(arch.cores,
                 apply_ordering(entry.matrix,
                                compute_ordering(entry.matrix,
                                                 OrderingKind::kGp,
                                                 gp_options)))
        .first;
    const double reorder_millis = watch.millis();
    hw_scope.stop();
    ORDO_CHECK(validate_reordered_matrix(
        entry.matrix, it->second,
        "run_matrix_study(" + entry.name + "/gp" +
            std::to_string(arch.cores) + ")"));
    obs::logf(obs::LogLevel::kDebug, "  GP(%d parts) reorder+apply: %.2f ms",
              arch.cores, reorder_millis);
  }

  ORDO_LATENCY_RECORD(
      "phase.reorder",
      static_cast<double>(obs::trace_now_us() - phase_start_us) * 1e-6);

  // One reuse profile per reordered matrix, shared across machines.
  obs::status::set_phase("profile");
  phase_start_us = obs::trace_now_us();
  std::map<OrderingKind, SpmvModel> models;
  {
    ORDO_SCOPE("study/reuse_profiles");
    for (const auto& [kind, matrix] : reordered) {
      poll_cancelled(cancel, "run_matrix_study");
      models.emplace(kind, SpmvModel(matrix, options.model));
    }
  }
  std::map<int, SpmvModel> gp_models;
  {
    ORDO_SCOPE("study/reuse_profiles_gp");
    for (const auto& [cores, matrix] : gp_by_cores) {
      poll_cancelled(cancel, "run_matrix_study");
      gp_models.emplace(cores, SpmvModel(matrix, options.model));
    }
  }

  ORDO_LATENCY_RECORD(
      "phase.profile",
      static_cast<double>(obs::trace_now_us() - phase_start_us) * 1e-6);

  // Order-sensitive features: bandwidth and profile are machine-
  // independent; the off-diagonal count uses the machine's core count as
  // block count and is computed per distinct thread count.
  obs::status::set_phase("features");
  phase_start_us = obs::trace_now_us();
  std::map<OrderingKind, std::pair<std::int64_t, std::int64_t>> band_profile;
  for (const auto& [kind, matrix] : reordered) {
    band_profile[kind] = {matrix_bandwidth(matrix), matrix_profile(matrix)};
  }
  std::map<int, std::pair<std::int64_t, std::int64_t>> gp_band_profile;
  for (const auto& [cores, matrix] : gp_by_cores) {
    gp_band_profile[cores] = {matrix_bandwidth(matrix),
                              matrix_profile(matrix)};
  }
  std::map<std::pair<int, int>, std::int64_t> offdiag;  // (ordering idx, cores)
  for (const Architecture& arch : machines) {
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      const auto key = std::make_pair(static_cast<int>(k), arch.cores);
      if (offdiag.count(key)) continue;
      const CsrMatrix& matrix = kinds[k] == OrderingKind::kGp
                                    ? gp_by_cores.at(arch.cores)
                                    : reordered.at(kinds[k]);
      offdiag[key] = off_diagonal_block_nonzeros(matrix, arch.cores);
    }
  }
  ORDO_LATENCY_RECORD(
      "phase.features",
      static_cast<double>(obs::trace_now_us() - phase_start_us) * 1e-6);

  // Host hardware-counter measurements, one per (kernel, reordered matrix).
  // GP matrices differ per core count, so those are keyed by cores; every
  // machine row with that core count shares the measurement.
  std::map<std::pair<std::string, OrderingKind>, HostHwSample> host_hw;
  std::map<std::pair<std::string, int>, HostHwSample> gp_host_hw;
  if (options.hw_counters) {
    ORDO_SCOPE("study/host_hw");
    obs::status::set_phase("spmv");
    ORDO_LATENCY_SCOPE("phase.spmv");
    for (const SpmvKernel& kernel : kernels) {
      for (const auto& [kind, matrix] : reordered) {
        poll_cancelled(cancel, "run_matrix_study");
        host_hw.emplace(
            std::make_pair(kernel.id(), kind),
            measure_host_hw(matrix, kernel,
                            "spmv_host." + kernel.id() + "." +
                                ordering_name(kind)));
      }
      for (const auto& [cores, matrix] : gp_by_cores) {
        poll_cancelled(cancel, "run_matrix_study");
        gp_host_hw.emplace(
            std::make_pair(kernel.id(), cores),
            measure_host_hw(matrix, kernel,
                            "spmv_host." + kernel.id() + ".gp"));
      }
    }
  }

  MatrixStudyRows rows;
  obs::status::set_phase("model");
  phase_start_us = obs::trace_now_us();
  for (const Architecture& arch : machines) {
    poll_cancelled(cancel, "run_matrix_study");
    for (const SpmvKernel& kernel : kernels) {
      obs::Span eval_span("model/" + arch.name + "/" +
                          spmv_kernel_name(kernel));
      MeasurementRow row;
      row.group = entry.group;
      row.name = entry.name;
      row.rows = entry.matrix.num_rows();
      row.cols = entry.matrix.num_cols();
      row.nnz = entry.matrix.num_nonzeros();
      row.threads = arch.cores;
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        const OrderingKind kind = kinds[k];
        const CsrMatrix& matrix = kind == OrderingKind::kGp
                                      ? gp_by_cores.at(arch.cores)
                                      : reordered.at(kind);
        const SpmvModel& model = kind == OrderingKind::kGp
                                     ? gp_models.at(arch.cores)
                                     : models.at(kind);
        // The plan (shared through the engine's cache with the model's own
        // lookup below and with every same-core-count machine) supplies the
        // per-thread work columns; the model prices it.
        const auto plan = engine::prepare_plan(matrix, kernel, arch.cores);
        OrderingMeasurement m =
            to_measurement(model.estimate(kernel, arch),
                           engine::thread_work(plan->partition));
        const auto& bp = kind == OrderingKind::kGp
                             ? gp_band_profile.at(arch.cores)
                             : band_profile.at(kind);
        m.bandwidth = bp.first;
        m.profile = bp.second;
        m.off_diagonal_nnz =
            offdiag.at({static_cast<int>(k), arch.cores});
        if (options.hw_counters) {
          const HostHwSample& sample =
              kind == OrderingKind::kGp
                  ? gp_host_hw.at({kernel.id(), arch.cores})
                  : host_hw.at({kernel.id(), kind});
          m.has_hw = sample.valid;
          m.hw_ipc = sample.ipc;
          m.hw_llc_miss_rate = sample.llc_miss_rate;
          m.hw_gbps = sample.gbps;
          m.hw_seconds = sample.seconds;
        }
#if defined(ORDO_OBS_ENABLED)
        // Modeled per-ordering kernel time and per-thread work, aggregated
        // over matrices/machines — the per-ordering slice of
        // ordo_metrics.json.
        const std::string prefix = "study." + ordering_name(kind);
        obs::histogram(prefix + ".seconds").record(m.seconds);
        obs::histogram(prefix + ".imbalance").record(m.imbalance);
        obs::histogram(prefix + ".max_thread_nnz")
            .record(static_cast<double>(m.max_thread_nnz));
        obs::histogram(prefix + ".min_thread_nnz")
            .record(static_cast<double>(m.min_thread_nnz));
#endif
        row.orderings.push_back(m);
      }
      rows.emplace(std::make_pair(arch.name, kernel), std::move(row));
    }
  }
  ORDO_LATENCY_RECORD(
      "phase.model",
      static_cast<double>(obs::trace_now_us() - phase_start_us) * 1e-6);
  // The selector annotation happens here — inside the task, before the rows
  // reach the journal — so resumed runs replay decisions instead of
  // recomputing them, and the live `select` status section fills in as the
  // sweep progresses. It is a pure function of the row data (see
  // core/auto_order.hpp), which is what lets load_or_run_study apply the
  // same annotation to cached files.
  if (options.auto_order) annotate_rows_with_selection(rows, options);
  return rows;
}

StudyResults run_full_study(const std::vector<CorpusEntry>& corpus,
                            const StudyOptions& options) {
  ORDO_SCOPE("study/run");
  ORDO_COUNTER_ADD("study.runs", 1);
  // run_sharded_study falls through to the in-process pipeline for
  // shards <= 1, so this is the single dispatch point for both topologies.
  pipeline::StudyReport report = pipeline::run_sharded_study(corpus, options);
  if (!report.failures.empty()) {
    obs::logf(obs::LogLevel::kProgress,
              "study: %zu of %zu matrices failed and were skipped "
              "(first: %s: %s)",
              report.failures.size(), corpus.size(),
              report.failures.front().name.c_str(),
              report.failures.front().error.c_str());
  }
  return std::move(report.results);
}

std::string results_filename(const SpmvKernel& kernel, const Architecture& arch,
                             int corpus_count) {
  std::ostringstream name;
  name << sanitize(kernel.id()) << '_' << sanitize(arch.name) << '_'
       << arch.cores << "_threads_ss" << corpus_count << ".txt";
  return name.str();
}

void write_results_file(const std::string& path,
                        const std::vector<MeasurementRow>& rows) {
  std::ofstream out(path);
  require(out.good(), "write_results_file: cannot open " + path);
  // The host hardware-counter columns are appended only when some row
  // actually carries them, so caches written without ORDO_HW keep the
  // artifact's exact 54-column layout (and stay byte-identical to the
  // committed result files). Readers sniff the header for ":hw_valid".
  bool with_hw = false;
  // The selector columns follow the same sniffing contract: appended (after
  // every ordering block) only when rows carry them, tagged "select:pick" in
  // the header. Default sweeps keep the artifact layout byte-identical.
  bool with_select = false;
  for (const MeasurementRow& row : rows) {
    for (const OrderingMeasurement& m : row.orderings) {
      with_hw = with_hw || m.has_hw;
    }
    with_select = with_select || row.has_select;
  }
  out << "# group name rows cols nnz threads";
  for (OrderingKind kind : study_orderings()) {
    const std::string n = ordering_name(kind);
    out << ' ' << n << ":min_nnz " << n << ":max_nnz " << n << ":mean_nnz "
        << n << ":imbalance " << n << ":seconds " << n << ":gflops_max " << n
        << ":gflops_mean " << n << ":bandwidth " << n << ":profile " << n
        << ":offdiag_nnz";
    if (with_hw) {
      out << ' ' << n << ":hw_valid " << n << ":hw_ipc " << n
          << ":hw_llc_miss_rate " << n << ":hw_gbps " << n << ":hw_seconds";
    }
  }
  if (with_select) {
    out << " select:pick select:oracle select:regret select:pick_net_s"
           " select:oracle_net_s select:amortize_calls";
  }
  out << '\n';
  out.precision(9);
  for (const MeasurementRow& row : rows) {
    out << row.group << ' ' << row.name << ' ' << row.rows << ' ' << row.cols
        << ' ' << row.nnz << ' ' << row.threads;
    for (const OrderingMeasurement& m : row.orderings) {
      out << ' ' << m.min_thread_nnz << ' ' << m.max_thread_nnz << ' '
          << m.mean_thread_nnz << ' ' << m.imbalance << ' ' << m.seconds
          << ' ' << m.gflops_max << ' ' << m.gflops_mean << ' ' << m.bandwidth
          << ' ' << m.profile << ' ' << m.off_diagonal_nnz;
      if (with_hw) {
        out << ' ' << (m.has_hw ? 1 : 0) << ' ' << m.hw_ipc << ' '
            << m.hw_llc_miss_rate << ' ' << m.hw_gbps << ' ' << m.hw_seconds;
      }
    }
    if (with_select) {
      // Picks are written by ordering name (human-auditable; parsed back
      // through parse_ordering_name).
      const auto kinds = study_orderings();
      out << ' ' << ordering_name(kinds[static_cast<std::size_t>(row.pick)])
          << ' ' << ordering_name(kinds[static_cast<std::size_t>(row.oracle)])
          << ' ' << row.regret << ' ' << row.pick_net_seconds << ' '
          << row.oracle_net_seconds << ' ' << row.pick_amortize_calls;
    }
    out << '\n';
  }
}

std::vector<MeasurementRow> read_results_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "read_results_file: cannot open " + path);
  std::vector<MeasurementRow> rows;
  std::string line;
  bool with_hw = false;      // sniffed from the header (see write_results_file)
  bool with_select = false;  // likewise
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      if (!line.empty() && line.find(":hw_valid") != std::string::npos) {
        with_hw = true;
      }
      if (!line.empty() && line.find("select:pick") != std::string::npos) {
        with_select = true;
      }
      continue;
    }
    std::istringstream fields(line);
    MeasurementRow row;
    fields >> row.group >> row.name >> row.rows >> row.cols >> row.nnz >>
        row.threads;
    for (std::size_t k = 0; k < study_orderings().size(); ++k) {
      OrderingMeasurement m;
      fields >> m.min_thread_nnz >> m.max_thread_nnz >> m.mean_thread_nnz >>
          m.imbalance >> m.seconds >> m.gflops_max >> m.gflops_mean >>
          m.bandwidth >> m.profile >> m.off_diagonal_nnz;
      if (with_hw) {
        int valid = 0;
        fields >> valid >> m.hw_ipc >> m.hw_llc_miss_rate >> m.hw_gbps >>
            m.hw_seconds;
        m.has_hw = valid != 0;
      }
      row.orderings.push_back(m);
    }
    if (with_select) {
      const auto kinds = study_orderings();
      auto ordering_index = [&](const std::string& name) {
        const OrderingKind kind = parse_ordering_name(name);
        for (std::size_t k = 0; k < kinds.size(); ++k) {
          if (kinds[k] == kind) return static_cast<int>(k);
        }
        throw invalid_argument_error(
            "read_results_file: ordering '" + name +
            "' is not a study ordering in " + path);
      };
      std::string pick_name;
      std::string oracle_name;
      fields >> pick_name >> oracle_name >> row.regret >>
          row.pick_net_seconds >> row.oracle_net_seconds >>
          row.pick_amortize_calls;
      if (!fields.fail()) {
        row.pick = ordering_index(pick_name);
        row.oracle = ordering_index(oracle_name);
        row.has_select = true;
      }
    }
    require(!fields.fail(), "read_results_file: malformed row in " + path);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string default_results_dir() {
  if (const char* dir = std::getenv("ORDO_RESULTS_DIR")) return dir;
  return "ordo_results";
}

StudyResults load_or_run_study(const std::string& dir,
                               const CorpusOptions& corpus_options,
                               const StudyOptions& options) {
  namespace fs = std::filesystem;
  const auto& machines = table2_architectures();
  const std::vector<SpmvKernel> kernels = study_kernels(options);

  bool all_cached = true;
  for (const Architecture& arch : machines) {
    for (const SpmvKernel& kernel : kernels) {
      if (!fs::exists(fs::path(dir) /
                      results_filename(kernel, arch, corpus_options.count))) {
        all_cached = false;
      }
    }
  }
  // A failures file vetoes the cache: the result files were written by a
  // run with missing matrices (a timed-out task, or a crashed shard
  // worker's synthesized rows), and failures are retried on resume — so
  // fall through to the sweep, which replays the journal and recomputes
  // only the gaps.
  if (fs::exists(fs::path(options.checkpoint_dir.empty()
                              ? dir
                              : options.checkpoint_dir) /
                 pipeline::kFailuresFilename)) {
    all_cached = false;
  }

  StudyResults results;
  if (all_cached) {
    ORDO_SCOPE("study/load_cache");
    ORDO_COUNTER_ADD("study.cache_hits", 1);
    obs::logf(obs::LogLevel::kProgress, "loading cached study from %s",
              dir.c_str());
    for (const Architecture& arch : machines) {
      for (const SpmvKernel& kernel : kernels) {
        results[{arch.name, kernel}] = read_results_file(
            (fs::path(dir) / results_filename(kernel, arch,
                                              corpus_options.count))
                .string());
      }
    }
    // An --auto-order run over a cached sweep annotates the loaded rows (a
    // pure function of the row data — identical to what a fresh sweep
    // computes in-task) and rewrites the files so the pick / regret columns
    // land on disk. Unconditional so a changed budget or retrained model
    // always supersedes columns from an earlier annotation; the measurement
    // columns are untouched.
    if (options.auto_order) {
      annotate_study_with_selection(results, options);
      for (const Architecture& arch : machines) {
        for (const SpmvKernel& kernel : kernels) {
          write_results_file(
              (fs::path(dir) /
               results_filename(kernel, arch, corpus_options.count))
                  .string(),
              results.at({arch.name, kernel}));
        }
      }
      obs::logf(obs::LogLevel::kProgress,
                "auto-order: annotated cached study in %s", dir.c_str());
    }
    return results;
  }

  ORDO_COUNTER_ADD("study.cache_misses", 1);
  const std::vector<CorpusEntry> corpus = generate_corpus(corpus_options);

  // The sweep checkpoints into the cache dir (so an interrupted run resumes
  // there) and honours ORDO_JOBS, which lets every bench parallelise the
  // sweep without new flags — results are byte-identical for any job count.
  StudyOptions run_options = options;
  if (run_options.checkpoint_dir.empty()) {
    fs::create_directories(dir);
    run_options.checkpoint_dir = dir;
  }
  if (const char* jobs = std::getenv("ORDO_JOBS")) {
    run_options.jobs = std::atoi(jobs);
  }
  // ORDO_SHARDS forks the sweep across worker processes the same way
  // ORDO_JOBS threads it — byte-identical results either way (see
  // src/pipeline/shard.hpp).
  if (const char* shards = std::getenv("ORDO_SHARDS")) {
    if (*shards != '\0') run_options.shards = std::atoi(shards);
  }
  results = run_full_study(corpus, run_options);

  ORDO_SCOPE("study/write_cache");
  fs::create_directories(dir);
  for (const Architecture& arch : machines) {
    for (const SpmvKernel& kernel : kernels) {
      write_results_file(
          (fs::path(dir) /
           results_filename(kernel, arch, corpus_options.count))
              .string(),
          results.at({arch.name, kernel}));
    }
  }
  // The cache files supersede the journal; keep it for interrupted runs —
  // and for runs that left a failures file, whose next resume needs the
  // journal to recompute only the failed matrices.
  if (!fs::exists(fs::path(run_options.checkpoint_dir) /
                  pipeline::kFailuresFilename)) {
    std::error_code ignored;
    fs::remove(
        fs::path(run_options.checkpoint_dir) / pipeline::kJournalFilename,
        ignored);
  }
  obs::logf(obs::LogLevel::kProgress, "wrote study cache to %s", dir.c_str());
  return results;
}

}  // namespace ordo
