// Statistics used by the evaluation: geometric means (Tables 3-4), five-point
// box summaries (Figs. 2, 3, 6) and Dolan–Moré performance profiles (Fig. 5).
#pragma once

#include <string>
#include <vector>

namespace ordo {

/// Geometric mean of strictly positive samples.
double geometric_mean(const std::vector<double>& samples);

/// Five-point summary of a sample as drawn in the paper's boxplots.
struct BoxStats {
  double min = 0, q1 = 0, median = 0, q3 = 0, max = 0;
  std::size_t count = 0;
};

/// Quartiles by linear interpolation (type-7, the gnuplot/NumPy default).
BoxStats box_stats(std::vector<double> samples);

/// One method's curve in a performance profile.
struct ProfileCurve {
  std::string label;
  std::vector<double> x;  ///< performance ratios (>= 1)
  std::vector<double> y;  ///< fraction of instances within ratio x
};

/// Dolan–Moré performance profiles. `costs[m][i]` is method m's cost on
/// instance i (lower is better; non-finite marks failure). Curve m at ratio
/// x gives the fraction of instances where method m is within a factor x of
/// the per-instance best.
std::vector<ProfileCurve> performance_profiles(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<double>>& costs);

/// Fraction of instances for which curve `curve` is within factor `ratio` of
/// the best (reads the step function produced by performance_profiles).
double profile_value_at(const ProfileCurve& curve, double ratio);

}  // namespace ordo
