#include "core/auto_order.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>

#include "obs/obs.hpp"

namespace ordo {
namespace {

// Accumulates log-space sums for the geometric means of one summary.
struct SummaryAccumulator {
  SelectionSummary summary;
  double log_pick_net = 0.0;
  double log_oracle_net = 0.0;
  std::array<double, select::kNumOrderings> log_fixed_net{};
  double regret_sum = 0.0;

  void add_row(const MeasurementRow& row, const StudyOptions& options) {
    require(row.has_select,
            "summarize_selection: rows lack selection columns — run with "
            "auto_order or annotate_study_with_selection first");
    ++summary.rows;
    if (row.pick == row.oracle) ++summary.oracle_hits;
    summary.picks[static_cast<std::size_t>(row.pick)] += 1;
    regret_sum += row.regret;
    summary.max_regret = std::max(summary.max_regret, row.regret);
    log_pick_net += std::log(row.pick_net_seconds);
    log_oracle_net += std::log(row.oracle_net_seconds);
    for (std::size_t k = 0; k < select::kNumOrderings; ++k) {
      const double net = select::net_seconds_per_call(
          row.orderings[k].seconds,
          select::predicted_reorder_seconds(k, row.rows, row.nnz),
          options.spmv_budget);
      log_fixed_net[k] += std::log(net);
    }
  }

  SelectionSummary finish() {
    if (summary.rows > 0) {
      const double n = static_cast<double>(summary.rows);
      summary.mean_regret = regret_sum / n;
      summary.geomean_pick_net = std::exp(log_pick_net / n);
      summary.geomean_oracle_net = std::exp(log_oracle_net / n);
      for (std::size_t k = 0; k < select::kNumOrderings; ++k) {
        summary.geomean_fixed_net[k] = std::exp(log_fixed_net[k] / n);
      }
      for (std::size_t k = 1; k < select::kNumOrderings; ++k) {
        if (summary.geomean_fixed_net[k] <
            summary.geomean_fixed_net[static_cast<std::size_t>(
                summary.best_fixed)]) {
          summary.best_fixed = static_cast<int>(k);
        }
      }
    }
    return summary;
  }
};

features::SelectorFeatures row_features(const MeasurementRow& row,
                                        double imbalance_1d) {
  const OrderingMeasurement& original = row.orderings.front();
  return features::make_selector_features(
      row.rows, row.nnz, original.bandwidth, original.profile,
      original.off_diagonal_nnz, imbalance_1d, row.threads);
}

void annotate_row(MeasurementRow& row, const MeasurementRow& row_1d,
                  const std::string& kernel_id, const StudyOptions& options) {
  require(row.orderings.size() == select::kNumOrderings,
          "annotate_row: row must carry all study orderings");
  select::SelectorOptions selector_options;
  selector_options.spmv_budget = options.spmv_budget;

  const double imbalance_1d = row_1d.orderings.front().imbalance;
  const features::SelectorFeatures f = row_features(row, imbalance_1d);
  const select::Decision decision = select::select_ordering(
      f, row.orderings.front().seconds, row.rows, row.nnz, kernel_id,
      selector_options);

  // Realized net per-call seconds: the *modeled* kernel time the study
  // actually recorded for each ordering, plus the same committed reorder
  // cost the selector priced — so pick and oracle are compared on equal
  // footing and regret is >= 0 by construction.
  std::array<double, select::kNumOrderings> net{};
  int oracle = 0;
  for (std::size_t k = 0; k < select::kNumOrderings; ++k) {
    net[k] = select::net_seconds_per_call(
        row.orderings[k].seconds,
        select::predicted_reorder_seconds(k, row.rows, row.nnz),
        options.spmv_budget);
    if (net[k] < net[static_cast<std::size_t>(oracle)]) {
      oracle = static_cast<int>(k);
    }
  }
  const auto pick = static_cast<std::size_t>(decision.pick);
  row.has_select = true;
  row.pick = decision.pick;
  row.oracle = oracle;
  row.pick_net_seconds = net[pick];
  row.oracle_net_seconds = net[static_cast<std::size_t>(oracle)];
  row.regret = row.oracle_net_seconds > 0.0
                   ? row.pick_net_seconds / row.oracle_net_seconds - 1.0
                   : 0.0;
  row.pick_amortize_calls =
      decision.pick == 0
          ? 0.0
          : select::amortization_point(
                select::predicted_reorder_seconds(pick, row.rows, row.nnz),
                row.orderings.front().seconds, row.orderings[pick].seconds);
  select::record_decision(row.pick, row.oracle, row.regret,
                          row.pick_amortize_calls);
}

}  // namespace

void annotate_rows_with_selection(MatrixStudyRows& rows,
                                  const StudyOptions& options) {
  ORDO_SCOPE("study/auto_order");
  for (auto& [key, row] : rows) {
    const auto it_1d = rows.find({key.first, SpmvKernel::k1D});
    require(it_1d != rows.end(),
            "annotate_rows_with_selection: csr_1d row missing for machine " +
                key.first);
    annotate_row(row, it_1d->second, key.second.id(), options);
  }
}

void annotate_study_with_selection(StudyResults& results,
                                   const StudyOptions& options) {
  ORDO_SCOPE("study/auto_order_cached");
  for (auto& [key, rows] : results) {
    const auto it_1d = results.find({key.first, SpmvKernel::k1D});
    require(it_1d != results.end() && it_1d->second.size() == rows.size(),
            "annotate_study_with_selection: csr_1d table missing or "
            "mismatched for machine " +
                key.first);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      require(rows[i].name == it_1d->second[i].name,
              "annotate_study_with_selection: table row order mismatch");
      annotate_row(rows[i], it_1d->second[i], key.second.id(), options);
    }
  }
}

bool study_rows_have_selection(const StudyResults& results) {
  bool any = false;
  for (const auto& [key, rows] : results) {
    for (const MeasurementRow& row : rows) {
      if (!row.has_select) return false;
      any = true;
    }
  }
  return any;
}

std::vector<SelectionSummary> summarize_selection(const StudyResults& results,
                                                  const StudyOptions& options) {
  std::vector<SelectionSummary> summaries;
  summaries.reserve(results.size());
  for (const auto& [key, rows] : results) {
    SummaryAccumulator acc;
    acc.summary.machine = key.first;
    acc.summary.kernel_id = key.second.id();
    for (const MeasurementRow& row : rows) acc.add_row(row, options);
    summaries.push_back(acc.finish());
  }
  return summaries;
}

SelectionSummary total_selection_summary(const StudyResults& results,
                                         const StudyOptions& options) {
  SummaryAccumulator acc;
  // Moved temporaries, not assign(const char*): GCC 12 emits a -Wrestrict
  // false positive on the strlen-based assign path in this inlining context.
  acc.summary.machine = std::string("*");
  acc.summary.kernel_id = std::string("*");
  for (const auto& [key, rows] : results) {
    for (const MeasurementRow& row : rows) acc.add_row(row, options);
  }
  return acc.finish();
}

void write_feature_export(const std::string& path,
                          const StudyResults& results) {
  std::ofstream out(path);
  require(out.good(), "write_feature_export: cannot open " + path);
  // Features are kernel- and machine-independent apart from the thread
  // count, so one line per (matrix, distinct thread count) covers the whole
  // study. The csr_1d tables carry the 1D-imbalance feature column.
  std::set<std::pair<std::string, int>> seen;
  for (const auto& [key, rows] : results) {
    if (key.second != SpmvKernel::k1D) continue;
    for (const MeasurementRow& row : rows) {
      if (!seen.insert({row.name, row.threads}).second) continue;
      const features::SelectorFeatures f =
          row_features(row, row.orderings.front().imbalance);
      out << features::selector_features_json(row.name, row.threads, f)
          << '\n';
    }
  }
}

}  // namespace ordo
