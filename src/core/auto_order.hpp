// The --auto-order study mode: runs the learned selector (src/select/) over
// finished measurement rows and attaches pick / oracle / regret columns.
//
// The annotation is a pure function of data already in the rows — the
// Original ordering's feature columns feed the selector, the modeled
// per-ordering seconds plus the committed reorder-cost model decide the
// oracle — so the same code path annotates rows freshly computed by
// run_matrix_study (before they are journaled) and rows loaded from cache
// files that predate the mode. Cache files store 9 significant digits, so a
// re-annotation agrees with the fresh computation to that precision (same
// picks, same printed columns) and rewriting is a fixed point: annotating
// what a previous --auto-order run wrote reproduces the bytes exactly.
//
// Definitions (see DESIGN.md §12):
//   net_k    = seconds_k + predicted_reorder_seconds_k / spmv_budget
//   oracle   = argmin_k net_k          (ties break to the lower study index)
//   regret   = net_pick / net_oracle - 1   (>= 0 by construction)
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "select/select.hpp"

namespace ordo {

/// Annotates one matrix's rows (every machine × kernel) with the selector's
/// decision and records each decision in select:: stats. Requires the
/// studied csr_1d rows to be present (they carry the 1D-imbalance feature).
void annotate_rows_with_selection(MatrixStudyRows& rows,
                                  const StudyOptions& options);

/// Annotates a full study — the path taken when --auto-order loads a cached
/// sweep whose files predate the mode. Already-annotated rows are recomputed
/// to identical values.
void annotate_study_with_selection(StudyResults& results,
                                   const StudyOptions& options);

/// True when every row of the study carries selection columns.
bool study_rows_have_selection(const StudyResults& results);

/// Aggregate oracle-gap statistics for one (machine, kernel) table — or,
/// from total_selection_summary, for the whole study. All "net" figures are
/// geometric means over matrices of net per-call seconds (kernel time plus
/// the amortized reorder cost).
struct SelectionSummary {
  std::string machine;    ///< "*" in the all-tables total
  std::string kernel_id;  ///< "*" in the all-tables total
  std::int64_t rows = 0;
  std::int64_t oracle_hits = 0;
  double mean_regret = 0.0;
  double max_regret = 0.0;
  double geomean_pick_net = 0.0;
  double geomean_oracle_net = 0.0;
  /// Geomean net of always applying one fixed ordering, indexed like
  /// study_orderings(); entry 0 is "never reorder".
  std::array<double, select::kNumOrderings> geomean_fixed_net{};
  int best_fixed = 0;  ///< argmin over geomean_fixed_net
  std::array<std::int64_t, select::kNumOrderings> picks{};

  double hit_rate() const {
    return rows > 0 ? static_cast<double>(oracle_hits) /
                          static_cast<double>(rows)
                    : 0.0;
  }
  /// How far the selector lands from the per-matrix oracle, geomean terms.
  double oracle_gap() const {
    return geomean_oracle_net > 0.0
               ? geomean_pick_net / geomean_oracle_net - 1.0
               : 0.0;
  }
  /// Positive when the selector beats the best single fixed ordering.
  double win_over_best_fixed() const {
    return geomean_pick_net > 0.0
               ? geomean_fixed_net[static_cast<std::size_t>(best_fixed)] /
                         geomean_pick_net -
                     1.0
               : 0.0;
  }
};

/// One summary per (machine, kernel) table, in StudyResults order. Requires
/// annotated rows.
std::vector<SelectionSummary> summarize_selection(const StudyResults& results,
                                                  const StudyOptions& options);

/// The same aggregates over every row of every table.
SelectionSummary total_selection_summary(const StudyResults& results,
                                         const StudyOptions& options);

/// Writes the schema-versioned feature-vector export: one JSON line per
/// (matrix, distinct thread count), via features::selector_features_json.
/// This is the interchange format tools/ordo_train_selector.py documents —
/// the C++ feature schema made inspectable (run_study --export-features).
void write_feature_export(const std::string& path,
                          const StudyResults& results);

}  // namespace ordo
