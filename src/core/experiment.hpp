// The experiment pipeline of the study: apply the seven orderings to every
// corpus matrix and record simulated SpMV measurements for both kernels on
// all eight machines, in the same per-(machine, kernel) tabular layout as
// the paper's published artifact (one row per matrix; 5 matrix columns, the
// thread count, then 7 columns for each of the 7 orderings = 54 columns).
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "perfmodel/spmv_model.hpp"
#include "reorder/reordering.hpp"

namespace ordo {

/// The artifact's seven per-ordering columns, extended with the three
/// order-sensitive features of Section 3.2 (bandwidth, profile and the
/// off-diagonal nonzero count under a threads×threads blocking) that Fig. 5
/// correlates with SpMV runtime.
struct OrderingMeasurement {
  std::int64_t min_thread_nnz = 0;
  std::int64_t max_thread_nnz = 0;
  double mean_thread_nnz = 0.0;
  double imbalance = 1.0;
  double seconds = 0.0;
  double gflops_max = 0.0;
  double gflops_mean = 0.0;
  std::int64_t bandwidth = 0;
  std::int64_t profile = 0;
  std::int64_t off_diagonal_nnz = 0;

  // --- host-measured hardware-counter columns (StudyOptions::hw_counters) ---
  // The model columns above price the paper's eight machines; these record
  // what *this* host actually did while executing the kernel on the
  // reordered matrix (obs/hw/hw_counters.hpp). has_hw stays false when the
  // counter session is off or the perf backend is unavailable, so absent
  // counters are reported as absent rather than as zeros.
  bool has_hw = false;
  double hw_ipc = 0.0;            ///< instructions per cycle
  double hw_llc_miss_rate = 0.0;  ///< LLC misses / LLC references
  double hw_gbps = 0.0;           ///< estimated DRAM traffic / measured time
  double hw_seconds = 0.0;        ///< measured host wall time per SpMV rep
};

/// One matrix's measurements on one (machine, kernel) pair.
struct MeasurementRow {
  std::string group;
  std::string name;
  index_t rows = 0;
  index_t cols = 0;
  std::int64_t nnz = 0;
  int threads = 0;
  /// Indexed like study_orderings(): Original, RCM, AMD, ND, GP, HP, Gray.
  std::vector<OrderingMeasurement> orderings;

  // --- learned-selector columns (StudyOptions::auto_order) ---
  // Attached by src/core/auto_order.{hpp,cpp}: the selector's pick from the
  // Original-ordering features alone, the oracle ordering under the same
  // net-time objective, and the realized regret. Net times are per-call
  // seconds including the committed reorder-cost model amortized over the
  // run's SpMV budget. has_select stays false in default sweeps, so legacy
  // result files keep the artifact's exact column layout.
  bool has_select = false;
  int pick = 0;    ///< index into study_orderings()
  int oracle = 0;  ///< argmin over the realized net times
  double regret = 0.0;  ///< pick_net / oracle_net - 1; >= 0 by construction
  double pick_net_seconds = 0.0;
  double oracle_net_seconds = 0.0;
  /// SpMV calls until the pick's reorder cost is recovered vs Original;
  /// 0 when the pick is Original, select::kNeverAmortizes (-1) when the
  /// pick never beats Original per call.
  double pick_amortize_calls = 0.0;
};

/// SpMV speedups over the original ordering for the six reorderings of
/// Table 1 (order: RCM, AMD, ND, GP, HP, Gray), from gflops_max.
std::vector<double> reordering_speedups(const MeasurementRow& row);

struct StudyOptions {
  ModelOptions model;
  ReorderOptions reorder;  ///< gp_parts is overridden per machine core count
  /// Legacy progress flag: raises the obs logging sink to at least
  /// `progress` for the run (equivalent to ORDO_LOG=progress; see
  /// obs/log.hpp for the structured levels).
  bool verbose = false;

  // --- pipeline scheduling (see src/pipeline/study_pipeline.hpp) ---
  /// Worker threads for the per-matrix sweep. 1 = the sequential path
  /// (tasks run inline on the calling thread); 0 = hardware concurrency.
  /// Results are byte-identical for every value.
  int jobs = 1;
  /// Soft per-task deadline in seconds; 0 disables it. A task past its
  /// deadline is cancelled cooperatively (at the next ordering/bisection/
  /// separator-level boundary) and recorded as a timed-out failure.
  double task_timeout_seconds = 0.0;
  /// Directory for the checkpoint journal (one JSON line per completed
  /// matrix). Empty disables checkpointing. load_or_run_study points this
  /// at its cache dir so an interrupted sweep resumes where it stopped.
  std::string checkpoint_dir;
  /// When a checkpoint journal for the same corpus and options exists,
  /// replay it instead of recomputing those matrices.
  bool resume = true;

  // --- multi-process sharding (see src/pipeline/shard.hpp) ---
  /// Worker *processes* for the sweep (run_study --shards / ORDO_SHARDS).
  /// shards > 1 forks that many workers, each owning the corpus indices
  /// with index % shards == shard_index and journaling to its own
  /// study_journal.shard<k>.jsonl; the parent merges the shard journals in
  /// corpus order, so results are byte-identical to shards == 1 for any
  /// value — including a resume after a worker was killed mid-run.
  /// Requires a checkpoint_dir (the shard journals are the merge channel).
  int shards = 1;
  /// Internal: >= 0 marks this process as shard worker k of `shards`. The
  /// pipeline then runs only the worker's own slice and uses the
  /// shard-suffixed journal/failure files. Set by the shard orchestrator
  /// in the forked child, never by callers.
  int shard_index = -1;

  // --- kernel set (see src/engine/) ---
  /// Engine kernel ids swept in addition to the studied 1D/2D pair (the
  /// pair is always included; duplicates are ignored). Each id must name a
  /// registered kernel whose capabilities admit the study corpus — see
  /// study_kernels().
  std::vector<std::string> kernels;
  /// Permit kernels whose descriptor declares deterministic = false (the
  /// atomic-scatter transpose kernel) in checkpointed sweeps. Off by
  /// default: nondeterministic float summation breaks the journal's
  /// byte-identical resume guarantee, so the pipeline refuses such kernels
  /// unless this is set (--allow-nondeterministic in run_study).
  bool allow_nondeterministic = false;

  // --- hardware counters (see src/obs/hw/) ---
  /// Execute every (kernel, reordered matrix) pair on the host inside a
  /// hardware-counter scope and attach derived metrics (IPC, LLC miss rate,
  /// achieved GB/s) to the result rows. Requires the obs::hw session to be
  /// enabled (ORDO_HW=1 or --hw); degrades to has_hw=false rows when the
  /// perf backend is unavailable. The host columns are excluded from the
  /// checkpoint journal's byte-identical resume guarantee only in the sense
  /// that the journal fingerprint includes the hw configuration, so mixing
  /// hw and non-hw runs never replays stale rows.
  bool hw_counters = false;

  // --- learned ordering selector (see src/select/ and core/auto_order.hpp) ---
  /// Run the selector over every finished row and attach pick / oracle /
  /// regret columns (run_study --auto-order). Fully deterministic: the
  /// selector reads committed model tables and the reorder cost is a
  /// committed model, never a wall clock, so annotated results stay
  /// byte-identical across --jobs values and resume. The journal fingerprint
  /// includes this flag, the budget, and the model fingerprint.
  bool auto_order = false;
  /// N in "does the reordering pay off within N SpMV calls?" — the budget
  /// the one-off reorder cost is amortized over in every net-time column
  /// (run_study --spmv-budget). Must match select::SelectorOptions default.
  double spmv_budget = 10000.0;
};

/// The resolved kernel set of a sweep: the studied pair (always first, in
/// study order) followed by options.kernels, deduplicated. Throws
/// invalid_argument_error for unknown ids and for kernels whose
/// capabilities the corpus cannot satisfy (needs_symmetric — the corpus
/// stores matrices in full).
std::vector<SpmvKernel> study_kernels(const StudyOptions& options);

/// Results of the full sweep: rows[(machine name, kernel)] -> per-matrix rows.
using StudyResults =
    std::map<std::pair<std::string, SpmvKernel>, std::vector<MeasurementRow>>;

/// One matrix's rows for every (machine, kernel) pair — the unit of work the
/// pipeline scheduler executes. Exposed so the scheduler and the sequential
/// path share one implementation.
using MatrixStudyRows =
    std::map<std::pair<std::string, SpmvKernel>, MeasurementRow>;

/// Runs the complete study of a single matrix: the arch-independent
/// orderings once, the GP ordering once per distinct core count (the paper
/// matches GP's part count to the machine), order-sensitive features, and
/// the performance model for every (machine, kernel). Honours
/// options.reorder.cancel at every phase boundary (and, through it, inside
/// the ND/GP/HP recursions).
MatrixStudyRows run_matrix_study(const CorpusEntry& entry,
                                 const StudyOptions& options);

/// Runs the full study over the corpus on the pipeline scheduler
/// (options.jobs workers, per-task error isolation, optional soft deadlines
/// and checkpoint journal — see src/pipeline/). Failed matrices are logged,
/// counted in the `pipeline.tasks.failed` metric, and skipped; use
/// pipeline::run_study_pipeline directly for the structured failure rows.
/// Row order is the corpus order regardless of jobs.
StudyResults run_full_study(const std::vector<CorpusEntry>& corpus,
                            const StudyOptions& options);

/// Artifact-style result file name, e.g. "csr_1d_milan_b_128_threads_ss490.txt"
/// (the sanitized kernel id, so the studied pair keeps the artifact's exact
/// names and extra kernels get their own files, e.g. "merge_...").
std::string results_filename(const SpmvKernel& kernel, const Architecture& arch,
                             int corpus_count);

/// Writes rows in the artifact's whitespace-separated 54-column format.
void write_results_file(const std::string& path,
                        const std::vector<MeasurementRow>& rows);

/// Reads a results file written by write_results_file.
std::vector<MeasurementRow> read_results_file(const std::string& path);

/// Loads the study from cache files in `dir` when all 16 files exist;
/// otherwise generates the corpus, runs the study, and writes the cache.
/// This is what lets every figure/table bench share one sweep. The cache
/// key includes the corpus count, so changing ORDO_CORPUS_COUNT reruns.
StudyResults load_or_run_study(const std::string& dir,
                               const CorpusOptions& corpus_options,
                               const StudyOptions& options);

/// Default cache directory: $ORDO_RESULTS_DIR or "ordo_results".
std::string default_results_dir();

}  // namespace ordo
