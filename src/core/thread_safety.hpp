// Portable Clang thread-safety (capability) annotations.
//
// Under clang, `-Wthread-safety -Werror` turns the locking discipline the
// TSan suite checks dynamically into a compile-time contract: every member
// tagged ORDO_GUARDED_BY(mu) may only be touched while `mu` is held, and
// every function tagged ORDO_REQUIRES(mu) may only be called with `mu`
// held. Under gcc (and any other compiler) every macro expands to nothing,
// so the annotations are zero runtime and zero ABI cost.
//
// libstdc++'s std::mutex carries no capability attributes, so annotating
// members with GUARDED_BY(a_std_mutex) trips -Wthread-safety-attributes.
// The two thin wrappers below — ordo::Mutex and ordo::MutexLock — exist
// solely to carry the attributes; they add no state beyond the std types
// they wrap. Condition-variable waits go through MutexLock::native().
//
// Checked by tools/ordo_analyze.py (lock-order, guard-coverage, raw-mutex
// rules) and by the clang `analyze` CI job; see ARCHITECTURE.md.
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define ORDO_TS_ATTR(x) __attribute__((x))
#else
#define ORDO_TS_ATTR(x)  // no-op outside clang
#endif

#define ORDO_CAPABILITY(x) ORDO_TS_ATTR(capability(x))
#define ORDO_SCOPED_CAPABILITY ORDO_TS_ATTR(scoped_lockable)
#define ORDO_GUARDED_BY(x) ORDO_TS_ATTR(guarded_by(x))
#define ORDO_PT_GUARDED_BY(x) ORDO_TS_ATTR(pt_guarded_by(x))
#define ORDO_ACQUIRE(...) ORDO_TS_ATTR(acquire_capability(__VA_ARGS__))
#define ORDO_RELEASE(...) ORDO_TS_ATTR(release_capability(__VA_ARGS__))
#define ORDO_TRY_ACQUIRE(...) ORDO_TS_ATTR(try_acquire_capability(__VA_ARGS__))
#define ORDO_REQUIRES(...) ORDO_TS_ATTR(requires_capability(__VA_ARGS__))
#define ORDO_EXCLUDES(...) ORDO_TS_ATTR(locks_excluded(__VA_ARGS__))
#define ORDO_ASSERT_CAPABILITY(x) ORDO_TS_ATTR(assert_capability(x))
#define ORDO_RETURN_CAPABILITY(x) ORDO_TS_ATTR(lock_returned(x))
#define ORDO_NO_THREAD_SAFETY_ANALYSIS ORDO_TS_ATTR(no_thread_safety_analysis)

namespace ordo {

/// std::mutex with the Clang `capability` attribute attached so members can
/// be declared ORDO_GUARDED_BY(mutex_member). Same size, same semantics.
class ORDO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ORDO_ACQUIRE() { mu_.lock(); }
  void unlock() ORDO_RELEASE() { mu_.unlock(); }
  bool try_lock() ORDO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for interop that needs the raw type.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over ordo::Mutex (the annotated std::lock_guard /
/// std::unique_lock replacement). Holds a std::unique_lock internally so
/// std::condition_variable can wait on `native()` without giving up the
/// scoped-capability bookkeeping.
class ORDO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ORDO_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() ORDO_RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Manual re-acquire / release, for the rare unlock-work-relock dance
  /// (e.g. the heartbeat writer drops the lock around file I/O).
  void lock() ORDO_ACQUIRE() { lock_.lock(); }
  void unlock() ORDO_RELEASE() { lock_.unlock(); }

  /// The underlying unique_lock, for std::condition_variable::wait. The
  /// wait re-acquires before returning, so the capability state is
  /// unchanged across the call.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace ordo
