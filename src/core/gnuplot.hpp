// gnuplot output for the boxplot figures. The paper's artifact provides
// gnuplot scripts to regenerate Figs. 2-3 from the result files; this module
// writes the equivalent candlestick data (.dat) and driver script (.gp) so
// `gnuplot figN.gp` reproduces the figure from an ordo sweep.
#pragma once

#include <string>
#include <vector>

#include "core/stats.hpp"

namespace ordo {

/// One box per (machine, ordering) cell of a Fig. 2/3-style grid.
struct BoxplotCell {
  std::string machine;
  std::string ordering;
  BoxStats stats;
};

/// Writes `<basename>.dat` (whisker data: x label q1 min max q3 median) and
/// `<basename>.gp` (candlestick plot script) into `dir`.
void write_boxplot_gnuplot(const std::string& dir, const std::string& basename,
                           const std::string& title,
                           const std::vector<BoxplotCell>& cells);

}  // namespace ordo
