#include "core/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sparse/types.hpp"

namespace ordo {

double geometric_mean(const std::vector<double>& samples) {
  require(!samples.empty(), "geometric_mean: empty sample");
  double log_sum = 0.0;
  for (double s : samples) {
    require(s > 0.0, "geometric_mean: samples must be positive");
    log_sum += std::log(s);
  }
  return std::exp(log_sum / static_cast<double>(samples.size()));
}

namespace {

// Type-7 quantile (linear interpolation between order statistics).
double quantile_sorted(const std::vector<double>& sorted, double q) {
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

BoxStats box_stats(std::vector<double> samples) {
  require(!samples.empty(), "box_stats: empty sample");
  std::sort(samples.begin(), samples.end());
  BoxStats stats;
  stats.count = samples.size();
  stats.min = samples.front();
  stats.max = samples.back();
  stats.q1 = quantile_sorted(samples, 0.25);
  stats.median = quantile_sorted(samples, 0.5);
  stats.q3 = quantile_sorted(samples, 0.75);
  return stats;
}

std::vector<ProfileCurve> performance_profiles(
    const std::vector<std::string>& labels,
    const std::vector<std::vector<double>>& costs) {
  require(labels.size() == costs.size(),
          "performance_profiles: one label per method required");
  require(!costs.empty(), "performance_profiles: no methods");
  const std::size_t instances = costs.front().size();
  for (const auto& row : costs) {
    require(row.size() == instances,
            "performance_profiles: ragged cost table");
  }

  // Per-instance best cost over all methods.
  std::vector<double> best(instances,
                           std::numeric_limits<double>::infinity());
  for (const auto& row : costs) {
    for (std::size_t i = 0; i < instances; ++i) {
      if (std::isfinite(row[i])) best[i] = std::min(best[i], row[i]);
    }
  }

  std::vector<ProfileCurve> curves;
  curves.reserve(labels.size());
  for (std::size_t m = 0; m < labels.size(); ++m) {
    std::vector<double> ratios;
    ratios.reserve(instances);
    for (std::size_t i = 0; i < instances; ++i) {
      if (std::isfinite(costs[m][i]) && std::isfinite(best[i]) &&
          best[i] > 0.0) {
        ratios.push_back(costs[m][i] / best[i]);
      } else {
        ratios.push_back(std::numeric_limits<double>::infinity());
      }
    }
    std::sort(ratios.begin(), ratios.end());
    ProfileCurve curve;
    curve.label = labels[m];
    for (std::size_t i = 0; i < ratios.size(); ++i) {
      if (!std::isfinite(ratios[i])) break;
      curve.x.push_back(ratios[i]);
      curve.y.push_back(static_cast<double>(i + 1) /
                        static_cast<double>(instances));
    }
    curves.push_back(std::move(curve));
  }
  return curves;
}

double profile_value_at(const ProfileCurve& curve, double ratio) {
  // The profile is a right-continuous step function; find the last x <= ratio.
  double value = 0.0;
  for (std::size_t i = 0; i < curve.x.size(); ++i) {
    if (curve.x[i] <= ratio) {
      value = curve.y[i];
    } else {
      break;
    }
  }
  return value;
}

}  // namespace ordo
