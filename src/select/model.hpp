// The committed selector model: per-(kernel, ordering) linear weights over
// the schema-versioned feature vector (features/feature_vector.hpp)
// predicting log2 of the SpMV speedup a reordering buys, plus a log-log
// reorder-cost model predicting the one-off seconds each ordering costs on
// a matrix of a given size.
//
// Training/inference split: the coefficients live in model_coeffs.inc,
// generated offline by tools/ordo_train_selector.py from artifact-style
// study result files (and a reorder_times.txt written by the Table 5
// bench); inference here is a dot product — no ML framework, no files read
// at runtime, fully deterministic. The .inc records the feature-schema
// version it was trained against and model.cpp static_asserts it matches
// the compiled features, so a retrain can never silently disagree with the
// inference code.
#pragma once

#include <cstdint>
#include <string>

#include "features/feature_vector.hpp"

namespace ordo::select {

/// Orderings the model scores, in study_orderings() order:
/// Original, RCM, AMD, ND, GP, HP, Gray. selector.cpp asserts this agrees
/// with the reorder module.
inline constexpr std::size_t kNumOrderings = 7;

/// Version of the committed coefficient table (bumped by the trainer).
int model_version();

/// FNV-1a over the model version and every committed coefficient — part of
/// the pipeline journal fingerprint, so a retrained model never replays
/// decisions journaled under the old one.
std::uint64_t model_fingerprint();

/// Predicted log2(SpMV speedup over Original) of the ordering at
/// `ordering_index` (study order) for the given kernel id. Index 0
/// (Original) is 0 by definition. Kernels without a trained table (ids
/// beyond the studied csr_1d/csr_2d pair) fall back to the csr_1d table.
double predicted_log2_speedup(const std::string& kernel_id,
                              std::size_t ordering_index,
                              const features::SelectorFeatures& f);

/// Predicted one-off wall seconds to compute + apply the ordering at
/// `ordering_index` on a rows×rows matrix with nnz nonzeros
/// (exp2(c0 + c1*log2(1+nnz) + c2*log2(1+rows)); 0 for Original). The
/// coefficients are host-calibrated from the Table 5 bench — a committed
/// *model* of the cost, not a wall clock, so study rows stay byte-identical
/// across --jobs values and resume.
double predicted_reorder_seconds(std::size_t ordering_index, std::int64_t rows,
                                 std::int64_t nnz);

/// Relative margin a reordering's predicted net time must undercut the
/// Original's by before the selector switches away from Original (tuned by
/// the trainer; guards against overconfident picks near the break-even).
double decision_margin();

/// Inference with caller-provided weights (bias first, then the
/// kSelectorFeatureCount feature weights) — lets tests pin the dot-product
/// mechanics independently of the committed table.
double log2_speedup_with_weights(
    const double (&weights)[features::kSelectorFeatureCount + 1],
    const features::SelectorFeatures& f);

}  // namespace ordo::select
