// ordo::select — umbrella header.
//
// The learned ordering selector: the policy layer that answers, *before any
// reordering work has been spent*, "which of the seven orderings should this
// matrix get, if any, and does it pay off within N SpMV calls?". It is the
// decision problem two of the retrieved papers frame (selection of
// reordering algorithms; is reordering effective for SpMV?) and what turns
// the study harness into a policy engine a serving layer can use.
//
//   features::SelectorFeatures f = features::compute_selector_features(a, t);
//   select::Decision d = select::select_ordering(f, baseline_seconds,
//                                                kernel.id(), {});
//   // or go straight to an executable plan for the pick:
//   select::PreparedPick pp = select::prepare_pick(a, kernel, t, baseline);
//   engine::spmv(*pp.plan, pp.matrix, x, y);
//
// Inference is dependency-free C++ over coefficient tables committed in
// model_coeffs.inc and regenerated offline by tools/ordo_train_selector.py
// from study result files (model.hpp documents the versioning contract).
#pragma once

#include "select/amortize.hpp"  // IWYU pragma: export
#include "select/model.hpp"     // IWYU pragma: export
#include "select/selector.hpp"  // IWYU pragma: export
#include "select/stats.hpp"     // IWYU pragma: export
