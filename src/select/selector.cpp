#include "select/selector.hpp"

#include <cmath>

#include "obs/obs.hpp"
#include "select/amortize.hpp"

namespace ordo::select {

Decision select_ordering(const features::SelectorFeatures& f,
                         double baseline_seconds, std::int64_t rows,
                         std::int64_t nnz, const std::string& kernel_id,
                         const SelectorOptions& options) {
  require(baseline_seconds > 0.0,
          "select_ordering: baseline_seconds must be positive");
  require(study_orderings().size() == kNumOrderings,
          "select_ordering: ordering table out of sync with reorder module");
  ORDO_COUNTER_ADD("select.inferences", 1);

  Decision d;
  for (std::size_t k = 0; k < kNumOrderings; ++k) {
    d.predicted_speedup[k] =
        std::exp2(predicted_log2_speedup(kernel_id, k, f));
    d.predicted_reorder_seconds[k] = predicted_reorder_seconds(k, rows, nnz);
    d.predicted_net_seconds[k] =
        net_seconds_per_call(baseline_seconds / d.predicted_speedup[k],
                             d.predicted_reorder_seconds[k],
                             options.spmv_budget);
  }

  // Lowest predicted net per-call time wins; ties break toward the lower
  // study index (so Original wins exact ties — determinism and caution).
  int best = 0;
  for (std::size_t k = 1; k < kNumOrderings; ++k) {
    if (d.predicted_net_seconds[k] < d.predicted_net_seconds[best]) {
      best = static_cast<int>(k);
    }
  }
  // The margin guards the break-even region: switching away from Original
  // must be predicted to pay by more than noise.
  const double margin = options.margin >= 0.0 ? options.margin
                                              : decision_margin();
  if (best != 0 && d.predicted_net_seconds[best] >
                       d.predicted_net_seconds[0] * (1.0 - margin)) {
    best = 0;
  }
  d.pick = best;
  d.predicted_amortize_calls =
      best == 0 ? 0.0
                : amortization_point(
                      d.predicted_reorder_seconds[best], baseline_seconds,
                      baseline_seconds / d.predicted_speedup[best]);
  return d;
}

Decision select_ordering(const CsrMatrix& a, const SpmvKernel& kernel,
                         int threads, double baseline_seconds,
                         const SelectorOptions& options) {
  return select_ordering(features::compute_selector_features(a, threads),
                         baseline_seconds, a.num_rows(), a.num_nonzeros(),
                         kernel.id(), options);
}

PreparedPick prepare_pick(const CsrMatrix& a, const SpmvKernel& kernel,
                          int threads, double baseline_seconds,
                          const SelectorOptions& options,
                          const ReorderOptions& reorder) {
  PreparedPick pp;
  pp.decision = select_ordering(a, kernel, threads, baseline_seconds, options);
  pp.kind = study_orderings()[static_cast<std::size_t>(pp.decision.pick)];
  ReorderOptions opts = reorder;
  opts.gp_parts = threads;  // the study matches GP's parts to the cores
  pp.matrix = pp.kind == OrderingKind::kOriginal
                  ? a
                  : apply_ordering(a, compute_ordering(a, pp.kind, opts));
  pp.plan = engine::prepare_plan(pp.matrix, kernel, threads);
  return pp;
}

}  // namespace ordo::select
