// The selection policy: score all seven orderings from the feature vector
// alone (predicted speedup from the committed model, predicted one-off
// reorder cost amortized over the caller's SpMV budget) and pick the one
// with the lowest predicted net per-call time. prepare_pick() carries the
// decision through to an executable engine plan — the policy→execution
// handoff a serving layer needs.
#pragma once

#include <array>
#include <memory>
#include <string>

#include "engine/engine.hpp"
#include "features/feature_vector.hpp"
#include "reorder/reordering.hpp"
#include "select/model.hpp"

namespace ordo::select {

struct SelectorOptions {
  /// N in "does the reordering pay off within N SpMV calls?" — the budget
  /// its one-off cost is amortized over. The default matches the iteration
  /// counts iterative solvers actually run (and run_study --spmv-budget).
  double spmv_budget = 10000.0;
  /// Override of the trained decision margin; < 0 keeps the committed value.
  double margin = -1.0;
};

/// The selector's verdict for one (matrix features, kernel, budget) triple.
/// Arrays are indexed like study_orderings(): Original, RCM, AMD, ND, GP,
/// HP, Gray.
struct Decision {
  int pick = 0;  ///< index into study_orderings(); 0 = keep Original
  std::array<double, kNumOrderings> predicted_speedup{};
  std::array<double, kNumOrderings> predicted_reorder_seconds{};
  std::array<double, kNumOrderings> predicted_net_seconds{};
  /// Predicted calls until the pick's reorder cost is recovered vs staying
  /// with Original (0 when the pick is Original, kNeverAmortizes when the
  /// model expects no improvement).
  double predicted_amortize_calls = 0.0;
};

/// Scores every ordering and picks. `baseline_seconds` is the per-call SpMV
/// time under the Original ordering (modeled or measured — the model only
/// predicts *relative* speedups, so the caller supplies the scale);
/// `rows`/`nnz` size the reorder-cost prediction.
Decision select_ordering(const features::SelectorFeatures& f,
                         double baseline_seconds, std::int64_t rows,
                         std::int64_t nnz, const std::string& kernel_id,
                         const SelectorOptions& options = {});

/// Convenience overload: computes the feature vector from the matrix.
Decision select_ordering(const CsrMatrix& a, const SpmvKernel& kernel,
                         int threads, double baseline_seconds,
                         const SelectorOptions& options = {});

/// A decision carried through to execution: the picked ordering applied and
/// the engine plan prepared (through the shared plan cache).
struct PreparedPick {
  Decision decision;
  OrderingKind kind = OrderingKind::kOriginal;
  CsrMatrix matrix;  ///< the reordered matrix (a copy of `a` for Original)
  std::shared_ptr<const engine::Plan> plan;
};

/// select_ordering + compute/apply the picked ordering + prepare_plan.
/// GP's part count is matched to `threads`, as in the study.
PreparedPick prepare_pick(const CsrMatrix& a, const SpmvKernel& kernel,
                          int threads, double baseline_seconds,
                          const SelectorOptions& options = {},
                          const ReorderOptions& reorder = {});

}  // namespace ordo::select
