// Process-wide selector telemetry: every recorded decision (pick, oracle,
// regret, amortization point) lands in lock-free atomics here, and the first
// recording registers a "select" section with the live StatusBoard — so a
// running --auto-order sweep exposes its pick distribution, hit rate vs the
// oracle, and an amortization histogram on GET /stats, next to the engine's
// plan-cache section.
#pragma once

#include <array>
#include <cstdint>

#include "select/model.hpp"

namespace ordo::select {

/// Upper edges of the amortization histogram in SpMV calls; the two extra
/// buckets hold ">last edge" and "never amortizes".
inline constexpr std::array<double, 5> kAmortizeBucketEdges = {
    1.0, 1e2, 1e3, 1e4, 1e5};
inline constexpr std::size_t kAmortizeBuckets =
    kAmortizeBucketEdges.size() + 2;

struct StatsSnapshot {
  std::int64_t decisions = 0;
  std::int64_t oracle_hits = 0;
  std::array<std::int64_t, kNumOrderings> picks{};
  double regret_sum = 0.0;
  double regret_max = 0.0;
  /// Buckets: <=1, <=1e2, <=1e3, <=1e4, <=1e5 calls, then ">1e5" and
  /// "never amortizes" (kNeverAmortizes decisions).
  std::array<std::int64_t, kAmortizeBuckets> amortize_hist{};

  double hit_rate() const {
    return decisions > 0 ? static_cast<double>(oracle_hits) /
                               static_cast<double>(decisions)
                         : 0.0;
  }
  double mean_regret() const {
    return decisions > 0 ? regret_sum / static_cast<double>(decisions) : 0.0;
  }
};

/// Records one annotated row's decision. `amortize_calls` uses the study's
/// encoding: kNeverAmortizes (-1) for "never", 0 for "pick was Original".
/// Thread-safe; the study's task pool calls this concurrently.
void record_decision(int pick, int oracle, double regret,
                     double amortize_calls);

StatsSnapshot stats_snapshot();

/// Zeroes the counters (tests; a new run_study process starts clean anyway).
void reset_stats();

}  // namespace ordo::select
