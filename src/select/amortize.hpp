// Amortization-point arithmetic (the paper's Section 4.7 question, as a
// library): reordering costs `reorder_seconds` once and changes the per-call
// SpMV time from `seconds_before` to `seconds_after`; after how many calls
// has the one-off cost been recovered, and which strategy wins a budget of
// N calls? Pure double math, no dependencies — the selector, the study's
// regret columns, and the tests all share these definitions.
#pragma once

namespace ordo::select {

/// Sentinel returned by amortization_point when the reordering never pays
/// off (it made per-call time worse, or no better, while costing time).
/// Negative so it survives text/JSON round trips that reject inf.
inline constexpr double kNeverAmortizes = -1.0;

/// Number of SpMV calls after which the cumulative time with the reordering
/// undercuts the cumulative time without it:
///   reorder_seconds / (seconds_before - seconds_after).
/// Edge cases: a free reordering (cost <= 0) amortizes immediately (0) when
/// it does not slow the kernel down; any reordering that fails to improve
/// per-call time returns kNeverAmortizes.
inline double amortization_point(double reorder_seconds, double seconds_before,
                                 double seconds_after) {
  if (reorder_seconds <= 0.0) {
    return seconds_after <= seconds_before ? 0.0 : kNeverAmortizes;
  }
  if (seconds_after >= seconds_before) return kNeverAmortizes;
  return reorder_seconds / (seconds_before - seconds_after);
}

/// Effective per-call seconds of a strategy over a budget of n_calls:
/// the per-call kernel time plus the one-off cost spread over the budget.
/// n_calls is clamped to >= 1 (a budget of zero calls prices nothing).
inline double net_seconds_per_call(double seconds_per_call,
                                   double reorder_seconds, double n_calls) {
  const double n = n_calls < 1.0 ? 1.0 : n_calls;
  return seconds_per_call + reorder_seconds / n;
}

/// True when paying reorder_seconds up front beats staying with the original
/// ordering over a budget of n_calls SpMV calls.
inline bool pays_off_within(double reorder_seconds, double seconds_before,
                            double seconds_after, double n_calls) {
  return net_seconds_per_call(seconds_after, reorder_seconds, n_calls) <
         net_seconds_per_call(seconds_before, 0.0, n_calls);
}

}  // namespace ordo::select
