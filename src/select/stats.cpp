#include "select/stats.hpp"

#include <atomic>
#include <cmath>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/status/status.hpp"
#include "reorder/reordering.hpp"
#include "select/amortize.hpp"

namespace ordo::select {
namespace {

// Regret is accumulated in integer micro-units so the sum and max stay
// plain fetch-style atomics (no CAS loops, no atomic<double>).
constexpr double kMicro = 1e6;

struct Counters {
  std::atomic<std::int64_t> decisions{0};
  std::atomic<std::int64_t> oracle_hits{0};
  std::atomic<std::int64_t> picks[kNumOrderings]{};
  std::atomic<std::int64_t> regret_sum_micro{0};
  std::atomic<std::int64_t> regret_max_micro{0};
  std::atomic<std::int64_t> amortize_hist[kAmortizeBuckets]{};
};

Counters& counters() {
  static Counters c;
  return c;
}

std::size_t amortize_bucket(double calls) {
  if (calls < 0.0) return kAmortizeBuckets - 1;  // kNeverAmortizes
  for (std::size_t b = 0; b < kAmortizeBucketEdges.size(); ++b) {
    if (calls <= kAmortizeBucketEdges[b]) return b;
  }
  return kAmortizeBuckets - 2;  // > last edge, but finite
}

void append_section(std::string& out) {
  const StatsSnapshot s = stats_snapshot();
  out += "{\"model_version\":" + std::to_string(model_version());
  out += ",\"decisions\":" + std::to_string(s.decisions);
  out += ",\"oracle_hits\":" + std::to_string(s.oracle_hits);
  out += ",\"hit_rate\":";
  obs::append_json_double(out, s.hit_rate());
  out += ",\"mean_regret\":";
  obs::append_json_double(out, s.mean_regret());
  out += ",\"max_regret\":";
  obs::append_json_double(out, s.regret_max);
  out += ",\"picks\":{";
  const auto kinds = study_orderings();
  for (std::size_t k = 0; k < kNumOrderings; ++k) {
    if (k > 0) out += ',';
    obs::append_json_string(out, ordering_name(kinds[k]));
    out += ':';
    out += std::to_string(s.picks[k]);
  }
  out += "},\"amortize_hist\":{";
  for (std::size_t b = 0; b < kAmortizeBuckets; ++b) {
    if (b > 0) out += ',';
    std::string label;
    if (b < kAmortizeBucketEdges.size()) {
      label = "<=1e" + std::to_string(
                           static_cast<int>(std::log10(
                               kAmortizeBucketEdges[b]) + 0.5));
    } else if (b == kAmortizeBuckets - 2) {
      label = ">1e5";
    } else {
      label = "never";
    }
    obs::append_json_string(out, label);
    out += ':';
    out += std::to_string(s.amortize_hist[b]);
  }
  out += "}}";
}

void register_section_once() {
  static const bool registered = [] {
    obs::status::register_section("select", append_section);
    return true;
  }();
  (void)registered;
}

}  // namespace

void record_decision(int pick, int oracle, double regret,
                     double amortize_calls) {
  register_section_once();
  Counters& c = counters();
  // Relaxed throughout this file: the counters are independent tallies
  // aggregated for reporting. No reader infers cross-counter consistency,
  // and the max-tracking CAS loop below tolerates stale views by retrying.
  c.decisions.fetch_add(1, std::memory_order_relaxed);
  if (pick >= 0 && pick < static_cast<int>(kNumOrderings)) {
    c.picks[pick].fetch_add(1, std::memory_order_relaxed);
  }
  if (pick == oracle) c.oracle_hits.fetch_add(1, std::memory_order_relaxed);
  const auto micro = static_cast<std::int64_t>(regret * kMicro);
  c.regret_sum_micro.fetch_add(micro, std::memory_order_relaxed);
  std::int64_t seen = c.regret_max_micro.load(std::memory_order_relaxed);
  while (micro > seen && !c.regret_max_micro.compare_exchange_weak(
                             seen, micro, std::memory_order_relaxed)) {
  }
  c.amortize_hist[amortize_bucket(amortize_calls)].fetch_add(
      1, std::memory_order_relaxed);
  ORDO_COUNTER_ADD("select.decisions", 1);
}

StatsSnapshot stats_snapshot() {
  const Counters& c = counters();
  StatsSnapshot s;
  // Relaxed: a snapshot is a statistical read; slight skew between
  // counters sampled mid-update is acceptable.
  s.decisions = c.decisions.load(std::memory_order_relaxed);
  s.oracle_hits = c.oracle_hits.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < kNumOrderings; ++k) {
    s.picks[k] = c.picks[k].load(std::memory_order_relaxed);
  }
  s.regret_sum =
      static_cast<double>(c.regret_sum_micro.load(std::memory_order_relaxed)) /
      kMicro;
  s.regret_max =
      static_cast<double>(c.regret_max_micro.load(std::memory_order_relaxed)) /
      kMicro;
  for (std::size_t b = 0; b < kAmortizeBuckets; ++b) {
    s.amortize_hist[b] = c.amortize_hist[b].load(std::memory_order_relaxed);
  }
  return s;
}

void reset_stats() {
  Counters& c = counters();
  // Relaxed: reset runs between test cases when no recorder is active.
  c.decisions.store(0, std::memory_order_relaxed);
  c.oracle_hits.store(0, std::memory_order_relaxed);
  for (auto& p : c.picks) p.store(0, std::memory_order_relaxed);
  c.regret_sum_micro.store(0, std::memory_order_relaxed);
  c.regret_max_micro.store(0, std::memory_order_relaxed);
  for (auto& b : c.amortize_hist) b.store(0, std::memory_order_relaxed);
}

}  // namespace ordo::select
