#include "select/model.hpp"

#include <cmath>
#include <cstring>

namespace ordo::select {
namespace {

#include "select/model_coeffs.inc"

static_assert(kModelFeatureVersion == features::kSelectorFeatureVersion,
              "model_coeffs.inc was trained against a different feature "
              "schema — rerun tools/ordo_train_selector.py");
static_assert(kModelNumOrderings == static_cast<int>(kNumOrderings),
              "model_coeffs.inc ordering count mismatch");
static_assert(kModelNumWeights ==
                  static_cast<int>(features::kSelectorFeatureCount) + 1,
              "model_coeffs.inc weight count mismatch (bias + features)");

std::uint64_t fnv1a_double(std::uint64_t h, double value) {
  unsigned char bytes[sizeof(double)];
  std::memcpy(bytes, &value, sizeof(double));
  for (unsigned char byte : bytes) {
    h ^= byte;
    h *= 1099511628211ULL;
  }
  return h;
}

int kernel_table_index(const std::string& kernel_id) {
  for (int i = 0; i < kModelNumKernels; ++i) {
    if (kernel_id == kModelKernels[i]) return i;
  }
  // Extra engine kernels (merge, transpose, ...) have no trained table of
  // their own; the csr_1d table is the documented fallback.
  return 0;
}

}  // namespace

int model_version() { return kModelVersion; }

std::uint64_t model_fingerprint() {
  std::uint64_t h = 14695981039346656037ULL;
  h = fnv1a_double(h, static_cast<double>(kModelVersion));
  h = fnv1a_double(h, static_cast<double>(kModelFeatureVersion));
  h = fnv1a_double(h, kDecisionMargin);
  for (const auto& kernel : kSpeedupWeights) {
    for (const auto& ordering : kernel) {
      for (double w : ordering) h = fnv1a_double(h, w);
    }
  }
  for (const auto& ordering : kReorderCostCoeffs) {
    for (double c : ordering) h = fnv1a_double(h, c);
  }
  return h;
}

double log2_speedup_with_weights(
    const double (&weights)[features::kSelectorFeatureCount + 1],
    const features::SelectorFeatures& f) {
  double acc = weights[0];
  for (std::size_t i = 0; i < features::kSelectorFeatureCount; ++i) {
    acc += weights[i + 1] * f[i];
  }
  return acc;
}

double predicted_log2_speedup(const std::string& kernel_id,
                              std::size_t ordering_index,
                              const features::SelectorFeatures& f) {
  if (ordering_index == 0 || ordering_index >= kNumOrderings) return 0.0;
  const int kernel = kernel_table_index(kernel_id);
  return log2_speedup_with_weights(kSpeedupWeights[kernel][ordering_index], f);
}

double predicted_reorder_seconds(std::size_t ordering_index, std::int64_t rows,
                                 std::int64_t nnz) {
  if (ordering_index == 0 || ordering_index >= kNumOrderings) return 0.0;
  const double* c = kReorderCostCoeffs[ordering_index];
  const double log2_nnz = std::log2(1.0 + static_cast<double>(nnz));
  const double log2_rows = std::log2(1.0 + static_cast<double>(rows));
  return std::exp2(c[0] + c[1] * log2_nnz + c[2] * log2_rows);
}

double decision_margin() { return kDecisionMargin; }

}  // namespace ordo::select
