// Undirected adjacency graph of a (structurally symmetric) sparse matrix.
//
// Vertices correspond to rows/columns; an edge {u, v} exists when A(u, v) or
// A(v, u) is structurally nonzero and u != v. The graph is stored in CSR
// adjacency form and optionally carries vertex and edge weights, which the
// multilevel partitioner uses during coarsening.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace ordo {

class Graph {
 public:
  Graph() = default;

  /// Builds an unweighted graph from adjacency arrays. Self-loops must have
  /// been removed and each edge must appear in both endpoint lists.
  Graph(index_t num_vertices, std::vector<offset_t> adj_ptr,
        std::vector<index_t> adj);

  /// Weighted constructor used by the coarsening phase of the partitioner.
  Graph(index_t num_vertices, std::vector<offset_t> adj_ptr,
        std::vector<index_t> adj, std::vector<index_t> vertex_weights,
        std::vector<index_t> edge_weights);

  /// Builds the undirected graph of a square matrix. If the pattern is not
  /// symmetric it is symmetrized first; self-loops (diagonal entries) are
  /// dropped.
  static Graph from_matrix(const CsrMatrix& a);

  index_t num_vertices() const { return num_vertices_; }
  offset_t num_adjacency_entries() const {
    return adj_ptr_.empty() ? 0 : adj_ptr_.back();
  }
  /// Number of undirected edges (each stored twice in the adjacency arrays).
  offset_t num_edges() const { return num_adjacency_entries() / 2; }

  std::span<const offset_t> adj_ptr() const { return adj_ptr_; }
  std::span<const index_t> adj() const { return adj_; }

  /// Neighbours of vertex v.
  std::span<const index_t> neighbors(index_t v) const {
    return std::span<const index_t>(adj_).subspan(
        static_cast<std::size_t>(adj_ptr_[v]),
        static_cast<std::size_t>(adj_ptr_[v + 1] - adj_ptr_[v]));
  }

  index_t degree(index_t v) const {
    return static_cast<index_t>(adj_ptr_[v + 1] - adj_ptr_[v]);
  }

  bool has_weights() const { return !vertex_weights_.empty(); }

  index_t vertex_weight(index_t v) const {
    return vertex_weights_.empty() ? 1 : vertex_weights_[v];
  }
  index_t edge_weight(offset_t e) const {
    return edge_weights_.empty() ? 1 : edge_weights_[static_cast<std::size_t>(e)];
  }

  /// Total vertex weight of the graph.
  std::int64_t total_vertex_weight() const;

 private:
  void validate() const;

  index_t num_vertices_ = 0;
  std::vector<offset_t> adj_ptr_{0};
  std::vector<index_t> adj_;
  std::vector<index_t> vertex_weights_;  // empty => all ones
  std::vector<index_t> edge_weights_;    // empty => all ones
};

/// Breadth-first search from `start`. Returns the level (distance) of every
/// vertex reachable from `start`; unreachable vertices get level -1.
std::vector<index_t> bfs_levels(const Graph& g, index_t start);

/// Result of a BFS that also records the visit order.
struct BfsResult {
  std::vector<index_t> order;   // visited vertices, in visit order
  std::vector<index_t> levels;  // level per vertex, -1 when unreachable
  index_t eccentricity = 0;     // index of the last (deepest) level
};

/// BFS that visits each level's vertices in ascending-degree order, as the
/// Cuthill–McKee algorithm requires.
BfsResult bfs_degree_ordered(const Graph& g, index_t start);

/// Connected components: returns a component id per vertex and the number of
/// components.
struct Components {
  std::vector<index_t> component;
  index_t count = 0;
};
Components connected_components(const Graph& g);

/// George–Liu pseudo-peripheral vertex heuristic: starting from `seed`,
/// repeatedly moves to a minimum-degree vertex of the deepest BFS level until
/// the eccentricity stops growing. Used to pick RCM starting vertices.
index_t pseudo_peripheral_vertex(const Graph& g, index_t seed);

}  // namespace ordo
