#include "graph/graph.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

#include "check/invariants.hpp"
#include "sparse/csr_ops.hpp"

namespace ordo {

Graph::Graph(index_t num_vertices, std::vector<offset_t> adj_ptr,
             std::vector<index_t> adj)
    : num_vertices_(num_vertices),
      adj_ptr_(std::move(adj_ptr)),
      adj_(std::move(adj)) {
  validate();
}

Graph::Graph(index_t num_vertices, std::vector<offset_t> adj_ptr,
             std::vector<index_t> adj, std::vector<index_t> vertex_weights,
             std::vector<index_t> edge_weights)
    : num_vertices_(num_vertices),
      adj_ptr_(std::move(adj_ptr)),
      adj_(std::move(adj)),
      vertex_weights_(std::move(vertex_weights)),
      edge_weights_(std::move(edge_weights)) {
  validate();
  require(vertex_weights_.empty() ||
              vertex_weights_.size() == static_cast<std::size_t>(num_vertices_),
          "Graph: vertex weight count mismatch");
  require(edge_weights_.empty() || edge_weights_.size() == adj_.size(),
          "Graph: edge weight count mismatch");
}

void Graph::validate() const {
  // Structural contract only; the O(m log m) mirror-symmetry check runs at
  // the Graph::from_matrix seam under ORDO_CHECK (construction happens per
  // coarsening level, where re-checking symmetry every time would dominate).
  check::validate_adjacency_raw(num_vertices_, adj_ptr_, adj_,
                                /*check_symmetry=*/false, "Graph");
}

Graph Graph::from_matrix(const CsrMatrix& a) {
  require(a.is_square(), "Graph::from_matrix: matrix must be square");
  const CsrMatrix s = is_pattern_symmetric(a) ? a : symmetrize(a);
  const index_t n = s.num_rows();
  std::vector<offset_t> adj_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> adj;
  adj.reserve(static_cast<std::size_t>(s.num_nonzeros()));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j : s.row_cols(i)) {
      if (j != i) adj.push_back(j);
    }
    adj_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<offset_t>(adj.size());
  }
  Graph g(n, std::move(adj_ptr), std::move(adj));
  // Every symmetric ordering assumes a mirror-complete adjacency; check it
  // once where the graph enters the system.
  ORDO_CHECK(validate_adjacency_raw(g.num_vertices(), g.adj_ptr(), g.adj(),
                                    /*check_symmetry=*/true,
                                    "Graph::from_matrix"));
  return g;
}

std::int64_t Graph::total_vertex_weight() const {
  if (vertex_weights_.empty()) return num_vertices_;
  return std::accumulate(vertex_weights_.begin(), vertex_weights_.end(),
                         std::int64_t{0});
}

std::vector<index_t> bfs_levels(const Graph& g, index_t start) {
  std::vector<index_t> levels(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<index_t> queue;
  levels[static_cast<std::size_t>(start)] = 0;
  queue.push(start);
  while (!queue.empty()) {
    const index_t v = queue.front();
    queue.pop();
    for (index_t u : g.neighbors(v)) {
      if (levels[static_cast<std::size_t>(u)] < 0) {
        levels[static_cast<std::size_t>(u)] =
            levels[static_cast<std::size_t>(v)] + 1;
        queue.push(u);
      }
    }
  }
  return levels;
}

BfsResult bfs_degree_ordered(const Graph& g, index_t start) {
  BfsResult result;
  result.levels.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  result.order.reserve(static_cast<std::size_t>(g.num_vertices()));

  std::vector<index_t> frontier{start};
  result.levels[static_cast<std::size_t>(start)] = 0;
  index_t level = 0;
  std::vector<index_t> next;
  while (!frontier.empty()) {
    // Cuthill–McKee: within a level, visit vertices in ascending degree
    // order (ties broken by vertex id for determinism).
    std::sort(frontier.begin(), frontier.end(), [&](index_t a, index_t b) {
      const index_t da = g.degree(a), db = g.degree(b);
      return da != db ? da < db : a < b;
    });
    next.clear();
    for (index_t v : frontier) {
      result.order.push_back(v);
      for (index_t u : g.neighbors(v)) {
        if (result.levels[static_cast<std::size_t>(u)] < 0) {
          result.levels[static_cast<std::size_t>(u)] = level + 1;
          next.push_back(u);
        }
      }
    }
    result.eccentricity = level;
    frontier.swap(next);
    ++level;
  }
  return result;
}

Components connected_components(const Graph& g) {
  Components result;
  result.component.assign(static_cast<std::size_t>(g.num_vertices()), -1);
  std::vector<index_t> stack;
  for (index_t s = 0; s < g.num_vertices(); ++s) {
    if (result.component[static_cast<std::size_t>(s)] >= 0) continue;
    stack.push_back(s);
    result.component[static_cast<std::size_t>(s)] = result.count;
    while (!stack.empty()) {
      const index_t v = stack.back();
      stack.pop_back();
      for (index_t u : g.neighbors(v)) {
        if (result.component[static_cast<std::size_t>(u)] < 0) {
          result.component[static_cast<std::size_t>(u)] = result.count;
          stack.push_back(u);
        }
      }
    }
    result.count++;
  }
  return result;
}

index_t pseudo_peripheral_vertex(const Graph& g, index_t seed) {
  require(seed >= 0 && seed < g.num_vertices(),
          "pseudo_peripheral_vertex: seed out of range");
  index_t current = seed;
  BfsResult bfs = bfs_degree_ordered(g, current);
  index_t eccentricity = bfs.eccentricity;
  // Iterate: pick a minimum-degree vertex from the deepest level; stop once
  // the eccentricity no longer increases (George & Liu 1979).
  for (int iteration = 0; iteration < 16; ++iteration) {
    index_t best = -1;
    for (index_t v : bfs.order) {
      if (bfs.levels[static_cast<std::size_t>(v)] == eccentricity &&
          (best < 0 || g.degree(v) < g.degree(best))) {
        best = v;
      }
    }
    if (best < 0) break;
    BfsResult trial = bfs_degree_ordered(g, best);
    if (trial.eccentricity <= eccentricity) break;
    current = best;
    eccentricity = trial.eccentricity;
    bfs = std::move(trial);
  }
  return current;
}

}  // namespace ordo
