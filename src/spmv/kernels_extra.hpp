// Additional SpMV kernels beyond the study's 1D/2D pair.
//
//  * merge-path SpMV (Merrill & Garland, PPoPP 2016): the full version of
//    the kernel the paper's 2D algorithm simplifies. The merge path splits
//    *rows + nonzeros* evenly, so matrices with many empty or tiny rows
//    (where the pure nonzero split still leaves per-row overhead imbalanced)
//    stay balanced too.
//  * symmetric SpMV: processes a symmetric matrix from its lower triangle,
//    halving the matrix traffic (the optimisation studied by Gkountouvas et
//    al., cited in Section 5); serial reference implementation.
//  * transpose products y = Aᵀx, serial and OpenMP row-parallel with atomic
//    scatter.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace ordo {

/// A merge-path work assignment: thread t consumes merge coordinates
/// [path[t], path[t+1]) where a coordinate advances either one row (y write)
/// or one nonzero (FMA).
struct MergePathPartition {
  /// num_threads+1 entries: (row, nnz) coordinate pairs along the diagonal.
  std::vector<index_t> row_begin;
  std::vector<offset_t> nnz_begin;
};

/// Splits the (rows + nnz) merge path of `a` evenly across threads.
MergePathPartition partition_merge_path(const CsrMatrix& a, int num_threads);

/// Merge-path SpMV: y = A·x using the given partition.
void spmv_merge(const CsrMatrix& a, std::span<const value_t> x,
                std::span<value_t> y, const MergePathPartition& partition);

/// Convenience overload building the partition internally.
void spmv_merge(const CsrMatrix& a, std::span<const value_t> x,
                std::span<value_t> y, int num_threads);

/// y = A·x where only the lower triangle (incl. diagonal) of the symmetric A
/// is stored: each stored off-diagonal entry contributes to two outputs.
void spmv_symmetric_lower_serial(const CsrMatrix& lower,
                                 std::span<const value_t> x,
                                 std::span<value_t> y);

/// y = Aᵀ·x, serial.
void spmv_transpose_serial(const CsrMatrix& a, std::span<const value_t> x,
                           std::span<value_t> y);

/// y = Aᵀ·x, OpenMP-parallel over rows with atomic scatter into y.
void spmv_transpose_parallel(const CsrMatrix& a, std::span<const value_t> x,
                             std::span<value_t> y, int num_threads);

}  // namespace ordo
