// Registers the built-in SpMV kernels with ordo::engine.
//
// Each descriptor adapts one raw kernel from spmv.hpp / kernels_extra.hpp
// to the uniform prepare/execute interface: prepare() builds the kernel's
// reusable partition (the inspector phase the plan cache amortises) and
// publishes it through the uniform ThreadPartition view the performance
// model and the experiment layer consume; execute() runs one product
// against it.
//
// This is an explicit registration hook rather than static-initializer
// self-registration because ordo is a static library: the linker may drop a
// translation unit nothing references, and a registry that silently lost
// its kernels would be worse than one wired by hand. The engine calls
// register_builtin_kernels() lazily, exactly once, from its accessors.

#include <algorithm>
#include <memory>

#include "engine/plan.hpp"
#include "engine/registry.hpp"
#include "spmv/kernels_extra.hpp"
#include "spmv/spmv.hpp"

namespace ordo::engine {
namespace {

// --- csr_1d: even row blocks (the study's 1D algorithm) --------------------

engine::ThreadPartition row_block_partition(const CsrMatrix& a, int threads) {
  engine::ThreadPartition partition;
  partition.assignment = engine::RowAssignment::kRowBlocks;
  partition.row_begin = partition_rows_even(a.num_rows(), threads);
  partition.nnz_begin.resize(static_cast<std::size_t>(threads) + 1);
  const auto row_ptr = a.row_ptr();
  for (int t = 0; t <= threads; ++t) {
    partition.nnz_begin[static_cast<std::size_t>(t)] = row_ptr[
        static_cast<std::size_t>(partition.row_begin[static_cast<std::size_t>(t)])];
  }
  return partition;
}

Plan prepare_csr_1d(const CsrMatrix& a, int threads) {
  Plan plan;
  plan.threads = threads;
  plan.partition = row_block_partition(a, threads);
  return plan;
}

void execute_csr_1d(const Plan& plan, const CsrMatrix& a,
                    std::span<const value_t> x, std::span<value_t> y) {
  spmv_1d(a, x, y, plan.threads);
}

// --- csr_2d: even nonzero split (the study's 2D algorithm) -----------------

struct NnzPartitionState final : PlanState {
  NnzPartition partition;
};

Plan prepare_csr_2d(const CsrMatrix& a, int threads) {
  auto state = std::make_shared<NnzPartitionState>();
  state->partition = partition_nonzeros_even(a, threads);

  Plan plan;
  plan.threads = threads;
  plan.partition.assignment = RowAssignment::kNnzSplit;
  plan.partition.nnz_begin = state->partition.nnz_begin;
  plan.partition.row_begin = state->partition.row_of;
  plan.state = std::move(state);
  return plan;
}

void execute_csr_2d(const Plan& plan, const CsrMatrix& a,
                    std::span<const value_t> x, std::span<value_t> y) {
  require(plan.state != nullptr, "csr_2d: plan has no partition state");
  const auto& state = static_cast<const NnzPartitionState&>(*plan.state);
  spmv_2d(a, x, y, state.partition);
}

// --- merge: merge-path split over rows + nonzeros --------------------------

struct MergePathState final : PlanState {
  MergePathPartition partition;
};

Plan prepare_merge(const CsrMatrix& a, int threads) {
  auto state = std::make_shared<MergePathState>();
  state->partition = partition_merge_path(a, threads);

  Plan plan;
  plan.threads = threads;
  plan.partition.assignment = RowAssignment::kMergePath;
  plan.partition.nnz_begin = state->partition.nnz_begin;
  plan.partition.row_begin = state->partition.row_begin;
  plan.state = std::move(state);
  return plan;
}

void execute_merge(const Plan& plan, const CsrMatrix& a,
                   std::span<const value_t> x, std::span<value_t> y) {
  require(plan.state != nullptr, "merge: plan has no partition state");
  const auto& state = static_cast<const MergePathState&>(*plan.state);
  spmv_merge(a, x, y, state.partition);
}

// --- transpose: y = Aᵀ·x, row-parallel with atomic scatter -----------------

Plan prepare_transpose(const CsrMatrix& a, int threads) {
  // Threads sweep even row blocks of A, so the partition (and the modelled
  // per-thread work) is the 1D kernel's; the scatter targets are columns.
  Plan plan;
  plan.threads = threads;
  plan.partition = row_block_partition(a, threads);
  return plan;
}

void execute_transpose(const Plan& plan, const CsrMatrix& a,
                       std::span<const value_t> x, std::span<value_t> y) {
  spmv_transpose_parallel(a, x, y, plan.threads);
}

// --- symmetric_lower: y = A·x from the stored lower triangle ---------------

Plan prepare_symmetric_lower(const CsrMatrix& a, int threads) {
  (void)threads;  // serial reference kernel: one block owns everything
  Plan plan;
  plan.threads = 1;
  plan.partition.assignment = RowAssignment::kRowBlocks;
  plan.partition.row_begin = {0, a.num_rows()};
  plan.partition.nnz_begin = {0, a.num_nonzeros()};
  return plan;
}

void execute_symmetric_lower(const Plan& plan, const CsrMatrix& a,
                             std::span<const value_t> x,
                             std::span<value_t> y) {
  (void)plan;
  spmv_symmetric_lower_serial(a, x, y);
}

}  // namespace

void register_builtin_kernels() {
  register_kernel({
      .id = "csr_1d",
      .display_name = "1D",
      .summary = "even row blocks, one per thread (omp schedule(static))",
      .caps = {},
      .prepare = prepare_csr_1d,
      .execute = execute_csr_1d,
  });
  register_kernel({
      .id = "csr_2d",
      .display_name = "2D",
      .summary = "even nonzero split with shared-row fix-up "
                 "(simplified merge-based kernel)",
      .caps = {},
      .prepare = prepare_csr_2d,
      .execute = execute_csr_2d,
  });
  register_kernel({
      .id = "merge",
      .display_name = "merge-path",
      .summary = "even rows+nonzeros merge-path split "
                 "(Merrill & Garland 2016)",
      .caps = {},
      .prepare = prepare_merge,
      .execute = execute_merge,
  });
  register_kernel({
      .id = "transpose",
      .display_name = "transpose",
      .summary = "y = A^T x, row-parallel atomic scatter "
                 "(float summation order varies run to run)",
      .caps = {.deterministic = false, .transposed_output = true},
      .prepare = prepare_transpose,
      .execute = execute_transpose,
  });
  register_kernel({
      .id = "symmetric_lower",
      .display_name = "symmetric-lower",
      .summary = "serial y = A x from the stored lower triangle of a "
                 "symmetric matrix",
      .caps = {.parallel = false, .needs_symmetric = true},
      .prepare = prepare_symmetric_lower,
      .execute = execute_symmetric_lower,
  });
}

}  // namespace ordo::engine
