// Shared-memory parallel SpMV kernels on the CSR format (Section 3.1).
//
// Two kernels are studied:
//  * the **1D algorithm**: rows are split into equal-sized contiguous blocks,
//    one per thread (what `#pragma omp for schedule(static)` produces) — it
//    is simple but load-imbalanced when nonzeros are unevenly distributed;
//  * the **2D algorithm**: the *nonzeros* are split evenly; each thread
//    processes a contiguous nonzero range, handling its first and last
//    (possibly shared) rows with a separate fix-up pass so no two threads
//    race on an output element. This is a simplified merge-based kernel
//    (Merrill & Garland 2016).
//
// Both kernels compute y = A·x.
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace ordo {

/// Sequential reference kernel.
void spmv_serial(const CsrMatrix& a, std::span<const value_t> x,
                 std::span<value_t> y);

/// Even row split: returns num_threads+1 row boundaries; thread t owns rows
/// [boundaries[t], boundaries[t+1]).
std::vector<index_t> partition_rows_even(index_t num_rows, int num_threads);

/// Nonzero counts per thread under the even row split — the quantity the
/// 1D load-imbalance factor is computed from.
std::vector<offset_t> nnz_per_thread_1d(const CsrMatrix& a, int num_threads);

/// Nonzero-balanced partition for the 2D kernel.
struct NnzPartition {
  /// num_threads+1 nonzero boundaries; thread t owns [nnz_begin[t],
  /// nnz_begin[t+1]).
  std::vector<offset_t> nnz_begin;
  /// num_threads+1 entries: row containing each boundary nonzero (row index
  /// r such that row_ptr[r] <= nnz_begin[t] < row_ptr[r+1]).
  std::vector<index_t> row_of;
};

/// Splits the nonzeros of `a` as evenly as possible across threads.
NnzPartition partition_nonzeros_even(const CsrMatrix& a, int num_threads);

/// Nonzero counts per thread under the even nonzero split (differ by at most
/// one; the 2D imbalance factor is 1 by construction).
std::vector<offset_t> nnz_per_thread_2d(const CsrMatrix& a, int num_threads);

/// 1D kernel: OpenMP-parallel over even row blocks.
void spmv_1d(const CsrMatrix& a, std::span<const value_t> x,
             std::span<value_t> y, int num_threads);

/// 2D kernel: OpenMP-parallel over the given nonzero partition. The
/// partition is a reusable preprocessing product, amortised over iterations
/// exactly as in the paper.
void spmv_2d(const CsrMatrix& a, std::span<const value_t> x,
             std::span<value_t> y, const NnzPartition& partition);

/// Convenience overload that builds the partition internally.
void spmv_2d(const CsrMatrix& a, std::span<const value_t> x,
             std::span<value_t> y, int num_threads);

}  // namespace ordo
