#include "spmv/kernels_extra.hpp"

#include <algorithm>

#include <omp.h>

#include "spmv/spmv.hpp"

namespace ordo {

MergePathPartition partition_merge_path(const CsrMatrix& a, int num_threads) {
  require(num_threads >= 1, "partition_merge_path: need at least one thread");
  const index_t m = a.num_rows();
  const offset_t nnz = a.num_nonzeros();
  const auto row_ptr = a.row_ptr();
  const std::int64_t total_work = static_cast<std::int64_t>(m) + nnz;

  MergePathPartition partition;
  partition.row_begin.resize(static_cast<std::size_t>(num_threads) + 1);
  partition.nnz_begin.resize(static_cast<std::size_t>(num_threads) + 1);
  for (int t = 0; t <= num_threads; ++t) {
    const std::int64_t diagonal = total_work * t / num_threads;
    // Binary search along the merge of the row-end list (row_ptr[i+1]) and
    // the nonzero indices: find the first row i on diagonal `diagonal` whose
    // end has NOT been consumed yet.
    std::int64_t lo = std::max<std::int64_t>(0, diagonal - nnz);
    std::int64_t hi = std::min<std::int64_t>(diagonal, m);
    while (lo < hi) {
      const std::int64_t mid = (lo + hi) / 2;
      // Row mid's end is consumed before the diagonal iff
      // row_ptr[mid+1] <= diagonal - mid - 1.
      if (row_ptr[static_cast<std::size_t>(mid) + 1] <= diagonal - mid - 1) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    partition.row_begin[static_cast<std::size_t>(t)] =
        static_cast<index_t>(lo);
    partition.nnz_begin[static_cast<std::size_t>(t)] =
        static_cast<offset_t>(diagonal - lo);
  }
  return partition;
}

void spmv_merge(const CsrMatrix& a, std::span<const value_t> x,
                std::span<value_t> y, const MergePathPartition& partition) {
  // The merge boundaries satisfy the same invariant the 2D kernel needs
  // (row_begin[t] is the row containing nonzero nnz_begin[t], up to the
  // row-end edge cases the kernel's carry logic already covers), so the
  // nonzero-split kernel executes the merge-path assignment directly.
  NnzPartition as_nnz;
  as_nnz.nnz_begin = partition.nnz_begin;
  as_nnz.row_of = partition.row_begin;
  spmv_2d(a, x, y, as_nnz);
}

void spmv_merge(const CsrMatrix& a, std::span<const value_t> x,
                std::span<value_t> y, int num_threads) {
  spmv_merge(a, x, y, partition_merge_path(a, num_threads));
}

void spmv_symmetric_lower_serial(const CsrMatrix& lower,
                                 std::span<const value_t> x,
                                 std::span<value_t> y) {
  require(lower.is_square(), "spmv_symmetric_lower: matrix must be square");
  require(x.size() == static_cast<std::size_t>(lower.num_cols()) &&
              y.size() == static_cast<std::size_t>(lower.num_rows()),
          "spmv_symmetric_lower: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t i = 0; i < lower.num_rows(); ++i) {
    const auto cols = lower.row_cols(i);
    const auto vals = lower.row_values(i);
    value_t sum = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const index_t j = cols[k];
      require(j <= i, "spmv_symmetric_lower: entry above the diagonal");
      sum += vals[k] * x[static_cast<std::size_t>(j)];
      if (j != i) {
        // Mirrored upper-triangle contribution.
        y[static_cast<std::size_t>(j)] +=
            vals[k] * x[static_cast<std::size_t>(i)];
      }
    }
    y[static_cast<std::size_t>(i)] += sum;
  }
}

void spmv_transpose_serial(const CsrMatrix& a, std::span<const value_t> x,
                           std::span<value_t> y) {
  require(x.size() == static_cast<std::size_t>(a.num_rows()) &&
              y.size() == static_cast<std::size_t>(a.num_cols()),
          "spmv_transpose: size mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    const value_t xi = x[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < cols.size(); ++k) {
      y[static_cast<std::size_t>(cols[k])] += vals[k] * xi;
    }
  }
}

void spmv_transpose_parallel(const CsrMatrix& a, std::span<const value_t> x,
                             std::span<value_t> y, int num_threads) {
  require(x.size() == static_cast<std::size_t>(a.num_rows()) &&
              y.size() == static_cast<std::size_t>(a.num_cols()),
          "spmv_transpose: size mismatch");
  const index_t m = a.num_rows();
  const index_t n = a.num_cols();
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
#pragma omp parallel num_threads(num_threads)
  {
#pragma omp for schedule(static)
    for (index_t j = 0; j < n; ++j) {
      y[static_cast<std::size_t>(j)] = 0.0;
    }
#pragma omp for schedule(static)
    for (index_t i = 0; i < m; ++i) {
      const value_t xi = x[static_cast<std::size_t>(i)];
      for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
           k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
        const std::size_t j =
            static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)]);
#pragma omp atomic
        y[j] += values[static_cast<std::size_t>(k)] * xi;
      }
    }
  }
}

}  // namespace ordo
