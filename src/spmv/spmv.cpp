#include "spmv/spmv.hpp"

#include <algorithm>

#include <omp.h>

#include "obs/obs.hpp"

namespace ordo {
namespace {

// Observed per-thread profile of one kernel launch, recorded only when
// obs::profiling_enabled() (ORDO_PROFILE=1). The gate is one branch per
// *launch*; the kernels' inner loops carry no instrumentation either way.
void record_thread_profile(const char* kernel,
                           const std::vector<double>& thread_seconds,
                           const std::vector<offset_t>& thread_nnz) {
#if defined(ORDO_OBS_ENABLED)
  const std::string prefix = std::string("spmv.") + kernel;
  obs::counter(prefix + ".profiled_launches").increment();
  obs::Histogram& seconds = obs::histogram(prefix + ".thread_seconds");
  obs::Histogram& nnz = obs::histogram(prefix + ".thread_nnz");
  double max_seconds = 0.0;
  double sum_seconds = 0.0;
  for (std::size_t t = 0; t < thread_seconds.size(); ++t) {
    seconds.record(thread_seconds[t]);
    nnz.record(static_cast<double>(thread_nnz[t]));
    max_seconds = std::max(max_seconds, thread_seconds[t]);
    sum_seconds += thread_seconds[t];
  }
  const double mean_seconds =
      sum_seconds / static_cast<double>(thread_seconds.size());
  // Time-based imbalance as observed on this host, the quantity the paper's
  // Section 3.1 nnz-based factor approximates.
  obs::gauge(prefix + ".observed_imbalance")
      .set(mean_seconds > 0.0 ? max_seconds / mean_seconds : 1.0);
#else
  (void)kernel;
  (void)thread_seconds;
  (void)thread_nnz;
#endif
}

}  // namespace

void spmv_serial(const CsrMatrix& a, std::span<const value_t> x,
                 std::span<value_t> y) {
  require(x.size() == static_cast<std::size_t>(a.num_cols()),
          "spmv_serial: x size mismatch");
  require(y.size() == static_cast<std::size_t>(a.num_rows()),
          "spmv_serial: y size mismatch");
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  for (index_t i = 0; i < a.num_rows(); ++i) {
    value_t sum = 0.0;
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      sum += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

std::vector<index_t> partition_rows_even(index_t num_rows, int num_threads) {
  require(num_threads >= 1, "partition_rows_even: need at least one thread");
  std::vector<index_t> boundaries(static_cast<std::size_t>(num_threads) + 1);
  for (int t = 0; t <= num_threads; ++t) {
    boundaries[static_cast<std::size_t>(t)] = static_cast<index_t>(
        (static_cast<std::int64_t>(num_rows) * t) / num_threads);
  }
  return boundaries;
}

std::vector<offset_t> nnz_per_thread_1d(const CsrMatrix& a, int num_threads) {
  const std::vector<index_t> boundaries =
      partition_rows_even(a.num_rows(), num_threads);
  std::vector<offset_t> counts(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    counts[static_cast<std::size_t>(t)] =
        a.row_ptr()[static_cast<std::size_t>(
            boundaries[static_cast<std::size_t>(t) + 1])] -
        a.row_ptr()[static_cast<std::size_t>(
            boundaries[static_cast<std::size_t>(t)])];
  }
  return counts;
}

NnzPartition partition_nonzeros_even(const CsrMatrix& a, int num_threads) {
  require(num_threads >= 1,
          "partition_nonzeros_even: need at least one thread");
  const offset_t nnz = a.num_nonzeros();
  const auto row_ptr = a.row_ptr();
  NnzPartition partition;
  partition.nnz_begin.resize(static_cast<std::size_t>(num_threads) + 1);
  partition.row_of.resize(static_cast<std::size_t>(num_threads) + 1);
  for (int t = 0; t <= num_threads; ++t) {
    const offset_t boundary = (nnz * t) / num_threads;
    partition.nnz_begin[static_cast<std::size_t>(t)] = boundary;
    // Row containing the boundary: last r with row_ptr[r] <= boundary.
    const auto it =
        std::upper_bound(row_ptr.begin(), row_ptr.end(), boundary);
    partition.row_of[static_cast<std::size_t>(t)] = static_cast<index_t>(
        std::min<std::ptrdiff_t>(std::distance(row_ptr.begin(), it) - 1,
                                 std::max<index_t>(a.num_rows() - 1, 0)));
  }
  return partition;
}

std::vector<offset_t> nnz_per_thread_2d(const CsrMatrix& a, int num_threads) {
  const NnzPartition partition = partition_nonzeros_even(a, num_threads);
  std::vector<offset_t> counts(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) {
    counts[static_cast<std::size_t>(t)] =
        partition.nnz_begin[static_cast<std::size_t>(t) + 1] -
        partition.nnz_begin[static_cast<std::size_t>(t)];
  }
  return counts;
}

void spmv_1d(const CsrMatrix& a, std::span<const value_t> x,
             std::span<value_t> y, int num_threads) {
  require(x.size() == static_cast<std::size_t>(a.num_cols()),
          "spmv_1d: x size mismatch");
  require(y.size() == static_cast<std::size_t>(a.num_rows()),
          "spmv_1d: y size mismatch");
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();
  const index_t m = a.num_rows();

  if (obs::profiling_enabled()) {
    // Profiled launch: same even contiguous row split, but with explicit
    // boundaries so each thread can time its own block. This path is taken
    // only under ORDO_PROFILE=1; the default path below is untouched.
    const std::vector<index_t> bounds = partition_rows_even(m, num_threads);
    std::vector<double> thread_seconds(
        static_cast<std::size_t>(num_threads), 0.0);
#pragma omp parallel num_threads(num_threads)
    {
      const int t = omp_get_thread_num();
      if (t < num_threads) {
        const double start = omp_get_wtime();
        for (index_t i = bounds[static_cast<std::size_t>(t)];
             i < bounds[static_cast<std::size_t>(t) + 1]; ++i) {
          value_t sum = 0.0;
          for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
               k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
            sum += values[static_cast<std::size_t>(k)] *
                   x[static_cast<std::size_t>(
                       col_idx[static_cast<std::size_t>(k)])];
          }
          y[static_cast<std::size_t>(i)] = sum;
        }
        thread_seconds[static_cast<std::size_t>(t)] =
            omp_get_wtime() - start;
      }
    }
    record_thread_profile("1d", thread_seconds,
                          nnz_per_thread_1d(a, num_threads));
    return;
  }

  // schedule(static) with the default chunking yields the even contiguous
  // row split of the paper's 1D algorithm.
#pragma omp parallel for schedule(static) num_threads(num_threads)
  for (index_t i = 0; i < m; ++i) {
    value_t sum = 0.0;
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      sum += values[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_idx[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
}

void spmv_2d(const CsrMatrix& a, std::span<const value_t> x,
             std::span<value_t> y, const NnzPartition& partition) {
  require(x.size() == static_cast<std::size_t>(a.num_cols()),
          "spmv_2d: x size mismatch");
  require(y.size() == static_cast<std::size_t>(a.num_rows()),
          "spmv_2d: y size mismatch");
  const int num_threads =
      static_cast<int>(partition.nnz_begin.size()) - 1;
  require(num_threads >= 1, "spmv_2d: empty partition");
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();

  if (a.num_rows() == 0) return;

  // Partial sums of boundary rows: carry[t] is thread t's contribution to
  // its first row when that row *starts* in an earlier thread's range. The
  // starting thread assigns y[row]; continuing threads carry, and a serial
  // fix-up adds the carries, so no two threads ever write the same element.
  std::vector<value_t> carry(static_cast<std::size_t>(num_threads), 0.0);

  const bool profiled = obs::profiling_enabled();
  std::vector<double> thread_seconds(
      profiled ? static_cast<std::size_t>(num_threads) : 0, 0.0);

#pragma omp parallel num_threads(num_threads)
  {
    // Zero-fill the output first: rows whose nonzeros lie entirely outside a
    // thread's range (empty rows at partition boundaries) are never visited
    // by the sweep below.
    const index_t m = a.num_rows();
#pragma omp for schedule(static)
    for (index_t i = 0; i < m; ++i) {
      y[static_cast<std::size_t>(i)] = 0.0;
    }

    const int t = omp_get_thread_num();
    if (t < num_threads) {
      const double profile_start = profiled ? omp_get_wtime() : 0.0;
      const offset_t begin = partition.nnz_begin[static_cast<std::size_t>(t)];
      const offset_t end = partition.nnz_begin[static_cast<std::size_t>(t) + 1];
      if (begin < end) {
        const index_t first_row = partition.row_of[static_cast<std::size_t>(t)];
        const bool first_row_shared =
            begin > row_ptr[static_cast<std::size_t>(first_row)];
        index_t row = first_row;
        offset_t k = begin;
        value_t sum = 0.0;
        while (k < end) {
          const offset_t row_end = row_ptr[static_cast<std::size_t>(row) + 1];
          const offset_t stop = std::min(row_end, end);
          for (; k < stop; ++k) {
            sum += values[static_cast<std::size_t>(k)] *
                   x[static_cast<std::size_t>(
                       col_idx[static_cast<std::size_t>(k)])];
          }
          const bool row_complete = (k == row_end);
          if (row_complete || k == end) {
            if (row == first_row && first_row_shared) {
              carry[static_cast<std::size_t>(t)] = sum;
            } else {
              y[static_cast<std::size_t>(row)] = sum;
            }
          }
          if (row_complete) {
            sum = 0.0;
            ++row;
          }
        }
      }
      if (profiled) {
        thread_seconds[static_cast<std::size_t>(t)] =
            omp_get_wtime() - profile_start;
      }
    }
  }

  if (profiled) {
    std::vector<offset_t> thread_nnz(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) {
      thread_nnz[static_cast<std::size_t>(t)] =
          partition.nnz_begin[static_cast<std::size_t>(t) + 1] -
          partition.nnz_begin[static_cast<std::size_t>(t)];
    }
    record_thread_profile("2d", thread_seconds, thread_nnz);
  }

  // Serial fix-up: add carried partial sums into their rows.
  for (int t = 0; t < num_threads; ++t) {
    const offset_t begin = partition.nnz_begin[static_cast<std::size_t>(t)];
    const offset_t end = partition.nnz_begin[static_cast<std::size_t>(t) + 1];
    if (begin >= end) continue;
    const index_t row = partition.row_of[static_cast<std::size_t>(t)];
    if (begin > row_ptr[static_cast<std::size_t>(row)]) {
      y[static_cast<std::size_t>(row)] += carry[static_cast<std::size_t>(t)];
    }
  }
}

void spmv_2d(const CsrMatrix& a, std::span<const value_t> x,
             std::span<value_t> y, int num_threads) {
  spmv_2d(a, x, y, partition_nonzeros_even(a, num_threads));
}

}  // namespace ordo
