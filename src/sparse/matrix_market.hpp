// Matrix Market (.mtx) reader and writer.
//
// Supports the coordinate format with real/integer/pattern fields and
// general/symmetric/skew-symmetric symmetry, which covers every matrix the
// study draws from the SuiteSparse Matrix Collection. Symmetric storage is
// expanded on read exactly as Section 4.1 of the paper describes: each
// off-diagonal nonzero is inserted into both triangles.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace ordo {

/// Symmetry declared in a Matrix Market header.
enum class MmSymmetry { kGeneral, kSymmetric, kSkewSymmetric };

/// Parsed Matrix Market contents before symmetric expansion.
struct MmFile {
  CooMatrix coo;
  MmSymmetry symmetry = MmSymmetry::kGeneral;
};

/// Parses a Matrix Market stream. Throws invalid_argument_error on malformed
/// input (bad header, out-of-range indices, wrong entry count).
MmFile read_matrix_market(std::istream& in);

/// Reads a .mtx file from disk and returns the fully expanded CSR matrix.
CsrMatrix load_matrix_market(const std::string& path);

/// Converts parsed Matrix Market contents to CSR, expanding symmetric or
/// skew-symmetric storage into both triangles.
CsrMatrix to_csr(const MmFile& file);

/// Writes `a` in Matrix Market coordinate/real/general format.
void write_matrix_market(std::ostream& out, const CsrMatrix& a);

/// Writes `a` to the given path.
void save_matrix_market(const std::string& path, const CsrMatrix& a);

}  // namespace ordo
