// Block compressed sparse row (BSR) format.
//
// FEM matrices like audikw_1 or Flan_1565 are built from small dense
// blocks (one per node pair, dofs x dofs). Storing them blockwise removes
// most of the index overhead and enables register blocking — the
// optimisation Pinar & Heath combine with reordering in the related work
// the paper surveys (Section 5). ordo uses BSR to quantify how much of a
// blocked matrix's structure survives each reordering (block fill: a
// block-unaware permutation shreds the dense blocks, inflating stored
// zeros).
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace ordo {

/// BSR matrix with square b-by-b blocks; values are stored block-row-major,
/// each block dense in row-major order (explicit zeros included).
class BsrMatrix {
 public:
  BsrMatrix() = default;

  /// Converts a CSR matrix whose dimensions are padded up to a multiple of
  /// `block_size`. Every CSR nonzero lands in exactly one block; blocks with
  /// at least one nonzero are stored densely.
  static BsrMatrix from_csr(const CsrMatrix& a, int block_size);

  index_t block_rows() const { return block_rows_; }
  index_t block_cols() const { return block_cols_; }
  int block_size() const { return block_size_; }
  index_t num_rows() const { return rows_; }
  index_t num_cols() const { return cols_; }

  /// Number of stored blocks.
  offset_t num_blocks() const {
    return block_ptr_.empty() ? 0 : block_ptr_.back();
  }
  /// Stored scalar slots (num_blocks * block_size^2), including the explicit
  /// zeros introduced by blocking.
  std::int64_t stored_values() const {
    return num_blocks() * block_size_ * block_size_;
  }
  /// Structural nonzeros carried over from the CSR source.
  std::int64_t structural_nonzeros() const { return structural_nonzeros_; }
  /// Fraction of stored slots that are structural nonzeros: 1.0 means the
  /// blocking is perfect (all blocks fully dense), low values mean the
  /// ordering shredded the block structure.
  double block_fill() const {
    return stored_values() == 0
               ? 1.0
               : static_cast<double>(structural_nonzeros_) /
                     static_cast<double>(stored_values());
  }

  std::span<const offset_t> block_ptr() const { return block_ptr_; }
  std::span<const index_t> block_col() const { return block_col_; }
  std::span<const value_t> values() const { return values_; }

  /// y = A·x (serial). x/y sized to the padded dimensions.
  void multiply(std::span<const value_t> x, std::span<value_t> y) const;

  /// Converts back to CSR (dropping stored zeros), restoring the original
  /// (unpadded) dimensions.
  CsrMatrix to_csr() const;

 private:
  index_t rows_ = 0;       // original dimensions
  index_t cols_ = 0;
  index_t block_rows_ = 0; // padded dimensions / block_size
  index_t block_cols_ = 0;
  int block_size_ = 1;
  std::int64_t structural_nonzeros_ = 0;
  std::vector<offset_t> block_ptr_{0};
  std::vector<index_t> block_col_;
  std::vector<value_t> values_;
};

}  // namespace ordo
