// Fundamental scalar and index types used throughout ordo.
//
// The study (and this reproduction) stores column offsets as 32-bit integers
// and nonzero values as IEEE double precision, matching Section 4.1 of the
// paper. Row-pointer arrays use 64-bit offsets so matrices with more than
// 2^31 nonzeros remain representable.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace ordo {

/// Row/column index type (32-bit, as in the paper's CSR representation).
using index_t = std::int32_t;

/// Nonzero-offset type for row pointers and nonzero counts.
using offset_t = std::int64_t;

/// Matrix value type.
using value_t = double;

/// Exception thrown when a matrix, permutation or argument fails validation.
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Throws invalid_argument_error with the given message when `cond` is false.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw invalid_argument_error(message);
}

}  // namespace ordo
