// Fundamental scalar and index types used throughout ordo.
//
// The study (and this reproduction) stores column offsets as 32-bit integers
// and nonzero values as IEEE double precision, matching Section 4.1 of the
// paper. Row-pointer arrays use 64-bit offsets so matrices with more than
// 2^31 nonzeros remain representable.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace ordo {

/// Row/column index type (32-bit, as in the paper's CSR representation).
using index_t = std::int32_t;

/// Nonzero-offset type for row pointers and nonzero counts.
using offset_t = std::int64_t;

/// Matrix value type.
using value_t = double;

/// Exception thrown when a matrix, permutation or argument fails validation.
class invalid_argument_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Throws invalid_argument_error with the given message when `cond` is false.
inline void require(bool cond, const std::string& message) {
  if (!cond) throw invalid_argument_error(message);
}

/// Exception thrown when a long-running computation observes its cooperative
/// cancellation flag set (the pipeline scheduler's soft task deadlines; see
/// src/pipeline/cancel.hpp for who sets the flag).
class operation_cancelled_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Polls an optional cancellation flag. The flag is plain `std::atomic<bool>`
/// rather than a richer token so the compute layers (reorder, partition) can
/// honour cancellation without depending on the pipeline module. A null flag
/// means "not cancellable" and costs one branch.
inline void poll_cancelled(const std::atomic<bool>* flag, const char* where) {
  if (flag && flag->load(std::memory_order_relaxed)) {
    throw operation_cancelled_error(std::string(where) +
                                    ": cancelled (task deadline exceeded)");
  }
}

}  // namespace ordo
