#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "check/invariants.hpp"

namespace ordo {
namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

enum class Field { kReal, kInteger, kPattern };

}  // namespace

MmFile read_matrix_market(std::istream& in) {
  std::string line;
  require(static_cast<bool>(std::getline(in, line)),
          "matrix market: empty input");

  std::istringstream header(line);
  std::string banner, object, format, field_str, symmetry_str;
  header >> banner >> object >> format >> field_str >> symmetry_str;
  require(banner == "%%MatrixMarket", "matrix market: missing banner");
  require(to_lower(object) == "matrix", "matrix market: object must be matrix");
  require(to_lower(format) == "coordinate",
          "matrix market: only coordinate format is supported");

  Field field;
  const std::string f = to_lower(field_str);
  if (f == "real") {
    field = Field::kReal;
  } else if (f == "integer") {
    field = Field::kInteger;
  } else if (f == "pattern") {
    field = Field::kPattern;
  } else {
    throw invalid_argument_error("matrix market: unsupported field " +
                                 field_str);
  }

  MmFile result;
  const std::string s = to_lower(symmetry_str);
  if (s == "general") {
    result.symmetry = MmSymmetry::kGeneral;
  } else if (s == "symmetric") {
    result.symmetry = MmSymmetry::kSymmetric;
  } else if (s == "skew-symmetric") {
    result.symmetry = MmSymmetry::kSkewSymmetric;
  } else {
    throw invalid_argument_error("matrix market: unsupported symmetry " +
                                 symmetry_str);
  }

  // Skip comments and blank lines, then read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long rows = -1, cols = -1, entries = -1;
  size_line >> rows >> cols >> entries;
  require(rows >= 0 && cols >= 0 && entries >= 0,
          "matrix market: malformed size line");

  result.coo = CooMatrix(static_cast<index_t>(rows), static_cast<index_t>(cols));
  result.coo.reserve(entries);
  long long seen = 0;
  while (seen < entries && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream entry(line);
    long long i = 0, j = 0;
    double v = 1.0;
    entry >> i >> j;
    if (field != Field::kPattern) entry >> v;
    require(!entry.fail(), "matrix market: malformed entry line");
    // Matrix Market uses 1-based indices.
    result.coo.add(static_cast<index_t>(i - 1), static_cast<index_t>(j - 1), v);
    ++seen;
  }
  require(seen == entries, "matrix market: fewer entries than declared");
  return result;
}

CsrMatrix to_csr(const MmFile& file) {
  if (file.symmetry == MmSymmetry::kGeneral) {
    return CsrMatrix::from_coo(file.coo);
  }
  CooMatrix expanded(file.coo.num_rows(), file.coo.num_cols());
  expanded.reserve(2 * file.coo.num_entries());
  const double mirror_sign =
      file.symmetry == MmSymmetry::kSkewSymmetric ? -1.0 : 1.0;
  for (const Triplet& t : file.coo.entries()) {
    expanded.add(t.row, t.col, t.value);
    if (t.row != t.col) expanded.add(t.col, t.row, mirror_sign * t.value);
  }
  return CsrMatrix::from_coo(expanded);
}

CsrMatrix load_matrix_market(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_matrix_market: cannot open " + path);
  CsrMatrix a = to_csr(read_matrix_market(in));
  // I/O seam: re-verify the assembled CSR where external data enters the
  // system, so a loader defect is reported as a counted, typed violation.
  ORDO_CHECK(validate_csr_raw(a.num_rows(), a.num_cols(), a.row_ptr(),
                              a.col_idx(), a.values().size(),
                              "load_matrix_market(" + path + ")"));
  return a;
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.num_rows() << ' ' << a.num_cols() << ' ' << a.num_nonzeros()
      << '\n';
  for (index_t i = 0; i < a.num_rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << ' ' << (cols[k] + 1) << ' ' << vals[k] << '\n';
    }
  }
}

void save_matrix_market(const std::string& path, const CsrMatrix& a) {
  std::ofstream out(path);
  require(out.good(), "save_matrix_market: cannot open " + path);
  write_matrix_market(out, a);
}

}  // namespace ordo
