#include "sparse/csr_ops.hpp"

#include <algorithm>
#include <numeric>

#include "check/invariants.hpp"

namespace ordo {

CsrMatrix transpose(const CsrMatrix& a) {
  const index_t m = a.num_rows();
  const index_t n = a.num_cols();
  const auto row_ptr = a.row_ptr();
  const auto col_idx = a.col_idx();
  const auto values = a.values();

  std::vector<offset_t> t_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j : col_idx) t_ptr[static_cast<std::size_t>(j) + 1]++;
  std::partial_sum(t_ptr.begin(), t_ptr.end(), t_ptr.begin());

  std::vector<offset_t> next(t_ptr.begin(), t_ptr.end() - 1);
  std::vector<index_t> t_col(col_idx.size());
  std::vector<value_t> t_val(values.size());
  for (index_t i = 0; i < m; ++i) {
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = col_idx[static_cast<std::size_t>(k)];
      const offset_t pos = next[static_cast<std::size_t>(j)]++;
      t_col[static_cast<std::size_t>(pos)] = i;
      t_val[static_cast<std::size_t>(pos)] = values[static_cast<std::size_t>(k)];
    }
  }
  // Rows of the transpose are filled in ascending source-row order, so the
  // column indices are already sorted.
  return CsrMatrix(n, m, std::move(t_ptr), std::move(t_col), std::move(t_val));
}

bool is_pattern_symmetric(const CsrMatrix& a) {
  if (!a.is_square()) return false;
  const CsrMatrix at = transpose(a);
  return std::ranges::equal(a.row_ptr(), at.row_ptr()) &&
         std::ranges::equal(a.col_idx(), at.col_idx());
}

CsrMatrix symmetrize(const CsrMatrix& a) {
  require(a.is_square(), "symmetrize: matrix must be square");
  const CsrMatrix at = transpose(a);
  const index_t n = a.num_rows();

  // Merge the sorted rows of A and Aᵀ.
  std::vector<offset_t> s_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> s_col;
  std::vector<value_t> s_val;
  s_col.reserve(static_cast<std::size_t>(a.num_nonzeros()) * 2);
  s_val.reserve(static_cast<std::size_t>(a.num_nonzeros()) * 2);
  for (index_t i = 0; i < n; ++i) {
    const auto ca = a.row_cols(i);
    const auto va = a.row_values(i);
    const auto cb = at.row_cols(i);
    const auto vb = at.row_values(i);
    std::size_t p = 0, q = 0;
    while (p < ca.size() || q < cb.size()) {
      if (q == cb.size() || (p < ca.size() && ca[p] < cb[q])) {
        s_col.push_back(ca[p]);
        s_val.push_back(va[p]);
        ++p;
      } else if (p == ca.size() || cb[q] < ca[p]) {
        s_col.push_back(cb[q]);
        s_val.push_back(vb[q]);
        ++q;
      } else {
        s_col.push_back(ca[p]);
        s_val.push_back(va[p] + vb[q]);
        ++p;
        ++q;
      }
    }
    s_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<offset_t>(s_col.size());
  }
  CsrMatrix s(n, n, std::move(s_ptr), std::move(s_col), std::move(s_val));
#if defined(ORDO_CHECK_INVARIANTS_ENABLED)
  // Contract: the merged pattern equals its transpose's.
  if (!is_pattern_symmetric(s)) {
    check::report_violation(check::ViolationKind::kCsr, "symmetrize",
                            "result pattern is not symmetric");
  }
#endif
  return s;
}

CsrMatrix permute_symmetric(const CsrMatrix& a, const Permutation& perm) {
  require(a.is_square(), "permute_symmetric: matrix must be square");
  return permute(a, perm, perm);
}

CsrMatrix permute_rows(const CsrMatrix& a, const Permutation& perm) {
  require_valid_permutation(perm, "permute_rows");
  require(static_cast<index_t>(perm.size()) == a.num_rows(),
          "permute_rows: permutation length must equal row count");
  const index_t m = a.num_rows();
  std::vector<offset_t> b_ptr(static_cast<std::size_t>(m) + 1, 0);
  for (index_t i = 0; i < m; ++i) {
    b_ptr[static_cast<std::size_t>(i) + 1] =
        b_ptr[static_cast<std::size_t>(i)] +
        a.row_nonzeros(perm[static_cast<std::size_t>(i)]);
  }
  std::vector<index_t> b_col(static_cast<std::size_t>(a.num_nonzeros()));
  std::vector<value_t> b_val(static_cast<std::size_t>(a.num_nonzeros()));
  for (index_t i = 0; i < m; ++i) {
    const index_t src = perm[static_cast<std::size_t>(i)];
    const auto cols = a.row_cols(src);
    const auto vals = a.row_values(src);
    std::copy(cols.begin(), cols.end(),
              b_col.begin() + static_cast<std::ptrdiff_t>(
                                  b_ptr[static_cast<std::size_t>(i)]));
    std::copy(vals.begin(), vals.end(),
              b_val.begin() + static_cast<std::ptrdiff_t>(
                                  b_ptr[static_cast<std::size_t>(i)]));
  }
  return CsrMatrix(m, a.num_cols(), std::move(b_ptr), std::move(b_col),
                   std::move(b_val));
}

CsrMatrix permute(const CsrMatrix& a, const Permutation& row_perm,
                  const Permutation& col_perm) {
  require_valid_permutation(row_perm, "permute(row_perm)");
  require_valid_permutation(col_perm, "permute(col_perm)");
  require(static_cast<index_t>(row_perm.size()) == a.num_rows(),
          "permute: row permutation length must equal row count");
  require(static_cast<index_t>(col_perm.size()) == a.num_cols(),
          "permute: column permutation length must equal column count");
  const Permutation col_inv = invert_permutation(col_perm);

  const index_t m = a.num_rows();
  std::vector<offset_t> b_ptr(static_cast<std::size_t>(m) + 1, 0);
  for (index_t i = 0; i < m; ++i) {
    b_ptr[static_cast<std::size_t>(i) + 1] =
        b_ptr[static_cast<std::size_t>(i)] +
        a.row_nonzeros(row_perm[static_cast<std::size_t>(i)]);
  }
  std::vector<index_t> b_col(static_cast<std::size_t>(a.num_nonzeros()));
  std::vector<value_t> b_val(static_cast<std::size_t>(a.num_nonzeros()));
  std::vector<std::pair<index_t, value_t>> row;
  for (index_t i = 0; i < m; ++i) {
    const index_t src = row_perm[static_cast<std::size_t>(i)];
    const auto cols = a.row_cols(src);
    const auto vals = a.row_values(src);
    row.clear();
    for (std::size_t k = 0; k < cols.size(); ++k) {
      row.emplace_back(col_inv[static_cast<std::size_t>(cols[k])], vals[k]);
    }
    std::sort(row.begin(), row.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    offset_t out = b_ptr[static_cast<std::size_t>(i)];
    for (const auto& [j, v] : row) {
      b_col[static_cast<std::size_t>(out)] = j;
      b_val[static_cast<std::size_t>(out)] = v;
      ++out;
    }
  }
  return CsrMatrix(m, a.num_cols(), std::move(b_ptr), std::move(b_col),
                   std::move(b_val));
}

index_t diagonal_nonzeros(const CsrMatrix& a) {
  index_t count = 0;
  const index_t n = std::min(a.num_rows(), a.num_cols());
  for (index_t i = 0; i < n; ++i) {
    const auto cols = a.row_cols(i);
    if (std::binary_search(cols.begin(), cols.end(), i)) ++count;
  }
  return count;
}

CsrMatrix with_full_diagonal(const CsrMatrix& a, value_t diag_value) {
  require(a.is_square(), "with_full_diagonal: matrix must be square");
  const index_t n = a.num_rows();
  std::vector<offset_t> b_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> b_col;
  std::vector<value_t> b_val;
  b_col.reserve(static_cast<std::size_t>(a.num_nonzeros() + n));
  b_val.reserve(static_cast<std::size_t>(a.num_nonzeros() + n));
  for (index_t i = 0; i < n; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    bool placed = false;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (!placed && cols[k] > i) {
        b_col.push_back(i);
        b_val.push_back(diag_value);
        placed = true;
      }
      if (cols[k] == i) placed = true;
      b_col.push_back(cols[k]);
      b_val.push_back(vals[k]);
    }
    if (!placed) {
      b_col.push_back(i);
      b_val.push_back(diag_value);
    }
    b_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<offset_t>(b_col.size());
  }
  return CsrMatrix(n, n, std::move(b_ptr), std::move(b_col), std::move(b_val));
}

CsrMatrix lower_triangle(const CsrMatrix& a) {
  require(a.is_square(), "lower_triangle: matrix must be square");
  const index_t n = a.num_rows();
  std::vector<offset_t> b_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> b_col;
  std::vector<value_t> b_val;
  for (index_t i = 0; i < n; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_values(i);
    for (std::size_t k = 0; k < cols.size() && cols[k] <= i; ++k) {
      b_col.push_back(cols[k]);
      b_val.push_back(vals[k]);
    }
    b_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<offset_t>(b_col.size());
  }
  return CsrMatrix(n, n, std::move(b_ptr), std::move(b_col), std::move(b_val));
}

}  // namespace ordo
