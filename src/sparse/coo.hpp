// Coordinate-format (COO) sparse matrix: a simple triplet container used as
// the assembly and interchange format. Generators and the Matrix Market
// reader produce COO; computational kernels consume CSR (see csr.hpp).
#pragma once

#include <vector>

#include "sparse/types.hpp"

namespace ordo {

/// One (row, column, value) triplet.
struct Triplet {
  index_t row = 0;
  index_t col = 0;
  value_t value = 0.0;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Coordinate-format sparse matrix. Duplicate entries are permitted and are
/// summed on conversion to CSR.
class CooMatrix {
 public:
  CooMatrix() = default;

  /// Creates an empty num_rows-by-num_cols matrix.
  CooMatrix(index_t num_rows, index_t num_cols);

  /// Appends one entry. Indices are validated against the matrix shape.
  void add(index_t row, index_t col, value_t value);

  /// Appends `value` at (row, col) and, when row != col, also at (col, row).
  /// Convenience for assembling symmetric patterns.
  void add_symmetric(index_t row, index_t col, value_t value);

  index_t num_rows() const { return num_rows_; }
  index_t num_cols() const { return num_cols_; }

  /// Number of stored triplets (including duplicates).
  offset_t num_entries() const { return static_cast<offset_t>(entries_.size()); }

  const std::vector<Triplet>& entries() const { return entries_; }
  std::vector<Triplet>& entries() { return entries_; }

  /// Reserves storage for `n` triplets.
  void reserve(offset_t n) { entries_.reserve(static_cast<std::size_t>(n)); }

 private:
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace ordo
