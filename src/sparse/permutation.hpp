// Permutation utilities.
//
// A permutation is represented as a vector `perm` where perm[new_index] ==
// old_index, i.e. the matrix row that ends up in position i of the reordered
// matrix is row perm[i] of the original. This is the "old-of-new" convention
// used by SuiteSparse's AMD and by METIS' iperm output.
#pragma once

#include <cstddef>
#include <vector>

#include "sparse/types.hpp"

namespace ordo {

using Permutation = std::vector<index_t>;

/// Returns the identity permutation of length n.
Permutation identity_permutation(index_t n);

/// True when `perm` is a bijection on {0, ..., n-1} with n == perm.size().
bool is_valid_permutation(const Permutation& perm);

/// Throws invalid_argument_error when `perm` is not a valid permutation.
void require_valid_permutation(const Permutation& perm, const char* who);

/// Returns the inverse permutation: inv[perm[i]] == i.
Permutation invert_permutation(const Permutation& perm);

/// Returns the composition `second ∘ first`: applying the result is the same
/// as applying `first`, then `second` to the already-permuted object.
Permutation compose_permutations(const Permutation& first,
                                 const Permutation& second);

/// Returns a uniformly random permutation of length n (Fisher–Yates with a
/// splitmix-seeded 64-bit generator, deterministic for a given seed).
Permutation random_permutation(index_t n, std::uint64_t seed);

}  // namespace ordo
