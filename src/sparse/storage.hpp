// Storage backends for CSR arrays — the seam that makes beyond-RAM
// matrices first-class without touching a single kernel call site.
//
// A CsrMatrix does not own three std::vectors any more; it owns a
// CsrStorage, an abstract triple of (row_ptr, col_idx, values) arrays
// exposed as spans. Two backends implement it:
//
//   VectorStorage  in-RAM, heap-backed — the historical representation and
//                  still the default for every corpus matrix that fits.
//   MmapStorage    a memory-mapped spill file in the single-file ORDOCSR
//                  layout below. Pages stream in on demand and clean pages
//                  are evictable, so a matrix whose CSR exceeds physical
//                  RAM (or an RSS budget) is still fully addressable. The
//                  mapping is MAP_PRIVATE and starts read-only — Linux
//                  charges private *writable* mappings against RLIMIT_DATA
//                  even when file-backed, so the read path stays outside
//                  any data-segment budget; the first values_mut() call
//                  upgrades the protection, and mutation then dirties
//                  process-local copy-on-write pages, never the file.
//
// PagedCsrWriter streams a matrix into the mmap backend row by row with
// O(rows) bookkeeping and O(page) buffering — the producer half of the
// out-of-core path (the streamed corpus generator and the windowed-RCM
// apply both write through it).
//
// ORDOCSR spill-file layout (little-endian, 8-byte-aligned sections):
//
//   [0,   64)                      OocFileHeader
//   [64,  64 + 8*(rows+1))         row_ptr   (offset_t = int64)
//   [col_idx_offset, +4*nnz)       col_idx   (index_t  = int32)
//   [values_offset,  +8*nnz)       values    (value_t  = double)
//
// Raw mmap/munmap stay confined to this layer — tools/ordo_lint.py rule
// `mmap` bans them everywhere outside src/sparse/.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace ordo {

/// Abstract backing store for one CSR matrix's three arrays. Accessors
/// return spans so consumers never learn (or care) where the bytes live.
class CsrStorage {
 public:
  virtual ~CsrStorage() = default;

  virtual std::span<const offset_t> row_ptr() const = 0;
  virtual std::span<const index_t> col_idx() const = 0;
  virtual std::span<const value_t> values() const = 0;
  /// Mutable values view. For MmapStorage this dirties private
  /// copy-on-write pages; the spill file itself is never modified.
  virtual std::span<value_t> values_mut() = 0;

  /// Backend tag for diagnostics and the status board: "ram" or "mmap".
  virtual const char* backend() const = 0;

  /// Bytes resident in this process's heap (as opposed to pageable file
  /// mappings). VectorStorage reports the full array footprint,
  /// MmapStorage only its bookkeeping.
  virtual std::int64_t heap_bytes() const = 0;

  /// Memoizes a pure function of this storage's *structure* (the row_ptr
  /// array; never the values). The engine keys its plan cache on a
  /// row-structure hash that is O(rows) to compute — memoizing it here
  /// makes repeat plan lookups O(1) and, for the mmap backend, stops every
  /// lookup from re-paging the whole row_ptr region in. Valid because the
  /// structure arrays are immutable after construction (only values_mut()
  /// exists). `compute` must be deterministic and must never return 0
  /// (0 is the "not yet computed" sentinel).
  std::uint64_t memoized_structure_hash(
      std::uint64_t (*compute)(const CsrStorage&)) const;

 private:
  // Relaxed atomics are enough: the hash is a pure function of immutable
  // data, so racing threads compute identical values and either store wins.
  mutable std::atomic<std::uint64_t> structure_hash_{0};
};

/// The in-RAM backend: owns the three arrays as plain vectors.
class VectorStorage final : public CsrStorage {
 public:
  VectorStorage() = default;
  VectorStorage(std::vector<offset_t> row_ptr, std::vector<index_t> col_idx,
                std::vector<value_t> values)
      : row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)) {}

  std::span<const offset_t> row_ptr() const override { return row_ptr_; }
  std::span<const index_t> col_idx() const override { return col_idx_; }
  std::span<const value_t> values() const override { return values_; }
  std::span<value_t> values_mut() override { return values_; }
  const char* backend() const override { return "ram"; }
  std::int64_t heap_bytes() const override {
    return static_cast<std::int64_t>(row_ptr_.capacity() * sizeof(offset_t) +
                                     col_idx_.capacity() * sizeof(index_t) +
                                     values_.capacity() * sizeof(value_t));
  }

 private:
  std::vector<offset_t> row_ptr_{0};
  std::vector<index_t> col_idx_;
  std::vector<value_t> values_;
};

/// Header of an ORDOCSR spill file (64 bytes, little-endian host layout —
/// spill files are scratch local to one run, never an interchange format).
struct OocFileHeader {
  char magic[8];  ///< "ORDOCSR\0"
  std::uint32_t version = 1;
  std::uint32_t reserved0 = 0;
  std::int64_t num_rows = 0;
  std::int64_t num_cols = 0;
  std::int64_t num_nonzeros = 0;
  std::int64_t col_idx_offset = 0;  ///< byte offset of the col_idx section
  std::int64_t values_offset = 0;   ///< byte offset of the values section
  std::int64_t reserved1 = 0;       ///< pads the header to 64 bytes
};
static_assert(sizeof(OocFileHeader) == 64, "ORDOCSR header must be 64 bytes");

/// The memory-mapped backend: maps an ORDOCSR spill file privately and
/// serves the three arrays straight out of the mapping.
class MmapStorage final : public CsrStorage {
 public:
  /// Maps `path` (created by PagedCsrWriter). Throws invalid_argument_error
  /// on open/map failure or a malformed header.
  static std::shared_ptr<MmapStorage> map(const std::string& path);

  ~MmapStorage() override;
  MmapStorage(const MmapStorage&) = delete;
  MmapStorage& operator=(const MmapStorage&) = delete;

  std::span<const offset_t> row_ptr() const override { return row_ptr_; }
  std::span<const index_t> col_idx() const override { return col_idx_; }
  std::span<const value_t> values() const override {
    return {values_.data(), values_.size()};
  }
  /// Upgrades the private mapping to writable on first use (reads never pay
  /// the RLIMIT_DATA charge the kernel levies on private writable
  /// mappings); writes land in copy-on-write pages, never the spill file.
  /// Throws invalid_argument_error when the upgrade is refused (e.g. the
  /// mapping no longer fits a data-segment budget).
  std::span<value_t> values_mut() override;
  const char* backend() const override { return "mmap"; }
  std::int64_t heap_bytes() const override {
    return static_cast<std::int64_t>(sizeof(*this));
  }

  const std::string& path() const { return path_; }
  std::int64_t mapped_bytes() const {
    return static_cast<std::int64_t>(length_);
  }

  index_t num_rows() const { return static_cast<index_t>(header().num_rows); }
  index_t num_cols() const { return static_cast<index_t>(header().num_cols); }

 private:
  MmapStorage() = default;
  const OocFileHeader& header() const {
    return *reinterpret_cast<const OocFileHeader*>(base_);
  }

  std::string path_;
  void* base_ = nullptr;
  std::size_t length_ = 0;
  // Relaxed atomic: the writable upgrade is idempotent (mprotect to the
  // same protection is a no-op), so racing first callers both upgrade and
  // either store wins; the kernel orders the page-table change itself.
  mutable std::atomic<bool> writable_{false};
  std::span<const offset_t> row_ptr_;
  std::span<const index_t> col_idx_;
  std::span<value_t> values_;
};

/// Streams a CSR matrix into an ORDOCSR spill file one row at a time.
/// Heap cost is O(rows) for the accumulated row pointers plus the stdio
/// buffers; the nonzero arrays go straight to disk. finish() assembles the
/// final file, maps it, and returns the storage (the caller wraps it in a
/// CsrMatrix, which validates the invariants on construction).
class PagedCsrWriter {
 public:
  /// Opens the spill side files under `path` (+".cols"/".vals" temporaries).
  /// Throws invalid_argument_error when they cannot be created.
  PagedCsrWriter(std::string path, index_t num_rows, index_t num_cols);
  ~PagedCsrWriter();
  PagedCsrWriter(const PagedCsrWriter&) = delete;
  PagedCsrWriter& operator=(const PagedCsrWriter&) = delete;

  /// Appends the next row. `cols` must be strictly ascending and in range;
  /// `cols` and `values` must have equal length. Rows are appended in
  /// order, exactly num_rows times before finish().
  void append_row(std::span<const index_t> cols,
                  std::span<const value_t> values);

  index_t rows_written() const { return next_row_; }
  offset_t nonzeros_written() const { return row_ptr_.back(); }

  /// Writes the final ORDOCSR file, removes the temporaries, and maps it.
  /// The writer is spent afterwards.
  std::shared_ptr<MmapStorage> finish();

 private:
  std::string path_;
  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  index_t next_row_ = 0;
  bool finished_ = false;
  std::vector<offset_t> row_ptr_;
  struct FileHandle;  // raw stdio handles live in the .cpp
  std::unique_ptr<FileHandle> cols_out_;
  std::unique_ptr<FileHandle> vals_out_;
};

/// The spill directory for out-of-core matrices: $ORDO_OOC_DIR, or empty
/// when unset (meaning: no spill directory configured, stay in RAM).
std::string ooc_dir_from_env();

}  // namespace ordo
