// Compressed sparse row (CSR) matrix: the computational format for every
// kernel in ordo. Nonzeros are grouped by row; within each row, column
// indices are stored in ascending order with no duplicates.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/storage.hpp"
#include "sparse/types.hpp"

namespace ordo {

/// CSR sparse matrix with 64-bit row pointers, 32-bit column indices and
/// double-precision values (Section 4.1 of the paper).
///
/// The arrays live behind a CsrStorage backend (sparse/storage.hpp): the
/// in-RAM vector backend for ordinary matrices, the memory-mapped spill
/// backend for matrices larger than RAM. The spans handed out below are
/// resolved once at construction, so call sites are backend-agnostic and
/// pay no virtual dispatch per access. Copies share the backing storage
/// (copying a beyond-RAM matrix must never deep-copy it); the structure is
/// immutable after construction and no in-tree consumer writes through the
/// mutable values span of a copy, so sharing is observationally identical
/// to the historical deep copy.
class CsrMatrix {
 public:
  CsrMatrix();

  /// Takes ownership of prebuilt CSR arrays (in-RAM backend). Validates the
  /// invariants: row_ptr has num_rows+1 monotone entries starting at 0;
  /// column indices are in range and strictly ascending within each row.
  CsrMatrix(index_t num_rows, index_t num_cols, std::vector<offset_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<value_t> values);

  /// Wraps an existing storage backend (the out-of-core path: the streamed
  /// generators and the windowed-RCM apply hand over PagedCsrWriter
  /// products here). Validates the same invariants.
  CsrMatrix(index_t num_rows, index_t num_cols,
            std::shared_ptr<CsrStorage> storage);

  /// Builds a CSR matrix from triplets. Duplicate entries are summed.
  static CsrMatrix from_coo(const CooMatrix& coo);

  /// Builds from triplets where entries with row != col that appear only in
  /// one triangle are mirrored, i.e. the expansion used by the paper for
  /// matrices stored in symmetric Matrix Market form.
  static CsrMatrix from_coo_symmetric_expand(const CooMatrix& coo);

  index_t num_rows() const { return num_rows_; }
  index_t num_cols() const { return num_cols_; }
  offset_t num_nonzeros() const {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }

  std::span<const offset_t> row_ptr() const { return row_ptr_; }
  std::span<const index_t> col_idx() const { return col_idx_; }
  std::span<const value_t> values() const { return values_; }
  std::span<value_t> values() { return storage_->values_mut(); }

  /// Number of nonzeros in row i.
  offset_t row_nonzeros(index_t i) const { return row_ptr_[i + 1] - row_ptr_[i]; }

  /// Column indices of row i.
  std::span<const index_t> row_cols(index_t i) const {
    return col_idx_.subspan(static_cast<std::size_t>(row_ptr_[i]),
                            static_cast<std::size_t>(row_nonzeros(i)));
  }

  /// Values of row i.
  std::span<const value_t> row_values(index_t i) const {
    return values_.subspan(static_cast<std::size_t>(row_ptr_[i]),
                           static_cast<std::size_t>(row_nonzeros(i)));
  }

  /// True when the matrix is square.
  bool is_square() const { return num_rows_ == num_cols_; }

  /// Bytes needed to store the matrix in CSR form (row pointers + column
  /// indices + values). Used by the performance model for memory traffic.
  std::int64_t storage_bytes() const;

  /// The backing store and its backend tag ("ram" or "mmap").
  const CsrStorage& storage() const { return *storage_; }
  const char* storage_backend() const { return storage_->backend(); }

  /// Structural and numerical equality (dimension + array contents),
  /// regardless of which backend holds each side.
  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b);

 private:
  void validate() const;

  index_t num_rows_ = 0;
  index_t num_cols_ = 0;
  std::shared_ptr<CsrStorage> storage_;
  // Span cache over storage_'s arrays, resolved once at construction (the
  // backends' spans are stable for the storage lifetime).
  std::span<const offset_t> row_ptr_;
  std::span<const index_t> col_idx_;
  std::span<const value_t> values_;
};

}  // namespace ordo
