#include "sparse/bsr.hpp"

#include <algorithm>

namespace ordo {

BsrMatrix BsrMatrix::from_csr(const CsrMatrix& a, int block_size) {
  require(block_size >= 1, "BsrMatrix: block size must be positive");
  BsrMatrix b;
  b.rows_ = a.num_rows();
  b.cols_ = a.num_cols();
  b.block_size_ = block_size;
  b.block_rows_ = (a.num_rows() + block_size - 1) / block_size;
  b.block_cols_ = (a.num_cols() + block_size - 1) / block_size;
  b.structural_nonzeros_ = a.num_nonzeros();

  // Pass 1: count distinct block columns per block row.
  std::vector<offset_t> slot(static_cast<std::size_t>(b.block_cols_), -1);
  b.block_ptr_.assign(static_cast<std::size_t>(b.block_rows_) + 1, 0);
  for (index_t bi = 0; bi < b.block_rows_; ++bi) {
    offset_t blocks_in_row = 0;
    const index_t row_end =
        std::min<index_t>((bi + 1) * block_size, a.num_rows());
    for (index_t i = bi * block_size; i < row_end; ++i) {
      for (index_t j : a.row_cols(i)) {
        const index_t bj = j / block_size;
        if (slot[static_cast<std::size_t>(bj)] != bi) {
          slot[static_cast<std::size_t>(bj)] = bi;
          ++blocks_in_row;
        }
      }
    }
    b.block_ptr_[static_cast<std::size_t>(bi) + 1] =
        b.block_ptr_[static_cast<std::size_t>(bi)] + blocks_in_row;
  }

  // Pass 2: fill block columns (sorted) and scatter values.
  b.block_col_.resize(static_cast<std::size_t>(b.block_ptr_.back()));
  b.values_.assign(static_cast<std::size_t>(b.block_ptr_.back()) *
                       block_size * block_size,
                   0.0);
  std::fill(slot.begin(), slot.end(), offset_t{-1});
  std::vector<offset_t> block_of(static_cast<std::size_t>(b.block_cols_));
  for (index_t bi = 0; bi < b.block_rows_; ++bi) {
    // Collect the block columns of this block row, sorted.
    offset_t out = b.block_ptr_[static_cast<std::size_t>(bi)];
    const index_t row_end =
        std::min<index_t>((bi + 1) * block_size, a.num_rows());
    for (index_t i = bi * block_size; i < row_end; ++i) {
      for (index_t j : a.row_cols(i)) {
        const index_t bj = j / block_size;
        if (slot[static_cast<std::size_t>(bj)] !=
            static_cast<offset_t>(bi)) {
          slot[static_cast<std::size_t>(bj)] = bi;
          b.block_col_[static_cast<std::size_t>(out++)] = bj;
        }
      }
    }
    std::sort(b.block_col_.begin() +
                  static_cast<std::ptrdiff_t>(
                      b.block_ptr_[static_cast<std::size_t>(bi)]),
              b.block_col_.begin() + static_cast<std::ptrdiff_t>(out));
    for (offset_t p = b.block_ptr_[static_cast<std::size_t>(bi)]; p < out;
         ++p) {
      block_of[static_cast<std::size_t>(
          b.block_col_[static_cast<std::size_t>(p)])] = p;
    }
    for (index_t i = bi * block_size; i < row_end; ++i) {
      const auto cols = a.row_cols(i);
      const auto vals = a.row_values(i);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const index_t bj = cols[k] / block_size;
        const offset_t block = block_of[static_cast<std::size_t>(bj)];
        const int local_row = static_cast<int>(i - bi * block_size);
        const int local_col = static_cast<int>(cols[k] - bj * block_size);
        b.values_[static_cast<std::size_t>(block) * block_size * block_size +
                  static_cast<std::size_t>(local_row) * block_size +
                  static_cast<std::size_t>(local_col)] = vals[k];
      }
    }
  }
  return b;
}

void BsrMatrix::multiply(std::span<const value_t> x,
                         std::span<value_t> y) const {
  const std::size_t padded_cols =
      static_cast<std::size_t>(block_cols_) * block_size_;
  const std::size_t padded_rows =
      static_cast<std::size_t>(block_rows_) * block_size_;
  require(x.size() >= padded_cols && y.size() >= padded_rows,
          "BsrMatrix::multiply: vectors must cover the padded dimensions");
  const int bs = block_size_;
  for (index_t bi = 0; bi < block_rows_; ++bi) {
    for (int r = 0; r < bs; ++r) {
      y[static_cast<std::size_t>(bi) * bs + r] = 0.0;
    }
    for (offset_t p = block_ptr_[static_cast<std::size_t>(bi)];
         p < block_ptr_[static_cast<std::size_t>(bi) + 1]; ++p) {
      const index_t bj = block_col_[static_cast<std::size_t>(p)];
      const value_t* block =
          values_.data() + static_cast<std::size_t>(p) * bs * bs;
      for (int r = 0; r < bs; ++r) {
        value_t sum = 0.0;
        for (int c = 0; c < bs; ++c) {
          sum += block[r * bs + c] *
                 x[static_cast<std::size_t>(bj) * bs + c];
        }
        y[static_cast<std::size_t>(bi) * bs + r] += sum;
      }
    }
  }
}

CsrMatrix BsrMatrix::to_csr() const {
  CooMatrix coo(rows_, cols_);
  const int bs = block_size_;
  for (index_t bi = 0; bi < block_rows_; ++bi) {
    for (offset_t p = block_ptr_[static_cast<std::size_t>(bi)];
         p < block_ptr_[static_cast<std::size_t>(bi) + 1]; ++p) {
      const index_t bj = block_col_[static_cast<std::size_t>(p)];
      const value_t* block =
          values_.data() + static_cast<std::size_t>(p) * bs * bs;
      for (int r = 0; r < bs; ++r) {
        const index_t i = bi * bs + r;
        if (i >= rows_) break;
        for (int c = 0; c < bs; ++c) {
          const index_t j = bj * bs + c;
          if (j >= cols_) break;
          // Exact zero is the structural padding BSR blocks carry;
          // dropping only bit-exact zeros round-trips every stored value.
          if (block[r * bs + c] != 0.0) {  // ordo-lint: allow(float-eq)
            coo.add(i, j, block[r * bs + c]);
          }
        }
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

}  // namespace ordo
