#include "sparse/csr.hpp"

#include <algorithm>
#include <numeric>

#include "check/invariants.hpp"

namespace ordo {
namespace {

// Shared assembly path: counting sort by row, in-row sort by column,
// duplicate summation.
CsrMatrix assemble(index_t num_rows, index_t num_cols,
                   std::vector<Triplet> entries) {
  std::vector<offset_t> row_ptr(static_cast<std::size_t>(num_rows) + 1, 0);
  for (const Triplet& t : entries) row_ptr[static_cast<std::size_t>(t.row) + 1]++;
  std::partial_sum(row_ptr.begin(), row_ptr.end(), row_ptr.begin());

  // Scatter triplets into row buckets.
  std::vector<offset_t> next(row_ptr.begin(), row_ptr.end() - 1);
  std::vector<index_t> col_idx(entries.size());
  std::vector<value_t> values(entries.size());
  for (const Triplet& t : entries) {
    const offset_t k = next[static_cast<std::size_t>(t.row)]++;
    col_idx[static_cast<std::size_t>(k)] = t.col;
    values[static_cast<std::size_t>(k)] = t.value;
  }

  // Sort each row by column and sum duplicates, compacting in place.
  std::vector<offset_t> out_ptr(static_cast<std::size_t>(num_rows) + 1, 0);
  offset_t out = 0;
  std::vector<std::pair<index_t, value_t>> row;
  for (index_t i = 0; i < num_rows; ++i) {
    row.clear();
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      row.emplace_back(col_idx[static_cast<std::size_t>(k)],
                       values[static_cast<std::size_t>(k)]);
    }
    std::sort(row.begin(), row.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = 0; k < row.size(); ++k) {
      if (k > 0 && row[k].first == row[k - 1].first) {
        values[static_cast<std::size_t>(out - 1)] += row[k].second;
      } else {
        col_idx[static_cast<std::size_t>(out)] = row[k].first;
        values[static_cast<std::size_t>(out)] = row[k].second;
        ++out;
      }
    }
    out_ptr[static_cast<std::size_t>(i) + 1] = out;
  }
  col_idx.resize(static_cast<std::size_t>(out));
  values.resize(static_cast<std::size_t>(out));
  return CsrMatrix(num_rows, num_cols, std::move(out_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace

CsrMatrix::CsrMatrix()
    : storage_(std::make_shared<VectorStorage>()),
      row_ptr_(storage_->row_ptr()),
      col_idx_(storage_->col_idx()),
      values_(storage_->values()) {}

CsrMatrix::CsrMatrix(index_t num_rows, index_t num_cols,
                     std::vector<offset_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<value_t> values)
    : CsrMatrix(num_rows, num_cols,
                std::make_shared<VectorStorage>(
                    std::move(row_ptr), std::move(col_idx),
                    std::move(values))) {}

CsrMatrix::CsrMatrix(index_t num_rows, index_t num_cols,
                     std::shared_ptr<CsrStorage> storage)
    : num_rows_(num_rows), num_cols_(num_cols), storage_(std::move(storage)) {
  require(storage_ != nullptr, "CsrMatrix: null storage");
  row_ptr_ = storage_->row_ptr();
  col_idx_ = storage_->col_idx();
  values_ = storage_->values();
  validate();
}

void CsrMatrix::validate() const {
  // Routed through ordo::check so a malformed construction is counted in
  // the check.violations.csr metric and throws the typed InvariantViolation
  // (still an invalid_argument_error to callers, as before).
  check::validate_csr_raw(num_rows_, num_cols_, row_ptr_, col_idx_,
                          values_.size(), "CsrMatrix");
}

bool operator==(const CsrMatrix& a, const CsrMatrix& b) {
  // Contents, not backends: an mmap-backed matrix equals its in-RAM twin.
  // Exact double equality is the contract here — the study's byte-identity
  // guarantees rest on bit-equal values.
  return a.num_rows_ == b.num_rows_ && a.num_cols_ == b.num_cols_ &&
         std::equal(a.row_ptr_.begin(), a.row_ptr_.end(),
                    b.row_ptr_.begin(), b.row_ptr_.end()) &&
         std::equal(a.col_idx_.begin(), a.col_idx_.end(),
                    b.col_idx_.begin(), b.col_idx_.end()) &&
         std::equal(a.values_.begin(), a.values_.end(), b.values_.begin(),
                    b.values_.end());  // ordo-lint: allow(float-eq)
}

CsrMatrix CsrMatrix::from_coo(const CooMatrix& coo) {
  return assemble(coo.num_rows(), coo.num_cols(), coo.entries());
}

CsrMatrix CsrMatrix::from_coo_symmetric_expand(const CooMatrix& coo) {
  require(coo.num_rows() == coo.num_cols(),
          "from_coo_symmetric_expand: matrix must be square");
  std::vector<Triplet> entries = coo.entries();
  const std::size_t original = entries.size();
  entries.reserve(2 * original);
  for (std::size_t k = 0; k < original; ++k) {
    if (entries[k].row != entries[k].col) {
      entries.push_back(
          Triplet{entries[k].col, entries[k].row, entries[k].value});
    }
  }
  return assemble(coo.num_rows(), coo.num_cols(), std::move(entries));
}

std::int64_t CsrMatrix::storage_bytes() const {
  // Logical CSR footprint (what the performance model prices), independent
  // of which backend holds the arrays.
  return static_cast<std::int64_t>(row_ptr_.size() * sizeof(offset_t)) +
         static_cast<std::int64_t>(col_idx_.size() * sizeof(index_t)) +
         static_cast<std::int64_t>(values_.size() * sizeof(value_t));
}

}  // namespace ordo
