#include "sparse/coo.hpp"

namespace ordo {

CooMatrix::CooMatrix(index_t num_rows, index_t num_cols)
    : num_rows_(num_rows), num_cols_(num_cols) {
  require(num_rows >= 0 && num_cols >= 0, "CooMatrix: negative dimension");
}

void CooMatrix::add(index_t row, index_t col, value_t value) {
  require(row >= 0 && row < num_rows_, "CooMatrix::add: row out of range");
  require(col >= 0 && col < num_cols_, "CooMatrix::add: column out of range");
  entries_.push_back(Triplet{row, col, value});
}

void CooMatrix::add_symmetric(index_t row, index_t col, value_t value) {
  add(row, col, value);
  if (row != col) add(col, row, value);
}

}  // namespace ordo
