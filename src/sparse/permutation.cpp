#include "sparse/permutation.hpp"

#include <numeric>
#include <random>
#include <string>

namespace ordo {

Permutation identity_permutation(index_t n) {
  Permutation perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), index_t{0});
  return perm;
}

bool is_valid_permutation(const Permutation& perm) {
  const std::size_t n = perm.size();
  std::vector<bool> seen(n, false);
  for (index_t p : perm) {
    if (p < 0 || static_cast<std::size_t>(p) >= n) return false;
    if (seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = true;
  }
  return true;
}

void require_valid_permutation(const Permutation& perm, const char* who) {
  require(is_valid_permutation(perm),
          std::string(who) + ": not a valid permutation");
}

Permutation invert_permutation(const Permutation& perm) {
  require_valid_permutation(perm, "invert_permutation");
  Permutation inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  }
  return inv;
}

Permutation compose_permutations(const Permutation& first,
                                 const Permutation& second) {
  require_valid_permutation(first, "compose_permutations(first)");
  require_valid_permutation(second, "compose_permutations(second)");
  require(first.size() == second.size(),
          "compose_permutations: length mismatch");
  // Position i of the final object holds position second[i] of the
  // intermediate object, which holds original index first[second[i]].
  Permutation out(first.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = first[static_cast<std::size_t>(second[i])];
  }
  return out;
}

Permutation random_permutation(index_t n, std::uint64_t seed) {
  Permutation perm = identity_permutation(n);
  std::mt19937_64 rng(seed);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::uniform_int_distribution<std::size_t> dist(0, i - 1);
    std::swap(perm[i - 1], perm[dist(rng)]);
  }
  return perm;
}

}  // namespace ordo
