#include "sparse/storage.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ordo {
namespace {

constexpr char kMagic[8] = {'O', 'R', 'D', 'O', 'C', 'S', 'R', '\0'};

std::int64_t align8(std::int64_t offset) { return (offset + 7) & ~std::int64_t{7}; }

std::string errno_text() { return std::strerror(errno); }

}  // namespace

// ---------------------------------------------------------------------------
// MmapStorage
// ---------------------------------------------------------------------------

std::shared_ptr<MmapStorage> MmapStorage::map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  require(fd >= 0, "MmapStorage: cannot open " + path + ": " + errno_text());

  struct ::stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < static_cast<off_t>(sizeof(OocFileHeader))) {
    ::close(fd);
    throw invalid_argument_error("MmapStorage: " + path +
                                 " is not an ORDOCSR spill file");
  }
  const std::size_t length = static_cast<std::size_t>(st.st_size);

  // MAP_PRIVATE + PROT_READ: reads page straight from the file cache and
  // stay clean/evictable — and, because the kernel charges private
  // *writable* mappings (file-backed included) against RLIMIT_DATA, a
  // read-only map keeps beyond-budget matrices addressable under an RSS
  // budget. values_mut() upgrades to writable on first use; writes then
  // dirty private copy-on-write pages, so the spill file stays immutable.
  void* base = ::mmap(nullptr, length, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  require(base != MAP_FAILED,
          "MmapStorage: mmap of " + path + " failed: " + errno_text());

  auto storage = std::shared_ptr<MmapStorage>(new MmapStorage());
  storage->path_ = path;
  storage->base_ = base;
  storage->length_ = length;

  const OocFileHeader& header = storage->header();
  const bool sane =
      std::memcmp(header.magic, kMagic, sizeof(kMagic)) == 0 &&
      header.version == 1 && header.num_rows >= 0 && header.num_cols >= 0 &&
      header.num_nonzeros >= 0 &&
      header.col_idx_offset ==
          static_cast<std::int64_t>(sizeof(OocFileHeader)) +
              8 * (header.num_rows + 1) &&
      header.values_offset ==
          align8(header.col_idx_offset + 4 * header.num_nonzeros) &&
      static_cast<std::int64_t>(length) >=
          header.values_offset + 8 * header.num_nonzeros;
  require(sane, "MmapStorage: " + path + " has a malformed ORDOCSR header");

  auto* bytes = static_cast<unsigned char*>(base);
  storage->row_ptr_ = {
      reinterpret_cast<const offset_t*>(bytes + sizeof(OocFileHeader)),
      static_cast<std::size_t>(header.num_rows + 1)};
  storage->col_idx_ = {
      reinterpret_cast<const index_t*>(bytes + header.col_idx_offset),
      static_cast<std::size_t>(header.num_nonzeros)};
  storage->values_ = {reinterpret_cast<value_t*>(bytes + header.values_offset),
                      static_cast<std::size_t>(header.num_nonzeros)};
  return storage;
}

MmapStorage::~MmapStorage() {
  if (base_ != nullptr) ::munmap(base_, length_);
}

std::span<value_t> MmapStorage::values_mut() {
  // Relaxed: see the member comment — the upgrade is idempotent and the
  // kernel serializes the page-table change; the flag only skips a syscall.
  if (!writable_.load(std::memory_order_relaxed)) {
    require(::mprotect(base_, length_, PROT_READ | PROT_WRITE) == 0,
            "MmapStorage: cannot make " + path_ +
                " writable (private writable mappings count against "
                "RLIMIT_DATA): " +
                errno_text());
    writable_.store(true, std::memory_order_relaxed);
  }
  return values_;
}

// ---------------------------------------------------------------------------
// PagedCsrWriter
// ---------------------------------------------------------------------------

struct PagedCsrWriter::FileHandle {
  std::FILE* file = nullptr;
  std::string path;

  ~FileHandle() {
    if (file != nullptr) std::fclose(file);
    if (!path.empty()) std::remove(path.c_str());
  }
};

PagedCsrWriter::PagedCsrWriter(std::string path, index_t num_rows,
                               index_t num_cols)
    : path_(std::move(path)), num_rows_(num_rows), num_cols_(num_cols) {
  require(num_rows >= 0 && num_cols >= 0,
          "PagedCsrWriter: negative dimensions");
  row_ptr_.reserve(static_cast<std::size_t>(num_rows) + 1);
  row_ptr_.push_back(0);
  auto open_side = [&](const char* suffix) {
    auto handle = std::make_unique<FileHandle>();
    handle->path = path_ + suffix;
    handle->file = std::fopen(handle->path.c_str(), "wb");
    require(handle->file != nullptr, "PagedCsrWriter: cannot create " +
                                         handle->path + ": " + errno_text());
    return handle;
  };
  cols_out_ = open_side(".cols");
  vals_out_ = open_side(".vals");
}

PagedCsrWriter::~PagedCsrWriter() = default;  // FileHandle removes leftovers

void PagedCsrWriter::append_row(std::span<const index_t> cols,
                                std::span<const value_t> values) {
  require(!finished_, "PagedCsrWriter: append_row after finish");
  require(next_row_ < num_rows_, "PagedCsrWriter: more rows than declared");
  require(cols.size() == values.size(),
          "PagedCsrWriter: cols/values length mismatch");
  for (std::size_t k = 0; k < cols.size(); ++k) {
    require(cols[k] >= 0 && cols[k] < num_cols_ &&
                (k == 0 || cols[k] > cols[k - 1]),
            "PagedCsrWriter: row columns must be strictly ascending and in "
            "range");
  }
  if (!cols.empty()) {
    require(std::fwrite(cols.data(), sizeof(index_t), cols.size(),
                        cols_out_->file) == cols.size() &&
                std::fwrite(values.data(), sizeof(value_t), values.size(),
                            vals_out_->file) == values.size(),
            "PagedCsrWriter: short write to " + path_ + " side files");
  }
  row_ptr_.push_back(row_ptr_.back() + static_cast<offset_t>(cols.size()));
  ++next_row_;
}

std::shared_ptr<MmapStorage> PagedCsrWriter::finish() {
  require(!finished_, "PagedCsrWriter: finish called twice");
  require(next_row_ == num_rows_,
          "PagedCsrWriter: finish before all rows were appended");
  finished_ = true;

  const offset_t nnz = row_ptr_.back();
  OocFileHeader header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.num_rows = num_rows_;
  header.num_cols = num_cols_;
  header.num_nonzeros = nnz;
  header.col_idx_offset =
      static_cast<std::int64_t>(sizeof(OocFileHeader)) + 8 * (num_rows_ + 1);
  header.values_offset = align8(header.col_idx_offset + 4 * nnz);

  require(std::fflush(cols_out_->file) == 0 &&
              std::fflush(vals_out_->file) == 0,
          "PagedCsrWriter: flush of side files failed");

  std::FILE* out = std::fopen(path_.c_str(), "wb");
  require(out != nullptr,
          "PagedCsrWriter: cannot create " + path_ + ": " + errno_text());
  bool ok = std::fwrite(&header, sizeof(header), 1, out) == 1;
  ok = ok && std::fwrite(row_ptr_.data(), sizeof(offset_t), row_ptr_.size(),
                         out) == row_ptr_.size();

  // Stream-copy each side file into its section with a page-sized buffer.
  auto copy_section = [&](FileHandle& side, std::int64_t pad_to) {
    std::FILE* in = std::fopen(side.path.c_str(), "rb");
    if (in == nullptr) return false;
    char buffer[1 << 16];
    std::size_t n = 0;
    bool copied = true;
    while ((n = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
      if (std::fwrite(buffer, 1, n, out) != n) {
        copied = false;
        break;
      }
    }
    copied = copied && std::ferror(in) == 0;
    std::fclose(in);
    if (!copied) return false;
    // Pad to the 8-byte-aligned start of the next section.
    const std::int64_t pos = static_cast<std::int64_t>(std::ftell(out));
    for (std::int64_t p = pos; copied && p < pad_to; ++p) {
      copied = std::fputc(0, out) != EOF;
    }
    return copied;
  };
  ok = ok && copy_section(*cols_out_, header.values_offset);
  ok = ok && copy_section(*vals_out_, header.values_offset + 8 * nnz);
  ok = std::fclose(out) == 0 && ok;
  cols_out_.reset();  // closes and removes the temporaries
  vals_out_.reset();
  if (!ok) {
    std::remove(path_.c_str());
    throw invalid_argument_error("PagedCsrWriter: assembling " + path_ +
                                 " failed: " + errno_text());
  }
  // Release the row-pointer accumulation before mapping: from here on the
  // matrix's heap footprint is bookkeeping only.
  row_ptr_.clear();
  row_ptr_.shrink_to_fit();
  return MmapStorage::map(path_);
}

std::uint64_t CsrStorage::memoized_structure_hash(
    std::uint64_t (*compute)(const CsrStorage&)) const {
  // Relaxed: see the member comment — the computation is pure over
  // immutable data, so the only race is two threads storing the same value.
  std::uint64_t hash = structure_hash_.load(std::memory_order_relaxed);
  if (hash != 0) return hash;
  hash = compute(*this);
  structure_hash_.store(hash, std::memory_order_relaxed);
  return hash;
}

std::string ooc_dir_from_env() {
  if (const char* dir = std::getenv("ORDO_OOC_DIR")) return dir;
  return {};
}

}  // namespace ordo
