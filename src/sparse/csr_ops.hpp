// Structural operations on CSR matrices: transpose, symmetrization,
// permutation application, pattern queries.
#pragma once

#include "sparse/csr.hpp"
#include "sparse/permutation.hpp"

namespace ordo {

/// Returns the transpose of `a`.
CsrMatrix transpose(const CsrMatrix& a);

/// True when the sparsity pattern of a square matrix is symmetric
/// (values are not compared).
bool is_pattern_symmetric(const CsrMatrix& a);

/// Returns the pattern of A + Aᵀ for a square matrix. Where both A(i,j) and
/// A(j,i) exist the values are summed; where only one exists its value is
/// kept. This is the symmetrization the paper applies before running RCM,
/// AMD, ND and GP on structurally unsymmetric matrices.
CsrMatrix symmetrize(const CsrMatrix& a);

/// Applies a symmetric permutation: returns B with B(i, j) = A(perm[i],
/// perm[j]). Requires a square matrix. This is how RCM/AMD/ND/GP/HP
/// orderings are applied.
CsrMatrix permute_symmetric(const CsrMatrix& a, const Permutation& perm);

/// Applies a row-only permutation: returns B with B(i, :) = A(perm[i], :).
/// Columns are left in place. This is how the (unsymmetric) Gray ordering is
/// applied.
CsrMatrix permute_rows(const CsrMatrix& a, const Permutation& perm);

/// Applies independent row and column permutations:
/// B(i, j) = A(row_perm[i], col_perm[j]).
CsrMatrix permute(const CsrMatrix& a, const Permutation& row_perm,
                  const Permutation& col_perm);

/// Number of structurally nonzero diagonal entries.
index_t diagonal_nonzeros(const CsrMatrix& a);

/// Returns a copy of `a` whose diagonal is made structurally full: missing
/// diagonal entries are inserted with the given value. Used to make
/// generated matrices positive-definite-like for the Cholesky study.
CsrMatrix with_full_diagonal(const CsrMatrix& a, value_t diag_value);

/// Lower triangle (including diagonal) of a square matrix.
CsrMatrix lower_triangle(const CsrMatrix& a);

}  // namespace ordo
