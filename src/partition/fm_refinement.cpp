#include "partition/fm_refinement.hpp"

#include <algorithm>
#include <queue>

#include "obs/metrics.hpp"
#include "partition/partitioning.hpp"

namespace ordo {

std::int64_t fm_move_gain(const Graph& g, const std::vector<index_t>& part,
                          index_t v) {
  std::int64_t external = 0, internal = 0;
  const auto neighbors = g.neighbors(v);
  const offset_t base = g.adj_ptr()[v];
  for (std::size_t k = 0; k < neighbors.size(); ++k) {
    const index_t w = g.edge_weight(base + static_cast<offset_t>(k));
    if (part[static_cast<std::size_t>(neighbors[k])] !=
        part[static_cast<std::size_t>(v)]) {
      external += w;
    } else {
      internal += w;
    }
  }
  return external - internal;
}

namespace {

// One FM pass. Returns the improvement achieved (>= 0); `part` is updated to
// the best prefix of the move sequence.
//
// Only *boundary* vertices (those with a neighbour across the cut) are
// seeded into the gain heap — interior vertices can only become worth moving
// after a neighbour moves, at which point the update loop inserts them. This
// keeps a pass proportional to the cut region rather than the whole graph.
std::int64_t fm_pass(const Graph& g, std::vector<index_t>& part,
                     const BisectionBalance& balance) {
  const index_t n = g.num_vertices();
  std::vector<std::int64_t> gain(static_cast<std::size_t>(n));
  std::vector<bool> locked(static_cast<std::size_t>(n), false);
  std::vector<bool> queued(static_cast<std::size_t>(n), false);
  // Max-heap of (gain, vertex) with lazy invalidation: stale entries are
  // skipped when their recorded gain no longer matches.
  std::priority_queue<std::pair<std::int64_t, index_t>> heap;
  for (index_t v = 0; v < n; ++v) {
    bool boundary = false;
    for (index_t u : g.neighbors(v)) {
      if (part[static_cast<std::size_t>(u)] !=
          part[static_cast<std::size_t>(v)]) {
        boundary = true;
        break;
      }
    }
    if (boundary) {
      gain[static_cast<std::size_t>(v)] = fm_move_gain(g, part, v);
      heap.emplace(gain[static_cast<std::size_t>(v)], v);
      queued[static_cast<std::size_t>(v)] = true;
    }
  }

  std::int64_t weight0 = 0;
  for (index_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == 0) weight0 += g.vertex_weight(v);
  }

  std::vector<index_t> moves;
  moves.reserve(static_cast<std::size_t>(n));
  std::int64_t cumulative = 0, best_cumulative = 0;
  std::size_t best_prefix = 0;
  // Deferred entries whose move would violate balance right now; they are
  // reconsidered after the next successful move shifts the weights.
  std::vector<std::pair<std::int64_t, index_t>> deferred;
  // Classic FM moves every vertex once per pass; in practice all improvement
  // comes early, so a pass aborts after a long run of non-improving moves.
  const std::size_t stall_limit = 64 + static_cast<std::size_t>(n) / 32;

  while (!heap.empty()) {
    if (moves.size() - best_prefix > stall_limit) break;
    const auto [g_top, v] = heap.top();
    heap.pop();
    if (locked[static_cast<std::size_t>(v)] ||
        g_top != gain[static_cast<std::size_t>(v)]) {
      continue;  // stale entry
    }
    const index_t from = part[static_cast<std::size_t>(v)];
    const std::int64_t new_weight0 =
        from == 0 ? weight0 - g.vertex_weight(v) : weight0 + g.vertex_weight(v);
    if (new_weight0 < balance.min_weight0 ||
        new_weight0 > balance.max_weight0) {
      deferred.emplace_back(g_top, v);
      continue;
    }

    // Commit the move and lock the vertex.
    part[static_cast<std::size_t>(v)] = 1 - from;
    weight0 = new_weight0;
    locked[static_cast<std::size_t>(v)] = true;
    cumulative += g_top;
    moves.push_back(v);
    if (cumulative > best_cumulative) {
      best_cumulative = cumulative;
      best_prefix = moves.size();
    }

    // Update neighbour gains; vertices newly touching the boundary get a
    // fresh gain computation and enter the heap.
    const auto neighbors = g.neighbors(v);
    const offset_t base = g.adj_ptr()[v];
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const index_t u = neighbors[k];
      if (locked[static_cast<std::size_t>(u)]) continue;
      if (!queued[static_cast<std::size_t>(u)]) {
        gain[static_cast<std::size_t>(u)] = fm_move_gain(g, part, u);
        queued[static_cast<std::size_t>(u)] = true;
      } else {
        const index_t w = g.edge_weight(base + static_cast<offset_t>(k));
        // v moved to u's side iff their parts are now equal.
        if (part[static_cast<std::size_t>(u)] ==
            part[static_cast<std::size_t>(v)]) {
          gain[static_cast<std::size_t>(u)] -= 2 * w;
        } else {
          gain[static_cast<std::size_t>(u)] += 2 * w;
        }
      }
      heap.emplace(gain[static_cast<std::size_t>(u)], u);
    }
    // Balance shifted: blocked vertices may be movable now.
    for (const auto& entry : deferred) heap.push(entry);
    deferred.clear();
  }

  // Roll back every move after the best prefix.
  for (std::size_t k = moves.size(); k > best_prefix; --k) {
    const index_t v = moves[k - 1];
    part[static_cast<std::size_t>(v)] = 1 - part[static_cast<std::size_t>(v)];
  }
  return best_cumulative;
}

}  // namespace

std::int64_t fm_refine_bisection(const Graph& g, std::vector<index_t>& part,
                                 const BisectionBalance& balance,
                                 int max_passes) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "fm_refine_bisection: partition size mismatch");
  std::int64_t total = 0;
  int passes = 0;
  for (int pass = 0; pass < max_passes; ++pass) {
    const std::int64_t improvement = fm_pass(g, part, balance);
    total += improvement;
    ++passes;
    if (improvement <= 0) break;
  }
  ORDO_COUNTER_ADD("partition.fm.passes", passes);
  ORDO_COUNTER_ADD("partition.fm.cut_improvement", total);
  return total;
}

}  // namespace ordo
