#include "partition/hypergraph_partitioner.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>
#include <random>

#include "check/check.hpp"
#include "obs/obs.hpp"

namespace ordo {
namespace {

// Nets larger than this are skipped when scoring match candidates; huge nets
// connect nearly everything and add cost without guiding the matching.
constexpr std::size_t kMaxNetSizeForMatching = 64;

std::vector<index_t> heavy_connectivity_matching(const Hypergraph& h,
                                                 std::uint64_t seed) {
  const index_t n = h.num_vertices();
  std::vector<index_t> match(static_cast<std::size_t>(n), -1);
  std::vector<index_t> visit_order(static_cast<std::size_t>(n));
  std::iota(visit_order.begin(), visit_order.end(), index_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(visit_order.begin(), visit_order.end(), rng);

  // Scratch scoring array, reset per vertex via a touched list.
  std::vector<index_t> score(static_cast<std::size_t>(n), 0);
  std::vector<index_t> touched;
  for (index_t v : visit_order) {
    if (match[static_cast<std::size_t>(v)] >= 0) continue;
    touched.clear();
    for (index_t e : h.vertex_nets(v)) {
      const auto pins = h.net_pins(e);
      if (pins.size() > kMaxNetSizeForMatching) continue;
      for (index_t u : pins) {
        if (u == v || match[static_cast<std::size_t>(u)] >= 0) continue;
        if (score[static_cast<std::size_t>(u)] == 0) touched.push_back(u);
        score[static_cast<std::size_t>(u)] += h.net_weight(e);
      }
    }
    index_t best = -1, best_score = 0;
    for (index_t u : touched) {
      if (score[static_cast<std::size_t>(u)] > best_score ||
          (score[static_cast<std::size_t>(u)] == best_score && best >= 0 &&
           u < best)) {
        best = u;
        best_score = score[static_cast<std::size_t>(u)];
      }
      score[static_cast<std::size_t>(u)] = 0;
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;
    }
  }
  return match;
}

}  // namespace

HypergraphCoarseLevel coarsen_hypergraph_once(const Hypergraph& h,
                                              std::uint64_t seed) {
  const std::vector<index_t> match = heavy_connectivity_matching(h, seed);
  const index_t n = h.num_vertices();

  HypergraphCoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  index_t coarse_count = 0;
  std::vector<index_t> coarse_weights;
  for (index_t v = 0; v < n; ++v) {
    const index_t partner = match[static_cast<std::size_t>(v)];
    if (partner >= v) {
      level.fine_to_coarse[static_cast<std::size_t>(v)] = coarse_count;
      index_t weight = h.vertex_weight(v);
      if (partner != v) {
        level.fine_to_coarse[static_cast<std::size_t>(partner)] = coarse_count;
        weight += h.vertex_weight(partner);
      }
      coarse_weights.push_back(weight);
      ++coarse_count;
    }
  }

  // Remap nets, deduplicating pins; drop nets with fewer than two pins.
  std::vector<offset_t> net_ptr{0};
  std::vector<index_t> pins;
  std::vector<index_t> net_weights;
  std::vector<index_t> seen_at(static_cast<std::size_t>(coarse_count), -1);
  for (index_t e = 0; e < h.num_nets(); ++e) {
    const std::size_t begin = pins.size();
    for (index_t pin : h.net_pins(e)) {
      const index_t c = level.fine_to_coarse[static_cast<std::size_t>(pin)];
      if (seen_at[static_cast<std::size_t>(c)] != e) {
        seen_at[static_cast<std::size_t>(c)] = e;
        pins.push_back(c);
      }
    }
    if (pins.size() - begin < 2) {
      pins.resize(begin);  // degenerate net: cannot be cut, drop it
    } else {
      net_ptr.push_back(static_cast<offset_t>(pins.size()));
      net_weights.push_back(h.net_weight(e));
    }
  }
  level.hypergraph =
      Hypergraph(coarse_count, std::move(net_ptr), std::move(pins),
                 std::move(coarse_weights), std::move(net_weights));
  return level;
}

namespace {

struct HgBalance {
  std::int64_t min_weight0 = 0;
  std::int64_t max_weight0 = 0;
};

HgBalance make_balance(const Hypergraph& h, double target_fraction,
                       double tolerance) {
  const double total = static_cast<double>(h.total_vertex_weight());
  return HgBalance{
      static_cast<std::int64_t>(
          std::floor(total * target_fraction * (1.0 - tolerance))),
      static_cast<std::int64_t>(
          std::ceil(total * target_fraction * (1.0 + tolerance)))};
}

// Grows part 0 by hypergraph BFS from `start` until it reaches the target
// weight, restarting from an unassigned vertex when the frontier empties.
std::vector<index_t> grow_bisection(const Hypergraph& h, index_t start,
                                    std::int64_t target_weight) {
  const index_t n = h.num_vertices();
  std::vector<index_t> part(static_cast<std::size_t>(n), 1);
  std::vector<bool> queued(static_cast<std::size_t>(n), false);
  std::queue<index_t> frontier;
  frontier.push(start);
  queued[static_cast<std::size_t>(start)] = true;
  std::int64_t weight0 = 0;
  index_t scan = 0;
  while (weight0 < target_weight) {
    if (frontier.empty()) {
      while (scan < n && part[static_cast<std::size_t>(scan)] == 0) ++scan;
      if (scan >= n) break;
      if (!queued[static_cast<std::size_t>(scan)]) {
        frontier.push(scan);
        queued[static_cast<std::size_t>(scan)] = true;
      } else {
        ++scan;
        continue;
      }
    }
    const index_t v = frontier.front();
    frontier.pop();
    if (part[static_cast<std::size_t>(v)] == 0) continue;
    part[static_cast<std::size_t>(v)] = 0;
    weight0 += h.vertex_weight(v);
    for (index_t e : h.vertex_nets(v)) {
      const auto pins = h.net_pins(e);
      if (pins.size() > kMaxNetSizeForMatching * 4) continue;
      for (index_t u : pins) {
        if (part[static_cast<std::size_t>(u)] == 1 &&
            !queued[static_cast<std::size_t>(u)]) {
          queued[static_cast<std::size_t>(u)] = true;
          frontier.push(u);
        }
      }
    }
  }
  return part;
}

// One FM pass under the cut-net metric. pins_in[e][p] tracks how many pins
// of net e lie in part p. Only boundary vertices (pins of cut nets) are
// seeded into the gain heap, and gains are maintained with exact delta
// updates on each move — a net's pins are only revisited when its pin counts
// cross a critical value (0, 1 or 2 on either side), which is the standard
// FM trick that keeps a pass near-linear in the number of pins.
std::int64_t hypergraph_fm_pass(const Hypergraph& h,
                                std::vector<index_t>& part,
                                const HgBalance& balance) {
  const index_t n = h.num_vertices();
  const index_t num_nets = h.num_nets();
  std::vector<std::array<index_t, 2>> pins_in(
      static_cast<std::size_t>(num_nets), {0, 0});
  for (index_t e = 0; e < num_nets; ++e) {
    for (index_t pin : h.net_pins(e)) {
      pins_in[static_cast<std::size_t>(e)]
             [static_cast<std::size_t>(part[static_cast<std::size_t>(pin)])]++;
    }
  }

  // Cut-net gain of moving v from side s to 1-s:
  //   +w(e) for nets where v is the last pin on side s (net becomes uncut),
  //   -w(e) for nets fully on side s with >1 pins (net becomes cut).
  auto move_gain = [&](index_t v) {
    const index_t s = part[static_cast<std::size_t>(v)];
    std::int64_t gain = 0;
    for (index_t e : h.vertex_nets(v)) {
      const auto& counts = pins_in[static_cast<std::size_t>(e)];
      const index_t same = counts[static_cast<std::size_t>(s)];
      const index_t other = counts[static_cast<std::size_t>(1 - s)];
      if (same == 1 && other >= 1) gain += h.net_weight(e);
      if (other == 0 && same >= 2) gain -= h.net_weight(e);
    }
    return gain;
  };

  std::vector<std::int64_t> gain(static_cast<std::size_t>(n));
  std::vector<bool> locked(static_cast<std::size_t>(n), false);
  std::vector<bool> queued(static_cast<std::size_t>(n), false);
  std::priority_queue<std::pair<std::int64_t, index_t>> heap;
  auto enqueue = [&](index_t v) {
    if (queued[static_cast<std::size_t>(v)] ||
        locked[static_cast<std::size_t>(v)]) {
      return;
    }
    gain[static_cast<std::size_t>(v)] = move_gain(v);
    queued[static_cast<std::size_t>(v)] = true;
    heap.emplace(gain[static_cast<std::size_t>(v)], v);
  };
  for (index_t e = 0; e < num_nets; ++e) {
    const auto& counts = pins_in[static_cast<std::size_t>(e)];
    if (counts[0] > 0 && counts[1] > 0) {
      for (index_t pin : h.net_pins(e)) enqueue(pin);
    }
  }

  std::int64_t weight0 = 0;
  for (index_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == 0) weight0 += h.vertex_weight(v);
  }

  std::vector<index_t> moves;
  std::int64_t cumulative = 0, best_cumulative = 0;
  std::size_t best_prefix = 0;
  std::vector<std::pair<std::int64_t, index_t>> deferred;
  // Abort the pass after a long run of non-improving moves (see the graph
  // FM for rationale).
  const std::size_t stall_limit = 64 + static_cast<std::size_t>(n) / 32;
  while (!heap.empty()) {
    if (moves.size() - best_prefix > stall_limit) break;
    const auto [g_top, v] = heap.top();
    heap.pop();
    if (locked[static_cast<std::size_t>(v)] ||
        g_top != gain[static_cast<std::size_t>(v)]) {
      continue;  // stale entry
    }
    const index_t from = part[static_cast<std::size_t>(v)];
    const std::int64_t new_weight0 =
        from == 0 ? weight0 - h.vertex_weight(v) : weight0 + h.vertex_weight(v);
    if (new_weight0 < balance.min_weight0 ||
        new_weight0 > balance.max_weight0) {
      deferred.emplace_back(g_top, v);
      continue;
    }

    part[static_cast<std::size_t>(v)] = 1 - from;
    weight0 = new_weight0;
    locked[static_cast<std::size_t>(v)] = true;
    cumulative += g_top;
    moves.push_back(v);
    if (cumulative > best_cumulative) {
      best_cumulative = cumulative;
      best_prefix = moves.size();
    }

    // Vertices that newly reach the boundary are enqueued only after every
    // net of v has had its counts updated, so their full gain is computed
    // against the post-move state.
    std::vector<index_t> newly_boundary;
    for (index_t e : h.vertex_nets(v)) {
      auto& counts = pins_in[static_cast<std::size_t>(e)];
      // Pin counts *before* the move; v still counts toward `from`.
      const index_t f = counts[static_cast<std::size_t>(from)];
      const index_t t = counts[static_cast<std::size_t>(1 - from)];
      const index_t w = h.net_weight(e);
      // Delta rules for the cut-net gain (derived from the gain definition
      // above): a pin's gain only changes when the net's counts cross a
      // critical value.
      if (f == 1 || f == 2 || t == 0 || t == 1) {
        for (index_t u : h.net_pins(e)) {
          if (u == v || locked[static_cast<std::size_t>(u)]) continue;
          if (!queued[static_cast<std::size_t>(u)]) {
            newly_boundary.push_back(u);
            continue;
          }
          std::int64_t delta = 0;
          if (part[static_cast<std::size_t>(u)] == from) {
            if (f == 2) delta += w;  // u becomes the last `from` pin
            if (t == 0) delta += w;  // e is no longer uncut-on-`from`
          } else {
            if (f == 1) delta -= w;  // e becomes uncut-on-`to`
            if (t == 1) delta -= w;  // u is no longer the last `to` pin
          }
          if (delta != 0) {
            gain[static_cast<std::size_t>(u)] += delta;
            heap.emplace(gain[static_cast<std::size_t>(u)], u);
          }
        }
      }
      counts[static_cast<std::size_t>(from)]--;
      counts[static_cast<std::size_t>(1 - from)]++;
    }
    for (index_t u : newly_boundary) enqueue(u);
    for (const auto& entry : deferred) heap.push(entry);
    deferred.clear();
  }

  for (std::size_t k = moves.size(); k > best_prefix; --k) {
    const index_t v = moves[k - 1];
    part[static_cast<std::size_t>(v)] = 1 - part[static_cast<std::size_t>(v)];
  }
  return best_cumulative;
}

std::int64_t hypergraph_fm_refine(const Hypergraph& h,
                                  std::vector<index_t>& part,
                                  const HgBalance& balance, int max_passes) {
  std::int64_t total = 0;
  for (int pass = 0; pass < max_passes; ++pass) {
    const std::int64_t improvement = hypergraph_fm_pass(h, part, balance);
    total += improvement;
    if (improvement <= 0) break;
  }
  return total;
}

struct HgSubgraph {
  Hypergraph hypergraph;
  std::vector<index_t> to_parent;
};

HgSubgraph induced_sub_hypergraph(const Hypergraph& h,
                                  const std::vector<index_t>& part,
                                  index_t which) {
  HgSubgraph sub;
  std::vector<index_t> to_sub(static_cast<std::size_t>(h.num_vertices()), -1);
  std::vector<index_t> vweights;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    if (part[static_cast<std::size_t>(v)] == which) {
      to_sub[static_cast<std::size_t>(v)] =
          static_cast<index_t>(sub.to_parent.size());
      sub.to_parent.push_back(v);
      vweights.push_back(h.vertex_weight(v));
    }
  }
  std::vector<offset_t> net_ptr{0};
  std::vector<index_t> pins;
  std::vector<index_t> net_weights;
  for (index_t e = 0; e < h.num_nets(); ++e) {
    const std::size_t begin = pins.size();
    for (index_t pin : h.net_pins(e)) {
      const index_t sv = to_sub[static_cast<std::size_t>(pin)];
      if (sv >= 0) pins.push_back(sv);
    }
    if (pins.size() - begin < 2) {
      pins.resize(begin);
    } else {
      net_ptr.push_back(static_cast<offset_t>(pins.size()));
      net_weights.push_back(h.net_weight(e));
    }
  }
  sub.hypergraph = Hypergraph(static_cast<index_t>(sub.to_parent.size()),
                              std::move(net_ptr), std::move(pins),
                              std::move(vweights), std::move(net_weights));
  return sub;
}

void recursive_bisect_hg(const Hypergraph& h, const PartitionOptions& options,
                         index_t num_parts, index_t first_part,
                         const std::vector<index_t>& to_parent,
                         std::vector<index_t>& out_part, std::uint64_t seed) {
  if (num_parts <= 1 || h.num_vertices() == 0) {
    for (index_t v = 0; v < h.num_vertices(); ++v) {
      out_part[static_cast<std::size_t>(
          to_parent[static_cast<std::size_t>(v)])] = first_part;
    }
    return;
  }
  poll_cancelled(options.cancel, "partition_hypergraph");
  const index_t left_parts = num_parts / 2;
  const index_t right_parts = num_parts - left_parts;
  const double target_fraction =
      static_cast<double>(left_parts) / static_cast<double>(num_parts);

  PartitionOptions bisect_options = options;
  bisect_options.seed = seed;
  const PartitionResult bisection =
      bisect_hypergraph(h, target_fraction, bisect_options);

  const HgSubgraph left = induced_sub_hypergraph(h, bisection.part, 0);
  const HgSubgraph right = induced_sub_hypergraph(h, bisection.part, 1);
  std::vector<index_t> left_map(left.to_parent.size());
  for (std::size_t i = 0; i < left.to_parent.size(); ++i) {
    left_map[i] = to_parent[static_cast<std::size_t>(left.to_parent[i])];
  }
  std::vector<index_t> right_map(right.to_parent.size());
  for (std::size_t i = 0; i < right.to_parent.size(); ++i) {
    right_map[i] = to_parent[static_cast<std::size_t>(right.to_parent[i])];
  }
  recursive_bisect_hg(left.hypergraph, options, left_parts, first_part,
                      left_map, out_part, seed * 6364136223846793005ULL + 1);
  recursive_bisect_hg(right.hypergraph, options, right_parts,
                      first_part + left_parts, right_map, out_part,
                      seed * 6364136223846793005ULL + 2);
}

}  // namespace

PartitionResult bisect_hypergraph(const Hypergraph& h, double target_fraction,
                                  const PartitionOptions& options) {
  require(h.num_vertices() > 0, "bisect_hypergraph: empty hypergraph");

  std::vector<HypergraphCoarseLevel> hierarchy;
  const Hypergraph* current = &h;
  std::uint64_t seed = options.seed;
  while (current->num_vertices() > options.coarsen_to) {
    HypergraphCoarseLevel level = coarsen_hypergraph_once(*current, seed++);
    if (level.hypergraph.num_vertices() >
        static_cast<index_t>(0.9 * current->num_vertices())) {
      break;
    }
    hierarchy.push_back(std::move(level));
    current = &hierarchy.back().hypergraph;
  }
  ORDO_COUNTER_ADD("partition.hp.bisections", 1);
  ORDO_COUNTER_ADD("partition.hp.coarsen_levels",
                   static_cast<std::int64_t>(hierarchy.size()));

  const std::int64_t target_weight = static_cast<std::int64_t>(
      static_cast<double>(current->total_vertex_weight()) * target_fraction +
      0.5);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<index_t> dist(0, current->num_vertices() - 1);
  std::vector<index_t> part = grow_bisection(*current, dist(rng), target_weight);
  hypergraph_fm_refine(
      *current, part,
      make_balance(*current, target_fraction, options.imbalance_tolerance),
      options.refine_passes);

  for (std::size_t level = hierarchy.size(); level > 0; --level) {
    const Hypergraph& fine =
        level >= 2 ? hierarchy[level - 2].hypergraph : h;
    const std::vector<index_t>& fine_to_coarse =
        hierarchy[level - 1].fine_to_coarse;
    std::vector<index_t> fine_part(
        static_cast<std::size_t>(fine.num_vertices()));
    for (index_t v = 0; v < fine.num_vertices(); ++v) {
      fine_part[static_cast<std::size_t>(v)] = part[static_cast<std::size_t>(
          fine_to_coarse[static_cast<std::size_t>(v)])];
    }
    part = std::move(fine_part);
    hypergraph_fm_refine(
        fine, part,
        make_balance(fine, target_fraction, options.imbalance_tolerance),
        options.refine_passes);
  }

  PartitionResult result;
  result.part = std::move(part);
  result.num_parts = 2;
  result.cut = compute_cut_nets(h, result.part);
  std::int64_t weight0 = 0;
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    if (result.part[static_cast<std::size_t>(v)] == 0) {
      weight0 += h.vertex_weight(v);
    }
  }
  const double average = static_cast<double>(h.total_vertex_weight()) / 2.0;
  result.imbalance =
      average > 0
          ? std::max(static_cast<double>(weight0),
                     static_cast<double>(h.total_vertex_weight() - weight0)) /
                average
          : 1.0;
  ORDO_CHECK(
      validate_hypergraph_partition(h, result, 2, "bisect_hypergraph"));
  return result;
}

PartitionResult partition_hypergraph(const Hypergraph& h,
                                     const PartitionOptions& options) {
  require(options.num_parts >= 1,
          "partition_hypergraph: num_parts must be >= 1");
  ORDO_SCOPE("partition/hypergraph_kway");
  PartitionResult result;
  result.part.assign(static_cast<std::size_t>(h.num_vertices()), 0);
  result.num_parts = options.num_parts;
  if (options.num_parts > 1 && h.num_vertices() > 0) {
    std::vector<index_t> to_parent(static_cast<std::size_t>(h.num_vertices()));
    std::iota(to_parent.begin(), to_parent.end(), index_t{0});
    recursive_bisect_hg(h, options, options.num_parts, 0, to_parent,
                        result.part, options.seed);
  }
  result.cut = compute_cut_nets(h, result.part);

  std::vector<std::int64_t> weights(
      static_cast<std::size_t>(options.num_parts), 0);
  for (index_t v = 0; v < h.num_vertices(); ++v) {
    weights[static_cast<std::size_t>(
        result.part[static_cast<std::size_t>(v)])] += h.vertex_weight(v);
  }
  const double average =
      static_cast<double>(h.total_vertex_weight()) / options.num_parts;
  result.imbalance =
      average > 0 ? static_cast<double>(*std::max_element(weights.begin(),
                                                          weights.end())) /
                        average
                  : 1.0;
  ORDO_CHECK(validate_hypergraph_partition(h, result, options.num_parts,
                                           "partition_hypergraph"));
  return result;
}

}  // namespace ordo
