#include "partition/initial_partition.hpp"

#include <algorithm>
#include <limits>
#include <random>

#include "partition/partitioning.hpp"

namespace ordo {
namespace {

// Grows part 0 from `start` until it holds ~target_weight. Gain of absorbing
// v = (weight of edges from v into part 0) - (weight of edges to the rest):
// absorbing high-gain vertices keeps the boundary small.
std::vector<index_t> grow_from(const Graph& g, index_t start,
                               std::int64_t target_weight) {
  const index_t n = g.num_vertices();
  std::vector<index_t> part(static_cast<std::size_t>(n), 1);
  std::vector<std::int64_t> gain(static_cast<std::size_t>(n), 0);
  std::vector<bool> in_frontier(static_cast<std::size_t>(n), false);
  std::vector<index_t> frontier;

  std::int64_t weight0 = 0;
  index_t next = start;
  while (next >= 0 && weight0 < target_weight) {
    const index_t v = next;
    part[static_cast<std::size_t>(v)] = 0;
    weight0 += g.vertex_weight(v);
    in_frontier[static_cast<std::size_t>(v)] = false;

    const auto neighbors = g.neighbors(v);
    const offset_t base = g.adj_ptr()[v];
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const index_t u = neighbors[k];
      if (part[static_cast<std::size_t>(u)] == 0) continue;
      const index_t w = g.edge_weight(base + static_cast<offset_t>(k));
      gain[static_cast<std::size_t>(u)] += 2 * w;
      if (!in_frontier[static_cast<std::size_t>(u)]) {
        in_frontier[static_cast<std::size_t>(u)] = true;
        frontier.push_back(u);
      }
    }

    // Pick the best frontier vertex; compact out absorbed entries lazily.
    next = -1;
    std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
    std::size_t out = 0;
    for (std::size_t k = 0; k < frontier.size(); ++k) {
      const index_t u = frontier[k];
      if (part[static_cast<std::size_t>(u)] == 0) continue;
      frontier[out++] = u;
      if (gain[static_cast<std::size_t>(u)] > best_gain) {
        best_gain = gain[static_cast<std::size_t>(u)];
        next = u;
      }
    }
    frontier.resize(out);

    // Disconnected remainder: restart growth from any unassigned vertex.
    if (next < 0 && weight0 < target_weight) {
      for (index_t u = 0; u < n; ++u) {
        if (part[static_cast<std::size_t>(u)] == 1) {
          next = u;
          break;
        }
      }
    }
  }
  return part;
}

}  // namespace

std::vector<index_t> greedy_graph_growing_bisection(const Graph& g,
                                                    double target_fraction,
                                                    std::uint64_t seed,
                                                    int num_trials) {
  const index_t n = g.num_vertices();
  require(n > 0, "greedy_graph_growing_bisection: empty graph");
  require(target_fraction > 0.0 && target_fraction < 1.0,
          "greedy_graph_growing_bisection: target fraction must be in (0,1)");
  const std::int64_t target_weight = static_cast<std::int64_t>(
      static_cast<double>(g.total_vertex_weight()) * target_fraction + 0.5);

  std::mt19937_64 rng(seed);
  std::vector<index_t> best;
  std::int64_t best_cut = std::numeric_limits<std::int64_t>::max();
  for (int trial = 0; trial < std::max(1, num_trials); ++trial) {
    std::uniform_int_distribution<index_t> dist(0, n - 1);
    const index_t start = pseudo_peripheral_vertex(g, dist(rng));
    std::vector<index_t> part = grow_from(g, start, target_weight);
    const std::int64_t cut = compute_edge_cut(g, part);
    if (cut < best_cut) {
      best_cut = cut;
      best = std::move(part);
    }
  }
  return best;
}

}  // namespace ordo
