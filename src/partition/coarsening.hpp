// Coarsening phase of the multilevel graph partitioner.
//
// Heavy-edge matching (HEM): vertices are visited in a random order; each
// unmatched vertex is matched to the unmatched neighbour connected by the
// heaviest edge. Matched pairs are contracted into a single coarse vertex
// whose weight is the sum of the pair's weights; parallel edges are merged by
// summing their weights. This is the coarsening scheme of Karypis & Kumar's
// multilevel paradigm (the basis of METIS).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ordo {

/// One level of the coarsening hierarchy.
struct CoarseLevel {
  Graph graph;                    ///< the coarse graph
  std::vector<index_t> fine_to_coarse;  ///< map from fine to coarse vertex ids
};

/// Computes a heavy-edge matching. Returns match[v] = partner of v, or v
/// itself when v stays unmatched.
std::vector<index_t> heavy_edge_matching(const Graph& g, std::uint64_t seed);

/// Contracts a matching into the coarse graph.
CoarseLevel contract(const Graph& g, const std::vector<index_t>& match);

/// Convenience: one full coarsening step (match + contract).
CoarseLevel coarsen_once(const Graph& g, std::uint64_t seed);

}  // namespace ordo
