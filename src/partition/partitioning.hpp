// Common partitioning types and quality metrics shared by the graph and
// hypergraph partitioners.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sparse/types.hpp"

namespace ordo {

/// Options controlling the multilevel partitioners.
struct PartitionOptions {
  /// Number of parts to produce.
  index_t num_parts = 2;
  /// Allowed relative deviation of any part's weight from the average
  /// (0.05 => each part may weigh up to 1.05x the average).
  double imbalance_tolerance = 0.05;
  /// Coarsening stops once the graph has at most this many vertices.
  index_t coarsen_to = 96;
  /// Maximum FM refinement passes per level.
  int refine_passes = 8;
  /// Seed for tie-breaking and random visit orders.
  std::uint64_t seed = 1;
  /// Optional cooperative cancellation flag, polled once per bisection (see
  /// poll_cancelled in sparse/types.hpp). Null means not cancellable.
  const std::atomic<bool>* cancel = nullptr;
};

/// A k-way partition assignment with its quality metrics.
struct PartitionResult {
  std::vector<index_t> part;  ///< part id in [0, num_parts) per vertex
  index_t num_parts = 0;
  std::int64_t cut = 0;     ///< edge-cut (graph) or cut-net count (hypergraph)
  double imbalance = 1.0;   ///< max part weight / average part weight
};

/// Sum of edge weights crossing between different parts.
std::int64_t compute_edge_cut(const Graph& g, const std::vector<index_t>& part);

/// Ratio of the heaviest part's vertex weight to the average part weight.
double compute_partition_imbalance(const Graph& g,
                                   const std::vector<index_t>& part,
                                   index_t num_parts);

/// Per-part vertex weights.
std::vector<std::int64_t> partition_weights(const Graph& g,
                                            const std::vector<index_t>& part,
                                            index_t num_parts);

}  // namespace ordo
