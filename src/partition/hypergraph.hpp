// Hypergraph structure for the column-net model.
//
// In the column-net model of a sparse matrix (Catalyurek & Aykanat), matrix
// rows become vertices and matrix columns become nets; net j pins every row
// that has a nonzero in column j. Partitioning the vertices while minimizing
// the number of cut nets groups rows so that few columns are shared across
// row blocks — the objective the paper's HP ordering uses (PaToH, cut-net
// metric).
#pragma once

#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace ordo {

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Builds from pin lists: net_ptr/pins give, for each net, the vertices it
  /// connects. Vertex and net weights default to 1 when empty.
  Hypergraph(index_t num_vertices, std::vector<offset_t> net_ptr,
             std::vector<index_t> pins, std::vector<index_t> vertex_weights,
             std::vector<index_t> net_weights);

  /// Column-net hypergraph of a matrix: one vertex per row, one net per
  /// column that has at least two nonzeros (single-pin nets can never be cut
  /// and are dropped).
  static Hypergraph column_net(const CsrMatrix& a);

  index_t num_vertices() const { return num_vertices_; }
  index_t num_nets() const { return static_cast<index_t>(net_ptr_.size()) - 1; }
  offset_t num_pins() const { return net_ptr_.empty() ? 0 : net_ptr_.back(); }

  /// Vertices connected by net e.
  std::span<const index_t> net_pins(index_t e) const {
    return std::span<const index_t>(pins_).subspan(
        static_cast<std::size_t>(net_ptr_[e]),
        static_cast<std::size_t>(net_ptr_[e + 1] - net_ptr_[e]));
  }

  /// Nets incident to vertex v.
  std::span<const index_t> vertex_nets(index_t v) const {
    return std::span<const index_t>(vertex_net_list_).subspan(
        static_cast<std::size_t>(vertex_net_ptr_[v]),
        static_cast<std::size_t>(vertex_net_ptr_[v + 1] - vertex_net_ptr_[v]));
  }

  index_t vertex_weight(index_t v) const {
    return vertex_weights_.empty() ? 1 : vertex_weights_[v];
  }
  index_t net_weight(index_t e) const {
    return net_weights_.empty() ? 1 : net_weights_[e];
  }

  std::int64_t total_vertex_weight() const;

 private:
  void build_vertex_incidence();

  index_t num_vertices_ = 0;
  std::vector<offset_t> net_ptr_{0};
  std::vector<index_t> pins_;
  std::vector<offset_t> vertex_net_ptr_{0};
  std::vector<index_t> vertex_net_list_;
  std::vector<index_t> vertex_weights_;  // empty => all ones
  std::vector<index_t> net_weights_;     // empty => all ones
};

/// Number of cut nets (weighted): nets with pins in more than one part.
std::int64_t compute_cut_nets(const Hypergraph& h,
                              const std::vector<index_t>& part);

/// Connectivity-minus-one metric: sum over nets of (number of parts the net
/// spans - 1), weighted. This equals the off-diagonal nonzero-segment count
/// that PaToH's connectivity metric models.
std::int64_t compute_connectivity_minus_one(const Hypergraph& h,
                                            const std::vector<index_t>& part,
                                            index_t num_parts);

}  // namespace ordo
