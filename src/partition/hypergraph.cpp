#include "partition/hypergraph.hpp"

#include <algorithm>
#include <numeric>

namespace ordo {

Hypergraph::Hypergraph(index_t num_vertices, std::vector<offset_t> net_ptr,
                       std::vector<index_t> pins,
                       std::vector<index_t> vertex_weights,
                       std::vector<index_t> net_weights)
    : num_vertices_(num_vertices),
      net_ptr_(std::move(net_ptr)),
      pins_(std::move(pins)),
      vertex_weights_(std::move(vertex_weights)),
      net_weights_(std::move(net_weights)) {
  require(num_vertices_ >= 0, "Hypergraph: negative vertex count");
  require(!net_ptr_.empty() && net_ptr_.front() == 0 &&
              net_ptr_.back() == static_cast<offset_t>(pins_.size()),
          "Hypergraph: malformed net_ptr");
  for (index_t pin : pins_) {
    require(pin >= 0 && pin < num_vertices_, "Hypergraph: pin out of range");
  }
  require(vertex_weights_.empty() ||
              vertex_weights_.size() == static_cast<std::size_t>(num_vertices_),
          "Hypergraph: vertex weight count mismatch");
  require(net_weights_.empty() ||
              net_weights_.size() == net_ptr_.size() - 1,
          "Hypergraph: net weight count mismatch");
  build_vertex_incidence();
}

void Hypergraph::build_vertex_incidence() {
  vertex_net_ptr_.assign(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (index_t pin : pins_) {
    vertex_net_ptr_[static_cast<std::size_t>(pin) + 1]++;
  }
  std::partial_sum(vertex_net_ptr_.begin(), vertex_net_ptr_.end(),
                   vertex_net_ptr_.begin());
  vertex_net_list_.resize(pins_.size());
  std::vector<offset_t> next(vertex_net_ptr_.begin(),
                             vertex_net_ptr_.end() - 1);
  for (index_t e = 0; e < num_nets(); ++e) {
    for (index_t pin : net_pins(e)) {
      vertex_net_list_[static_cast<std::size_t>(
          next[static_cast<std::size_t>(pin)]++)] = e;
    }
  }
}

Hypergraph Hypergraph::column_net(const CsrMatrix& a) {
  // Count pins per column, keeping only columns with >= 2 nonzeros.
  std::vector<offset_t> col_count(static_cast<std::size_t>(a.num_cols()), 0);
  for (index_t j : a.col_idx()) col_count[static_cast<std::size_t>(j)]++;

  std::vector<index_t> col_to_net(static_cast<std::size_t>(a.num_cols()), -1);
  std::vector<offset_t> net_ptr{0};
  for (index_t j = 0; j < a.num_cols(); ++j) {
    if (col_count[static_cast<std::size_t>(j)] >= 2) {
      col_to_net[static_cast<std::size_t>(j)] =
          static_cast<index_t>(net_ptr.size()) - 1;
      net_ptr.push_back(net_ptr.back() + col_count[static_cast<std::size_t>(j)]);
    }
  }

  std::vector<index_t> pins(static_cast<std::size_t>(net_ptr.back()));
  std::vector<offset_t> next(net_ptr.begin(), net_ptr.end() - 1);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    for (index_t j : a.row_cols(i)) {
      const index_t e = col_to_net[static_cast<std::size_t>(j)];
      if (e >= 0) {
        pins[static_cast<std::size_t>(next[static_cast<std::size_t>(e)]++)] = i;
      }
    }
  }
  return Hypergraph(a.num_rows(), std::move(net_ptr), std::move(pins), {}, {});
}

std::int64_t Hypergraph::total_vertex_weight() const {
  if (vertex_weights_.empty()) return num_vertices_;
  return std::accumulate(vertex_weights_.begin(), vertex_weights_.end(),
                         std::int64_t{0});
}

std::int64_t compute_cut_nets(const Hypergraph& h,
                              const std::vector<index_t>& part) {
  require(part.size() == static_cast<std::size_t>(h.num_vertices()),
          "compute_cut_nets: partition size mismatch");
  std::int64_t cut = 0;
  for (index_t e = 0; e < h.num_nets(); ++e) {
    const auto pins = h.net_pins(e);
    if (pins.empty()) continue;
    const index_t first = part[static_cast<std::size_t>(pins.front())];
    for (index_t pin : pins) {
      if (part[static_cast<std::size_t>(pin)] != first) {
        cut += h.net_weight(e);
        break;
      }
    }
  }
  return cut;
}

std::int64_t compute_connectivity_minus_one(const Hypergraph& h,
                                            const std::vector<index_t>& part,
                                            index_t num_parts) {
  require(part.size() == static_cast<std::size_t>(h.num_vertices()),
          "compute_connectivity_minus_one: partition size mismatch");
  std::int64_t total = 0;
  std::vector<index_t> seen_at(static_cast<std::size_t>(num_parts), -1);
  for (index_t e = 0; e < h.num_nets(); ++e) {
    index_t spanned = 0;
    for (index_t pin : h.net_pins(e)) {
      const index_t p = part[static_cast<std::size_t>(pin)];
      if (seen_at[static_cast<std::size_t>(p)] != e) {
        seen_at[static_cast<std::size_t>(p)] = e;
        ++spanned;
      }
    }
    if (spanned > 1) total += static_cast<std::int64_t>(spanned - 1) *
                              h.net_weight(e);
  }
  return total;
}

}  // namespace ordo
