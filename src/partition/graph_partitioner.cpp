#include "partition/graph_partitioner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "check/check.hpp"
#include "obs/obs.hpp"
#include "partition/coarsening.hpp"
#include "partition/fm_refinement.hpp"
#include "partition/initial_partition.hpp"

namespace ordo {
namespace {

BisectionBalance make_balance(const Graph& g, double target_fraction,
                              double tolerance) {
  const double total = static_cast<double>(g.total_vertex_weight());
  BisectionBalance balance;
  balance.min_weight0 = static_cast<std::int64_t>(
      std::floor(total * target_fraction * (1.0 - tolerance)));
  balance.max_weight0 = static_cast<std::int64_t>(
      std::ceil(total * target_fraction * (1.0 + tolerance)));
  return balance;
}

// Extracts the subgraph induced by the vertices with part[v] == which, along
// with the mapping from subgraph ids back to the parent's ids.
struct Subgraph {
  Graph graph;
  std::vector<index_t> to_parent;
};

Subgraph induced_subgraph(const Graph& g, const std::vector<index_t>& part,
                          index_t which) {
  Subgraph sub;
  std::vector<index_t> to_sub(static_cast<std::size_t>(g.num_vertices()), -1);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    if (part[static_cast<std::size_t>(v)] == which) {
      to_sub[static_cast<std::size_t>(v)] =
          static_cast<index_t>(sub.to_parent.size());
      sub.to_parent.push_back(v);
    }
  }
  const index_t n = static_cast<index_t>(sub.to_parent.size());
  std::vector<offset_t> adj_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> adj;
  std::vector<index_t> eweights;
  std::vector<index_t> vweights(static_cast<std::size_t>(n));
  for (index_t sv = 0; sv < n; ++sv) {
    const index_t v = sub.to_parent[static_cast<std::size_t>(sv)];
    vweights[static_cast<std::size_t>(sv)] = g.vertex_weight(v);
    const auto neighbors = g.neighbors(v);
    const offset_t base = g.adj_ptr()[v];
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const index_t su = to_sub[static_cast<std::size_t>(neighbors[k])];
      if (su >= 0) {
        adj.push_back(su);
        eweights.push_back(g.edge_weight(base + static_cast<offset_t>(k)));
      }
    }
    adj_ptr[static_cast<std::size_t>(sv) + 1] =
        static_cast<offset_t>(adj.size());
  }
  sub.graph = Graph(n, std::move(adj_ptr), std::move(adj), std::move(vweights),
                    std::move(eweights));
  return sub;
}

void recursive_bisect(const Graph& g, const PartitionOptions& options,
                      index_t num_parts, index_t first_part,
                      const std::vector<index_t>& to_parent,
                      std::vector<index_t>& out_part, std::uint64_t seed) {
  if (num_parts <= 1 || g.num_vertices() == 0) {
    for (index_t v = 0; v < g.num_vertices(); ++v) {
      out_part[static_cast<std::size_t>(to_parent[static_cast<std::size_t>(v)])] =
          first_part;
    }
    return;
  }
  poll_cancelled(options.cancel, "partition_graph");
  const index_t left_parts = num_parts / 2;
  const index_t right_parts = num_parts - left_parts;
  const double target_fraction =
      static_cast<double>(left_parts) / static_cast<double>(num_parts);

  PartitionOptions bisect_options = options;
  bisect_options.seed = seed;
  const PartitionResult bisection =
      bisect_graph(g, target_fraction, bisect_options);

  const Subgraph left = induced_subgraph(g, bisection.part, 0);
  const Subgraph right = induced_subgraph(g, bisection.part, 1);

  // Translate the sub-to-parent maps one level further up.
  std::vector<index_t> left_map(left.to_parent.size());
  for (std::size_t i = 0; i < left.to_parent.size(); ++i) {
    left_map[i] = to_parent[static_cast<std::size_t>(left.to_parent[i])];
  }
  std::vector<index_t> right_map(right.to_parent.size());
  for (std::size_t i = 0; i < right.to_parent.size(); ++i) {
    right_map[i] = to_parent[static_cast<std::size_t>(right.to_parent[i])];
  }

  recursive_bisect(left.graph, options, left_parts, first_part, left_map,
                   out_part, seed * 6364136223846793005ULL + 1);
  recursive_bisect(right.graph, options, right_parts, first_part + left_parts,
                   right_map, out_part, seed * 6364136223846793005ULL + 2);
}

// Repairs a degenerate bisection (every vertex on one side). The FM balance
// window permits this on tiny graphs — floor(total * fraction * (1 - tol))
// reaches 0, so neither greedy growing nor refinement is forced to populate
// both sides — and a degenerate split makes the recursive callers (GP, ND)
// spin without progress. Moves the vertex whose weighted degree is smallest
// (the cheapest new cut), lowest id on ties, to the empty side.
void repair_degenerate_bisection(const Graph& g, std::vector<index_t>& part) {
  const index_t n = g.num_vertices();
  if (n < 2) return;
  index_t count0 = 0;
  for (index_t v = 0; v < n; ++v) {
    if (part[static_cast<std::size_t>(v)] == 0) ++count0;
  }
  if (count0 != 0 && count0 != n) return;
  const index_t empty_side = count0 == 0 ? 0 : 1;
  index_t best = 0;
  std::int64_t best_degree = std::numeric_limits<std::int64_t>::max();
  for (index_t v = 0; v < n; ++v) {
    std::int64_t weighted_degree = 0;
    for (offset_t e = g.adj_ptr()[static_cast<std::size_t>(v)];
         e < g.adj_ptr()[static_cast<std::size_t>(v) + 1]; ++e) {
      weighted_degree += g.edge_weight(e);
    }
    if (weighted_degree < best_degree) {
      best_degree = weighted_degree;
      best = v;
    }
  }
  part[static_cast<std::size_t>(best)] = empty_side;
}

}  // namespace

PartitionResult bisect_graph(const Graph& g, double target_fraction,
                             const PartitionOptions& options) {
  require(g.num_vertices() > 0, "bisect_graph: empty graph");

  // Coarsening phase. Stop when the graph is small enough or when matching
  // stops shrinking the graph (< 10% reduction), which happens on graphs
  // with many unmatchable vertices (e.g. stars).
  std::vector<CoarseLevel> hierarchy;
  const Graph* current = &g;
  std::uint64_t seed = options.seed;
  while (current->num_vertices() > options.coarsen_to) {
    CoarseLevel level = coarsen_once(*current, seed++);
    if (level.graph.num_vertices() >
        static_cast<index_t>(0.9 * current->num_vertices())) {
      break;
    }
    hierarchy.push_back(std::move(level));
    current = &hierarchy.back().graph;
  }
  ORDO_COUNTER_ADD("partition.gp.bisections", 1);
  ORDO_COUNTER_ADD("partition.gp.coarsen_levels",
                   static_cast<std::int64_t>(hierarchy.size()));

  // Initial bisection on the coarsest graph, refined in place.
  std::vector<index_t> part =
      greedy_graph_growing_bisection(*current, target_fraction, seed);
  fm_refine_bisection(
      *current, part,
      make_balance(*current, target_fraction, options.imbalance_tolerance),
      options.refine_passes);

  // Uncoarsening: project the partition to each finer level and refine.
  for (std::size_t level = hierarchy.size(); level > 0; --level) {
    const Graph& fine =
        level >= 2 ? hierarchy[level - 2].graph : g;
    const std::vector<index_t>& fine_to_coarse =
        hierarchy[level - 1].fine_to_coarse;
    std::vector<index_t> fine_part(
        static_cast<std::size_t>(fine.num_vertices()));
    for (index_t v = 0; v < fine.num_vertices(); ++v) {
      fine_part[static_cast<std::size_t>(v)] =
          part[static_cast<std::size_t>(
              fine_to_coarse[static_cast<std::size_t>(v)])];
    }
    part = std::move(fine_part);
    fm_refine_bisection(
        fine, part,
        make_balance(fine, target_fraction, options.imbalance_tolerance),
        options.refine_passes);
  }

  repair_degenerate_bisection(g, part);

  PartitionResult result;
  result.part = std::move(part);
  result.num_parts = 2;
  result.cut = compute_edge_cut(g, result.part);
  result.imbalance = compute_partition_imbalance(g, result.part, 2);
  ORDO_CHECK(validate_partition(g, result, 2, "bisect_graph"));
  ORDO_CHECK(validate_bisection_balance(
      g, result, options.imbalance_tolerance, "bisect_graph"));
  return result;
}

PartitionResult partition_graph(const Graph& g,
                                const PartitionOptions& options) {
  require(options.num_parts >= 1, "partition_graph: num_parts must be >= 1");
  ORDO_SCOPE("partition/graph_kway");
  PartitionResult result;
  result.part.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  result.num_parts = options.num_parts;
  if (options.num_parts > 1 && g.num_vertices() > 0) {
    std::vector<index_t> to_parent(static_cast<std::size_t>(g.num_vertices()));
    for (index_t v = 0; v < g.num_vertices(); ++v) {
      to_parent[static_cast<std::size_t>(v)] = v;
    }
    recursive_bisect(g, options, options.num_parts, 0, to_parent, result.part,
                     options.seed);
  }
  result.cut = compute_edge_cut(g, result.part);
  result.imbalance =
      compute_partition_imbalance(g, result.part, options.num_parts);
  ORDO_CHECK(
      validate_partition(g, result, options.num_parts, "partition_graph"));
  return result;
}

std::vector<bool> vertex_separator_from_bisection(
    const Graph& g, const std::vector<index_t>& part) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "vertex_separator_from_bisection: partition size mismatch");
  const index_t n = g.num_vertices();
  std::vector<bool> in_separator(static_cast<std::size_t>(n), false);

  // Cut-degree per vertex: number of neighbours across the cut that are not
  // yet covered by a separator vertex.
  std::vector<index_t> cut_degree(static_cast<std::size_t>(n), 0);
  for (index_t v = 0; v < n; ++v) {
    for (index_t u : g.neighbors(v)) {
      if (part[static_cast<std::size_t>(u)] !=
          part[static_cast<std::size_t>(v)]) {
        cut_degree[static_cast<std::size_t>(v)]++;
      }
    }
  }

  // Greedy vertex cover of the cut edges: repeatedly add the vertex covering
  // the most uncovered cut edges. A lazy max-heap skips entries whose
  // recorded degree has gone stale.
  std::priority_queue<std::pair<index_t, index_t>> heap;
  for (index_t v = 0; v < n; ++v) {
    if (cut_degree[static_cast<std::size_t>(v)] > 0) {
      heap.emplace(cut_degree[static_cast<std::size_t>(v)], v);
    }
  }
  while (!heap.empty()) {
    const auto [degree, best] = heap.top();
    heap.pop();
    if (in_separator[static_cast<std::size_t>(best)] ||
        degree != cut_degree[static_cast<std::size_t>(best)] ||
        cut_degree[static_cast<std::size_t>(best)] == 0) {
      continue;
    }
    in_separator[static_cast<std::size_t>(best)] = true;
    for (index_t u : g.neighbors(best)) {
      if (part[static_cast<std::size_t>(u)] !=
              part[static_cast<std::size_t>(best)] &&
          !in_separator[static_cast<std::size_t>(u)]) {
        cut_degree[static_cast<std::size_t>(u)]--;
        if (cut_degree[static_cast<std::size_t>(u)] > 0) {
          heap.emplace(cut_degree[static_cast<std::size_t>(u)], u);
        }
      }
    }
    cut_degree[static_cast<std::size_t>(best)] = 0;
  }
  return in_separator;
}

}  // namespace ordo
