#include "partition/coarsening.hpp"

#include <algorithm>
#include <numeric>
#include <random>

namespace ordo {

std::vector<index_t> heavy_edge_matching(const Graph& g, std::uint64_t seed) {
  const index_t n = g.num_vertices();
  std::vector<index_t> match(static_cast<std::size_t>(n), -1);
  std::vector<index_t> visit_order(static_cast<std::size_t>(n));
  std::iota(visit_order.begin(), visit_order.end(), index_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(visit_order.begin(), visit_order.end(), rng);

  for (index_t v : visit_order) {
    if (match[static_cast<std::size_t>(v)] >= 0) continue;
    index_t best = -1;
    index_t best_weight = -1;
    const auto neighbors = g.neighbors(v);
    const offset_t base = g.adj_ptr()[v];
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const index_t u = neighbors[k];
      if (match[static_cast<std::size_t>(u)] >= 0) continue;
      const index_t w = g.edge_weight(base + static_cast<offset_t>(k));
      if (w > best_weight || (w == best_weight && u < best)) {
        best = u;
        best_weight = w;
      }
    }
    if (best >= 0) {
      match[static_cast<std::size_t>(v)] = best;
      match[static_cast<std::size_t>(best)] = v;
    } else {
      match[static_cast<std::size_t>(v)] = v;
    }
  }
  return match;
}

CoarseLevel contract(const Graph& g, const std::vector<index_t>& match) {
  const index_t n = g.num_vertices();
  require(match.size() == static_cast<std::size_t>(n),
          "contract: matching size mismatch");

  // Assign coarse ids: the smaller endpoint of each matched pair owns the id.
  CoarseLevel level;
  level.fine_to_coarse.assign(static_cast<std::size_t>(n), -1);
  index_t coarse_count = 0;
  for (index_t v = 0; v < n; ++v) {
    const index_t partner = match[static_cast<std::size_t>(v)];
    if (partner >= v) {
      level.fine_to_coarse[static_cast<std::size_t>(v)] = coarse_count;
      if (partner != v) {
        level.fine_to_coarse[static_cast<std::size_t>(partner)] = coarse_count;
      }
      ++coarse_count;
    }
  }

  // Accumulate coarse adjacency, merging parallel edges. A scratch map from
  // coarse neighbour id to its position in the current row avoids sorting.
  std::vector<offset_t> c_ptr(static_cast<std::size_t>(coarse_count) + 1, 0);
  std::vector<index_t> c_adj;
  std::vector<index_t> c_eweights;
  std::vector<index_t> c_vweights(static_cast<std::size_t>(coarse_count), 0);
  std::vector<offset_t> slot(static_cast<std::size_t>(coarse_count), -1);

  for (index_t v = 0; v < n; ++v) {
    c_vweights[static_cast<std::size_t>(
        level.fine_to_coarse[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }

  // Iterate coarse vertices in id order; for each, merge the adjacency of
  // its one or two fine constituents.
  std::vector<std::pair<index_t, index_t>> owners(
      static_cast<std::size_t>(coarse_count), {-1, -1});
  for (index_t v = 0; v < n; ++v) {
    const index_t c = level.fine_to_coarse[static_cast<std::size_t>(v)];
    if (owners[static_cast<std::size_t>(c)].first < 0) {
      owners[static_cast<std::size_t>(c)].first = v;
    } else {
      owners[static_cast<std::size_t>(c)].second = v;
    }
  }

  for (index_t c = 0; c < coarse_count; ++c) {
    const offset_t row_begin = static_cast<offset_t>(c_adj.size());
    for (index_t v : {owners[static_cast<std::size_t>(c)].first,
                      owners[static_cast<std::size_t>(c)].second}) {
      if (v < 0) continue;
      const auto neighbors = g.neighbors(v);
      const offset_t base = g.adj_ptr()[v];
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        const index_t cu =
            level.fine_to_coarse[static_cast<std::size_t>(neighbors[k])];
        if (cu == c) continue;  // contracted edge disappears
        const index_t w = g.edge_weight(base + static_cast<offset_t>(k));
        if (slot[static_cast<std::size_t>(cu)] < row_begin) {
          slot[static_cast<std::size_t>(cu)] =
              static_cast<offset_t>(c_adj.size());
          c_adj.push_back(cu);
          c_eweights.push_back(w);
        } else {
          c_eweights[static_cast<std::size_t>(
              slot[static_cast<std::size_t>(cu)])] += w;
        }
      }
    }
    c_ptr[static_cast<std::size_t>(c) + 1] = static_cast<offset_t>(c_adj.size());
  }

  level.graph = Graph(coarse_count, std::move(c_ptr), std::move(c_adj),
                      std::move(c_vweights), std::move(c_eweights));
  return level;
}

CoarseLevel coarsen_once(const Graph& g, std::uint64_t seed) {
  return contract(g, heavy_edge_matching(g, seed));
}

}  // namespace ordo
