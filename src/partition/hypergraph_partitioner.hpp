// Multilevel k-way hypergraph partitioner (PaToH stand-in).
//
// Same multilevel shape as the graph partitioner, adapted to hypergraphs:
// heavy-connectivity matching for coarsening, BFS growing for the initial
// bisection, and FM refinement under the **cut-net** metric (a net counts
// toward the objective when its pins land in more than one part), which is
// the PaToH objective the paper's HP ordering uses.
#pragma once

#include "partition/hypergraph.hpp"
#include "partition/partitioning.hpp"

namespace ordo {

/// One level of hypergraph coarsening: heavy-connectivity matching followed
/// by contraction. Nets reduced to fewer than two pins are dropped.
struct HypergraphCoarseLevel {
  Hypergraph hypergraph;
  std::vector<index_t> fine_to_coarse;
};
HypergraphCoarseLevel coarsen_hypergraph_once(const Hypergraph& h,
                                              std::uint64_t seed);

/// Bisects `h`, targeting `target_fraction` of the vertex weight in part 0,
/// minimizing cut nets.
PartitionResult bisect_hypergraph(const Hypergraph& h, double target_fraction,
                                  const PartitionOptions& options);

/// Partitions `h` into options.num_parts parts via recursive bisection.
PartitionResult partition_hypergraph(const Hypergraph& h,
                                     const PartitionOptions& options);

}  // namespace ordo
