// Multilevel k-way graph partitioner (METIS stand-in).
//
// Bisection pipeline: heavy-edge-matching coarsening until the graph is
// small, greedy graph-growing initial bisection, then FM boundary refinement
// at every level while projecting back up. k-way partitions are produced by
// recursive bisection with proportional weight targets, so k need not be a
// power of two (the study partitions into 16, 32, 48, 64, 72 or 128 parts to
// match core counts).
#pragma once

#include "graph/graph.hpp"
#include "partition/partitioning.hpp"

namespace ordo {

/// Bisects `g`, putting approximately `target_fraction` of the total vertex
/// weight into part 0.
PartitionResult bisect_graph(const Graph& g, double target_fraction,
                             const PartitionOptions& options);

/// Partitions `g` into options.num_parts parts via recursive bisection,
/// minimizing edge-cut under the balance constraint.
PartitionResult partition_graph(const Graph& g,
                                const PartitionOptions& options);

/// Extracts a vertex separator from a bisection: boundary vertices forming a
/// vertex cover of the cut edges, chosen greedily by cut-degree so the
/// separator stays small. Returns in_separator flags per vertex. Removing
/// the separator disconnects part 0 from part 1 — the property nested
/// dissection relies on.
std::vector<bool> vertex_separator_from_bisection(
    const Graph& g, const std::vector<index_t>& part);

}  // namespace ordo
