#include "partition/partitioning.hpp"

#include <algorithm>

namespace ordo {

std::int64_t compute_edge_cut(const Graph& g,
                              const std::vector<index_t>& part) {
  require(part.size() == static_cast<std::size_t>(g.num_vertices()),
          "compute_edge_cut: partition size mismatch");
  std::int64_t cut = 0;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const auto neighbors = g.neighbors(v);
    const offset_t base = g.adj_ptr()[v];
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      const index_t u = neighbors[k];
      if (part[static_cast<std::size_t>(v)] !=
          part[static_cast<std::size_t>(u)]) {
        cut += g.edge_weight(base + static_cast<offset_t>(k));
      }
    }
  }
  // Every undirected edge was visited from both endpoints.
  return cut / 2;
}

std::vector<std::int64_t> partition_weights(const Graph& g,
                                            const std::vector<index_t>& part,
                                            index_t num_parts) {
  std::vector<std::int64_t> weights(static_cast<std::size_t>(num_parts), 0);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    weights[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }
  return weights;
}

double compute_partition_imbalance(const Graph& g,
                                   const std::vector<index_t>& part,
                                   index_t num_parts) {
  if (num_parts <= 0 || g.num_vertices() == 0) return 1.0;
  const auto weights = partition_weights(g, part, num_parts);
  const double average =
      static_cast<double>(g.total_vertex_weight()) / num_parts;
  const std::int64_t max_weight =
      *std::max_element(weights.begin(), weights.end());
  return average > 0 ? static_cast<double>(max_weight) / average : 1.0;
}

}  // namespace ordo
