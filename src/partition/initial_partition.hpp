// Initial bisection of the coarsest graph.
//
// Greedy graph growing (GGG): grow part 0 by BFS from a pseudo-peripheral
// vertex, always absorbing the frontier vertex whose absorption decreases the
// cut the most, until part 0 reaches its weight target. Several trials with
// different seeds are run and the best (lowest-cut balanced) bisection wins.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ordo {

/// Computes a bisection of `g` where part 0 receives approximately
/// `target_fraction` of the total vertex weight. Returns the part id (0/1)
/// per vertex.
std::vector<index_t> greedy_graph_growing_bisection(const Graph& g,
                                                    double target_fraction,
                                                    std::uint64_t seed,
                                                    int num_trials = 4);

}  // namespace ordo
