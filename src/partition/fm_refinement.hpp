// Fiduccia–Mattheyses (FM) boundary refinement for bisections.
//
// Each pass repeatedly moves the highest-gain movable vertex to the other
// side (respecting the balance constraint), locks it, and finally rolls back
// to the best prefix of moves seen during the pass. Passes continue until no
// improvement is found or the pass limit is reached. Gain of moving v is
// (weight of v's edges crossing the cut) - (weight of its internal edges).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace ordo {

/// Balance constraint for a bisection: part 0's weight must stay within
/// [min_weight0, max_weight0].
struct BisectionBalance {
  std::int64_t min_weight0 = 0;
  std::int64_t max_weight0 = 0;
};

/// Refines `part` (0/1 per vertex) in place. Returns the cut improvement
/// (old cut - new cut, always >= 0).
std::int64_t fm_refine_bisection(const Graph& g, std::vector<index_t>& part,
                                 const BisectionBalance& balance,
                                 int max_passes);

/// Gain of moving vertex v to the opposite side under partition `part`.
std::int64_t fm_move_gain(const Graph& g, const std::vector<index_t>& part,
                          index_t v);

}  // namespace ordo
