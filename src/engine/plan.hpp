// ordo::engine — prepared execution plans.
//
// A Plan is the reusable preprocessing product of one (matrix, kernel,
// thread-count) combination: the row split of the 1D kernel, the
// NnzPartition of the 2D kernel, the MergePathPartition of the merge-path
// kernel. Preparing it is the "inspector" phase of the inspector/executor
// pattern (MKL's sparse handles, Merrill & Garland's merge-path setup): pay
// the partitioning cost once, then execute y = A·x against the plan as many
// times as the study or solver needs — exactly the amortised-preprocessing
// methodology of the paper's Section 3.1.
//
// Every plan, whatever its kernel, exposes a uniform ThreadPartition (the
// per-thread row/nonzero boundaries). That view is what the performance
// model consumes instead of recomputing partitions per evaluation, and what
// the experiment layer derives the per-thread work columns of the artifact
// format from.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace ordo::engine {

struct KernelDesc;  // registry.hpp

/// How a kernel's ThreadPartition assigns rows to threads — this decides
/// both which invariants the plan validator enforces and how the
/// performance model derives each thread's row span.
enum class RowAssignment {
  /// Contiguous row blocks; nonzero boundaries coincide with row starts
  /// (1D kernel, row-parallel transpose). Thread t owns rows
  /// [row_begin[t], row_begin[t+1]).
  kRowBlocks,
  /// Even nonzero split; row_begin[t] is the row *containing* boundary
  /// nonzero nnz_begin[t], so boundary rows are shared between threads
  /// (2D kernel). The row span is derived from the nonzero range.
  kNnzSplit,
  /// Merge-path split over (rows + nonzeros); row_begin covers the whole
  /// row space like kRowBlocks, but boundaries may fall mid-row like
  /// kNnzSplit (merge-path kernel).
  kMergePath,
};

/// Uniform per-thread work boundaries of a prepared plan: threads+1 entries
/// in both row and nonzero space; thread t owns nonzeros
/// [nnz_begin[t], nnz_begin[t+1]).
struct ThreadPartition {
  RowAssignment assignment = RowAssignment::kRowBlocks;
  std::vector<index_t> row_begin;
  std::vector<offset_t> nnz_begin;

  int threads() const { return static_cast<int>(nnz_begin.size()) - 1; }
  offset_t total_nnz() const {
    return nnz_begin.empty() ? 0 : nnz_begin.back() - nnz_begin.front();
  }
};

/// Per-thread nonzero-count summary — the min/max/mean/imbalance columns of
/// the artifact's result format, computed from the plan rather than by the
/// performance model.
struct ThreadWork {
  std::int64_t min_nnz = 0;
  std::int64_t max_nnz = 0;
  double mean_nnz = 0.0;
  double imbalance = 1.0;
};

/// Summarises the nonzero distribution of `partition`. An empty partition
/// (no nonzeros) reports zeros with imbalance 1, matching the model's
/// convention for empty matrices.
ThreadWork thread_work(const ThreadPartition& partition);

/// Per-thread nonzero counts, one entry per thread.
std::vector<offset_t> nnz_per_thread(const ThreadPartition& partition);

/// Base class for kernel-specific preprocessing products a descriptor hangs
/// off its plans (the 2D kernel's NnzPartition, the merge kernel's
/// MergePathPartition). Descriptors downcast their own state in execute().
struct PlanState {
  virtual ~PlanState() = default;
};

/// A prepared plan: the unit the plan cache stores and execute() consumes.
/// Plans hold no reference to the matrix they were prepared for — the
/// matrix is passed again at execution, and the cache key ties the plan to
/// the row structure it was derived from.
struct Plan {
  std::string kernel;  ///< registry id of the kernel this plan belongs to
  int threads = 1;     ///< thread count the plan was prepared for
  ThreadPartition partition;
  std::shared_ptr<const PlanState> state;  ///< kernel-specific product
  /// Registry descriptor, resolved once at prepare() time so execute() —
  /// which runs inside every measured SpMV rep — skips the registry mutex
  /// and map lookup. Safe to cache: descriptors live in a node-based map
  /// and are never removed, so the address is stable for the process
  /// lifetime. nullptr for hand-built plans; execute() falls back to a
  /// lookup by id.
  const KernelDesc* desc = nullptr;
};

}  // namespace ordo::engine
