// ordo::engine — the LRU plan cache.
//
// The study evaluates every (matrix, ordering) under eight machine profiles
// whose core counts collide (Table 2 has six distinct counts across eight
// machines), and both the experiment layer (per-thread work columns) and the
// performance model (per-thread cost loop) need the same plan. Preparing a
// partition is O(rows) to O(threads·log nnz) — cheap once, wasteful when
// repeated 16× per matrix. The cache keys plans by (matrix fingerprint,
// kernel id, threads) and hands out shared_ptr<const Plan>, so a plan
// computed for the 64-core profile is reused verbatim by the other 64-core
// profile and by every consumer in between.
//
// The fingerprint hashes the matrix dimensions and the FULL row_ptr array
// (FNV-1a). Plans are pure functions of the row structure, so this is
// exactly the information a plan depends on; sampling the row pointer was
// rejected because reorderings of regular matrices (grid Laplacians) can
// agree on every sampled entry while differing in between, and a collision
// would silently hand a plan to the wrong matrix.
//
// Hit/miss/eviction counts are exported through the internal Stats struct
// (always available) and mirrored to the obs counters
// engine.plan_cache.{hits,misses,evictions} plus the gauge
// engine.plan_cache.size when observability is compiled in.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/thread_safety.hpp"
#include "engine/plan.hpp"
#include "engine/registry.hpp"
#include "sparse/csr.hpp"

namespace ordo::engine {

/// FNV-1a hash of the matrix's dimensions, nonzero count and full row
/// pointer array — everything a plan depends on, and nothing it does not
/// (column indices and values never influence a partition).
std::uint64_t matrix_fingerprint(const CsrMatrix& a);

/// Thread-safe LRU cache of prepared plans.
class PlanCache {
 public:
  /// Default capacity: with --jobs 4 workers each sweeping 8 machine
  /// profiles × 2+ kernels × 7 orderings, the working set of a parallel
  /// sweep stays well under 1024 live plans, so the studied pair never
  /// thrashes; memory cost is bounded (plans are O(threads) except for the
  /// 2D/merge states, which are also O(threads)).
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  /// Returns the cached plan for (a, kernel_id, threads), preparing and
  /// inserting it on a miss (evicting the least-recently-used entry when
  /// full). The returned plan is immutable and safe to use concurrently.
  std::shared_ptr<const Plan> get(const CsrMatrix& a,
                                  const std::string& kernel_id, int threads);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  void clear();

  struct Stats {
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t evictions = 0;
    std::int64_t lookups() const { return hits + misses; }
    /// Hit fraction in [0, 1]; 0 before the first lookup.
    double hit_rate() const {
      return lookups() > 0 ? static_cast<double>(hits) / lookups() : 0.0;
    }
  };
  Stats stats() const;

 private:
  struct Key {
    std::uint64_t fingerprint = 0;
    int threads = 0;
    std::string kernel;
    friend bool operator<(const Key& a, const Key& b) {
      if (a.fingerprint != b.fingerprint) return a.fingerprint < b.fingerprint;
      if (a.threads != b.threads) return a.threads < b.threads;
      return a.kernel < b.kernel;
    }
  };
  using LruList = std::list<std::pair<Key, std::shared_ptr<const Plan>>>;

  mutable Mutex mutex_;
  LruList lru_ ORDO_GUARDED_BY(mutex_);  ///< front = most recently used
  std::map<Key, LruList::iterator> index_ ORDO_GUARDED_BY(mutex_);
  // ordo-analyze: allow(guard-coverage) immutable after construction;
  // capacity() reads it without the lock.
  std::size_t capacity_;
  Stats stats_ ORDO_GUARDED_BY(mutex_);
};

/// The process-wide plan cache used by prepare_plan().
PlanCache& plan_cache();

/// Cached plan lookup: the entry point the experiment layer, the
/// performance model, benches and solvers all funnel through.
std::shared_ptr<const Plan> prepare_plan(const CsrMatrix& a,
                                         const std::string& kernel_id,
                                         int threads);
std::shared_ptr<const Plan> prepare_plan(const CsrMatrix& a,
                                         const SpmvKernel& kernel,
                                         int threads);

/// Convenience alias for execute() (registry.hpp) so call sites read
/// `engine::spmv(*plan, a, x, y)`.
inline void spmv(const Plan& plan, const CsrMatrix& a,
                 std::span<const value_t> x, std::span<value_t> y) {
  execute(plan, a, x, y);
}

}  // namespace ordo::engine
