// ordo::engine — the kernel registry.
//
// Every SpMV kernel the study can sweep is described by a KernelDesc: a
// stable string id, capability flags, and a prepare/execute function pair
// behind the uniform plan interface of plan.hpp. The studied 1D/2D pair,
// the merge-path kernel and the transpose kernel register themselves here
// (src/spmv/kernel_descriptors.cpp), and the experiment layer resolves
// StudyOptions::kernels against the registry — so adding a kernel to the
// sweep means registering a descriptor, not editing an enum in four layers.
//
// Capability flags gate enrolment rather than trusting callers to know each
// kernel's fine print: `needs_symmetric` kernels are rejected by
// study_kernels() (the corpus stores full matrices), and kernels with
// `deterministic == false` are refused by checkpointed sweeps unless
// StudyOptions::allow_nondeterministic is set (the journal's byte-identical
// resume guarantee cannot hold for atomic-scatter float summation).
#pragma once

#include <compare>
#include <span>
#include <string>
#include <vector>

#include "engine/plan.hpp"
#include "sparse/csr.hpp"

namespace ordo {

/// A kernel identity in study-facing APIs: a thin value wrapper over a
/// registry id. The studied pair is exposed as SpmvKernel::k1D / ::k2D so
/// call sites written against the former two-value enum compile unchanged;
/// any registered id can be wrapped to extend the sweep.
class SpmvKernel {
 public:
  /// Defaults to the 1D kernel (the study's baseline).
  SpmvKernel() : id_("csr_1d") {}
  explicit SpmvKernel(std::string id) : id_(std::move(id)) {}

  const std::string& id() const { return id_; }

  friend bool operator==(const SpmvKernel&, const SpmvKernel&) = default;
  friend auto operator<=>(const SpmvKernel&, const SpmvKernel&) = default;

  static const SpmvKernel k1D;  ///< "csr_1d", the even row split
  static const SpmvKernel k2D;  ///< "csr_2d", the even nonzero split
 private:
  std::string id_;
};

/// Display name of the kernel ("1D", "2D", "merge-path", ...); falls back to
/// the raw id for kernels the registry does not know.
std::string spmv_kernel_name(const SpmvKernel& kernel);

namespace engine {

/// Capability flags consulted when a kernel is enrolled in a sweep.
struct KernelCaps {
  /// Runs multi-threaded; false for serial reference kernels.
  bool parallel = true;
  /// Bitwise-reproducible output for a fixed (matrix, x, threads). False
  /// for kernels whose float summation order depends on scheduling (the
  /// atomic-scatter transpose kernel) — such kernels break the pipeline's
  /// byte-identical checkpoint/resume guarantee.
  bool deterministic = true;
  /// Input must be the lower triangle of a symmetric matrix; incompatible
  /// with the study corpus, which stores matrices in full.
  bool needs_symmetric = false;
  /// Computes y = Aᵀ·x, so the output has num_cols elements.
  bool transposed_output = false;
};

/// One registered kernel: identity, capabilities, and the prepare/execute
/// pair. `prepare` builds the reusable plan (the inspector phase);
/// `execute` runs one y = A·x (or Aᵀ·x) against a plan previously prepared
/// for the same matrix structure and thread count.
struct KernelDesc {
  std::string id;            ///< stable registry id, e.g. "csr_1d"
  std::string display_name;  ///< short human name, e.g. "1D"
  std::string summary;       ///< one line for --list-kernels
  KernelCaps caps;
  Plan (*prepare)(const CsrMatrix& a, int threads) = nullptr;
  void (*execute)(const Plan& plan, const CsrMatrix& a,
                  std::span<const value_t> x, std::span<value_t> y) = nullptr;
};

/// Registers a kernel. Throws invalid_argument_error on a duplicate id,
/// an empty id, or missing prepare/execute functions. Thread-safe.
void register_kernel(KernelDesc desc);

/// Looks up a kernel by id; returns nullptr when unknown. The returned
/// pointer stays valid for the process lifetime (descriptors are never
/// removed).
const KernelDesc* find_kernel(const std::string& id);

/// Looks up a kernel by id; throws invalid_argument_error (listing the
/// registered ids) when unknown.
const KernelDesc& kernel(const std::string& id);

/// All registered ids, sorted.
std::vector<std::string> kernel_ids();

/// RAII registration helper for kernels defined outside
/// src/spmv/kernel_descriptors.cpp (tests, future plugins):
/// `static engine::KernelRegistrar reg{desc};` at namespace scope.
class KernelRegistrar {
 public:
  explicit KernelRegistrar(KernelDesc desc) {
    register_kernel(std::move(desc));
  }
};

/// Registers the built-in kernel set (defined in
/// src/spmv/kernel_descriptors.cpp). The registry calls this lazily from
/// its accessors — an explicit hook rather than static-initializer
/// self-registration, because ordo is a static library and the linker is
/// free to drop a translation unit nothing references.
void register_builtin_kernels();

/// Prepares a plan for `a` on `threads` threads, bypassing the plan cache
/// (prepare_plan() in plan_cache.hpp is the cached entry point). Validates
/// the plan's thread-partition invariants through the ORDO_CHECK seam.
Plan prepare(const CsrMatrix& a, const std::string& id, int threads);

/// Executes one SpMV against a prepared plan. The plan must have been
/// prepared for a matrix with the same row structure; `y` must have
/// a.num_rows() elements (a.num_cols() for transposed-output kernels).
void execute(const Plan& plan, const CsrMatrix& a, std::span<const value_t> x,
             std::span<value_t> y);

}  // namespace engine
}  // namespace ordo
