#include "engine/plan.hpp"

#include <algorithm>

namespace ordo::engine {

ThreadWork thread_work(const ThreadPartition& partition) {
  ThreadWork work;
  const int threads = partition.threads();
  const offset_t nnz = partition.total_nnz();
  if (threads <= 0 || nnz == 0) return work;
  work.min_nnz = nnz;
  for (int t = 0; t < threads; ++t) {
    const offset_t thread_nnz =
        partition.nnz_begin[static_cast<std::size_t>(t) + 1] -
        partition.nnz_begin[static_cast<std::size_t>(t)];
    work.min_nnz = std::min<std::int64_t>(work.min_nnz, thread_nnz);
    work.max_nnz = std::max<std::int64_t>(work.max_nnz, thread_nnz);
  }
  work.mean_nnz = static_cast<double>(nnz) / threads;
  work.imbalance = static_cast<double>(work.max_nnz) / work.mean_nnz;
  return work;
}

std::vector<offset_t> nnz_per_thread(const ThreadPartition& partition) {
  const int threads = std::max(partition.threads(), 0);
  std::vector<offset_t> counts(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    counts[static_cast<std::size_t>(t)] =
        partition.nnz_begin[static_cast<std::size_t>(t) + 1] -
        partition.nnz_begin[static_cast<std::size_t>(t)];
  }
  return counts;
}

}  // namespace ordo::engine
