#include "engine/plan_cache.hpp"

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/status/status.hpp"

namespace ordo::engine {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (value >> (8 * byte)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::uint64_t matrix_fingerprint(const CsrMatrix& a) {
  // The O(rows) row_ptr walk is memoized on the storage view: plans never
  // assume (or touch) heap arrays, and for an mmap-backed matrix the walk
  // pages the whole row_ptr region in — once, not on every cache lookup.
  // Shared storage (CsrMatrix copies) shares the memo.
  const std::uint64_t structure =
      a.storage().memoized_structure_hash([](const CsrStorage& s) {
        std::uint64_t h = kFnvOffset;
        for (const offset_t entry : s.row_ptr()) {
          h = fnv1a_u64(h, static_cast<std::uint64_t>(entry));
        }
        return h == 0 ? std::uint64_t{1} : h;  // 0 is the memo's sentinel
      });
  // Dimensions live on the matrix, not the storage; mix them in on top
  // (O(1)) so equal structures with different logical shapes stay distinct.
  std::uint64_t h = structure;
  h = fnv1a_u64(h, static_cast<std::uint64_t>(a.num_rows()));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(a.num_cols()));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(a.num_nonzeros()));
  return h;
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const Plan> PlanCache::get(const CsrMatrix& a,
                                           const std::string& kernel_id,
                                           int threads) {
  // The fingerprint is pure and O(rows); compute it outside the lock.
  Key key{matrix_fingerprint(a), threads, kernel_id};

  MutexLock lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    ORDO_COUNTER_ADD("engine.plan_cache.hits", 1);
    return it->second->second;
  }

  ++stats_.misses;
  ORDO_COUNTER_ADD("engine.plan_cache.misses", 1);
  // Preparing under the lock keeps concurrent workers from preparing the
  // same plan twice; preparation is microseconds against the milliseconds
  // of model evaluation it amortises.
  auto plan =
      std::make_shared<const Plan>(engine::prepare(a, kernel_id, threads));
  lru_.emplace_front(key, plan);
  index_.emplace(std::move(key), lru_.begin());
  if (index_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    ORDO_COUNTER_ADD("engine.plan_cache.evictions", 1);
  }
  ORDO_GAUGE_SET("engine.plan_cache.size",
                 static_cast<std::int64_t>(index_.size()));
  return plan;
}

std::size_t PlanCache::size() const {
  MutexLock lock(mutex_);
  return index_.size();
}

void PlanCache::clear() {
  MutexLock lock(mutex_);
  lru_.clear();
  index_.clear();
  ORDO_GAUGE_SET("engine.plan_cache.size", 0);
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

PlanCache& plan_cache() {
  static PlanCache cache;
  // The engine contributes its cache stats to every live-status snapshot.
  // Registered here (not in the board) so obs stays below the engine in the
  // layer order; runs once, on the first prepare_plan of the process.
  static const bool registered = [] {
    obs::status::register_section("plan_cache", [](std::string& out) {
      const PlanCache& c = plan_cache();
      const PlanCache::Stats s = c.stats();
      out += "{\"hits\":" + std::to_string(s.hits);
      out += ",\"misses\":" + std::to_string(s.misses);
      out += ",\"evictions\":" + std::to_string(s.evictions);
      out += ",\"size\":" + std::to_string(c.size());
      out += ",\"capacity\":" + std::to_string(c.capacity());
      out += ",\"hit_rate\":";
      obs::append_json_double(out, s.hit_rate());
      out += '}';
    });
    return true;
  }();
  (void)registered;
  return cache;
}

std::shared_ptr<const Plan> prepare_plan(const CsrMatrix& a,
                                         const std::string& kernel_id,
                                         int threads) {
  return plan_cache().get(a, kernel_id, threads);
}

std::shared_ptr<const Plan> prepare_plan(const CsrMatrix& a,
                                         const SpmvKernel& kernel,
                                         int threads) {
  return plan_cache().get(a, kernel.id(), threads);
}

}  // namespace ordo::engine
