// ordo::engine — umbrella header.
//
// The engine is the execution layer between the raw kernels in src/spmv/
// and every consumer above them (experiment, perfmodel, pipeline, benches,
// solvers): a registry of kernel descriptors (registry.hpp), prepared plans
// with a uniform per-thread partition view (plan.hpp), and an LRU plan
// cache (plan_cache.hpp) so partitions are computed once per matrix
// structure instead of once per call.
//
// Typical use:
//
//   const auto plan = engine::prepare_plan(a, "csr_2d", threads);
//   engine::spmv(*plan, a, x, y);   // repeat; partition already amortised
#pragma once

#include "engine/plan.hpp"        // IWYU pragma: export
#include "engine/plan_cache.hpp"  // IWYU pragma: export
#include "engine/registry.hpp"    // IWYU pragma: export
