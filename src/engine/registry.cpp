#include "engine/registry.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "check/invariants.hpp"
#include "core/thread_safety.hpp"
#include "obs/hw/hw_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/status/status.hpp"

namespace ordo {

const SpmvKernel SpmvKernel::k1D{"csr_1d"};
const SpmvKernel SpmvKernel::k2D{"csr_2d"};

std::string spmv_kernel_name(const SpmvKernel& kernel) {
  if (const engine::KernelDesc* desc = engine::find_kernel(kernel.id())) {
    return desc->display_name;
  }
  return kernel.id();
}

namespace engine {
namespace {

// Mutex and map live in one struct so the guarded_by relation is
// expressible; the function-local static keeps the lazy-init order the
// KernelRegistrar statics rely on.
struct Registry {
  Mutex mutex;
  // std::map: node-based, so KernelDesc references handed out by kernel() /
  // find_kernel() stay valid as later registrations land.
  std::map<std::string, KernelDesc> map ORDO_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry r;
  return r;
}

// check/ sits below engine/ in the layering, so the plan validator speaks
// its own partition-kind enum; translate at the seam.
[[maybe_unused]] check::ThreadPartitionKind to_check_kind(
    RowAssignment assignment) {
  switch (assignment) {
    case RowAssignment::kNnzSplit:
      return check::ThreadPartitionKind::kNnzSplit;
    case RowAssignment::kMergePath:
      return check::ThreadPartitionKind::kMergePath;
    case RowAssignment::kRowBlocks:
      break;
  }
  return check::ThreadPartitionKind::kRowBlocks;
}

// register_kernel() deliberately does NOT ensure builtins: the builtin hook
// itself calls register_kernel(), and external KernelRegistrar statics may
// run before any accessor. Only the lookup accessors force the builtins in,
// exactly once.
void ensure_builtins() {
  static const bool once = [] {
    register_builtin_kernels();
    return true;
  }();
  (void)once;
}

}  // namespace

void register_kernel(KernelDesc desc) {
  require(!desc.id.empty(), "register_kernel: empty kernel id");
  require(desc.prepare != nullptr && desc.execute != nullptr,
          "register_kernel: kernel '" + desc.id +
              "' must provide both prepare and execute");
  if (desc.display_name.empty()) desc.display_name = desc.id;
  Registry& r = registry();
  MutexLock lock(r.mutex);
  const bool inserted = r.map.emplace(desc.id, std::move(desc)).second;
  require(inserted, "register_kernel: duplicate kernel id '" + desc.id + "'");
  ORDO_COUNTER_ADD("engine.kernels.registered", 1);
}

const KernelDesc* find_kernel(const std::string& id) {
  ensure_builtins();
  Registry& r = registry();
  MutexLock lock(r.mutex);
  const auto it = r.map.find(id);
  return it == r.map.end() ? nullptr : &it->second;
}

const KernelDesc& kernel(const std::string& id) {
  if (const KernelDesc* desc = find_kernel(id)) return *desc;
  std::ostringstream message;
  message << "engine: unknown kernel id '" << id << "' (registered:";
  for (const std::string& known : kernel_ids()) message << ' ' << known;
  message << ')';
  throw invalid_argument_error(message.str());
}

std::vector<std::string> kernel_ids() {
  ensure_builtins();
  Registry& r = registry();
  MutexLock lock(r.mutex);
  std::vector<std::string> ids;
  ids.reserve(r.map.size());
  for (const auto& [id, desc] : r.map) ids.push_back(id);
  return ids;  // std::map iteration order is already sorted
}

Plan prepare(const CsrMatrix& a, const std::string& id, int threads) {
  require(threads >= 1, "engine::prepare: threads must be >= 1");
  const KernelDesc& desc = kernel(id);
  Plan plan = desc.prepare(a, threads);
  plan.kernel = desc.id;
  plan.desc = &desc;
  ORDO_COUNTER_ADD("engine.plans.prepared", 1);
  ORDO_CHECK(validate_thread_partition_raw(
      a.num_rows(), a.row_ptr(), to_check_kind(plan.partition.assignment),
      plan.partition.row_begin, plan.partition.nnz_begin,
      "engine::prepare(" + desc.id + ")"));
  return plan;
}

void execute(const Plan& plan, const CsrMatrix& a, std::span<const value_t> x,
             std::span<value_t> y) {
  // Hot path: every measured SpMV rep lands here. The descriptor cached at
  // prepare() time keeps the registry mutex out of timed regions; only
  // hand-built plans (tests) pay the lookup.
  const KernelDesc& desc =
      plan.desc != nullptr ? *plan.desc : kernel(plan.kernel);
  // Phase marker for the live status board, gated like the hw launch scope
  // so the disabled cost stays one relaxed load per launch.
  if (obs::status::consumers_active()) obs::status::set_phase("spmv");
  // Per-launch counter windows (ORDO_HW_LAUNCH=1) are opt-in separately from
  // the session: a scope is two fd reads per counter per launch, cheap
  // against a kernel launch but not against the one-branch budget every
  // launch otherwise pays.
  if (obs::hw::per_launch_enabled()) {
    obs::hw::CounterScope scope("spmv." + plan.kernel);
    desc.execute(plan, a, x, y);
    return;
  }
  desc.execute(plan, a, x, y);
}

}  // namespace engine
}  // namespace ordo
