#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>

#include "core/thread_safety.hpp"
#include "obs/agg/latency_histogram.hpp"
#include "sparse/types.hpp"

namespace ordo::obs {
namespace {

// One registry entry: exactly one instrument kind per name. unique_ptr keeps
// instrument addresses stable across map growth, so returned references
// never dangle.
struct Entry {
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Registry {
  Mutex mutex;
  std::map<std::string, Entry> entries ORDO_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: instruments outlive statics
  return *r;
}

void write_double(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out << buf;
}

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void Histogram::record(double value) {
  MutexLock lock(mutex_);
  if (state_.count == 0) {
    state_.min = value;
    state_.max = value;
  } else {
    state_.min = std::min(state_.min, value);
    state_.max = std::max(state_.max, value);
  }
  state_.sum += value;
  state_.count += 1;
}

Histogram::Snapshot Histogram::snapshot() const {
  MutexLock lock(mutex_);
  return state_;
}

void Histogram::reset() {
  MutexLock lock(mutex_);
  state_ = Snapshot{};
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  Entry& entry = r.entries[name];
  if (!entry.counter) {
    require(!entry.gauge && !entry.histogram,
            "obs::counter: metric '" + name +
                "' already registered as another kind");
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  Entry& entry = r.entries[name];
  if (!entry.gauge) {
    require(!entry.counter && !entry.histogram,
            "obs::gauge: metric '" + name +
                "' already registered as another kind");
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  Entry& entry = r.entries[name];
  if (!entry.histogram) {
    require(!entry.counter && !entry.gauge,
            "obs::histogram: metric '" + name +
                "' already registered as another kind");
    entry.histogram = std::make_unique<Histogram>();
  }
  return *entry.histogram;
}

bool has_metric(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  return r.entries.count(name) > 0;
}

std::vector<std::string> metric_names() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  std::vector<std::string> names;
  names.reserve(r.entries.size());
  for (const auto& [name, entry] : r.entries) names.push_back(name);
  return names;
}

void reset_metrics() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  for (auto& [name, entry] : r.entries) {
    if (entry.counter) entry.counter->add(-entry.counter->value());
    if (entry.gauge) entry.gauge->set(0.0);
    if (entry.histogram) entry.histogram->reset();
  }
}

std::vector<MetricSample> sample_metrics() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  std::vector<MetricSample> samples;
  samples.reserve(r.entries.size());
  for (const auto& [name, entry] : r.entries) {
    MetricSample sample;
    sample.name = name;
    if (entry.counter) {
      sample.kind = MetricSample::Kind::kCounter;
      sample.counter_value = entry.counter->value();
    } else if (entry.gauge) {
      sample.kind = MetricSample::Kind::kGauge;
      sample.gauge_value = entry.gauge->value();
    } else if (entry.histogram) {
      sample.kind = MetricSample::Kind::kHistogram;
      sample.histogram = entry.histogram->snapshot();
    }
    samples.push_back(std::move(sample));
  }
  return samples;  // std::map iteration order is already sorted
}

void write_metrics_text(std::ostream& out) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  for (const auto& [name, entry] : r.entries) {
    out << name << ' ';
    if (entry.counter) {
      out << "counter " << entry.counter->value();
    } else if (entry.gauge) {
      out << "gauge ";
      write_double(out, entry.gauge->value());
    } else if (entry.histogram) {
      const Histogram::Snapshot s = entry.histogram->snapshot();
      out << "histogram count " << s.count << " mean ";
      write_double(out, s.mean());
      out << " min ";
      write_double(out, s.min);
      out << " max ";
      write_double(out, s.max);
    }
    out << '\n';
  }
}

void write_metrics_json(std::ostream& out) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  const auto dump_kind = [&](const char* kind, auto&& writer) {
    out << '"' << kind << "\":{";
    bool first = true;
    for (const auto& [name, entry] : r.entries) {
      if (!writer(name, entry, first)) continue;
      first = false;
    }
    out << '}';
  };
  out << "{\"schema_version\":" << kMetricsSchemaVersion << ',';
  dump_kind("counters", [&](const std::string& name, const Entry& entry,
                            bool first) {
    if (!entry.counter) return false;
    if (!first) out << ',';
    write_json_string(out, name);
    out << ':' << entry.counter->value();
    return true;
  });
  out << ',';
  dump_kind("gauges", [&](const std::string& name, const Entry& entry,
                          bool first) {
    if (!entry.gauge) return false;
    if (!first) out << ',';
    write_json_string(out, name);
    out << ':';
    write_double(out, entry.gauge->value());
    return true;
  });
  out << ',';
  dump_kind("histograms", [&](const std::string& name, const Entry& entry,
                              bool first) {
    if (!entry.histogram) return false;
    if (!first) out << ',';
    const Histogram::Snapshot s = entry.histogram->snapshot();
    write_json_string(out, name);
    out << ":{\"count\":" << s.count << ",\"sum\":";
    write_double(out, s.sum);
    out << ",\"min\":";
    write_double(out, s.min);
    out << ",\"max\":";
    write_double(out, s.max);
    out << ",\"mean\":";
    write_double(out, s.mean());
    out << '}';
    return true;
  });
  // Tail-latency histograms (obs/agg/latency_histogram.hpp), buckets
  // included so two dumps — or N shard dumps — merge exactly. An additive
  // group: schema_version stays 1, consumers reading only the three
  // summary groups are unaffected. Lock order is registry mutex (held
  // here) then the latency registry's own mutex; the latency layer never
  // takes this registry's mutex, so the order cannot invert.
  {
    std::string latency;
    agg::append_latency_section(latency, /*include_buckets=*/true);
    out << ",\"latency\":" << latency;
  }
  out << "}\n";
}

void write_metrics_json_file(const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "write_metrics_json_file: cannot open " + path);
  write_metrics_json(out);
}

}  // namespace ordo::obs
