#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "core/thread_safety.hpp"
#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "sparse/types.hpp"

namespace ordo::obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};

Mutex g_label_mutex;
// Leaked: read by the atexit trace export, after ordinary statics died.
std::string& label_storage() ORDO_REQUIRES(g_label_mutex) {
  static std::string* label = new std::string;
  return *label;
}

// Per-thread span buffer. The owning thread is the only appender, but a
// snapshot (collect_trace/clear_trace) may run concurrently from another
// thread, so the events vector is guarded by a per-buffer mutex — contended
// only at export time, and spans are phase-granular, so the uncontended
// lock per span close is noise. `depth` stays unguarded: only the owning
// thread ever touches it. Buffers deliberately leak at thread exit so spans
// from joined threads survive until export — the process-lifetime cost is
// bounded by span volume.
struct ThreadBuffer {
  Mutex mutex;  ///< guards `events` (owner appends, exporters read)
  std::vector<SpanEvent> events ORDO_GUARDED_BY(mutex);
  // ordo-analyze: allow(guard-coverage) depth is touched only by the owning
  // thread (span open/close nesting), never by exporters.
  int depth = 0;
  // ordo-analyze: allow(guard-coverage) thread_id is written once at
  // registration (before the buffer is published) and read-only after.
  int thread_id = 0;
};

// Registry mutex and buffer list live in one (deliberately leaked) struct:
// finalize() runs from std::atexit handlers that may outlive ordinarily-
// destroyed function statics, and the guarded_by relation needs both in
// one place.
struct BufferRegistry {
  Mutex mutex;
  std::vector<ThreadBuffer*> buffers ORDO_GUARDED_BY(mutex);
};

BufferRegistry& registry() {
  static BufferRegistry* r = new BufferRegistry;
  return *r;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer;
    BufferRegistry& r = registry();
    MutexLock lock(r.mutex);
    b->thread_id = static_cast<int>(r.buffers.size());
    r.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void json_escape(std::ostream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::int64_t trace_now_us() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               anchor)
      .count();
}

bool tracing_enabled() {
  // Relaxed: an on/off flag polled per span; buffers carry their own locks.
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void set_tracing_enabled(bool enabled) {
  if (enabled) trace_now_us();  // pin the time anchor before the first span
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void clear_trace() {
  BufferRegistry& r = registry();
  MutexLock lock(r.mutex);
  for (ThreadBuffer* buffer : r.buffers) {
    MutexLock buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::vector<SpanEvent> collect_trace() {
  std::vector<SpanEvent> all;
  {
    // Lock order: registry mutex, then each buffer mutex. Appenders only
    // ever take their own buffer mutex, so the order cannot invert.
    BufferRegistry& r = registry();
    MutexLock lock(r.mutex);
    for (ThreadBuffer* buffer : r.buffers) {
      MutexLock buffer_lock(buffer->mutex);
      all.insert(all.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  std::sort(all.begin(), all.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.depth < b.depth;
            });
  return all;
}

std::string trace_process_label() {
  MutexLock lock(g_label_mutex);
  return label_storage();
}

void set_trace_process_label(const std::string& label) {
  MutexLock lock(g_label_mutex);
  label_storage() = label;
}

void write_chrome_trace(std::ostream& out) {
  const std::vector<SpanEvent> events = collect_trace();
  const long pid = static_cast<long>(::getpid());
  const std::string label = trace_process_label();
  // schema_version and process_label are ours (chrome://tracing ignores
  // unknown top-level keys); schema_version tracks the span "args" layout,
  // versioned with the metrics document, and pid/process_label let the
  // shard trace merger stitch per-process files into named rows.
  out << "{\"schema_version\":" << kMetricsSchemaVersion << ",\"pid\":" << pid;
  if (!label.empty()) {
    out << ",\"process_label\":\"";
    json_escape(out, label);
    out << '"';
  }
  out << ",\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  if (!label.empty()) {
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"args\":{\"name\":\"";
    json_escape(out, label);
    out << "\"}}";
    first = false;
  }
  for (const SpanEvent& e : events) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"";
    json_escape(out, e.name);
    out << "\",\"cat\":\"ordo\",\"ph\":\"X\",\"ts\":" << e.start_us
        << ",\"dur\":" << e.duration_us << ",\"pid\":" << pid
        << ",\"tid\":" << e.thread_id << ",\"args\":{\"depth\":" << e.depth
        << "}}";
  }
  out << "]}\n";
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "write_chrome_trace_file: cannot open " + path);
  write_chrome_trace(out);
}

Span::Span(const char* name) {
  if (tracing_enabled()) open(name);
}

Span::Span(std::string name) {
  if (tracing_enabled()) open(std::move(name));
}

void Span::open(std::string name) {
  active_ = true;
  name_ = std::move(name);
  depth_ = local_buffer().depth++;
  start_us_ = trace_now_us();
}

Span::~Span() {
  if (!active_) return;
  const std::int64_t end_us = trace_now_us();
  ThreadBuffer& buffer = local_buffer();
  buffer.depth--;
  SpanEvent event;
  event.name = std::move(name_);
  event.start_us = start_us_;
  event.duration_us = end_us - start_us_;
  event.thread_id = buffer.thread_id;
  event.depth = depth_;
  MutexLock lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

}  // namespace ordo::obs
