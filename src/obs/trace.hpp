// Scoped-timer hierarchical tracing (the ORDO_SCOPE half of ordo::obs).
//
// Spans are recorded into a per-thread buffer: each thread owns a
// thread_local vector it alone appends to, so an active span costs one
// atomic flag load when tracing is off and two clock reads plus a
// push_back under the buffer's (uncontended outside export) mutex when it
// is on. The global registry of thread buffers is only locked on a thread's
// first span and when a snapshot is collected (export time), where each
// buffer's mutex is also taken so snapshots race-freely overlap appends.
//
// Instrumentation is placed at phase granularity (a reordering, a model
// evaluation, a corpus build) — never inside kernel inner loops — so the
// disabled cost is a branch per phase, not per nonzero. Compiling with
// ORDO_OBS=OFF removes even that: the ORDO_SCOPE macro expands to nothing.
//
// Export is Chrome trace_event JSON ("X" complete events), loadable in
// chrome://tracing or Perfetto. `ORDO_TRACE=out.json` (see obs.hpp) enables
// tracing and writes the file at finalize().
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ordo::obs {

/// One completed span, in the process-wide trace_now_us() time base.
struct SpanEvent {
  std::string name;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
  int thread_id = 0;  ///< dense id in registration order, not the OS tid
  int depth = 0;      ///< nesting depth within the thread at open time
};

/// Cheap check (one relaxed atomic load) used by every instrumentation site.
bool tracing_enabled();
void set_tracing_enabled(bool enabled);

/// Discards all recorded spans on every thread's buffer.
void clear_trace();

/// Snapshot of all spans recorded so far, merged across threads and sorted
/// by start time. Safe to call while other threads are still recording:
/// spans closed before the snapshot are included, spans closing during it
/// land on one side of their buffer's lock.
std::vector<SpanEvent> collect_trace();

/// Human-readable name for this process's rows in a merged trace ("shard
/// 0"; shard workers set it at fork). Empty by default. Emitted as a
/// Chrome process_name metadata event and as a top-level "process_label"
/// key of the trace document.
std::string trace_process_label();
void set_trace_process_label(const std::string& label);

/// Writes the collected spans as Chrome trace_event JSON. Events carry the
/// real pid (plus a top-level "pid" key), so per-process trace files can
/// be stitched into one timeline (obs/agg/trace_merge.hpp) with each
/// process on its own named row.
void write_chrome_trace(std::ostream& out);
void write_chrome_trace_file(const std::string& path);

/// RAII span. Construct with the hierarchical phase name ("reorder/rcm");
/// the span closes when the object leaves scope. No-op when tracing is off.
class Span {
 public:
  explicit Span(const char* name);
  explicit Span(std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void open(std::string name);
  bool active_ = false;
  std::string name_;
  std::int64_t start_us_ = 0;
  int depth_ = 0;
};

}  // namespace ordo::obs

// ORDO_SCOPE("phase/name"): records a span covering the rest of the
// enclosing block. Compiled out entirely when ORDO_OBS=OFF.
#if defined(ORDO_OBS_ENABLED)
#define ORDO_OBS_CONCAT_IMPL(a, b) a##b
#define ORDO_OBS_CONCAT(a, b) ORDO_OBS_CONCAT_IMPL(a, b)
#define ORDO_SCOPE(name) \
  ::ordo::obs::Span ORDO_OBS_CONCAT(ordo_scope_, __LINE__)(name)
#else
#define ORDO_SCOPE(name) ((void)0)
#endif
