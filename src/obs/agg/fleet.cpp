#include "obs/agg/fleet.hpp"

#include <signal.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "sparse/types.hpp"

namespace ordo::obs::agg {
namespace {

namespace fs = std::filesystem;

/// True when `pid` names an existing process. EPERM still means "exists,
/// just not ours to signal" — relevant when heartbeat files cross users.
bool pid_exists(std::int64_t pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;
}

/// Seconds since `path` was last renamed into place; nullopt when the file
/// does not exist (or mtime is unreadable).
std::optional<double> heartbeat_age_seconds(const std::string& path) {
  std::error_code ec;
  const fs::file_time_type mtime = fs::last_write_time(path, ec);
  if (ec) return std::nullopt;
  const auto age = fs::file_time_type::clock::now() - mtime;
  return std::chrono::duration<double>(age).count();
}

std::optional<JsonValue> read_heartbeat(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    return parse_json(text.str());
  } catch (const std::exception&) {
    // Torn or mid-write file: the atomic-rename protocol makes this rare,
    // but a reader racing the very first write can still lose.
    return std::nullopt;
  }
}

/// Fills the progress fields of `obs` from one parsed heartbeat document.
void read_observation_fields(const JsonValue& doc, ShardObservation& obs) {
  if (const JsonValue* pid = doc.find("pid")) obs.pid = pid->as_int();
  if (const JsonValue* run = doc.find("run")) {
    if (const JsonValue* v = run->find("running")) obs.running = v->boolean;
    if (const JsonValue* v = run->find("total")) obs.total = v->as_int();
    if (const JsonValue* v = run->find("completed")) {
      obs.completed = v->as_int();
    }
    if (const JsonValue* v = run->find("failed")) obs.failed = v->as_int();
    if (const JsonValue* v = run->find("resumed")) obs.resumed = v->as_int();
    if (const JsonValue* v = run->find("fraction")) {
      obs.fraction = v->as_double();
    }
    if (const JsonValue* v = run->find("elapsed_seconds")) {
      obs.elapsed_seconds = v->as_double();
    }
    if (const JsonValue* v = run->find("rate_tasks_per_second")) {
      obs.has_rate = true;
      obs.rate_tasks_per_second = v->as_double();
    }
  }
  if (const JsonValue* workers = doc.find("workers")) {
    for (const JsonValue& worker : workers->items) {
      const JsonValue* phase = worker.find("phase");
      if (phase == nullptr || phase->text.empty()) continue;
      if (!obs.phases.empty()) obs.phases += ',';
      obs.phases += phase->text;
    }
  }
  if (const JsonValue* latency = doc.find("latency")) {
    for (const auto& [name, value] : latency->members) {
      try {
        const ParsedLatencySnapshot parsed = parse_latency_snapshot(value);
        if (parsed.has_buckets && !parsed.snapshot.empty()) {
          obs.latency.emplace_back(name, parsed.snapshot);
        }
      } catch (const std::exception&) {
        // A malformed entry (schema drift, truncation) drops that one
        // histogram, never the whole observation.
      }
    }
  }
}

double median_of_rates(std::vector<double> rates) {
  const std::size_t mid = rates.size() / 2;
  std::nth_element(rates.begin(), rates.begin() + mid, rates.end());
  return rates[mid];
}

void append_kv_int(std::string& out, const char* key, std::int64_t value) {
  append_json_string(out, key);
  out += ':';
  out += std::to_string(value);
}

void append_kv_double(std::string& out, const char* key, double value) {
  append_json_string(out, key);
  out += ':';
  append_json_double(out, value);
}

}  // namespace

const char* shard_state_name(ShardState state) {
  switch (state) {
    case ShardState::kUnknown: return "unknown";
    case ShardState::kLive: return "live";
    case ShardState::kStale: return "stale";
    case ShardState::kDead: return "dead";
    case ShardState::kDone: return "done";
  }
  return "unknown";
}

FleetMonitor::FleetMonitor(FleetConfig config) : config_(std::move(config)) {
  MutexLock lock(mutex_);
  last_state_.assign(config_.shards.size(), ShardState::kUnknown);
  last_straggler_.assign(config_.shards.size(), 0);
}

FleetSnapshot FleetMonitor::poll() {
  FleetSnapshot fleet;
  fleet.shards.reserve(config_.shards.size());
  for (const FleetShardConfig& shard : config_.shards) {
    ShardObservation obs;
    obs.shard = shard.shard;
    const std::optional<JsonValue> doc = read_heartbeat(shard.heartbeat_path);
    const std::optional<double> age =
        heartbeat_age_seconds(shard.heartbeat_path);
    if (!doc || !age) {
      obs.state = ShardState::kUnknown;
      fleet.shards.push_back(std::move(obs));
      continue;
    }
    obs.heartbeat = true;
    obs.heartbeat_age_seconds = *age;
    read_observation_fields(*doc, obs);
    obs.pid_alive = pid_exists(obs.pid);
    if (!obs.running) {
      obs.state = ShardState::kDone;
    } else if (!obs.pid_alive) {
      obs.state = ShardState::kDead;
    } else if (obs.heartbeat_age_seconds > config_.stale_after_seconds) {
      obs.state = ShardState::kStale;
    } else {
      obs.state = ShardState::kLive;
    }
    fleet.shards.push_back(std::move(obs));
  }

  // Pace verdicts need the whole fleet: the median task rate of the live
  // shards is the yardstick a slow shard is measured against.
  std::vector<double> live_rates;
  for (const ShardObservation& obs : fleet.shards) {
    if (obs.state == ShardState::kLive && obs.has_rate &&
        obs.elapsed_seconds >= config_.min_elapsed_seconds) {
      live_rates.push_back(obs.rate_tasks_per_second);
    }
  }
  const bool have_median = live_rates.size() >= 2;
  const double median_rate =
      have_median ? median_of_rates(live_rates) : 0.0;
  for (ShardObservation& obs : fleet.shards) {
    switch (obs.state) {
      case ShardState::kDead:
        obs.straggler = true;
        obs.straggler_reason = "process died with unfinished work";
        break;
      case ShardState::kStale:
        obs.straggler = true;
        obs.straggler_reason = "heartbeat stale";
        break;
      case ShardState::kLive:
        if (have_median && obs.has_rate &&
            obs.elapsed_seconds >= config_.min_elapsed_seconds &&
            obs.rate_tasks_per_second * config_.straggler_factor <
                median_rate) {
          obs.straggler = true;
          obs.straggler_reason = "pacing behind the fleet median";
        }
        break;
      case ShardState::kUnknown:
      case ShardState::kDone:
        break;
    }
    if (obs.straggler) ++fleet.stragglers;
  }

  // Exact fleet-wide latency: bucket sums over every shard's histograms.
  std::map<std::string, LatencySnapshot> merged;
  for (const ShardObservation& obs : fleet.shards) {
    for (const auto& [name, snapshot] : obs.latency) {
      merged[name].merge(snapshot);
    }
  }
  fleet.merged_latency.assign(merged.begin(), merged.end());

  // Edge-triggered warnings: one structured line per state change or
  // straggler onset, so a wedged shard does not flood the log every poll.
  {
    MutexLock lock(mutex_);
    for (std::size_t i = 0; i < fleet.shards.size(); ++i) {
      const ShardObservation& obs = fleet.shards[i];
      if (i < last_state_.size() && obs.state != last_state_[i] &&
          (obs.state == ShardState::kDead ||
           obs.state == ShardState::kStale)) {
        logf(LogLevel::kProgress,
             "fleet: shard %d is %s (heartbeat %.1fs old, pid %lld %s)",
             obs.shard, shard_state_name(obs.state),
             obs.heartbeat_age_seconds, static_cast<long long>(obs.pid),
             obs.pid_alive ? "alive" : "gone");
      }
      if (i < last_straggler_.size() && obs.straggler &&
          last_straggler_[i] == 0) {
        logf(LogLevel::kProgress, "fleet: shard %d flagged straggler: %s",
             obs.shard, obs.straggler_reason.c_str());
      }
      if (i < last_state_.size()) last_state_[i] = obs.state;
      if (i < last_straggler_.size()) {
        last_straggler_[i] = obs.straggler ? 1 : 0;
      }
    }
  }
  ORDO_GAUGE_SET("obs.fleet.stragglers",
                 static_cast<double>(fleet.stragglers));
  return fleet;
}

void FleetMonitor::append_section(std::string& out) {
  const FleetSnapshot fleet = poll();
  out += "{\"schema_version\":";
  out += std::to_string(kFleetSchemaVersion);
  out += ",\"shards\":[";
  bool first = true;
  for (const ShardObservation& obs : fleet.shards) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_kv_int(out, "shard", obs.shard);
    out += ',';
    append_json_string(out, "state");
    out += ':';
    append_json_string(out, shard_state_name(obs.state));
    out += ",\"heartbeat\":";
    out += obs.heartbeat ? "true" : "false";
    if (!obs.heartbeat) {
      out += '}';
      continue;
    }
    out += ',';
    append_kv_int(out, "pid", obs.pid);
    out += ",\"pid_alive\":";
    out += obs.pid_alive ? "true" : "false";
    out += ',';
    append_kv_double(out, "heartbeat_age_seconds", obs.heartbeat_age_seconds);
    out += ",\"running\":";
    out += obs.running ? "true" : "false";
    out += ',';
    append_kv_int(out, "total", obs.total);
    out += ',';
    append_kv_int(out, "completed", obs.completed);
    out += ',';
    append_kv_int(out, "failed", obs.failed);
    out += ',';
    append_kv_int(out, "resumed", obs.resumed);
    out += ',';
    append_kv_double(out, "fraction", obs.fraction);
    out += ',';
    append_kv_double(out, "elapsed_seconds", obs.elapsed_seconds);
    // Absent-not-zero: rate and phases appear only once the worker has
    // one completion / an in-flight task to report.
    if (obs.has_rate) {
      out += ',';
      append_kv_double(out, "rate_tasks_per_second",
                       obs.rate_tasks_per_second);
    }
    if (!obs.phases.empty()) {
      out += ',';
      append_json_string(out, "phases");
      out += ':';
      append_json_string(out, obs.phases);
    }
    if (obs.straggler) {
      out += ",\"straggler\":true,";
      append_json_string(out, "straggler_reason");
      out += ':';
      append_json_string(out, obs.straggler_reason);
    }
    if (!obs.latency.empty()) {
      out += ",\"latency\":{";
      bool first_latency = true;
      for (const auto& [name, snapshot] : obs.latency) {
        if (!first_latency) out += ',';
        first_latency = false;
        append_json_string(out, name);
        out += ':';
        // Percentiles only: the shard's bucket detail stays in its own
        // heartbeat; the fleet section reports the derived tail.
        append_latency_snapshot_json(out, snapshot,
                                     /*include_buckets=*/false);
      }
      out += '}';
    }
    out += '}';
  }
  out += "],";
  append_kv_int(out, "stragglers", fleet.stragglers);
  out += ",\"latency\":{";
  first = true;
  for (const auto& [name, snapshot] : fleet.merged_latency) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_latency_snapshot_json(out, snapshot, /*include_buckets=*/false);
  }
  out += "}}";
}

}  // namespace ordo::obs::agg
