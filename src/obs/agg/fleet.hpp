// Fleet snapshots: the parent of a sharded study reads its workers'
// heartbeat files back and composes one schema-versioned "fleet" section
// into its own /stats document, so an N-process run is observable from a
// single endpoint.
//
// Per shard the monitor reports progress (total/completed/failed/resumed/
// fraction), the workers' current phases, the heartbeat's EWMA task rate,
// and a liveness verdict derived from two independent signals:
//
//   heartbeat mtime — how stale the last complete snapshot is;
//   pid             — whether the process named in the snapshot still
//                     exists (kill(pid, 0)).
//
//   state   meaning
//   ------- ----------------------------------------------------------
//   unknown no heartbeat document yet (worker still starting, or file
//           unreadable/torn)
//   live    fresh heartbeat, pid alive
//   stale   pid alive but the heartbeat is older than the threshold —
//           the worker is wedged or starved, not gone
//   dead    the pid no longer exists but the run was not finished
//   done    the heartbeat's final snapshot says running:false
//
// A straggler detector runs on every poll: a live shard pacing worse than
// straggler_factor× slower than the fleet's median rate, or any stale/dead
// shard with unfinished work, counts as a straggler — surfaced as a
// structured warning on the state transition (never per poll) and as the
// `obs.fleet.stragglers` gauge.
//
// The monitor also merges the workers' latency histograms (bucket sums,
// exact — see latency_histogram.hpp) into fleet-wide percentiles.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_safety.hpp"
#include "obs/agg/latency_histogram.hpp"

namespace ordo::obs::agg {

/// Layout version of the "fleet" section; bumped whenever a field changes
/// meaning so ordo_top --check can detect drift.
inline constexpr int kFleetSchemaVersion = 1;

struct FleetShardConfig {
  int shard = -1;
  std::string heartbeat_path;
};

struct FleetConfig {
  std::vector<FleetShardConfig> shards;
  /// A heartbeat older than this marks its shard stale. Workers write
  /// every 0.5 s, so 5 s is ten missed intervals — scheduling noise never
  /// trips it, a wedged worker trips it on the next poll.
  double stale_after_seconds = 5.0;
  /// A live shard pacing this many times slower than the fleet's median
  /// task rate is a straggler.
  double straggler_factor = 3.0;
  /// Pace verdicts are suppressed before a shard has run this long (the
  /// first task always looks infinitely slow).
  double min_elapsed_seconds = 2.0;
};

enum class ShardState { kUnknown, kLive, kStale, kDead, kDone };
const char* shard_state_name(ShardState state);

/// One shard as the monitor last observed it.
struct ShardObservation {
  int shard = -1;
  ShardState state = ShardState::kUnknown;
  bool heartbeat = false;  ///< a complete heartbeat document was read
  std::int64_t pid = 0;
  bool pid_alive = false;
  double heartbeat_age_seconds = 0.0;
  bool running = false;
  std::int64_t total = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t resumed = 0;
  double fraction = 0.0;
  double elapsed_seconds = 0.0;
  bool has_rate = false;  ///< absent until the worker's first completion
  double rate_tasks_per_second = 0.0;
  std::string phases;  ///< comma-joined phases of the shard's in-flight tasks
  bool straggler = false;
  std::string straggler_reason;  ///< set when straggler
  /// The worker's latency histograms, bucket-complete when the heartbeat
  /// carried them (schema v2 snapshots always do).
  std::vector<std::pair<std::string, LatencySnapshot>> latency;
};

struct FleetSnapshot {
  std::vector<ShardObservation> shards;
  int stragglers = 0;
  /// Exact bucket-sum merge of every shard's histograms, keyed by name.
  std::vector<std::pair<std::string, LatencySnapshot>> merged_latency;
};

/// The parent-side poller. Thread-safe: poll() and append_section() may be
/// called from any snapshot/listener thread; per-shard state memory (for
/// transition-edge warnings) is internal.
class FleetMonitor {
 public:
  explicit FleetMonitor(FleetConfig config);

  /// Reads every shard heartbeat, derives states and straggler verdicts,
  /// logs state-transition warnings, updates the obs.fleet.stragglers
  /// gauge, and returns the composed snapshot.
  FleetSnapshot poll();

  /// poll() + JSON emission of the "fleet" /stats section:
  /// {"schema_version":1,"shards":[...],"stragglers":N,"latency":{...}}.
  void append_section(std::string& out);

 private:
  mutable Mutex mutex_;
  /// Previous poll's verdicts, indexed like config_.shards — warnings fire
  /// on the edge (state change / straggler onset), never per poll.
  std::vector<ShardState> last_state_ ORDO_GUARDED_BY(mutex_);
  std::vector<char> last_straggler_ ORDO_GUARDED_BY(mutex_);
  // ordo-analyze: allow(guard-coverage) set in the constructor, then
  // read-only — every poll() reads it without synchronization by design.
  FleetConfig config_;
};

}  // namespace ordo::obs::agg
