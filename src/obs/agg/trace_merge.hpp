// Chrome-trace stitching for sharded runs: each worker process writes its
// own `ORDO_TRACE` file (suffixed `.shard<k>` at fork), and the parent —
// whose finalize() calls write_merged_chrome_trace_file when any input is
// registered — folds them into one trace_event document. Every process
// keeps its real pid on its events, and a process_name metadata row maps
// that pid to a human label ("parent", "shard 0", ...), so the whole sweep
// opens as a single multi-process timeline in chrome://tracing / Perfetto.
//
// Timestamps need no rebasing: trace_now_us() anchors to a steady_clock
// time_point pinned in the parent's init_from_env *before* the fork, and
// the children inherit that anchor (CLOCK_MONOTONIC is machine-wide), so
// parent and worker spans already share one time base.
//
// tools/ordo_trace_merge.py is the offline twin: it merges the same files
// after the fact and validates a merged document in CI.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ordo::obs::agg {

struct TraceMergeInput {
  std::string path;   ///< a per-process Chrome trace file
  std::string label;  ///< fallback process row name when the file has none
};

/// Registers a per-process trace file to fold into the merged export.
/// Idempotent per path (a re-registration updates the label). The parent
/// registers its workers' `.shard<k>` paths right after forking them.
void register_trace_merge_input(const std::string& path,
                                const std::string& label);

/// All registered inputs, in registration order (their process_sort_index
/// in the merged trace; the calling process itself sorts first).
std::vector<TraceMergeInput> trace_merge_inputs();

/// Drops all registered inputs (tests and repeated in-process runs).
void clear_trace_merge_inputs();

/// Writes the calling process's own spans plus every registered input's
/// events as one Chrome trace_event document with per-pid process_name /
/// process_sort_index metadata rows. An unreadable or torn input is
/// logged and skipped — a crashed shard must not take the surviving
/// shards' timeline with it.
void write_merged_chrome_trace(std::ostream& out);
void write_merged_chrome_trace_file(const std::string& path);

}  // namespace ordo::obs::agg
