#include "obs/agg/trace_merge.hpp"

#include <unistd.h>

#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "core/thread_safety.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sparse/types.hpp"

namespace ordo::obs::agg {
namespace {

struct InputRegistry {
  Mutex mutex;
  std::vector<TraceMergeInput> inputs ORDO_GUARDED_BY(mutex);
};

InputRegistry& input_registry() {
  static InputRegistry* r = new InputRegistry;  // outlives atexit handlers
  return *r;
}

void append_metadata_rows(std::string& out, std::int64_t pid,
                          const std::string& label, int sort_index,
                          bool& first) {
  if (!first) out += ',';
  first = false;
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"args\":{\"name\":";
  append_json_string(out, label);
  out += "}},{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"args\":{\"sort_index\":";
  out += std::to_string(sort_index);
  out += "}}";
}

}  // namespace

void register_trace_merge_input(const std::string& path,
                                const std::string& label) {
  InputRegistry& r = input_registry();
  MutexLock lock(r.mutex);
  for (TraceMergeInput& input : r.inputs) {
    if (input.path == path) {
      input.label = label;
      return;
    }
  }
  r.inputs.push_back({path, label});
}

std::vector<TraceMergeInput> trace_merge_inputs() {
  InputRegistry& r = input_registry();
  MutexLock lock(r.mutex);
  return r.inputs;
}

void clear_trace_merge_inputs() {
  InputRegistry& r = input_registry();
  MutexLock lock(r.mutex);
  r.inputs.clear();
}

void write_merged_chrome_trace(std::ostream& out) {
  const std::vector<TraceMergeInput> inputs = trace_merge_inputs();
  const std::int64_t own_pid = static_cast<std::int64_t>(::getpid());
  std::string own_label = trace_process_label();
  if (own_label.empty()) own_label = "parent";

  std::string doc;
  doc.reserve(1 << 16);
  doc += "{\"schema_version\":";
  doc += std::to_string(kMetricsSchemaVersion);
  doc += ",\"pid\":";
  doc += std::to_string(own_pid);
  doc += ",\"process_label\":";
  append_json_string(doc, own_label);
  doc += ",\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // The calling process's own spans, on the first-sorted row.
  append_metadata_rows(doc, own_pid, own_label, /*sort_index=*/0, first);
  for (const SpanEvent& e : collect_trace()) {
    doc += ",{\"name\":";
    append_json_string(doc, e.name);
    doc += ",\"cat\":\"ordo\",\"ph\":\"X\",\"ts\":";
    doc += std::to_string(e.start_us);
    doc += ",\"dur\":";
    doc += std::to_string(e.duration_us);
    doc += ",\"pid\":";
    doc += std::to_string(own_pid);
    doc += ",\"tid\":";
    doc += std::to_string(e.thread_id);
    doc += ",\"args\":{\"depth\":";
    doc += std::to_string(e.depth);
    doc += "}}";
  }

  int sort_index = 0;
  for (const TraceMergeInput& input : inputs) {
    ++sort_index;
    std::string text;
    {
      std::ifstream in(input.path);
      if (!in.good()) {
        logf(LogLevel::kProgress,
             "trace merge: skipping %s (unreadable — did that shard crash "
             "before its trace export?)",
             input.path.c_str());
        continue;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      text = buffer.str();
    }
    JsonValue parsed;
    try {
      parsed = parse_json(text);
    } catch (const std::exception& e) {
      logf(LogLevel::kProgress, "trace merge: skipping %s (torn JSON: %s)",
           input.path.c_str(), e.what());
      continue;
    }
    const JsonValue* events = parsed.find("traceEvents");
    if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
      logf(LogLevel::kProgress,
           "trace merge: skipping %s (no traceEvents array)",
           input.path.c_str());
      continue;
    }
    // Row identity: the file's own pid/label keys (written by
    // write_chrome_trace), the registered label as fallback. A file
    // without a pid gets a synthetic negative one so its rows never
    // collide with a real process's.
    const JsonValue* pid_value = parsed.find("pid");
    const std::int64_t pid = pid_value != nullptr
                                 ? pid_value->as_int()
                                 : -static_cast<std::int64_t>(sort_index);
    const JsonValue* label_value = parsed.find("process_label");
    std::string label = label_value != nullptr ? label_value->as_string()
                                               : input.label;
    if (label.empty()) label = "pid " + std::to_string(pid);
    append_metadata_rows(doc, pid, label, sort_index, first);
    for (const JsonValue& event : events->items) {
      // Metadata rows are re-authored above; everything else re-emits
      // byte-preserving (raw number text keeps the timestamps exact).
      if (const JsonValue* ph = event.find("ph")) {
        if (ph->kind == JsonValue::Kind::kString && ph->text == "M") {
          continue;
        }
      }
      doc += ',';
      append_json_value(doc, event);
    }
  }
  doc += "]}\n";
  out << doc;
}

void write_merged_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "write_merged_chrome_trace_file: cannot open " + path);
  write_merged_chrome_trace(out);
}

}  // namespace ordo::obs::agg
