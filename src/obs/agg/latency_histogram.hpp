// ordo::obs::agg — fleet-level aggregation: tail-latency histograms whose
// buckets merge exactly across processes (this header), shard heartbeat
// aggregation (fleet.hpp) and Chrome-trace stitching (trace_merge.hpp).
//
// The histogram is the percentile substrate the ROADMAP's ordo-serve
// direction needs ("measure tail latency, not just throughput"): the mean
// the metrics registry's summary Histogram reports says nothing about the
// p99 a straggler matrix inflicts. Design (DESIGN.md §15):
//
//  * Fixed log-linear buckets over a nanosecond int64 domain: values below
//    2^3 get one bucket each; every power-of-two octave above is split into
//    8 sub-buckets, so any recorded value lands in a bucket whose width is
//    at most 12.5% of its lower bound. Quantiles read from bucket
//    boundaries therefore carry a bounded relative error, independent of
//    the distribution's shape.
//  * Lock-light: record() is a handful of relaxed atomic adds — no mutex,
//    no allocation — cheap enough for per-task and per-phase call sites
//    (never inner loops; the discipline of obs/trace.hpp applies).
//  * Exactly mergeable: two snapshots with identical bucket layouts merge
//    by summing buckets. Merging is associative and commutative, so the
//    parent of a sharded study can sum worker snapshots read back from
//    heartbeat JSON and report fleet-wide percentiles that equal what one
//    process recording every sample would have reported (bucket-exactly).
//
// Recording macros (ORDO_LATENCY_RECORD / ORDO_LATENCY_SCOPE) compile out
// with ORDO_OBS=OFF like every other obs macro.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/stopwatch.hpp"

namespace ordo::obs {
struct JsonValue;
}  // namespace ordo::obs

namespace ordo::obs::agg {

/// Bucket count: 8 unit buckets below 2^3 ns plus 8 sub-buckets for each
/// of the octaves [2^3, 2^48) — an upper bound near 78 hours, far past any
/// single task. Larger values clamp into the last bucket (their percentile
/// reads as its lower bound, a deliberate underestimate).
inline constexpr int kLatencyBuckets = 8 + 8 * 45;

/// Bucket index of a nanosecond value (negatives clamp to bucket 0).
int latency_bucket_index(std::int64_t ns);

/// Inclusive lower bound of bucket `index`, in nanoseconds.
std::int64_t latency_bucket_lower_ns(int index);

/// A point-in-time copy of one histogram: plain integers, safe to merge,
/// serialize, and ship across processes.
struct LatencySnapshot {
  std::array<std::int64_t, kLatencyBuckets> buckets{};
  std::int64_t count = 0;
  std::int64_t sum_ns = 0;

  bool empty() const { return count == 0; }
  double mean_seconds() const {
    return count > 0 ? static_cast<double>(sum_ns) /
                           (1e9 * static_cast<double>(count))
                     : 0.0;
  }

  /// Exact merge: per-bucket sums. Associative and commutative.
  void merge(const LatencySnapshot& other);

  /// Value at quantile `q` in [0, 1], read from bucket lower bounds: the
  /// returned nanoseconds are the lower bound of the bucket holding the
  /// q-th sample, so quantiles never exceed any recorded sample by more
  /// than one bucket width. Returns 0 for an empty snapshot.
  std::int64_t percentile_ns(double q) const;
  double percentile_seconds(double q) const {
    return static_cast<double>(percentile_ns(q)) / 1e9;
  }
};

/// The recording side: an array of relaxed atomic bucket counters. One
/// instance per metric name, process-lifetime (see latency() below).
class LatencyHistogram {
 public:
  void record_ns(std::int64_t ns);
  void record_seconds(double seconds) {
    record_ns(static_cast<std::int64_t>(seconds * 1e9));
  }

  /// Folds a foreign snapshot (a shard worker's heartbeat) into this
  /// histogram — the parent-side half of the exact cross-process merge.
  void merge(const LatencySnapshot& snapshot);

  LatencySnapshot snapshot() const;
  void reset();

 private:
  // Relaxed throughout: each bucket is an independent tally; a snapshot
  // taken mid-record may miss the in-flight sample (it lands in the next
  // snapshot), which is the same per-field coherence every obs counter has.
  std::array<std::atomic<std::int64_t>, kLatencyBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_ns_{0};
};

/// Finds or creates the named latency histogram (process-lifetime, like
/// obs::counter). Hot sites cache the reference via ORDO_LATENCY_RECORD.
LatencyHistogram& latency(const std::string& name);

/// Every registered histogram's snapshot, sorted by name. Empty histograms
/// are included (callers apply the absent-not-zero rule when emitting).
std::vector<std::pair<std::string, LatencySnapshot>> sample_latency();

/// Zeroes every registered histogram without invalidating references.
void reset_latency();

/// Appends one JSON object mapping each non-empty histogram name to
/// {"count","sum_seconds","mean_seconds","p50","p90","p99","p999"} plus,
/// when `include_buckets`, a sparse "buckets":[[index,count],...] array —
/// the wire form a heartbeat carries so the parent can merge exactly.
/// Emits "{}" when nothing was recorded.
void append_latency_section(std::string& out, bool include_buckets);

/// Same emission for one already-taken snapshot under a caller-chosen name
/// policy (used by the fleet section for merged snapshots).
void append_latency_snapshot_json(std::string& out,
                                  const LatencySnapshot& snapshot,
                                  bool include_buckets);

/// Parses a snapshot back from the JSON object append_latency_snapshot_json
/// emitted. A document without "buckets" yields count/sum only (its buckets
/// are all zero and it must not be bucket-merged — callers check
/// has_buckets). Throws invalid_argument_error on malformed input.
struct ParsedLatencySnapshot {
  LatencySnapshot snapshot;
  bool has_buckets = false;
};
ParsedLatencySnapshot parse_latency_snapshot(const JsonValue& value);

/// RAII recorder for ORDO_LATENCY_SCOPE: records the enclosing block's
/// wall time into `histogram` on destruction.
class LatencyScope {
 public:
  explicit LatencyScope(LatencyHistogram& histogram)
      : histogram_(histogram) {}
  ~LatencyScope() { histogram_.record_seconds(watch_.seconds()); }
  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

 private:
  LatencyHistogram& histogram_;
  Stopwatch watch_;
};

}  // namespace ordo::obs::agg

// ORDO_LATENCY_RECORD("task", seconds) / ORDO_LATENCY_SCOPE("phase.x"):
// latency recording sites, compiled out entirely with ORDO_OBS=OFF. The
// name must be constant at the site (the instrument lookup is cached in a
// function-local static, exactly like ORDO_COUNTER_ADD).
#if defined(ORDO_OBS_ENABLED)
#define ORDO_AGG_CONCAT_IMPL(a, b) a##b
#define ORDO_AGG_CONCAT(a, b) ORDO_AGG_CONCAT_IMPL(a, b)
#define ORDO_LATENCY_RECORD(name, seconds)                          \
  do {                                                              \
    static ::ordo::obs::agg::LatencyHistogram& ordo_obs_latency_ =  \
        ::ordo::obs::agg::latency(name);                            \
    ordo_obs_latency_.record_seconds(seconds);                      \
  } while (0)
#define ORDO_LATENCY_SCOPE(name)                             \
  static ::ordo::obs::agg::LatencyHistogram&                 \
      ORDO_AGG_CONCAT(ordo_latency_hist_, __LINE__) =        \
          ::ordo::obs::agg::latency(name);                   \
  ::ordo::obs::agg::LatencyScope ORDO_AGG_CONCAT(            \
      ordo_latency_scope_, __LINE__)(                        \
      ORDO_AGG_CONCAT(ordo_latency_hist_, __LINE__))
#else
#define ORDO_LATENCY_RECORD(name, seconds) ((void)0)
#define ORDO_LATENCY_SCOPE(name) ((void)0)
#endif
