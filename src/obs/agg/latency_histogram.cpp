#include "obs/agg/latency_histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>

#include "core/thread_safety.hpp"
#include "obs/json.hpp"
#include "sparse/types.hpp"

namespace ordo::obs::agg {
namespace {

// Sub-bucket resolution: 2^3 sub-buckets per octave (the "3" in the index
// arithmetic below), giving every bucket a width of at most 1/8 of its
// lower bound.
constexpr int kSubBucketBits = 3;
constexpr int kSubBuckets = 1 << kSubBucketBits;

struct Registry {
  Mutex mutex;
  // Pointer values, never the histograms themselves: references returned by
  // latency() must survive map rehashing and process teardown (the atexit
  // metrics dump samples them). Deliberately leaked, like obs::counter's.
  std::map<std::string, LatencyHistogram*> entries ORDO_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives atexit handlers
  return *r;
}

const double kQuantiles[] = {0.50, 0.90, 0.99, 0.999};
const char* const kQuantileKeys[] = {"p50", "p90", "p99", "p999"};

}  // namespace

int latency_bucket_index(std::int64_t ns) {
  if (ns < 0) ns = 0;
  if (ns < kSubBuckets) return static_cast<int>(ns);
  const int octave =
      std::bit_width(static_cast<std::uint64_t>(ns)) - 1;  // floor(log2 ns)
  const int sub = static_cast<int>((ns >> (octave - kSubBucketBits)) &
                                   (kSubBuckets - 1));
  const int index = kSubBuckets + (octave - kSubBucketBits) * kSubBuckets + sub;
  return std::min(index, kLatencyBuckets - 1);
}

std::int64_t latency_bucket_lower_ns(int index) {
  require(index >= 0 && index < kLatencyBuckets,
          "latency_bucket_lower_ns: index out of range");
  if (index < kSubBuckets) return index;
  const int octave = kSubBucketBits + (index - kSubBuckets) / kSubBuckets;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  return static_cast<std::int64_t>(kSubBuckets + sub)
         << (octave - kSubBucketBits);
}

void LatencySnapshot::merge(const LatencySnapshot& other) {
  for (int i = 0; i < kLatencyBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum_ns += other.sum_ns;
}

std::int64_t LatencySnapshot::percentile_ns(double q) const {
  if (count <= 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based): the smallest bucket whose cumulative
  // count reaches it. ceil keeps p100 at the last occupied bucket and p0 at
  // the first.
  const std::int64_t rank = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::int64_t cumulative = 0;
  for (int i = 0; i < kLatencyBuckets; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return latency_bucket_lower_ns(i);
  }
  return latency_bucket_lower_ns(kLatencyBuckets - 1);
}

void LatencyHistogram::record_ns(std::int64_t ns) {
  const int index = latency_bucket_index(ns);
  // Relaxed: independent tallies sampled for reports; no reader infers
  // ordering between a bucket and other memory (class comment in the
  // header). A concurrent snapshot may see the bucket bumped before
  // count/sum or vice versa — per-field coherence, like every obs counter.
  buckets_[static_cast<std::size_t>(index)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_ns_.fetch_add(std::max<std::int64_t>(0, ns), std::memory_order_relaxed);
}

void LatencyHistogram::merge(const LatencySnapshot& snapshot) {
  // Relaxed: same tally reasoning as record_ns.
  for (int i = 0; i < kLatencyBuckets; ++i) {
    if (snapshot.buckets[i] != 0) {
      buckets_[static_cast<std::size_t>(i)].fetch_add(
          snapshot.buckets[i], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(snapshot.count, std::memory_order_relaxed);
  sum_ns_.fetch_add(snapshot.sum_ns, std::memory_order_relaxed);
}

LatencySnapshot LatencyHistogram::snapshot() const {
  LatencySnapshot s;
  // Relaxed: see record_ns — a snapshot is per-field coherent, not a cut.
  for (int i = 0; i < kLatencyBuckets; ++i) {
    s.buckets[i] = buckets_[static_cast<std::size_t>(i)].load(
        std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_ns = sum_ns_.load(std::memory_order_relaxed);
  return s;
}

void LatencyHistogram::reset() {
  // Relaxed: reset is a test/harness convenience, not a synchronization
  // point; racing records land in either the old or the new epoch.
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
}

LatencyHistogram& latency(const std::string& name) {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  auto it = r.entries.find(name);
  if (it == r.entries.end()) {
    it = r.entries.emplace(name, new LatencyHistogram).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, LatencySnapshot>> sample_latency() {
  std::vector<std::pair<std::string, LatencySnapshot>> samples;
  Registry& r = registry();
  MutexLock lock(r.mutex);
  samples.reserve(r.entries.size());
  for (const auto& [name, histogram] : r.entries) {
    samples.emplace_back(name, histogram->snapshot());
  }
  return samples;  // std::map iteration order is already sorted
}

void reset_latency() {
  Registry& r = registry();
  MutexLock lock(r.mutex);
  for (const auto& [name, histogram] : r.entries) histogram->reset();
}

void append_latency_snapshot_json(std::string& out,
                                  const LatencySnapshot& snapshot,
                                  bool include_buckets) {
  out += "{\"count\":";
  out += std::to_string(snapshot.count);
  out += ",\"sum_ns\":";
  out += std::to_string(snapshot.sum_ns);
  out += ",\"mean_seconds\":";
  append_json_double(out, snapshot.mean_seconds());
  for (std::size_t i = 0; i < std::size(kQuantiles); ++i) {
    out += ",\"";
    out += kQuantileKeys[i];
    out += "\":";
    append_json_double(out, snapshot.percentile_seconds(kQuantiles[i]));
  }
  if (include_buckets) {
    // Sparse pairs: the bucket array is mostly zeros for any real
    // distribution, and the heartbeat carries this every interval.
    out += ",\"buckets\":[";
    bool first = true;
    for (int i = 0; i < kLatencyBuckets; ++i) {
      if (snapshot.buckets[i] == 0) continue;
      if (!first) out += ',';
      first = false;
      out += '[';
      out += std::to_string(i);
      out += ',';
      out += std::to_string(snapshot.buckets[i]);
      out += ']';
    }
    out += ']';
  }
  out += '}';
}

void append_latency_section(std::string& out, bool include_buckets) {
  out += '{';
  bool first = true;
  for (const auto& [name, snapshot] : sample_latency()) {
    if (snapshot.empty()) continue;  // absent, never zero
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    append_latency_snapshot_json(out, snapshot, include_buckets);
  }
  out += '}';
}

ParsedLatencySnapshot parse_latency_snapshot(const JsonValue& value) {
  require(value.kind == JsonValue::Kind::kObject,
          "latency snapshot: expected an object");
  ParsedLatencySnapshot parsed;
  parsed.snapshot.count = value.at("count").as_int();
  parsed.snapshot.sum_ns = value.at("sum_ns").as_int();
  if (const JsonValue* buckets = value.find("buckets")) {
    require(buckets->kind == JsonValue::Kind::kArray,
            "latency snapshot: buckets must be an array");
    parsed.has_buckets = true;
    for (const JsonValue& pair : buckets->items) {
      require(pair.kind == JsonValue::Kind::kArray && pair.items.size() == 2,
              "latency snapshot: bucket entries are [index,count] pairs");
      const std::int64_t index = pair.items[0].as_int();
      require(index >= 0 && index < kLatencyBuckets,
              "latency snapshot: bucket index out of range");
      parsed.snapshot.buckets[static_cast<std::size_t>(index)] =
          pair.items[1].as_int();
    }
  }
  return parsed;
}

}  // namespace ordo::obs::agg
