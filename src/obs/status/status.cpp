#include "obs/status/status.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <unistd.h>

#include "core/thread_safety.hpp"
#include "obs/agg/latency_histogram.hpp"
#include "obs/hw/hw_counters.hpp"
#include "obs/hw/membw.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/status/heartbeat.hpp"
#include "obs/status/listener.hpp"
#include "sparse/types.hpp"

namespace ordo::obs::status {
namespace {

// Worker slots: one per thread that ever ran a study task. Fixed-size so a
// snapshot can walk the table without taking a board-wide lock; 256 is far
// past any sane --jobs value. A thread claims a slot on its first
// task_started and keeps it until the thread exits (the TLS lease below
// releases it), so pool churn across repeated runs in one process recycles
// slots instead of exhausting them.
constexpr int kMaxSlots = 256;

// EWMA weight of the newest completed task in the ETA estimate: heavy
// enough to track the corpus's three-orders-of-magnitude nnz spread as the
// sweep moves through size classes, damped enough that one outlier matrix
// does not whipsaw the forecast.
constexpr double kEwmaAlpha = 0.2;

struct Slot {
  std::atomic<bool> claimed{false};  ///< owned by some live thread
  std::atomic<bool> active{false};   ///< a task is in flight on this slot
  std::atomic<int> index{-1};
  std::atomic<std::int64_t> start_us{0};
  std::atomic<std::int64_t> deadline_us{0};  ///< 0 = no deadline
  std::atomic<const char*> phase{nullptr};   ///< static-storage strings only
  mutable Mutex name_mutex;
  std::string name ORDO_GUARDED_BY(name_mutex);
};

struct Board {
  // ordo-analyze: allow(guard-coverage) the array itself is immutable;
  // each Slot self-synchronises via its claimed/active atomics + name_mutex.
  Slot slots[kMaxSlots];

  // Run progress. Plain atomics: hooks are per-task, never per-inner-loop.
  std::atomic<bool> running{false};
  std::atomic<std::int64_t> total{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> failed{0};
  std::atomic<std::int64_t> timeouts{0};
  std::atomic<std::int64_t> resumed{0};
  std::atomic<int> workers{0};
  std::atomic<std::int64_t> run_start_us{0};

  // ETA state, touched once per task completion.
  Mutex ewma_mutex;
  double ewma_task_seconds ORDO_GUARDED_BY(ewma_mutex) = 0.0;
  std::int64_t ewma_count ORDO_GUARDED_BY(ewma_mutex) = 0;

  // Registered subsystem sections.
  Mutex section_mutex;
  std::map<std::string, SectionFn> sections ORDO_GUARDED_BY(section_mutex);

  // Snapshot-serial state: per-counter values of the previous snapshot (for
  // deltas) and the previous hw sample (for the counter window).
  Mutex snapshot_mutex;
  std::map<std::string, std::int64_t> last_counters
      ORDO_GUARDED_BY(snapshot_mutex);
  hw::CounterSet last_hw ORDO_GUARDED_BY(snapshot_mutex);
  std::int64_t last_hw_us ORDO_GUARDED_BY(snapshot_mutex) = 0;
};

Board& board() {
  static Board* b = new Board;  // leaked: outlives TLS destructors and atexit
  return *b;
}

// Releases the thread's slot when the thread dies, so joined pool workers
// from a finished run hand their slots to the next run's pool.
struct SlotLease {
  int slot = -1;
  ~SlotLease() {
    if (slot < 0) return;
    Slot& s = board().slots[slot];
    // Release pairs with the acquire CAS in claim_slot: the next thread to
    // claim this slot must observe it fully quiesced.
    s.active.store(false, std::memory_order_release);
    s.claimed.store(false, std::memory_order_release);
  }
};
thread_local SlotLease tls_lease;

int claim_slot() {
  if (tls_lease.slot >= 0) return tls_lease.slot;
  Board& b = board();
  for (int i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    // acq_rel: acquire the previous owner's release above, publish the
    // claim before this thread starts writing slot fields.
    if (b.slots[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      tls_lease.slot = i;
      return i;
    }
  }
  return -1;  // table full: progress counters still work, the slot view not
}

void append_kv(std::string& out, const char* key, std::int64_t value) {
  append_json_string(out, key);
  out += ':';
  out += std::to_string(value);
}

void append_kv(std::string& out, const char* key, double value) {
  append_json_string(out, key);
  out += ':';
  append_json_double(out, value);
}

void append_kv(std::string& out, const char* key, const std::string& value) {
  append_json_string(out, key);
  out += ':';
  append_json_string(out, value);
}

void append_run_section(std::string& out, const ProgressSnapshot& p) {
  out += "\"run\":{";
  append_json_string(out, "running");
  out += p.running ? ":true," : ":false,";
  append_kv(out, "total", p.total);
  out += ',';
  append_kv(out, "completed", p.completed);
  out += ',';
  append_kv(out, "failed", p.failed);
  out += ',';
  append_kv(out, "timeouts", p.timeouts);
  out += ',';
  append_kv(out, "resumed", p.resumed);
  out += ',';
  append_kv(out, "in_flight", static_cast<std::int64_t>(p.in_flight));
  out += ',';
  append_kv(out, "workers", static_cast<std::int64_t>(p.workers));
  out += ',';
  append_kv(out, "fraction", p.fraction);
  out += ',';
  append_kv(out, "elapsed_seconds", p.elapsed_seconds);
  // ETA and rate are absent — not 0 — until this run's first completion: a
  // monitor must distinguish "no forecast yet" from "done any second now".
  if (p.has_eta) {
    out += ',';
    append_kv(out, "eta_seconds", p.eta_seconds);
  }
  if (p.has_rate) {
    out += ',';
    append_kv(out, "rate_tasks_per_second", p.rate_tasks_per_second);
  }
  out += '}';
}

void append_workers_section(std::string& out,
                            const std::vector<WorkerSnapshot>& workers) {
  out += "\"workers\":[";
  bool first = true;
  for (const WorkerSnapshot& w : workers) {
    if (!first) out += ',';
    first = false;
    out += '{';
    append_kv(out, "slot", static_cast<std::int64_t>(w.slot));
    out += ',';
    append_kv(out, "task_index", static_cast<std::int64_t>(w.task_index));
    out += ',';
    append_kv(out, "matrix", w.matrix);
    out += ',';
    append_kv(out, "phase", w.phase);
    out += ',';
    append_kv(out, "elapsed_seconds", w.elapsed_seconds);
    if (w.has_deadline) {
      out += ',';
      append_kv(out, "deadline_margin_seconds", w.deadline_margin_seconds);
    }
    out += '}';
  }
  out += ']';
}

// The metrics registry with per-counter deltas since the previous snapshot
// (the caller holds the snapshot mutex, which is what makes "previous
// snapshot" well defined).
void append_metrics_section(std::string& out,
                            std::map<std::string, std::int64_t>& last) {
  out += "\"metrics\":{\"counters\":{";
  const std::vector<MetricSample> samples = sample_metrics();
  bool first = true;
  std::map<std::string, std::int64_t> current;
  for (const MetricSample& s : samples) {
    if (s.kind != MetricSample::Kind::kCounter) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, s.name);
    out += ":{";
    append_kv(out, "value", s.counter_value);
    out += ',';
    const auto it = last.find(s.name);
    append_kv(out, "delta",
              s.counter_value - (it == last.end() ? 0 : it->second));
    out += '}';
    current[s.name] = s.counter_value;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricSample& s : samples) {
    if (s.kind != MetricSample::Kind::kGauge) continue;
    if (!first) out += ',';
    first = false;
    append_kv(out, s.name.c_str(), s.gauge_value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const MetricSample& s : samples) {
    if (s.kind != MetricSample::Kind::kHistogram) continue;
    if (!first) out += ',';
    first = false;
    append_json_string(out, s.name);
    out += ":{";
    append_kv(out, "count", s.histogram.count);
    out += ',';
    append_kv(out, "mean", s.histogram.mean());
    out += ',';
    append_kv(out, "min", s.histogram.min);
    out += ',';
    append_kv(out, "max", s.histogram.max);
    out += '}';
  }
  out += "}}";
  last = std::move(current);
}

// The latest hardware-counter window: session totals diffed against the
// previous snapshot's totals (the first window spans process start). The
// section exists only when a hw session is enabled, and the derived fields
// only when the window is valid — absent, never zero.
void append_hw_section(std::string& out, Board& b, std::int64_t now_us)
    ORDO_REQUIRES(b.snapshot_mutex) {
  const hw::CounterSet totals = hw::session_totals();
  out += "\"hw\":{";
  append_kv(out, "backend", hw::backend_name());
  const double window_seconds =
      static_cast<double>(now_us - b.last_hw_us) / 1e6;
  hw::CounterSet window;
  window.available = totals.available;
  for (const hw::Reading& reading : totals.readings) {
    hw::Reading delta = reading;
    if (const hw::Reading* prev = b.last_hw.find(reading.id)) {
      delta.value = std::max(0.0, reading.value - prev->value);
    }
    window.readings.push_back(delta);
  }
  const hw::DerivedMetrics derived =
      hw::derive_metrics(window, window_seconds);
  out += ',';
  append_kv(out, "window_seconds", window_seconds);
  if (derived.valid) {
    out += ',';
    append_kv(out, "ipc", derived.ipc);
    out += ',';
    append_kv(out, "llc_miss_rate", derived.llc_miss_rate);
    out += ',';
    append_kv(out, "gbps", derived.gbps);
    const double peak = hw::measured_peak_gbps();
    if (peak > 0.0) {
      out += ',';
      append_kv(out, "peak_gbps", peak);
      out += ',';
      append_kv(out, "achieved_frac", derived.gbps / peak);
    }
  }
  out += '}';
  b.last_hw = totals;
  b.last_hw_us = now_us;
}

// --- process-wide consumers ------------------------------------------------

Mutex g_consumer_mutex;
std::unique_ptr<StatusListener> g_listener ORDO_GUARDED_BY(g_consumer_mutex);
std::unique_ptr<HeartbeatWriter> g_heartbeat
    ORDO_GUARDED_BY(g_consumer_mutex);
std::atomic<bool> g_consumers{false};

// Consumer configuration parked by suspend_consumers() so a matching
// resume_consumers() can restart the exact same listener/heartbeat after a
// fork window (see status.hpp).
int g_suspended_port ORDO_GUARDED_BY(g_consumer_mutex) = -1;
std::string g_suspended_heartbeat_path ORDO_GUARDED_BY(g_consumer_mutex);
double g_suspended_heartbeat_interval ORDO_GUARDED_BY(g_consumer_mutex) = 0.0;

}  // namespace

void register_section(const std::string& key, SectionFn fn) {
  Board& b = board();
  MutexLock lock(b.section_mutex);
  b.sections[key] = std::move(fn);
}

void begin_run(std::int64_t total, int workers, std::int64_t resumed) {
  Board& b = board();
  {
    MutexLock lock(b.ewma_mutex);
    b.ewma_task_seconds = 0.0;
    b.ewma_count = 0;
  }
  // Relaxed: independent progress counters, each read individually for
  // display; the release store on `running` below publishes them all.
  b.total.store(total, std::memory_order_relaxed);
  b.completed.store(0, std::memory_order_relaxed);
  b.failed.store(0, std::memory_order_relaxed);
  b.timeouts.store(0, std::memory_order_relaxed);
  b.resumed.store(resumed, std::memory_order_relaxed);
  b.workers.store(workers, std::memory_order_relaxed);
  b.run_start_us.store(trace_now_us(), std::memory_order_relaxed);
  b.running.store(true, std::memory_order_release);
}

void end_run() {
  // Relaxed: nothing is published with the end-of-run flip; snapshot
  // readers tolerate counters that settle a poll later.
  board().running.store(false, std::memory_order_relaxed);
}

void task_started(int index, const std::string& name,
                  double deadline_seconds) {
  const int slot_id = claim_slot();
  if (slot_id < 0) return;
  Slot& slot = board().slots[slot_id];
  {
    MutexLock lock(slot.name_mutex);
    slot.name = name;
  }
  const std::int64_t now = trace_now_us();
  // Relaxed field stores, published by the release store on `active`:
  // snapshot readers only look at them after an acquire load sees true.
  slot.index.store(index, std::memory_order_relaxed);
  slot.start_us.store(now, std::memory_order_relaxed);
  slot.deadline_us.store(
      deadline_seconds > 0.0
          ? now + static_cast<std::int64_t>(deadline_seconds * 1e6)
          : 0,
      std::memory_order_relaxed);
  slot.phase.store(nullptr, std::memory_order_relaxed);
  slot.active.store(true, std::memory_order_release);
}

void set_phase(const char* phase) {
  const int slot_id = tls_lease.slot;
  if (slot_id < 0) return;
  Slot& slot = board().slots[slot_id];
  // Relaxed: the phase is advisory display state on the owner's own slot;
  // the active flag's release store already ordered the slot handoff.
  if (!slot.active.load(std::memory_order_relaxed)) return;
  slot.phase.store(phase, std::memory_order_relaxed);
}

void task_finished(bool failed, bool timed_out, double seconds) {
  Board& b = board();
  // Relaxed: pure tallies — no reader infers other state from them.
  if (failed) {
    b.failed.fetch_add(1, std::memory_order_relaxed);
    if (timed_out) b.timeouts.fetch_add(1, std::memory_order_relaxed);
  } else {
    b.completed.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(b.ewma_mutex);
    b.ewma_task_seconds = b.ewma_count == 0
                              ? seconds
                              : kEwmaAlpha * seconds +
                                    (1.0 - kEwmaAlpha) * b.ewma_task_seconds;
    b.ewma_count += 1;
  }
  if (tls_lease.slot >= 0) {
    // Release pairs with the snapshot readers' acquire: a slot seen
    // inactive must not still show this task's fields as live.
    b.slots[tls_lease.slot].active.store(false, std::memory_order_release);
  }
}

ProgressSnapshot progress() {
  Board& b = board();
  ProgressSnapshot p;
  // Acquire pairs with begin_run's release, ordering the counter reads
  // below after the run-start publication; the counters themselves are
  // relaxed tallies.
  p.running = b.running.load(std::memory_order_acquire);
  p.total = b.total.load(std::memory_order_relaxed);
  p.completed = b.completed.load(std::memory_order_relaxed);
  p.failed = b.failed.load(std::memory_order_relaxed);
  p.timeouts = b.timeouts.load(std::memory_order_relaxed);
  p.resumed = b.resumed.load(std::memory_order_relaxed);
  p.workers = b.workers.load(std::memory_order_relaxed);
  for (const Slot& slot : b.slots) {
    // Relaxed: the pair is a momentary occupancy count, not a data handoff.
    if (slot.claimed.load(std::memory_order_relaxed) &&
        slot.active.load(std::memory_order_relaxed)) {
      ++p.in_flight;
    }
  }
  const std::int64_t done = p.resumed + p.completed + p.failed;
  p.fraction = p.total > 0 ? static_cast<double>(done) /
                                 static_cast<double>(p.total)
                           : 0.0;
  // Relaxed: published by the `running` release/acquire pair above.
  p.elapsed_seconds =
      static_cast<double>(trace_now_us() -
                          b.run_start_us.load(std::memory_order_relaxed)) /
      1e6;
  double ewma = 0.0;
  std::int64_t ewma_count = 0;
  {
    MutexLock lock(b.ewma_mutex);
    ewma = b.ewma_task_seconds;
    ewma_count = b.ewma_count;
  }
  if (ewma_count > 0 && p.total > done) {
    p.has_eta = true;
    p.eta_seconds = static_cast<double>(p.total - done) * ewma /
                    std::max(1, p.workers);
  }
  if (ewma_count > 0 && ewma > 0.0) {
    p.has_rate = true;
    p.rate_tasks_per_second =
        static_cast<double>(std::max(1, p.workers)) / ewma;
  }
  return p;
}

std::vector<WorkerSnapshot> in_flight_workers() {
  Board& b = board();
  const std::int64_t now = trace_now_us();
  std::vector<WorkerSnapshot> workers;
  for (int i = 0; i < kMaxSlots; ++i) {
    Slot& slot = b.slots[i];
    // Relaxed claim check; the acquire on `active` pairs with
    // task_started's release so the field reads below see that task's
    // values.
    if (!slot.claimed.load(std::memory_order_relaxed) ||
        !slot.active.load(std::memory_order_acquire)) {
      continue;
    }
    WorkerSnapshot w;
    w.slot = i;
    // Relaxed: all published by the acquire load on `active` above.
    w.task_index = slot.index.load(std::memory_order_relaxed);
    {
      MutexLock lock(slot.name_mutex);
      w.matrix = slot.name;
    }
    const char* phase = slot.phase.load(std::memory_order_relaxed);
    w.phase = phase != nullptr ? phase : "";
    w.elapsed_seconds =
        static_cast<double>(now - slot.start_us.load(
                                      std::memory_order_relaxed)) /
        1e6;
    const std::int64_t deadline =
        slot.deadline_us.load(std::memory_order_relaxed);
    if (deadline > 0) {
      w.has_deadline = true;
      w.deadline_margin_seconds = static_cast<double>(deadline - now) / 1e6;
    }
    workers.push_back(std::move(w));
  }
  return workers;
}

std::string snapshot_json() {
  Board& b = board();
  ORDO_COUNTER_ADD("status.snapshots", 1);
  // The long-standing "metrics only exist at atexit" gap: every snapshot
  // also refreshes the on-disk ordo_metrics.json (atomic rename; no-op when
  // ORDO_METRICS is unset).
  flush_metrics();

  MutexLock lock(b.snapshot_mutex);
  const std::int64_t now_us = trace_now_us();
  std::string out;
  out.reserve(4096);
  out += "{\"schema_version\":";
  out += std::to_string(kStatusSchemaVersion);
  out += ',';
  append_kv(out, "pid", static_cast<std::int64_t>(::getpid()));
  out += ',';
  append_kv(out, "uptime_seconds", static_cast<double>(now_us) / 1e6);
  out += ',';
  append_run_section(out, progress());
  out += ',';
  append_workers_section(out, in_flight_workers());
  out += ',';
  append_metrics_section(out, b.last_counters);
  {
    // Tail-latency histograms, buckets included: the snapshot doubles as
    // the heartbeat document a sharded parent merges exactly (bucket sums),
    // so the wire form must carry the buckets, not just the percentiles.
    // Absent — never an empty section — when nothing was recorded.
    std::string latency;
    agg::append_latency_section(latency, /*include_buckets=*/true);
    if (latency != "{}") {
      out += ",\"latency\":";
      out += latency;
    }
  }
  {
    MutexLock section_lock(b.section_mutex);
    for (const auto& [key, fn] : b.sections) {
      out += ',';
      append_json_string(out, key);
      out += ':';
      fn(out);
    }
  }
  if (hw::enabled()) {
    out += ',';
    append_hw_section(out, b, now_us);
  }
  out += '}';
  return out;
}

void init_from_env() {
  if (const char* port = std::getenv("ORDO_STATUS_PORT")) {
    if (*port != '\0' && listener_port() == 0) {
      start_listener(std::atoi(port));
    }
  }
  if (const char* path = std::getenv("ORDO_STATUS_FILE")) {
    if (*path != '\0') {
      double interval = 1.0;
      if (const char* raw = std::getenv("ORDO_STATUS_INTERVAL")) {
        if (*raw != '\0') interval = std::atof(raw);
      }
      start_heartbeat(path, interval);
    }
  }
}

void start_listener(int port) {
  auto listener = std::make_unique<StatusListener>("127.0.0.1", port);
  MutexLock lock(g_consumer_mutex);
  g_listener = std::move(listener);
  // Relaxed: a hook racing the flip merely skips (or takes) one phase
  // marker; the consumer objects themselves are guarded by the mutex.
  g_consumers.store(true, std::memory_order_relaxed);
}

int listener_port() {
  MutexLock lock(g_consumer_mutex);
  return g_listener ? g_listener->port() : 0;
}

void start_heartbeat(const std::string& path, double interval_seconds) {
  auto writer = std::make_unique<HeartbeatWriter>(path, interval_seconds);
  MutexLock lock(g_consumer_mutex);
  g_heartbeat = std::move(writer);
  // Relaxed: same reasoning as start_listener.
  g_consumers.store(true, std::memory_order_relaxed);
}

bool consumers_active() {
  // Relaxed: same reasoning as start_listener.
  return g_consumers.load(std::memory_order_relaxed);
}

void stop() {
  std::unique_ptr<StatusListener> listener;
  std::unique_ptr<HeartbeatWriter> heartbeat;
  {
    MutexLock lock(g_consumer_mutex);
    listener = std::move(g_listener);
    heartbeat = std::move(g_heartbeat);
    g_suspended_port = -1;
    g_suspended_heartbeat_path.clear();
    // Relaxed: same reasoning as start_listener.
    g_consumers.store(false, std::memory_order_relaxed);
  }
  // Destructors join the service threads; the heartbeat's writes its final
  // snapshot first. Both run outside the consumer mutex so a slow join
  // cannot deadlock a concurrent start_*.
  heartbeat.reset();
  listener.reset();
}

void suspend_consumers() {
  std::unique_ptr<StatusListener> listener;
  std::unique_ptr<HeartbeatWriter> heartbeat;
  {
    MutexLock lock(g_consumer_mutex);
    listener = std::move(g_listener);
    heartbeat = std::move(g_heartbeat);
    g_suspended_port = listener ? listener->port() : -1;
    if (heartbeat) {
      g_suspended_heartbeat_path = heartbeat->path();
      g_suspended_heartbeat_interval = heartbeat->interval_seconds();
    } else {
      g_suspended_heartbeat_path.clear();
    }
    // Relaxed: same reasoning as start_listener.
    g_consumers.store(false, std::memory_order_relaxed);
  }
  // Joins happen outside the mutex, exactly like stop(). After this returns
  // no status service thread exists, so the process is safe to fork: a
  // child cannot inherit a mid-operation listener socket or a heartbeat
  // thread that exists in the parent but not in the child.
  heartbeat.reset();
  listener.reset();
}

void resume_consumers() {
  int port = -1;
  std::string heartbeat_path;
  double heartbeat_interval = 0.0;
  {
    MutexLock lock(g_consumer_mutex);
    port = g_suspended_port;
    heartbeat_path = g_suspended_heartbeat_path;
    heartbeat_interval = g_suspended_heartbeat_interval;
    g_suspended_port = -1;
    g_suspended_heartbeat_path.clear();
  }
  // Rebinding the remembered port can race another process that grabbed it
  // during the window; surface that as the usual start_listener throw.
  if (port >= 0) start_listener(port);
  if (!heartbeat_path.empty()) {
    start_heartbeat(heartbeat_path, heartbeat_interval);
  }
}

}  // namespace ordo::obs::status
