// Heartbeat file writer — /stats for socketless hosts: every interval the
// current StatusBoard snapshot is written to `path` via write-temp-then-
// rename, so any reader (ordo_top --file, a cron job, an NFS-mounted
// dashboard) always sees a complete JSON document — either the previous
// snapshot or the new one, never a torn write. A killed process leaves the
// last completed snapshot behind; an orderly stop() writes one final
// snapshot first.
#pragma once

#include <condition_variable>
#include <string>
#include <thread>

#include "core/thread_safety.hpp"

namespace ordo::obs::status {

class HeartbeatWriter {
 public:
  /// Writes a first snapshot immediately, then every `interval_seconds`
  /// (clamped to at least 100 ms) from a background thread. Throws
  /// invalid_argument_error when `path` is not writable — or when `path`
  /// already holds the live heartbeat of a *different* process (the
  /// snapshot's "pid" names a still-running pid other than ours): two
  /// concurrent writers on one path would tear each other's snapshots, so
  /// every process (each shard worker of a sharded study in particular)
  /// must write to its own file. A dead owner's leftover file is
  /// overwritten normally.
  HeartbeatWriter(std::string path, double interval_seconds);
  ~HeartbeatWriter();  // = stop()
  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  const std::string& path() const { return path_; }
  double interval_seconds() const { return interval_seconds_; }

  /// Joins the writer thread after one final snapshot write. Idempotent.
  void stop();

 private:
  void loop();
  void write_snapshot();

  // ordo-analyze: allow(guard-coverage) set in the constructor before the
  // writer thread starts and never written again.
  std::string path_;
  // ordo-analyze: allow(guard-coverage) immutable after construction too.
  double interval_seconds_;
  Mutex mutex_;
  std::condition_variable cv_;
  bool stop_ ORDO_GUARDED_BY(mutex_) = false;
  std::thread thread_;      ///< set in the constructor, joined in stop()
};

}  // namespace ordo::obs::status
