// Heartbeat file writer — /stats for socketless hosts: every interval the
// current StatusBoard snapshot is written to `path` via write-temp-then-
// rename, so any reader (ordo_top --file, a cron job, an NFS-mounted
// dashboard) always sees a complete JSON document — either the previous
// snapshot or the new one, never a torn write. A killed process leaves the
// last completed snapshot behind; an orderly stop() writes one final
// snapshot first.
#pragma once

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

namespace ordo::obs::status {

class HeartbeatWriter {
 public:
  /// Writes a first snapshot immediately, then every `interval_seconds`
  /// (clamped to at least 100 ms) from a background thread. Throws
  /// invalid_argument_error when `path` is not writable.
  HeartbeatWriter(std::string path, double interval_seconds);
  ~HeartbeatWriter();  // = stop()
  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  const std::string& path() const { return path_; }

  /// Joins the writer thread after one final snapshot write. Idempotent.
  void stop();

 private:
  void loop();
  void write_snapshot();

  std::string path_;
  double interval_seconds_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace ordo::obs::status
