#include "obs/status/listener.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/status/status.hpp"
#include "sparse/types.hpp"

namespace ordo::obs::status {
namespace {

// The accept loop polls with this period so stop() is observed promptly
// without a self-pipe (close() alone does not reliably wake a blocked
// accept()).
constexpr int kPollMillis = 100;

bool is_loopback_host(const std::string& host) {
  return host == "127.0.0.1" || host == "localhost" || host == "::1";
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer went away; nothing to do for telemetry
    sent += static_cast<std::size_t>(n);
  }
}

std::string http_response(const char* code, const char* content_type,
                          const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += code;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

// Reads up to the end of the request head ("\r\n\r\n") or 4 KiB, whichever
// comes first, and returns the request target of a GET line ("" otherwise).
// The listener only ever needs the target — headers and bodies are ignored.
std::string read_request_target(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < 4096 && head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
  }
  if (head.compare(0, 4, "GET ") != 0) return "";
  const std::size_t end = head.find(' ', 4);
  if (end == std::string::npos) return "";
  return head.substr(4, end - 4);
}

}  // namespace

StatusListener::StatusListener(const std::string& host, int port) {
  require(is_loopback_host(host),
          "status: refusing to bind non-loopback host '" + host +
              "' — the status listener is loopback-only by contract "
              "(tunnel or use the heartbeat file for remote monitoring)");
  require(port >= 0 && port <= 65535,
          "status: invalid port " + std::to_string(port));

  const bool v6 = host == "::1";
  listen_fd_ = ::socket(v6 ? AF_INET6 : AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0,
          std::string("status: socket() failed: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  int rc = -1;
  if (v6) {
    sockaddr_in6 addr{};
    addr.sin6_family = AF_INET6;
    addr.sin6_addr = in6addr_loopback;
    addr.sin6_port = htons(static_cast<std::uint16_t>(port));
    rc = ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr);
  } else {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    rc = ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr);
  }
  if (rc != 0 || ::listen(listen_fd_, 16) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    require(false, "status: cannot listen on " + host + ":" +
                       std::to_string(port) + ": " + reason);
  }

  // Resolve the bound port (meaningful after an ephemeral port-0 bind).
  sockaddr_storage bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = v6 ? ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port)
               : ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
  }

  thread_ = std::thread([this] { serve_loop(); });
  logf(LogLevel::kProgress, "status: listening on http://%s:%d/stats",
       host.c_str(), port_);
}

StatusListener::~StatusListener() { stop(); }

void StatusListener::stop() {
  // Relaxed: the flag only makes the accept loop's next poll tick exit;
  // the join below is the real synchronization point.
  if (stop_.exchange(true, std::memory_order_relaxed)) return;
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void StatusListener::serve_loop() {
  // Relaxed: see stop() — the poll timeout bounds how stale a read can be.
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // A stalled client must not wedge the accept loop: bound both
    // directions, then serve the one request.
    timeval timeout{2, 0};
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    ORDO_COUNTER_ADD("status.http.requests", 1);
    const std::string target = read_request_target(conn);
    if (target == "/stats" || target == "/stats/") {
      write_all(conn, http_response("200 OK", "application/json",
                                    snapshot_json()));
    } else if (target == "/healthz" || target == "/healthz/") {
      std::string body = "{\"ok\":true,\"schema_version\":";
      body += std::to_string(kStatusSchemaVersion);
      body += "}";
      write_all(conn, http_response("200 OK", "application/json", body));
    } else if (target.empty()) {
      write_all(conn, http_response("400 Bad Request", "text/plain",
                                    "ordo status: GET only\n"));
    } else {
      write_all(conn, http_response("404 Not Found", "text/plain",
                                    "ordo status: try /stats or /healthz\n"));
    }
    ::close(conn);
  }
}

}  // namespace ordo::obs::status
