// Minimal embedded HTTP/1.0 status listener — the read-side half of the
// ordo-serve direction: GET /stats returns a StatusBoard snapshot, GET
// /healthz a tiny liveness document. Deliberately not a web server: one
// accept thread, one request per connection, Connection: close, ~100 lines
// of POSIX sockets. Anything fancier (keep-alive, POST, request routing)
// belongs to the future write-side service, not to telemetry.
//
// Loopback-only by contract: the constructor refuses any bind host other
// than 127.0.0.1 / localhost / ::1. A study run must never become an
// unauthenticated network service by accident; remote monitoring goes
// through an ssh tunnel or the heartbeat file.
//
// This directory is the only place in the tree allowed to touch raw
// sockets (lint rule `socket` — tools/ordo_lint.py).
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace ordo::obs::status {

class StatusListener {
 public:
  /// Binds `host`:`port` (port 0 = ephemeral, see port()) and starts the
  /// accept thread. Throws invalid_argument_error when `host` is not a
  /// loopback address or the socket cannot be bound.
  StatusListener(const std::string& host, int port);
  ~StatusListener();  // stops and joins
  StatusListener(const StatusListener&) = delete;
  StatusListener& operator=(const StatusListener&) = delete;

  /// The bound port (resolved after an ephemeral bind).
  int port() const { return port_; }

  /// Stops accepting and joins the accept thread. Idempotent.
  void stop();

 private:
  void serve_loop();

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace ordo::obs::status
