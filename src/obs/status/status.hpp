// ordo::obs::status — live telemetry for long-running sweeps.
//
// A full study is hours of work whose only signals used to be log lines and
// an atexit ordo_metrics.json. The StatusBoard turns the process into
// something an operator can *watch*: it composes point-in-time JSON
// snapshots of the whole system — pipeline progress (tasks done / failed /
// in flight, with per-task matrix id, phase, elapsed and deadline margin),
// journal-derived completion fraction and an EWMA-based ETA, the metrics
// registry with per-counter deltas since the previous snapshot, registered
// subsystem sections (the engine contributes its plan-cache hit/size
// stats), and the latest hardware-counter window (IPC, LLC miss rate,
// achieved-vs-peak GB/s) when an ORDO_HW session is live.
//
// Consumers (src/obs/status/listener.hpp, heartbeat.hpp, tools/ordo_top.py):
//  * a minimal loopback-only HTTP/1.0 listener serving GET /stats and
//    GET /healthz (ORDO_STATUS_PORT / run_study --status-port);
//  * an atomically-renamed ordo_status.json heartbeat file for hosts where
//    opening a socket is not an option (ORDO_STATUS_FILE).
//
// Consistency model (DESIGN.md §11): the board is lock-light on the write
// side — task hooks touch only per-slot atomics plus a per-slot mutex for
// the matrix name, never a board-wide lock — so workers never serialize on
// telemetry. A snapshot is *read-coherent per field*, not a global atomic
// cut: counts are monotonic, but a snapshot taken mid-transition may see a
// task already counted completed while its worker slot still reads active.
// Snapshots themselves serialize on one snapshot mutex (they also carry
// since-last-snapshot deltas, which need a linear snapshot history).
//
// Every hook is a no-op (one thread-local read) on threads that never
// registered a task, so benches and library code call set_phase freely.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace ordo::obs::status {

/// Layout version of the /stats and heartbeat documents; bumped whenever a
/// field changes meaning so ordo_top and CI checkers can detect drift.
/// v2: adds the "latency" section (tail-latency histograms with their
/// merge-able buckets) and run.rate_tasks_per_second — the fields the
/// sharded parent's fleet aggregation reads back from worker heartbeats.
inline constexpr int kStatusSchemaVersion = 2;

/// A subsystem section provider: appends one complete JSON value (object,
/// array or scalar) to `out`. Must be callable from any thread and must not
/// block on locks a stalled worker could hold.
using SectionFn = std::function<void(std::string&)>;

/// Registers (or replaces) a named top-level section of every snapshot.
/// The engine registers "plan_cache" this way; new subsystems add theirs
/// without touching the board.
void register_section(const std::string& key, SectionFn fn);

// --- pipeline hooks --------------------------------------------------------
// Called by the study scheduler (src/pipeline/study_pipeline.cpp). A task is
// bound to the calling thread: task_started claims a worker slot for the
// thread (reused across its tasks), set_phase tags the slot, task_finished
// releases it.

/// A sweep is starting: `total` corpus tasks, `workers` scheduled threads,
/// `resumed` tasks replayed from the checkpoint journal (they count toward
/// the completion fraction but not toward the ETA's per-task EWMA).
void begin_run(std::int64_t total, int workers, std::int64_t resumed);

/// The sweep finished (the board keeps its final counts for late polls).
void end_run();

/// The calling thread begins study task `index` on matrix `name`;
/// `deadline_seconds` is the soft per-task deadline (0 = none).
void task_started(int index, const std::string& name, double deadline_seconds);

/// Tags the calling thread's in-flight task with a phase marker ("reorder",
/// "spmv", "journal", ...). `phase` must have static storage duration — the
/// board keeps the pointer, not a copy. No-op without an in-flight task.
void set_phase(const char* phase);

/// The calling thread's in-flight task ended after `seconds`.
void task_finished(bool failed, bool timed_out, double seconds);

// --- snapshots -------------------------------------------------------------

/// Composes a point-in-time snapshot of the whole system as a JSON document
/// (see kStatusSchemaVersion). Also flushes the metrics registry to the
/// configured ORDO_METRICS path (obs::flush_metrics), so the on-disk dump
/// tracks the live view instead of appearing only at exit.
std::string snapshot_json();

/// Parsed-back progress for tests and in-process consumers.
struct ProgressSnapshot {
  bool running = false;
  std::int64_t total = 0;
  std::int64_t completed = 0;  ///< computed by this run (excludes resumed)
  std::int64_t failed = 0;
  std::int64_t timeouts = 0;
  std::int64_t resumed = 0;
  int workers = 0;
  int in_flight = 0;
  double fraction = 0.0;  ///< (resumed+completed+failed) / total, 0 when idle
  bool has_eta = false;   ///< false until the first completion of this run
  double eta_seconds = 0.0;
  double elapsed_seconds = 0.0;  ///< since begin_run
  /// Fleet-pace signal: workers / EWMA task seconds, the throughput the
  /// straggler detector compares across shards. Absent (has_rate false)
  /// until this run's first completion, like the ETA.
  bool has_rate = false;
  double rate_tasks_per_second = 0.0;
};
ProgressSnapshot progress();

/// One in-flight worker slot as a snapshot sees it.
struct WorkerSnapshot {
  int slot = -1;
  int task_index = -1;
  std::string matrix;
  std::string phase;  ///< empty until the first set_phase of the task
  double elapsed_seconds = 0.0;
  bool has_deadline = false;
  double deadline_margin_seconds = 0.0;  ///< negative once past the deadline
};
std::vector<WorkerSnapshot> in_flight_workers();

// --- process-wide consumers ------------------------------------------------

/// Reads ORDO_STATUS_PORT (loopback HTTP listener) and ORDO_STATUS_FILE /
/// ORDO_STATUS_INTERVAL (heartbeat file, default 1s cadence) and starts the
/// requested consumers. Idempotent per consumer; called from
/// obs::init_from_env().
void init_from_env();

/// Starts the loopback /stats listener on `port` (0 = ephemeral). Throws
/// invalid_argument_error when the port cannot be bound. Replaces a
/// previously started listener.
void start_listener(int port);

/// Bound listener port, 0 when no listener is running.
int listener_port();

/// Starts (or re-points) the heartbeat writer: every `interval_seconds` it
/// writes a snapshot to `path` via write-temp-then-rename, so readers never
/// observe a torn document and a SIGKILLed process leaves the last complete
/// snapshot behind.
void start_heartbeat(const std::string& path, double interval_seconds = 1.0);

/// True when a listener or heartbeat writer is running — the gate hot call
/// sites (engine kernel launches) check before tagging phases.
bool consumers_active();

/// Stops the listener and heartbeat writer; the heartbeat writes one final
/// snapshot on the way out (a SIGTERM-to-exit path leaves a fresh file).
/// Idempotent; called from obs::finalize().
void stop();

/// Fork window support for the sharded study: stops and joins the consumer
/// service threads (like stop()) but parks their configuration — the bound
/// listener port and the heartbeat path/interval — so resume_consumers()
/// can restart them identically. fork() clones only the calling thread, so
/// forking while a listener or heartbeat thread holds a lock would leave
/// the child with an unreleasable mutex; the shard parent calls this before
/// forking workers and resume_consumers() once they are all spawned.
void suspend_consumers();

/// Restarts the consumers parked by the last suspend_consumers(). Rebinding
/// the remembered port can fail if another process claimed it during the
/// window (start_listener's throw propagates). No-op when nothing was
/// suspended.
void resume_consumers();

}  // namespace ordo::obs::status
