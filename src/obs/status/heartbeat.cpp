#include "obs/status/heartbeat.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>

#include "obs/log.hpp"
#include "obs/status/status.hpp"
#include "sparse/types.hpp"

namespace ordo::obs::status {

HeartbeatWriter::HeartbeatWriter(std::string path, double interval_seconds)
    : path_(std::move(path)),
      interval_seconds_(std::max(0.1, interval_seconds)) {
  write_snapshot();  // fail fast on an unwritable path, before the thread
  thread_ = std::thread([this] { loop(); });
  logf(LogLevel::kProgress, "status: heartbeat file %s every %.1fs",
       path_.c_str(), interval_seconds_);
}

HeartbeatWriter::~HeartbeatWriter() { stop(); }

void HeartbeatWriter::stop() {
  {
    MutexLock lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final snapshot so the file records the run's end state (the loop
  // may have been mid-sleep for most of an interval).
  try {
    write_snapshot();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ordo: final heartbeat write failed: %s\n",
                 e.what());
  }
}

void HeartbeatWriter::loop() {
  MutexLock lock(mutex_);
  while (!stop_) {
    // Explicit wait loop (not the predicate overload) so the guarded stop_
    // reads stay lexically under the lock for -Wthread-safety.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::duration<double>(interval_seconds_));
    while (!stop_ && cv_.wait_until(lock.native(), deadline) !=
                         std::cv_status::timeout) {
    }
    if (stop_) break;
    lock.unlock();
    try {
      write_snapshot();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ordo: heartbeat write failed: %s\n", e.what());
    }
    lock.lock();
  }
}

void HeartbeatWriter::write_snapshot() {
  // Temp-then-rename: readers never observe a torn document, and the rename
  // is atomic on every POSIX filesystem the study runs on.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    require(out.good(), "status: cannot open heartbeat file " + tmp);
    out << snapshot_json() << '\n';
    require(out.good(), "status: failed writing heartbeat file " + tmp);
  }
  require(std::rename(tmp.c_str(), path_.c_str()) == 0,
          "status: cannot rename " + tmp + " to " + path_);
}

}  // namespace ordo::obs::status
