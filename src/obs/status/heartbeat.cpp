#include "obs/status/heartbeat.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/status/status.hpp"
#include "sparse/types.hpp"

namespace ordo::obs::status {
namespace {

/// The pid recorded in an existing heartbeat file, or -1 when the file is
/// absent, unreadable or not a snapshot document (a half-written stranger
/// file is not evidence of a live writer).
long recorded_owner_pid(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return -1;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const JsonValue doc = parse_json(text.str());
    if (const JsonValue* pid = doc.find("pid")) return pid->as_int();
  } catch (const std::exception&) {
    // Not a snapshot document; treat as ownerless.
  }
  return -1;
}

/// Signal-0 liveness probe: EPERM still means "exists" (owned by another
/// user), only ESRCH means the pid is gone.
bool pid_alive(long pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == 0 || errno == EPERM;
}

}  // namespace

HeartbeatWriter::HeartbeatWriter(std::string path, double interval_seconds)
    : path_(std::move(path)),
      interval_seconds_(std::max(0.1, interval_seconds)) {
  // Refuse to clobber a live foreign heartbeat: if the path already holds a
  // snapshot owned by a different, still-running process, two writers would
  // alternate each other's state on one file (the classic mistake: a shard
  // worker inheriting the parent's ORDO_STATUS_FILE). A dead owner's
  // leftover is overwritten normally.
  const long owner = recorded_owner_pid(path_);
  require(owner < 0 || owner == static_cast<long>(::getpid()) ||
              !pid_alive(owner),
          "status: heartbeat file " + path_ +
              " is owned by live process pid " + std::to_string(owner) +
              "; refusing to clobber it (use a per-process path, e.g. a "
              "shard-suffixed ORDO_STATUS_FILE)");
  write_snapshot();  // fail fast on an unwritable path, before the thread
  thread_ = std::thread([this] { loop(); });
  logf(LogLevel::kProgress, "status: heartbeat file %s every %.1fs",
       path_.c_str(), interval_seconds_);
}

HeartbeatWriter::~HeartbeatWriter() { stop(); }

void HeartbeatWriter::stop() {
  {
    MutexLock lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // One final snapshot so the file records the run's end state (the loop
  // may have been mid-sleep for most of an interval).
  try {
    write_snapshot();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ordo: final heartbeat write failed: %s\n",
                 e.what());
  }
}

void HeartbeatWriter::loop() {
  MutexLock lock(mutex_);
  while (!stop_) {
    // Explicit wait loop (not the predicate overload) so the guarded stop_
    // reads stay lexically under the lock for -Wthread-safety.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::duration<double>(interval_seconds_));
    while (!stop_ && cv_.wait_until(lock.native(), deadline) !=
                         std::cv_status::timeout) {
    }
    if (stop_) break;
    lock.unlock();
    try {
      write_snapshot();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ordo: heartbeat write failed: %s\n", e.what());
    }
    lock.lock();
  }
}

void HeartbeatWriter::write_snapshot() {
  // Temp-then-rename: readers never observe a torn document, and the rename
  // is atomic on every POSIX filesystem the study runs on.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    require(out.good(), "status: cannot open heartbeat file " + tmp);
    out << snapshot_json() << '\n';
    require(out.good(), "status: failed writing heartbeat file " + tmp);
  }
  require(std::rename(tmp.c_str(), path_.c_str()) == 0,
          "status: cannot rename " + tmp + " to " + path_);
}

}  // namespace ordo::obs::status
