#include "obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "core/thread_safety.hpp"
#include "obs/agg/latency_histogram.hpp"
#include "obs/hw/hw_counters.hpp"
#include "obs/json.hpp"
#include "obs/stopwatch.hpp"
#include "sparse/types.hpp"

#if defined(__linux__)
#include <sys/utsname.h>
#endif

namespace ordo::obs {
namespace {

struct ReportState {
  mutable Mutex mutex;
  std::string name ORDO_GUARDED_BY(mutex);
  std::string output_path ORDO_GUARDED_BY(mutex);
  std::vector<BenchCase> cases ORDO_GUARDED_BY(mutex);
  bool totals_case_added ORDO_GUARDED_BY(mutex) = false;
};

ReportState& state() {
  static ReportState* s = new ReportState;  // outlives atexit handlers
  return *s;
}

std::string read_cpu_model() {
#if defined(__linux__)
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0) {
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      return line.substr(start);
    }
  }
#endif
  return "unknown";
}

std::string os_fingerprint() {
#if defined(__linux__)
  utsname u{};
  if (uname(&u) == 0) {
    return std::string(u.sysname) + " " + u.release + " " + u.machine;
  }
#endif
  return "unknown";
}

std::string compiler_fingerprint() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

void append_case_json(std::string& out, const BenchCase& c) {
  out += "{\"name\":";
  append_json_string(out, c.name);
  out += ",\"reps\":[";
  for (std::size_t i = 0; i < c.rep_seconds.size(); ++i) {
    if (i > 0) out += ',';
    append_json_double(out, c.rep_seconds[i]);
  }
  out += "],\"median_seconds\":";
  append_json_double(out, c.median_seconds);
  out += ",\"iqr_seconds\":";
  append_json_double(out, c.iqr_seconds);
  out += ",\"counters\":{";
  for (std::size_t i = 0; i < c.counters.size(); ++i) {
    if (i > 0) out += ',';
    append_json_string(out, c.counters[i].first);
    out += ':';
    append_json_double(out, c.counters[i].second);
  }
  out += "}}";
}

}  // namespace

HostInfo host_info() {
  // Leaked: host_info() runs from the atexit report writer, after ordinary
  // function-local statics have been destroyed.
  static const std::string* cpu = new std::string(read_cpu_model());
  static const std::string* os = new std::string(os_fingerprint());
  HostInfo info;
  info.os = *os;
  info.cpu = *cpu;
  info.logical_cpus = static_cast<int>(std::max(
      1u, std::thread::hardware_concurrency()));  // ordo-lint: allow(thread)
  info.compiler = compiler_fingerprint();
#if defined(NDEBUG)
  info.build_type = "Release";
#else
  info.build_type = "Debug";
#endif
  info.hw_backend = hw::backend_name();
  return info;
}

double median_of(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + mid, samples.end());
  return samples[mid];
}

double iqr_of(std::vector<double> samples) {
  if (samples.size() < 4) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t q1 = samples.size() / 4;
  const std::size_t q3 = (3 * samples.size()) / 4;
  return samples[q3] - samples[q1];
}

void BenchReport::add_case(BenchCase bench_case) {
  // 0.0 is the "unset" sentinel, exactly.
  if (!bench_case.rep_seconds.empty() &&
      bench_case.median_seconds == 0.0) {  // ordo-lint: allow(float-eq)
    bench_case.median_seconds = median_of(bench_case.rep_seconds);
    bench_case.iqr_seconds = iqr_of(bench_case.rep_seconds);
  }
  ReportState& s = state();
  MutexLock lock(s.mutex);
  s.cases.push_back(std::move(bench_case));
}

bool BenchReport::empty() const {
  ReportState& s = state();
  MutexLock lock(s.mutex);
  return s.cases.empty();
}

std::string BenchReport::to_json() const {
  const HostInfo host = host_info();
  ReportState& s = state();
  MutexLock lock(s.mutex);
  std::string out;
  out.reserve(4096);
  out += "{\"schema_version\":";
  out += std::to_string(kBenchReportSchemaVersion);
  out += ",\"name\":";
  append_json_string(out, s.name.empty() ? std::string("bench") : s.name);
  out += ",\"host\":{\"os\":";
  append_json_string(out, host.os);
  out += ",\"cpu\":";
  append_json_string(out, host.cpu);
  out += ",\"logical_cpus\":";
  out += std::to_string(host.logical_cpus);
  out += ",\"compiler\":";
  append_json_string(out, host.compiler);
  out += ",\"build\":";
  append_json_string(out, host.build_type);
  out += ",\"hw_backend\":";
  append_json_string(out, host.hw_backend);
  out += "},\"cases\":[";
  for (std::size_t i = 0; i < s.cases.size(); ++i) {
    if (i > 0) out += ',';
    append_case_json(out, s.cases[i]);
  }
  out += ']';
  // Tail-latency percentiles recorded this process-lifetime (per-task,
  // per-phase) — the "measure tail latency, not just throughput" half of a
  // bench's story. Additive and absent when nothing was recorded, so the
  // schema version holds and parse_bench_report_file round-trips either way.
  {
    std::string latency;
    agg::append_latency_section(latency, /*include_buckets=*/false);
    if (latency != "{}") {
      out += ",\"latency\":";
      out += latency;
    }
  }
  out += "}\n";
  return out;
}

void BenchReport::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "bench report: cannot open " + path);
  out << to_json();
}

BenchReport& bench_report() {
  static BenchReport report;
  return report;
}

void set_bench_report_name(const std::string& name) {
  ReportState& s = state();
  MutexLock lock(s.mutex);
  if (!s.name.empty() || name.empty()) return;
  s.name = name;
  if (s.output_path.empty()) s.output_path = "BENCH_" + name + ".json";
}

std::string bench_report_name() {
  ReportState& s = state();
  MutexLock lock(s.mutex);
  return s.name;
}

std::string bench_report_output_path() {
  ReportState& s = state();
  MutexLock lock(s.mutex);
  return s.output_path;
}

void set_bench_report_output_path(const std::string& path) {
  ReportState& s = state();
  MutexLock lock(s.mutex);
  s.output_path = path;
}

void write_bench_report() {
  ReportState& s = state();
  std::string path;
  {
    MutexLock lock(s.mutex);
    if (s.output_path.empty() || s.cases.empty()) return;
    path = s.output_path;
  }
  // The report's bottom line: whole-process wall time with the session's
  // counter totals, so even a bench with bespoke cases gets one comparable
  // number per run. Added once, on the first write.
  {
    MutexLock lock(s.mutex);
    if (!s.totals_case_added) {
      s.totals_case_added = true;
      BenchCase total;
      total.name = "process_total_seconds";
      const double uptime = static_cast<double>(trace_now_us()) / 1e6;
      total.rep_seconds.push_back(uptime);
      total.median_seconds = uptime;
      const hw::CounterSet totals = hw::session_totals();
      for (const hw::Reading& r : totals.readings) {
        total.counters.emplace_back(hw::counter_name(r.id), r.value);
      }
      s.cases.push_back(std::move(total));
    }
  }
  bench_report().write_json_file(path);
}

ParsedBenchReport parse_bench_report_file(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "bench report: cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue root = parse_json(buffer.str());
  require(root.kind == JsonValue::Kind::kObject,
          "bench report: top level must be an object");

  ParsedBenchReport report;
  report.schema_version =
      static_cast<int>(root.at("schema_version").as_int());
  require(report.schema_version == kBenchReportSchemaVersion,
          "bench report: unsupported schema_version in " + path);
  report.name = root.at("name").as_string();
  const JsonValue& host = root.at("host");
  report.host.os = host.at("os").as_string();
  report.host.cpu = host.at("cpu").as_string();
  report.host.logical_cpus =
      static_cast<int>(host.at("logical_cpus").as_int());
  report.host.compiler = host.at("compiler").as_string();
  report.host.build_type = host.at("build").as_string();
  report.host.hw_backend = host.at("hw_backend").as_string();
  for (const JsonValue& c : root.at("cases").items) {
    BenchCase bench_case;
    bench_case.name = c.at("name").as_string();
    for (const JsonValue& rep : c.at("reps").items) {
      bench_case.rep_seconds.push_back(rep.as_double());
    }
    bench_case.median_seconds = c.at("median_seconds").as_double();
    bench_case.iqr_seconds = c.at("iqr_seconds").as_double();
    for (const auto& [key, value] : c.at("counters").members) {
      bench_case.counters.emplace_back(key, value.as_double());
    }
    report.cases.push_back(std::move(bench_case));
  }
  return report;
}

}  // namespace ordo::obs
