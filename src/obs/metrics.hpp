// Process-wide metrics registry (the counters/gauges/histograms half of
// ordo::obs).
//
// Three instrument kinds, all addressed by hierarchical dotted names:
//  * Counter   — monotonically increasing int64 (model evaluations, FM
//                passes, coarsening levels);
//  * Gauge     — last-written double (observed imbalance of the most recent
//                kernel launch);
//  * Histogram — count/sum/min/max summary of recorded doubles (reordering
//                wall time per algorithm, per-thread nnz and seconds).
//
// Instruments live for the whole process once created; lookups take the
// registry mutex, so hot sites should cache the returned reference (phase
// granularity makes the lookup cost irrelevant in practice). Counter adds
// and gauge stores are lock-free atomics; histogram records take a
// per-histogram mutex.
//
// Dumps: a human-oriented text table and a machine-readable JSON document
// (what the benches write to ordo_metrics.json).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/thread_safety.hpp"

namespace ordo::obs {

class Counter {
 public:
  // Relaxed throughout: counters are monotone tallies sampled for reports;
  // no reader infers ordering between a counter and other memory.
  void add(std::int64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  // Relaxed: a gauge is a last-writer-wins sample; see Counter above.
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
  };

  void record(double value);
  Snapshot snapshot() const;
  void reset();

 private:
  mutable Mutex mutex_;
  Snapshot state_ ORDO_GUARDED_BY(mutex_);
};

/// Finds or creates the named instrument. A name is bound to one kind for
/// the process lifetime; re-requesting it as another kind throws.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// True when `name` exists as any instrument kind.
bool has_metric(const std::string& name);

/// All registered names, sorted.
std::vector<std::string> metric_names();

/// Zeroes every instrument (counters to 0, gauges to 0, histograms empty)
/// without invalidating references. For tests and repeated harness runs.
void reset_metrics();

/// One instrument's value as sample_metrics() read it.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  std::int64_t counter_value = 0;
  double gauge_value = 0.0;
  Histogram::Snapshot histogram;  ///< kHistogram only
};

/// Reads every registered instrument, sorted by name. Each instrument is
/// sampled atomically but the set is not a global cut — a counter bumped
/// between two samples shows its new value while an earlier-sampled one
/// shows its old. The live-status snapshot path is the consumer.
std::vector<MetricSample> sample_metrics();

/// Human-readable dump, one instrument per line.
void write_metrics_text(std::ostream& out);

/// Layout version of the metrics/trace JSON documents; bumped whenever a
/// field changes meaning so downstream consumers can detect drift.
inline constexpr int kMetricsSchemaVersion = 1;

/// JSON document {"schema_version":1,"counters":{...},"gauges":{...},
/// "histograms":{...}}.
void write_metrics_json(std::ostream& out);
void write_metrics_json_file(const std::string& path);

}  // namespace ordo::obs

// Compile-out-able recording macros for instrumentation sites inside the
// library. Each caches the instrument lookup after the first hit at that
// site (the name must be constant at the site for the cache to be valid).
#if defined(ORDO_OBS_ENABLED)
#define ORDO_COUNTER_ADD(name, delta)                    \
  do {                                                   \
    static ::ordo::obs::Counter& ordo_obs_counter_ =     \
        ::ordo::obs::counter(name);                      \
    ordo_obs_counter_.add(delta);                        \
  } while (0)
#define ORDO_GAUGE_SET(name, value) ::ordo::obs::gauge(name).set(value)
#define ORDO_HISTOGRAM_RECORD(name, value) \
  ::ordo::obs::histogram(name).record(value)
#else
#define ORDO_COUNTER_ADD(name, delta) ((void)0)
#define ORDO_GAUGE_SET(name, value) ((void)0)
#define ORDO_HISTOGRAM_RECORD(name, value) ((void)0)
#endif
