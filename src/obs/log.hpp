// Structured logging sink for the study pipeline, replacing the bare
// `verbose` stderr flag. Three levels:
//
//   quiet    — nothing (the default);
//   progress — one line per pipeline phase (per-matrix sweep progress, cache
//              hits, file writes): what `--verbose` used to print;
//   debug    — additionally, per-phase detail (per-ordering timings, cache
//              probing).
//
// The level comes from `ORDO_LOG=quiet|progress|debug` (see
// obs::init_from_env) or set_log_level(). Lines go to stderr under a mutex
// so OpenMP regions cannot interleave partial lines.
#pragma once

#include <string>

namespace ordo::obs {

enum class LogLevel { kQuiet = 0, kProgress = 1, kDebug = 2 };

LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses "quiet"/"progress"/"debug" (case-insensitive; also accepts the
/// numeric levels 0/1/2). Throws invalid_argument_error on anything else.
LogLevel parse_log_level(const std::string& name);

/// Display name of a level ("quiet", "progress", "debug").
std::string log_level_name(LogLevel level);

/// True when a message at `level` would be emitted.
bool log_enabled(LogLevel level);

/// printf-style logging; a newline is appended. No-op below the current
/// level.
void logf(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace ordo::obs
