#include "obs/json.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sparse/types.hpp"

namespace ordo::obs {
namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    require(pos_ == text_.size(), "json: trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    require(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    require(peek() == c, std::string("json: expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return boolean();
      case 'n': return null_value();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key.text), value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    for (;;) {
      require(pos_ < text_.size(), "json: unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        require(pos_ < text_.size(), "json: bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': v.text += '"'; break;
          case '\\': v.text += '\\'; break;
          case '/': v.text += '/'; break;
          case 'n': v.text += '\n'; break;
          case 't': v.text += '\t'; break;
          case 'r': v.text += '\r'; break;
          default:
            throw invalid_argument_error("json: unsupported escape");
        }
        continue;
      }
      v.text += c;
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw invalid_argument_error("json: bad literal");
    }
    return v;
  }

  JsonValue null_value() {
    require(text_.compare(pos_, 4, "null") == 0, "json: bad literal");
    pos_ += 4;
    return {};
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::strchr("+-.eE0123456789", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    require(pos_ > start, "json: expected number");
    v.text = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue& JsonValue::at(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return v;
  }
  throw invalid_argument_error("json: missing key " + key);
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::int64_t JsonValue::as_int() const {
  require(kind == Kind::kNumber, "json: expected number");
  return std::strtoll(text.c_str(), nullptr, 10);
}

double JsonValue::as_double() const {
  require(kind == Kind::kNumber, "json: expected number");
  return std::strtod(text.c_str(), nullptr);
}

const std::string& JsonValue::as_string() const {
  require(kind == Kind::kString, "json: expected string");
  return text;
}

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse();
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_json_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // round-trip exact
  out += buf;
}

void append_json_value(std::string& out, const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull:
      out += "null";
      return;
    case JsonValue::Kind::kBool:
      out += value.boolean ? "true" : "false";
      return;
    case JsonValue::Kind::kNumber:
      out += value.text;  // raw text: int64 and %.17g doubles round-trip
      return;
    case JsonValue::Kind::kString:
      append_json_string(out, value.text);
      return;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& item : value.items) {
        if (!first) out += ',';
        first = false;
        append_json_value(out, item);
      }
      out += ']';
      return;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : value.members) {
        if (!first) out += ',';
        first = false;
        append_json_string(out, key);
        out += ':';
        append_json_value(out, member);
      }
      out += '}';
      return;
    }
  }
}

}  // namespace ordo::obs
