// Wall-clock timing helpers shared by the benches and the instrumentation
// layer: a steady-clock Stopwatch and the median-of-reps idiom every harness
// previously reimplemented with raw std::chrono calls.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

namespace ordo::obs {

/// Monotonic wall-clock stopwatch, running from construction (or the last
/// reset()).
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  std::int64_t micros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Microseconds since the first call in this process — the common time base
/// for trace spans across threads.
std::int64_t trace_now_us();

/// Runs `fn` `reps` times and returns the median wall-clock seconds of one
/// run. One warm-up call is made first (not measured), matching how the
/// paper's harness reports warm medians.
template <typename Fn>
double median_seconds_of_reps(int reps, Fn&& fn) {
  if (reps < 1) reps = 1;
  fn();  // warm up
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    samples.push_back(watch.seconds());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

}  // namespace ordo::obs
