// Minimal JSON subset shared by the observability exports and the pipeline
// journal: exactly what ordo's own files emit (objects, arrays, strings,
// numbers, booleans, null), and nothing more.
//
// Numbers keep their raw text so int64 fields round-trip without a detour
// through double (the journal's %.17g doubles stay byte-exact). A parse
// failure anywhere throws invalid_argument_error — callers that tolerate
// corruption (the journal's torn-tail loader) catch it.
//
// This parser reads back files ordo wrote (BENCH_*.json round-trips,
// study_journal.jsonl replay); it is not a general-purpose JSON library and
// deliberately rejects what ordo never writes (\uXXXX escapes, exotic
// whitespace).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ordo::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< raw number text, or decoded string value
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  /// Object member lookup; throws invalid_argument_error when missing.
  const JsonValue& at(const std::string& key) const;
  /// Object member lookup; nullptr when missing (or not an object).
  const JsonValue* find(const std::string& key) const;
  std::int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;
};

/// Parses one complete JSON document (trailing characters are an error).
JsonValue parse_json(const std::string& text);

/// Appends `s` as a quoted, escaped JSON string literal.
void append_json_string(std::string& out, const std::string& s);

/// Appends `v` with 17 significant digits (round-trip exact).
void append_json_double(std::string& out, double v);

/// Re-serializes a parsed value. Numbers keep their original text, so a
/// parse → append round trip is byte-identical for everything this parser
/// accepts — what the trace merger relies on to re-emit shard span events
/// without perturbing timestamps.
void append_json_value(std::string& out, const JsonValue& value);

}  // namespace ordo::obs
