#include "obs/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdio>

#include "core/thread_safety.hpp"
#include "sparse/types.hpp"

namespace ordo::obs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kQuiet)};

Mutex& log_mutex() {
  static Mutex* m = new Mutex;  // leaked: logf runs from atexit
  return *m;
}

}  // namespace

LogLevel log_level() {
  // Relaxed: the level is an independent tuning knob; readers need only
  // eventual visibility, not ordering with the messages it gates.
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  // Relaxed: see log_level().
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "quiet" || lower == "0") return LogLevel::kQuiet;
  if (lower == "progress" || lower == "1") return LogLevel::kProgress;
  if (lower == "debug" || lower == "2") return LogLevel::kDebug;
  throw invalid_argument_error(
      "parse_log_level: expected quiet|progress|debug, got '" + name + "'");
}

std::string log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kQuiet: return "quiet";
    case LogLevel::kProgress: return "progress";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

bool log_enabled(LogLevel level) {
  // Relaxed: see log_level().
  return static_cast<int>(level) <= g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::kQuiet;
}

void logf(LogLevel level, const char* format, ...) {
  if (!log_enabled(level)) return;
  std::va_list args;
  va_start(args, format);
  MutexLock lock(log_mutex());
  std::fprintf(stderr, level == LogLevel::kDebug ? "ordo[debug]: " : "ordo: ");
  std::vfprintf(stderr, format, args);
  std::fputc('\n', stderr);
  va_end(args);
}

}  // namespace ordo::obs
