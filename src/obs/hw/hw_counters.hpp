// ordo::obs::hw — hardware performance counters for the study pipeline.
//
// The paper explains reordering wins through cache behaviour; wall time
// alone cannot separate a real locality gain from noise. This layer reads
// the Linux perf_event subsystem around scoped regions so every SpMV
// evaluation and reorder phase can attribute its time to counter-level
// causes: cycles, instructions, LLC/L1d misses, stalled cycles, plus
// software fallbacks (task clock, page faults, context switches).
//
// Design:
//  * One process-wide *session* of counters, opened once (ORDO_HW=1 or
//    set_enabled(true)) and left running for the process lifetime. A
//    CounterScope never opens file descriptors — it snapshots the session
//    counters at construction and again at stop()/destruction and reports
//    the deltas, so scopes nest arbitrarily and cost two read() batches.
//  * Multiplexing-aware scaling: the kernel time-slices the PMU when more
//    events are requested than it has slots, so every read carries
//    time_enabled/time_running and window deltas are extrapolated by
//    enabled/running (scale_window — the same correction `perf stat`
//    applies). A counter that never ran in a window is reported as ABSENT,
//    not zero.
//  * Graceful degradation, never a hard failure: events that cannot be
//    opened (perf_event_paranoid, containers without a PMU, non-Linux) are
//    simply dropped; when nothing opens the session is the *null backend* —
//    enabled() may be true while available() is false, every scope is a
//    no-op, and readings come back with available == false so callers
//    report "absent" rather than garbage zeros.
//
// Environment knobs:
//   ORDO_HW=1         open the counter session at obs::init_from_env()
//   ORDO_HW_LAUNCH=1  additionally record counters around every engine
//                     kernel launch (one scope per launch; off by default
//                     so the disabled launch cost stays a relaxed load)
//   ORDO_PEAK_GBPS=X  take X as the machine's peak memory bandwidth instead
//                     of measuring it (see membw.hpp)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ordo::obs::hw {

/// The counter set a session tries to open, in priority order. Hardware
/// events first; the trailing software events exist so a PMU-less host
/// (VMs, most CI containers) still gets *some* attribution.
enum class CounterId {
  kCycles = 0,
  kInstructions,
  kCacheReferences,      ///< generalized LLC accesses
  kCacheMisses,          ///< generalized LLC misses
  kLlcLoadMisses,
  kLlcStoreMisses,
  kL1dLoadMisses,
  kStalledCyclesBackend,
  kTaskClockNs,          ///< software: on-CPU nanoseconds
  kPageFaults,           ///< software
  kContextSwitches,      ///< software
};
inline constexpr int kNumCounterIds = 11;

/// Stable short name ("cycles", "llc_load_misses", ...), used for metric
/// names, bench-report counter keys and the journal's config fingerprint.
std::string counter_name(CounterId id);

/// One raw read of one counter: the value plus the enabled/running times
/// the kernel reports for multiplex correction.
struct RawSample {
  std::uint64_t value = 0;
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
};

/// A window delta between two samples of the same counter, extrapolated for
/// multiplexing. `ran` is false when the counter was scheduled for none of
/// the window (delta running == 0) — such a window has no information and
/// must be treated as absent, not zero.
struct WindowDelta {
  double value = 0.0;  ///< raw delta × scale
  double scale = 1.0;  ///< enabled/running over the window (≥ 1)
  bool multiplexed = false;
  bool ran = false;
};

/// Multiplex scaling math, exposed for tests on synthetic samples:
/// value = (end.value − begin.value) × (Δenabled / Δrunning).
WindowDelta scale_window(const RawSample& begin, const RawSample& end);

/// One scaled counter reading of a closed scope.
struct Reading {
  CounterId id = CounterId::kCycles;
  double value = 0.0;
  double scale = 1.0;
  bool multiplexed = false;
};

/// All readings of a closed scope. `available` is false on the null backend
/// (or when every counter was multiplexed out of the window).
struct CounterSet {
  bool available = false;
  std::vector<Reading> readings;

  const Reading* find(CounterId id) const;
  /// Scaled value, or nullopt when the counter is absent from this set.
  std::optional<double> value(CounterId id) const;
};

/// The derived per-region metrics the paper reasons about. `valid` requires
/// the full hardware quartet (cycles, instructions, cache references and
/// misses); software-only sessions never report valid derived metrics —
/// absence is preferred over a number that means something else.
struct DerivedMetrics {
  bool valid = false;
  double ipc = 0.0;            ///< instructions / cycles
  double llc_miss_rate = 0.0;  ///< LLC misses / LLC references, in [0, 1]
  double est_bytes = 0.0;      ///< cache-line bytes moved: 64 × LLC misses
  double gbps = 0.0;           ///< est_bytes / seconds / 1e9
};

/// Derives IPC / miss rate / estimated traffic from a reading set over a
/// region that took `seconds` of wall time. Prefers the explicit
/// LLC-load+store miss pair for traffic when present, else the generalized
/// miss count. A non-positive `seconds` invalidates the whole result: a
/// zero-length window means the caller's timing is broken, and rates over
/// it would be garbage.
DerivedMetrics derive_metrics(const CounterSet& counters, double seconds);

/// Bytes per cache line assumed by est_bytes (64 on every studied machine).
std::int64_t cache_line_bytes();

// --- the process-wide session ----------------------------------------------

/// Reads ORDO_HW / ORDO_HW_LAUNCH and opens the session when requested.
/// Idempotent; called from obs::init_from_env().
void init_from_env();

/// True when counter collection was requested (ORDO_HW=1 / set_enabled).
bool enabled();

/// Requesting enables opens the session (a no-op if already open); the null
/// backend is NOT an error — check available() for whether anything opened.
void set_enabled(bool enabled);

/// True when the session holds at least one open counter.
bool available();

/// "perf" (hardware events opened), "perf-software" (only software events
/// opened), or "null" (nothing opened / not enabled / non-Linux).
std::string backend_name();

/// One human-readable line: which counters opened, or why nothing did
/// (e.g. the perf_event_paranoid value to relay to the operator).
std::string backend_detail();

/// Identity of the counter configuration for checkpoint fingerprints:
/// "off" when disabled, else backend + the opened counter list. Resumed
/// runs must not silently mix counter-on and counter-off rows.
std::string config_fingerprint();

/// True when engine kernel launches should each record a counter scope
/// (ORDO_HW_LAUNCH=1; implies nothing about enabled()).
bool per_launch_enabled();
void set_per_launch_enabled(bool enabled);

/// Reads the session totals since the session opened (process-lifetime
/// counters); available == false on the null backend.
CounterSet session_totals();

/// RAII counter window over the running session. Construction snapshots
/// every session counter; stop() (or destruction) snapshots again and
/// reports the scaled deltas. When `metric_name` is nonempty, closing the
/// scope also records each reading into the metrics registry as
/// `hw.<metric_name>.<counter>` histograms. No-op on the null backend.
class CounterScope {
 public:
  CounterScope() : CounterScope(std::string()) {}
  explicit CounterScope(std::string metric_name);
  ~CounterScope();
  CounterScope(const CounterScope&) = delete;
  CounterScope& operator=(const CounterScope&) = delete;

  /// Closes the window and returns the deltas. Idempotent: later calls
  /// (and the destructor) return/record the first close's result.
  const CounterSet& stop();

 private:
  std::string metric_name_;
  bool open_ = false;
  std::vector<RawSample> begin_;  // one slot per open session counter
  CounterSet result_;
};

}  // namespace ordo::obs::hw
