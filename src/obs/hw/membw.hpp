// STREAM-like sustainable memory bandwidth measurement, the denominator of
// the "achieved GB/s vs peak" column: the paper's roofline argument needs a
// *measured* peak for the host, not a spec-sheet number.
//
// Four kernels over large double arrays (copy, scale, add, triad — the
// classic STREAM set), each timed over several repetitions with every
// logical CPU driving its own contiguous slice; the best rate across
// kernels is the peak. Arrays are sized well past LLC capacity so the
// traffic is DRAM traffic.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ordo::obs::hw {

struct MembwOptions {
  /// Bytes per array (three arrays are allocated). Default 64 MiB — far
  /// past any studied LLC. ORDO_MEMBW_MIB overrides in membw_options_from_env.
  std::size_t array_bytes = std::size_t{64} << 20;
  /// Timed repetitions per kernel; the best (minimum-time) rep is reported,
  /// matching STREAM's methodology.
  int reps = 5;
  /// Worker threads; 0 = hardware concurrency.
  int threads = 0;
};

/// Reads ORDO_MEMBW_MIB / ORDO_MEMBW_REPS / ORDO_MEMBW_THREADS.
MembwOptions membw_options_from_env();

struct MembwKernelResult {
  std::string name;       ///< "copy", "scale", "add", "triad"
  double bytes = 0.0;     ///< bytes moved per repetition
  double seconds = 0.0;   ///< best repetition wall time
  double gbps = 0.0;
};

struct MembwResult {
  int threads = 0;
  std::size_t array_bytes = 0;
  std::vector<MembwKernelResult> kernels;
  double peak_gbps = 0.0;  ///< best rate across kernels
};

/// Runs the sweep (takes a few seconds at the default size). Also stores
/// the peak in the `hw.peak_gbps` gauge and the process-wide slot read by
/// measured_peak_gbps().
MembwResult measure_membw(const MembwOptions& options = {});

/// The peak GB/s this process knows: ORDO_PEAK_GBPS when set (an operator
/// relaying a previous micro_membw run), else the last measure_membw()
/// result, else 0 (unknown).
double measured_peak_gbps();

}  // namespace ordo::obs::hw
