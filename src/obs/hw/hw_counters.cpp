#include "obs/hw/hw_counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/thread_safety.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

#if defined(__linux__) && __has_include(<linux/perf_event.h>)
#define ORDO_HW_HAVE_PERF 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define ORDO_HW_HAVE_PERF 0
#endif

namespace ordo::obs::hw {
namespace {

struct CounterSpec {
  CounterId id;
  const char* name;
  bool hardware;   // counts against the PMU (vs a software event)
  std::uint32_t type;
  std::uint64_t config;
};

#if ORDO_HW_HAVE_PERF
constexpr std::uint64_t hw_cache(std::uint64_t cache, std::uint64_t op,
                                 std::uint64_t result) {
  return cache | (op << 8) | (result << 16);
}

const CounterSpec kSpecs[] = {
    {CounterId::kCycles, "cycles", true, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CPU_CYCLES},
    {CounterId::kInstructions, "instructions", true, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_INSTRUCTIONS},
    {CounterId::kCacheReferences, "cache_references", true, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CACHE_REFERENCES},
    {CounterId::kCacheMisses, "cache_misses", true, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_CACHE_MISSES},
    {CounterId::kLlcLoadMisses, "llc_load_misses", true, PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {CounterId::kLlcStoreMisses, "llc_store_misses", true, PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_LL, PERF_COUNT_HW_CACHE_OP_WRITE,
              PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {CounterId::kL1dLoadMisses, "l1d_load_misses", true, PERF_TYPE_HW_CACHE,
     hw_cache(PERF_COUNT_HW_CACHE_L1D, PERF_COUNT_HW_CACHE_OP_READ,
              PERF_COUNT_HW_CACHE_RESULT_MISS)},
    {CounterId::kStalledCyclesBackend, "stalled_cycles_backend", true,
     PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
    {CounterId::kTaskClockNs, "task_clock_ns", false, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_TASK_CLOCK},
    {CounterId::kPageFaults, "page_faults", false, PERF_TYPE_SOFTWARE,
     PERF_COUNT_SW_PAGE_FAULTS},
    {CounterId::kContextSwitches, "context_switches", false,
     PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
};
#endif  // ORDO_HW_HAVE_PERF

const char* kCounterNames[kNumCounterIds] = {
    "cycles",           "instructions",      "cache_references",
    "cache_misses",     "llc_load_misses",   "llc_store_misses",
    "l1d_load_misses",  "stalled_cycles_backend",
    "task_clock_ns",    "page_faults",       "context_switches",
};

struct OpenCounter {
  CounterId id = CounterId::kCycles;
  bool hardware = false;
  int fd = -1;
};

// The session: opened at most once and kept for the process lifetime (like
// the metrics registry). All members are guarded by the mutex — the old
// "counters is immutable once open_attempted" shortcut let a scope observe
// the vector mid-open when set_enabled raced a first CounterScope, so
// readers now take the (uncontended) lock for the duration of the fd loop.
struct Session {
  Mutex mutex;
  bool enabled ORDO_GUARDED_BY(mutex) = false;
  bool open_attempted ORDO_GUARDED_BY(mutex) = false;
  bool any_hardware ORDO_GUARDED_BY(mutex) = false;
  std::vector<OpenCounter> counters ORDO_GUARDED_BY(mutex);
  std::string detail ORDO_GUARDED_BY(mutex) = "not enabled";
};

Session& session() {
  static Session* s = new Session;  // leaked: scopes may close during atexit
  return *s;
}

// Read on every execute() launch, flipped by init_from_env/tests: atomic so
// the unsynchronized read is defined; relaxed because the flag gates an
// optional measurement window, not any data another thread publishes.
std::atomic<bool> g_per_launch{false};

#if ORDO_HW_HAVE_PERF

int perf_event_open_fd(perf_event_attr* attr) {
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, 0 /* this process */,
              -1 /* any cpu */, -1 /* no group: inherit forbids
                                      PERF_FORMAT_GROUP */,
              PERF_FLAG_FD_CLOEXEC));
}

int open_counter(const CounterSpec& spec, bool exclude_kernel) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;  // runs from open; scopes measure window deltas
  attr.inherit = 1;   // cover worker threads spawned after the open
  attr.exclude_kernel = exclude_kernel ? 1 : 0;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return perf_event_open_fd(&attr);
}

int read_paranoid_level() {
  std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
  if (f == nullptr) return -100;
  int level = -100;
  if (std::fscanf(f, "%d", &level) != 1) level = -100;
  std::fclose(f);
  return level;
}

void open_session_locked(Session& s) ORDO_REQUIRES(s.mutex) {
  bool retried_exclude_kernel = false;
  int first_errno = 0;
  for (const CounterSpec& spec : kSpecs) {
    int fd = open_counter(spec, retried_exclude_kernel);
    if (fd < 0 && (errno == EACCES || errno == EPERM) &&
        !retried_exclude_kernel) {
      // perf_event_paranoid >= 2 forbids kernel-side counting for
      // unprivileged processes; user-space-only counting usually still
      // works. Once one event needs the restriction, they all will.
      retried_exclude_kernel = true;
      fd = open_counter(spec, true);
    }
    if (fd < 0) {
      if (first_errno == 0) first_errno = errno;
      continue;
    }
    s.counters.push_back({spec.id, spec.hardware, fd});
    if (spec.hardware) s.any_hardware = true;
  }

  if (s.counters.empty()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "perf_event_open failed (%s; perf_event_paranoid=%d) — "
                  "counters reported as absent",
                  std::strerror(first_errno), read_paranoid_level());
    s.detail = buf;
    return;
  }
  std::string opened;
  for (const OpenCounter& c : s.counters) {
    if (!opened.empty()) opened += ',';
    opened += counter_name(c.id);
  }
  s.detail = (s.any_hardware ? "perf: " : "perf (software only): ") + opened +
             (retried_exclude_kernel ? " [user space only]" : "");
}

bool read_sample(int fd, RawSample& out) {
  std::uint64_t buf[3] = {0, 0, 0};
  const ssize_t n = read(fd, buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf))) return false;
  out.value = buf[0];
  out.time_enabled_ns = buf[1];
  out.time_running_ns = buf[2];
  return true;
}

#else  // !ORDO_HW_HAVE_PERF

void open_session_locked(Session& s) ORDO_REQUIRES(s.mutex) {
  s.detail = "perf_event is Linux-only — counters reported as absent";
}

bool read_sample(int, RawSample&) { return false; }

#endif  // ORDO_HW_HAVE_PERF

void ensure_open(Session& s) {
  MutexLock lock(s.mutex);
  if (s.open_attempted) return;
  s.open_attempted = true;
  open_session_locked(s);
  logf(LogLevel::kProgress, "hw counters: %s", s.detail.c_str());
}

}  // namespace

std::string counter_name(CounterId id) {
  const int index = static_cast<int>(id);
  if (index < 0 || index >= kNumCounterIds) return "unknown";
  return kCounterNames[index];
}

WindowDelta scale_window(const RawSample& begin, const RawSample& end) {
  WindowDelta delta;
  const std::uint64_t d_value = end.value - begin.value;
  const std::uint64_t d_enabled = end.time_enabled_ns - begin.time_enabled_ns;
  const std::uint64_t d_running = end.time_running_ns - begin.time_running_ns;
  if (d_running == 0) {
    // The counter was scheduled for none of this window: there is no basis
    // for extrapolation, so the window carries no information.
    return delta;
  }
  delta.ran = true;
  delta.multiplexed = d_running < d_enabled;
  delta.scale = static_cast<double>(d_enabled) / static_cast<double>(d_running);
  delta.value = static_cast<double>(d_value) * delta.scale;
  return delta;
}

const Reading* CounterSet::find(CounterId id) const {
  for (const Reading& r : readings) {
    if (r.id == id) return &r;
  }
  return nullptr;
}

std::optional<double> CounterSet::value(CounterId id) const {
  const Reading* r = find(id);
  if (r == nullptr) return std::nullopt;
  return r->value;
}

std::int64_t cache_line_bytes() { return 64; }

DerivedMetrics derive_metrics(const CounterSet& counters, double seconds) {
  DerivedMetrics d;
  if (!counters.available) return d;
  const auto cycles = counters.value(CounterId::kCycles);
  const auto instructions = counters.value(CounterId::kInstructions);
  const auto references = counters.value(CounterId::kCacheReferences);
  const auto misses = counters.value(CounterId::kCacheMisses);
  if (!cycles || !instructions || !references || !misses) return d;
  if (*cycles <= 0.0 || *references <= 0.0 || seconds <= 0.0) return d;

  d.ipc = *instructions / *cycles;
  d.llc_miss_rate = *misses / *references;

  // Traffic estimate: the explicit LLC load+store miss pair when the PMU
  // exposes it, else the generalized miss count — either way, one cache
  // line per miss is the lower bound the paper's locality argument uses.
  const auto load_misses = counters.value(CounterId::kLlcLoadMisses);
  const auto store_misses = counters.value(CounterId::kLlcStoreMisses);
  double traffic_misses = *misses;
  if (load_misses && store_misses) {
    traffic_misses = *load_misses + *store_misses;
  }
  d.est_bytes = static_cast<double>(cache_line_bytes()) * traffic_misses;
  d.gbps = d.est_bytes / seconds / 1e9;
  d.valid = true;
  return d;
}

void init_from_env() {
  if (const char* hw = std::getenv("ORDO_HW")) {
    if (std::strcmp(hw, "0") != 0) set_enabled(true);
  }
  if (const char* launch = std::getenv("ORDO_HW_LAUNCH")) {
    set_per_launch_enabled(std::strcmp(launch, "0") != 0);
  }
}

bool enabled() {
  Session& s = session();
  MutexLock lock(s.mutex);
  return s.enabled;
}

void set_enabled(bool enabled) {
  Session& s = session();
  {
    MutexLock lock(s.mutex);
    s.enabled = enabled;
    if (!enabled) return;
  }
  ensure_open(s);
}

bool available() {
  Session& s = session();
  MutexLock lock(s.mutex);
  return s.enabled && !s.counters.empty();
}

std::string backend_name() {
  Session& s = session();
  MutexLock lock(s.mutex);
  if (!s.enabled || s.counters.empty()) return "null";
  return s.any_hardware ? "perf" : "perf-software";
}

std::string backend_detail() {
  Session& s = session();
  MutexLock lock(s.mutex);
  return s.detail;
}

std::string config_fingerprint() {
  Session& s = session();
  MutexLock lock(s.mutex);
  if (!s.enabled || s.counters.empty()) return "off";
  std::string fp = s.any_hardware ? "perf:" : "perf-software:";
  for (const OpenCounter& c : s.counters) {
    fp += counter_name(c.id);
    fp += ',';
  }
  return fp;
}

bool per_launch_enabled() {
  // Relaxed: an on/off flag polled per launch; the scope it gates does its
  // own synchronisation.
  return g_per_launch.load(std::memory_order_relaxed);
}
void set_per_launch_enabled(bool enabled) {
  // Relaxed: see per_launch_enabled().
  g_per_launch.store(enabled, std::memory_order_relaxed);
}

CounterSet session_totals() {
  CounterSet set;
  if (!available()) return set;
  Session& s = session();
  MutexLock lock(s.mutex);
  for (const OpenCounter& c : s.counters) {
    RawSample sample;
    if (!read_sample(c.fd, sample)) continue;
    const WindowDelta delta = scale_window(RawSample{}, sample);
    if (!delta.ran) continue;
    set.readings.push_back({c.id, delta.value, delta.scale, delta.multiplexed});
  }
  set.available = !set.readings.empty();
  return set;
}

CounterScope::CounterScope(std::string metric_name)
    : metric_name_(std::move(metric_name)) {
  if (!available()) return;
  Session& s = session();
  MutexLock lock(s.mutex);
  begin_.resize(s.counters.size());
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    if (!read_sample(s.counters[i].fd, begin_[i])) {
      begin_[i] = RawSample{};  // never-ran window: dropped at stop()
    }
  }
  open_ = true;
}

const CounterSet& CounterScope::stop() {
  if (!open_) return result_;
  open_ = false;
  Session& s = session();
  {
    // Lock only the fd loop: the histogram recording below takes the
    // metrics-registry mutex, and holding both would order the session
    // mutex before it for no benefit.
    MutexLock lock(s.mutex);
    for (std::size_t i = 0; i < begin_.size() && i < s.counters.size(); ++i) {
      RawSample end;
      if (!read_sample(s.counters[i].fd, end)) continue;
      const WindowDelta delta = scale_window(begin_[i], end);
      if (!delta.ran) continue;
      result_.readings.push_back(
          {s.counters[i].id, delta.value, delta.scale, delta.multiplexed});
    }
  }
  result_.available = !result_.readings.empty();
  if (!metric_name_.empty() && result_.available) {
    for (const Reading& r : result_.readings) {
      histogram("hw." + metric_name_ + "." + counter_name(r.id))
          .record(r.value);
    }
  }
  return result_;
}

CounterScope::~CounterScope() { stop(); }

}  // namespace ordo::obs::hw
