// ordo-lint: allow-file(thread)
// std::thread is used directly here (not the pipeline scheduler): obs sits
// below src/pipeline in the layering, and a bandwidth probe needs plain
// fork/join over array slices, not work stealing, deadlines or journaling.
#include "obs/hw/membw.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

namespace ordo::obs::hw {
namespace {

double g_measured_peak_gbps = 0.0;

// One fork/join pass of `fn(begin, end)` over [0, n) split into contiguous
// per-thread slices. Thread spawn cost is amortised by the array size (a
// 64 MiB pass is tens of milliseconds; a thread spawn ~0.1 ms).
template <typename Fn>
void parallel_slices(std::size_t n, int threads, Fn fn) {
  if (threads <= 1) {
    fn(std::size_t{0}, n);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  const std::size_t chunk = (n + static_cast<std::size_t>(threads) - 1) /
                            static_cast<std::size_t>(threads);
  for (int t = 0; t < threads; ++t) {
    const std::size_t begin = std::min(n, static_cast<std::size_t>(t) * chunk);
    const std::size_t end = std::min(n, begin + chunk);
    workers.emplace_back([=] { fn(begin, end); });
  }
  for (std::thread& w : workers) w.join();
}

template <typename Fn>
MembwKernelResult run_kernel(const char* name, double bytes, int reps,
                             Fn pass) {
  MembwKernelResult result;
  result.name = name;
  result.bytes = bytes;
  pass();  // warm up (faults pages on first touch of the destination)
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    pass();
    const double seconds = watch.seconds();
    if (r == 0 || seconds < best) best = seconds;
  }
  result.seconds = best;
  result.gbps = best > 0.0 ? bytes / best / 1e9 : 0.0;
  return result;
}

}  // namespace

MembwOptions membw_options_from_env() {
  MembwOptions options;
  if (const char* mib = std::getenv("ORDO_MEMBW_MIB")) {
    const long value = std::atol(mib);
    if (value > 0) options.array_bytes = static_cast<std::size_t>(value) << 20;
  }
  if (const char* reps = std::getenv("ORDO_MEMBW_REPS")) {
    const int value = std::atoi(reps);
    if (value > 0) options.reps = value;
  }
  if (const char* threads = std::getenv("ORDO_MEMBW_THREADS")) {
    options.threads = std::atoi(threads);
  }
  return options;
}

MembwResult measure_membw(const MembwOptions& options) {
  ORDO_SCOPE("hw/membw");
  MembwResult result;
  result.threads = options.threads > 0
                       ? options.threads
                       : static_cast<int>(std::max(
                             1u, std::thread::hardware_concurrency()));
  result.array_bytes = std::max<std::size_t>(options.array_bytes, 1 << 16);
  const std::size_t n = result.array_bytes / sizeof(double);
  const double array_bytes = static_cast<double>(n * sizeof(double));
  const int reps = std::max(1, options.reps);
  const int threads = result.threads;

  std::vector<double> a(n, 1.0), b(n, 2.0), c(n, 0.0);
  const double scalar = 3.0;
  double* pa = a.data();
  double* pb = b.data();
  double* pc = c.data();

  result.kernels.push_back(run_kernel("copy", 2.0 * array_bytes, reps, [&] {
    parallel_slices(n, threads, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) pc[i] = pa[i];
    });
  }));
  result.kernels.push_back(run_kernel("scale", 2.0 * array_bytes, reps, [&] {
    parallel_slices(n, threads, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) pb[i] = scalar * pc[i];
    });
  }));
  result.kernels.push_back(run_kernel("add", 3.0 * array_bytes, reps, [&] {
    parallel_slices(n, threads, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) pc[i] = pa[i] + pb[i];
    });
  }));
  result.kernels.push_back(run_kernel("triad", 3.0 * array_bytes, reps, [&] {
    parallel_slices(n, threads, [=](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) pa[i] = pb[i] + scalar * pc[i];
    });
  }));

  for (const MembwKernelResult& k : result.kernels) {
    result.peak_gbps = std::max(result.peak_gbps, k.gbps);
  }
  g_measured_peak_gbps = result.peak_gbps;
  gauge("hw.peak_gbps").set(result.peak_gbps);
  return result;
}

double measured_peak_gbps() {
  if (const char* peak = std::getenv("ORDO_PEAK_GBPS")) {
    const double value = std::atof(peak);
    if (value > 0.0) return value;
  }
  return g_measured_peak_gbps;
}

}  // namespace ordo::obs::hw
