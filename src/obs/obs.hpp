// ordo::obs — observability for the study pipeline: scoped-timer tracing,
// a metrics registry and a structured logging sink, configured from the
// environment and flushed once at the end of a run.
//
// Environment knobs (read by init_from_env):
//   ORDO_TRACE=path    enable span tracing; write Chrome trace_event JSON to
//                      `path` at finalize() (view in chrome://tracing)
//   ORDO_LOG=level     quiet|progress|debug structured logging on stderr
//   ORDO_METRICS=path  write the metrics registry as JSON to `path` at
//                      finalize() (benches default this to ordo_metrics.json)
//   ORDO_PROFILE=1     per-thread profiling in the real SpMV kernels: each
//                      launch records observed per-thread seconds/nnz and
//                      imbalance into the registry
//   ORDO_HW=1          open the hardware performance-counter session
//                      (obs/hw/hw_counters.hpp); degrades to a null backend
//                      when perf_event is unavailable, never a hard failure
//   ORDO_HW_LAUNCH=1   additionally record a counter scope around every
//                      engine kernel launch
//
// Design constraints (see DESIGN.md "Observability"):
//  * zero overhead in kernel inner loops — instrumentation sits at phase
//    granularity only, and kernels take one branch per *launch*;
//  * compiled out entirely with -DORDO_OBS=OFF (the macros become no-ops);
//  * when compiled in but not enabled, a span costs one relaxed atomic load.
#pragma once

#include "obs/agg/latency_histogram.hpp"
#include "obs/hw/hw_counters.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/stopwatch.hpp"
#include "obs/trace.hpp"

namespace ordo::obs {

/// Reads ORDO_TRACE / ORDO_LOG / ORDO_METRICS / ORDO_PROFILE / ORDO_HW and
/// applies them (idempotent; later calls re-read the environment). Also
/// registers the exit-time flush (see finalize), so configured outputs are
/// written even when a main exits early or a failure path unwinds past the
/// explicit dump.
void init_from_env();

/// Output path for the Chrome trace, empty when tracing is not being
/// exported.
std::string trace_output_path();
void set_trace_output_path(const std::string& path);

/// Output path for the metrics JSON dump, empty for none.
std::string metrics_output_path();
void set_metrics_output_path(const std::string& path);

/// True when the real SpMV kernels should record observed per-thread
/// work/time (one branch per kernel launch).
bool profiling_enabled();
void set_profiling_enabled(bool enabled);

/// Explicit mid-run metrics dump: writes the registry JSON (same
/// schema_version-stamped document as the atexit dump) to the configured
/// metrics path via write-temp-then-rename, so a concurrent reader never
/// sees a torn file. No-op when no path is configured; write failures are
/// logged, never thrown (the status snapshot path calls this from service
/// threads). The atexit dump stays byte-compatible — both funnel through
/// write_metrics_json.
void flush_metrics();

/// Writes the configured trace, metrics and bench-report outputs (no-op for
/// unset paths). Registered via std::atexit by init_from_env (and by any
/// output-path setter), so every configured output survives an early exit;
/// long-lived embedders may also call it repeatedly. Also stops the live
/// status consumers (status::stop()), flushing one final heartbeat.
void finalize();

}  // namespace ordo::obs
