#include "obs/obs.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>

#include "core/thread_safety.hpp"
#include "obs/agg/trace_merge.hpp"
#include "obs/status/status.hpp"

namespace ordo::obs {
namespace {

Mutex g_config_mutex;
std::string g_trace_path ORDO_GUARDED_BY(g_config_mutex);
std::string g_metrics_path ORDO_GUARDED_BY(g_config_mutex);
std::atomic<bool> g_profiling{false};

// The exit-time flush: without it, a bench main that exits early (or a
// StudyTaskFailure path that unwinds before the explicit dump) silently
// dropped its metrics and trace buffers. Registered at most once, from
// init_from_env and from every output-path setter — whichever runs first.
std::once_flag g_atexit_once;

void register_atexit_flush() {
  std::call_once(g_atexit_once, [] { std::atexit([] { finalize(); }); });
}

}  // namespace

void init_from_env() {
  register_atexit_flush();
  trace_now_us();  // pin the process time anchor: the bench report's
                   // process_total_seconds counts from here
  if (const char* trace = std::getenv("ORDO_TRACE")) {
    if (*trace != '\0') {
      set_trace_output_path(trace);
      set_tracing_enabled(true);
    }
  }
  if (const char* level = std::getenv("ORDO_LOG")) {
    if (*level != '\0') set_log_level(parse_log_level(level));
  }
  if (const char* metrics = std::getenv("ORDO_METRICS")) {
    if (*metrics != '\0') set_metrics_output_path(metrics);
  }
  if (const char* profile = std::getenv("ORDO_PROFILE")) {
    set_profiling_enabled(std::strcmp(profile, "0") != 0);
  }
  hw::init_from_env();
  status::init_from_env();
}

void flush_metrics() {
  const std::string path = metrics_output_path();
  if (path.empty()) return;
  const std::string tmp = path + ".tmp";
  try {
    write_metrics_json_file(tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      std::fprintf(stderr, "ordo: flush_metrics: cannot rename %s -> %s\n",
                   tmp.c_str(), path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ordo: flush_metrics failed: %s\n", e.what());
  }
}

std::string trace_output_path() {
  MutexLock lock(g_config_mutex);
  return g_trace_path;
}

void set_trace_output_path(const std::string& path) {
  register_atexit_flush();
  MutexLock lock(g_config_mutex);
  g_trace_path = path;
}

std::string metrics_output_path() {
  MutexLock lock(g_config_mutex);
  return g_metrics_path;
}

void set_metrics_output_path(const std::string& path) {
  register_atexit_flush();
  MutexLock lock(g_config_mutex);
  g_metrics_path = path;
}

bool profiling_enabled() {
  // Relaxed: an on/off flag polled per operation; no data is published
  // through it, so no ordering is needed.
  return g_profiling.load(std::memory_order_relaxed);
}

void set_profiling_enabled(bool enabled) {
  // Relaxed: see profiling_enabled().
  g_profiling.store(enabled, std::memory_order_relaxed);
}

void finalize() {
  // Stop the status consumers first: the heartbeat writer flushes one final
  // snapshot, so an orderly exit (or SIGTERM-to-exit path) leaves a fresh
  // complete document behind.
  try {
    status::stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ordo: status shutdown failed: %s\n", e.what());
  }
  std::string trace_path;
  std::string metrics_path;
  {
    MutexLock lock(g_config_mutex);
    trace_path = g_trace_path;
    metrics_path = g_metrics_path;
  }
  // finalize() typically runs from std::atexit, where an escaping exception
  // is a guaranteed std::terminate — report a failed write instead of
  // aborting after the run's work is already done, and never let a trace
  // failure swallow the metrics dump (or vice versa).
  if (!trace_path.empty() && tracing_enabled()) {
    try {
      // With registered shard inputs (a sharded study ran), the export is
      // the stitched multi-process timeline; otherwise the plain
      // single-process document.
      if (!agg::trace_merge_inputs().empty()) {
        agg::write_merged_chrome_trace_file(trace_path);
        logf(LogLevel::kProgress, "wrote merged trace to %s",
             trace_path.c_str());
      } else {
        write_chrome_trace_file(trace_path);
        logf(LogLevel::kProgress, "wrote trace to %s", trace_path.c_str());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ordo: trace export failed: %s\n", e.what());
    }
  }
  if (!metrics_path.empty()) {
    try {
      write_metrics_json_file(metrics_path);
      logf(LogLevel::kProgress, "wrote metrics to %s", metrics_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ordo: metrics export failed: %s\n", e.what());
    }
  }
  try {
    write_bench_report();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ordo: bench report export failed: %s\n", e.what());
  }
}

}  // namespace ordo::obs
