// Machine-readable bench reporting: every bench main writes one
// schema-versioned `BENCH_<name>.json` so performance becomes a tracked
// trajectory instead of scrollback. The file carries a host/CPU/compiler
// fingerprint (two reports are only comparable on the same fingerprint),
// per-case repetition samples with median + IQR (the noise band
// tools/ordo_bench_diff.py thresholds against), and hardware-counter
// readings when an ORDO_HW session is live.
//
// Schema (version 1):
//   {"schema_version":1,"name":"micro_membw",
//    "host":{"os":...,"cpu":...,"logical_cpus":N,"compiler":...,
//            "build":"Release","hw_backend":"perf|perf-software|null"},
//    "cases":[{"name":...,"reps":[seconds...],"median_seconds":...,
//              "iqr_seconds":...,"counters":{"ipc":...,...}}],
//    "latency":{...}}   — optional: tail-latency percentiles (p50..p999)
//                         recorded via obs/agg/latency_histogram.hpp;
//                         absent when nothing was recorded
//
// The process-wide report is written by obs::finalize() (and therefore by
// the atexit flush), so a bench that exits early still leaves its file.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace ordo::obs {

inline constexpr int kBenchReportSchemaVersion = 1;

struct BenchCase {
  std::string name;
  std::vector<double> rep_seconds;  ///< raw repetition wall times
  double median_seconds = 0.0;      ///< derived from reps by add_case
  double iqr_seconds = 0.0;         ///< q3 − q1 of reps (0 for < 4 reps)
  /// Counter readings / derived metrics for this case ("cycles", "ipc",
  /// "gbps", ...); empty when no hw session was live.
  std::vector<std::pair<std::string, double>> counters;
};

/// Where two bench reports are comparable: same CPU, compiler and build
/// type. Queried once per process (reads /proc/cpuinfo and uname).
struct HostInfo {
  std::string os;
  std::string cpu;
  int logical_cpus = 0;
  std::string compiler;
  std::string build_type;
  std::string hw_backend;  ///< obs::hw::backend_name() at report time
};
HostInfo host_info();

/// Medians/IQR of a sample vector (exposed for the report's own tests).
double median_of(std::vector<double> samples);
double iqr_of(std::vector<double> samples);

/// The process-wide bench report. Thread-safe.
class BenchReport {
 public:
  /// Adds a case; fills median/iqr from rep_seconds when unset.
  void add_case(BenchCase bench_case);
  bool empty() const;
  std::string to_json() const;
  void write_json_file(const std::string& path) const;

 private:
  friend BenchReport& bench_report();
  BenchReport() = default;
};

BenchReport& bench_report();

/// Names the process's report. First call wins; also defaults the output
/// path to `BENCH_<name>.json` when no path was set. Benches pass their
/// harness name; library code never calls this.
void set_bench_report_name(const std::string& name);
std::string bench_report_name();

/// Output path for the report JSON; empty disables writing.
std::string bench_report_output_path();
void set_bench_report_output_path(const std::string& path);

/// Writes the report to the configured path (no-op when unset or when no
/// case was recorded). Appends a `process_total_seconds` case with the
/// session counter totals when a hw session is live. Called by
/// obs::finalize(); safe to call repeatedly.
void write_bench_report();

/// Parsed-back view of a BENCH_*.json file, for schema round-trip tests
/// and future in-process comparisons. Throws invalid_argument_error on a
/// malformed file or schema mismatch.
struct ParsedBenchReport {
  int schema_version = 0;
  std::string name;
  HostInfo host;
  std::vector<BenchCase> cases;
};
ParsedBenchReport parse_bench_report_file(const std::string& path);

}  // namespace ordo::obs
