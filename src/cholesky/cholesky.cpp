#include "cholesky/cholesky.hpp"

#include <algorithm>

#include "check/invariants.hpp"
#include "obs/obs.hpp"
#include "sparse/csr_ops.hpp"

namespace ordo {
namespace {

// Returns `a` if its pattern is already symmetric, otherwise A + Aᵀ.
CsrMatrix ensure_symmetric(const CsrMatrix& a) {
  require(a.is_square(), "cholesky: matrix must be square");
  return is_pattern_symmetric(a) ? a : symmetrize(a);
}

}  // namespace

std::vector<index_t> elimination_tree(const CsrMatrix& a_in) {
  const CsrMatrix a = ensure_symmetric(a_in);
  const index_t n = a.num_rows();
  std::vector<index_t> parent(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);
  // Liu's algorithm with path compression: process rows in order; for each
  // below-diagonal entry (j, i), climb the compressed ancestor chain from i
  // and graft it onto j.
  for (index_t j = 0; j < n; ++j) {
    for (index_t i : a.row_cols(j)) {
      if (i >= j) break;  // columns sorted: only the strict lower part
      index_t r = i;
      while (ancestor[static_cast<std::size_t>(r)] != -1 &&
             ancestor[static_cast<std::size_t>(r)] != j) {
        const index_t next = ancestor[static_cast<std::size_t>(r)];
        ancestor[static_cast<std::size_t>(r)] = j;
        r = next;
      }
      if (ancestor[static_cast<std::size_t>(r)] == -1) {
        ancestor[static_cast<std::size_t>(r)] = j;
        parent[static_cast<std::size_t>(r)] = j;
      }
    }
  }
  // Fill counts, postorder and the factor nnz all assume parents come after
  // their children; a broken tree silently skews every Fig. 6 fill ratio.
  ORDO_CHECK(validate_elimination_tree_raw(parent, "elimination_tree"));
  return parent;
}

std::vector<index_t> tree_postorder(const std::vector<index_t>& parent) {
  const index_t n = static_cast<index_t>(parent.size());
  // Build child lists (children in ascending order).
  std::vector<index_t> head(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next(static_cast<std::size_t>(n), -1);
  for (index_t v = n - 1; v >= 0; --v) {
    const index_t p = parent[static_cast<std::size_t>(v)];
    if (p >= 0) {
      next[static_cast<std::size_t>(v)] = head[static_cast<std::size_t>(p)];
      head[static_cast<std::size_t>(p)] = v;
    }
    if (v == 0) break;
  }

  std::vector<index_t> post;
  post.reserve(static_cast<std::size_t>(n));
  std::vector<index_t> stack;
  for (index_t root = 0; root < n; ++root) {
    if (parent[static_cast<std::size_t>(root)] != -1) continue;
    // Iterative DFS emitting nodes on the way back up.
    stack.push_back(root);
    while (!stack.empty()) {
      const index_t v = stack.back();
      const index_t child = head[static_cast<std::size_t>(v)];
      if (child != -1) {
        head[static_cast<std::size_t>(v)] =
            next[static_cast<std::size_t>(child)];
        stack.push_back(child);
      } else {
        post.push_back(v);
        stack.pop_back();
      }
    }
  }
  require(post.size() == static_cast<std::size_t>(n),
          "tree_postorder: parent array is not a forest");
  return post;
}

std::vector<index_t> cholesky_column_counts(const CsrMatrix& a_in) {
  const CsrMatrix a = ensure_symmetric(a_in);
  const index_t n = a.num_rows();
  const std::vector<index_t> parent = elimination_tree(a);
  const std::vector<index_t> post = tree_postorder(parent);

  // first[j]: postorder index of j's first descendant; delta: skeleton
  // counts (Gilbert, Ng & Peyton 1994, in the compact form of CSparse's
  // cs_counts).
  std::vector<index_t> first(static_cast<std::size_t>(n), -1);
  std::vector<index_t> delta(static_cast<std::size_t>(n), 0);
  for (index_t k = 0; k < n; ++k) {
    index_t j = post[static_cast<std::size_t>(k)];
    delta[static_cast<std::size_t>(j)] =
        (first[static_cast<std::size_t>(j)] == -1) ? 1 : 0;
    for (; j != -1 && first[static_cast<std::size_t>(j)] == -1;
         j = parent[static_cast<std::size_t>(j)]) {
      first[static_cast<std::size_t>(j)] = k;
    }
  }

  std::vector<index_t> maxfirst(static_cast<std::size_t>(n), -1);
  std::vector<index_t> prevleaf(static_cast<std::size_t>(n), -1);
  std::vector<index_t> ancestor(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) ancestor[static_cast<std::size_t>(v)] = v;

  // cs_leaf: is j a leaf of the row subtree of i? Returns the least common
  // ancestor of the previous leaf and j when j is a subsequent leaf.
  auto leaf = [&](index_t i, index_t j, int& jleaf) -> index_t {
    jleaf = 0;
    if (i <= j ||
        first[static_cast<std::size_t>(j)] <=
            maxfirst[static_cast<std::size_t>(i)]) {
      return -1;
    }
    maxfirst[static_cast<std::size_t>(i)] =
        first[static_cast<std::size_t>(j)];
    const index_t jprev = prevleaf[static_cast<std::size_t>(i)];
    prevleaf[static_cast<std::size_t>(i)] = j;
    if (jprev == -1) {
      jleaf = 1;
      return i;
    }
    jleaf = 2;
    index_t q = jprev;
    while (q != ancestor[static_cast<std::size_t>(q)]) {
      q = ancestor[static_cast<std::size_t>(q)];
    }
    index_t s = jprev;
    while (s != q) {
      const index_t sparent = ancestor[static_cast<std::size_t>(s)];
      ancestor[static_cast<std::size_t>(s)] = q;
      s = sparent;
    }
    return q;
  };

  for (index_t k = 0; k < n; ++k) {
    const index_t j = post[static_cast<std::size_t>(k)];
    if (parent[static_cast<std::size_t>(j)] != -1) {
      delta[static_cast<std::size_t>(
          parent[static_cast<std::size_t>(j)])]--;
    }
    for (index_t i : a.row_cols(j)) {
      int jleaf = 0;
      const index_t q = leaf(i, j, jleaf);
      if (jleaf >= 1) delta[static_cast<std::size_t>(j)]++;
      if (jleaf == 2) delta[static_cast<std::size_t>(q)]--;
    }
    if (parent[static_cast<std::size_t>(j)] != -1) {
      ancestor[static_cast<std::size_t>(j)] =
          parent[static_cast<std::size_t>(j)];
    }
  }

  // Accumulate deltas up the tree to obtain the column counts.
  std::vector<index_t> counts = delta;
  for (index_t k = 0; k < n; ++k) {
    const index_t j = post[static_cast<std::size_t>(k)];
    const index_t p = parent[static_cast<std::size_t>(j)];
    if (p != -1) {
      counts[static_cast<std::size_t>(p)] +=
          counts[static_cast<std::size_t>(j)];
    }
  }
  return counts;
}

std::int64_t cholesky_factor_nonzeros(const CsrMatrix& a) {
  ORDO_SCOPE("cholesky/count_factor_nnz");
  const std::vector<index_t> counts = cholesky_column_counts(a);
  std::int64_t total = 0;
  for (index_t c : counts) total += c;
  ORDO_COUNTER_ADD("cholesky.analyses", 1);
  ORDO_HISTOGRAM_RECORD("cholesky.factor_nnz", static_cast<double>(total));
  return total;
}

double cholesky_fill_ratio(const CsrMatrix& a_in) {
  const CsrMatrix a = ensure_symmetric(a_in);
  require(a.num_nonzeros() > 0, "cholesky_fill_ratio: empty matrix");
  const double ratio = static_cast<double>(cholesky_factor_nonzeros(a)) /
                       static_cast<double>(a.num_nonzeros());
  ORDO_HISTOGRAM_RECORD("cholesky.fill_ratio", ratio);
  return ratio;
}

std::vector<index_t> symbolic_cholesky_reference(const CsrMatrix& a_in) {
  const CsrMatrix a = ensure_symmetric(a_in);
  const index_t n = a.num_rows();
  const std::vector<index_t> parent = elimination_tree(a);
  std::vector<index_t> counts(static_cast<std::size_t>(n), 1);  // diagonal
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  // Row i of L is the union of the elimination-tree paths from each
  // below-diagonal entry of row i up to (but excluding) i.
  for (index_t i = 0; i < n; ++i) {
    mark[static_cast<std::size_t>(i)] = i;
    for (index_t j : a.row_cols(i)) {
      if (j >= i) break;
      for (index_t k = j; mark[static_cast<std::size_t>(k)] != i;
           k = parent[static_cast<std::size_t>(k)]) {
        counts[static_cast<std::size_t>(k)]++;  // L(i, k) exists
        mark[static_cast<std::size_t>(k)] = i;
      }
    }
  }
  return counts;
}

}  // namespace ordo
