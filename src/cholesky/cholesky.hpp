// Symbolic sparse Cholesky analysis (Section 4.6 of the paper).
//
// For a symmetric positive definite A = L·Lᵀ, the fill-in of L depends
// entirely on the ordering. The paper counts fill with the row/column
// counting algorithm of Gilbert, Ng & Peyton (1994), which computes
// nnz(L) without forming L, in near-linear time, using the elimination
// tree. A quadratic reference symbolic factorization is also provided here
// to cross-validate the fast counts in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/permutation.hpp"

namespace ordo {

/// Elimination tree of a symmetric matrix: parent[j] is the parent of column
/// j (or -1 for roots). Computed with Liu's algorithm using path
/// compression (virtual ancestors).
std::vector<index_t> elimination_tree(const CsrMatrix& a);

/// Postorder of a forest given by parent pointers; children are visited in
/// ascending order. Returns old-of-new ordering of the vertices.
std::vector<index_t> tree_postorder(const std::vector<index_t>& parent);

/// Column counts of the Cholesky factor L (including the diagonal), via the
/// skeleton-based counting of Gilbert, Ng & Peyton.
std::vector<index_t> cholesky_column_counts(const CsrMatrix& a);

/// nnz(L) including the diagonal.
std::int64_t cholesky_factor_nonzeros(const CsrMatrix& a);

/// Fill ratio nnz(L)/nnz(A) as plotted in Fig. 6. `a` must have a symmetric
/// pattern with a full diagonal.
double cholesky_fill_ratio(const CsrMatrix& a);

/// Quadratic reference symbolic factorization: returns the column counts of
/// L computed by explicit row-subtree traversal. Used to validate
/// cholesky_column_counts in tests; O(nnz(L)) time and memory.
std::vector<index_t> symbolic_cholesky_reference(const CsrMatrix& a);

}  // namespace ordo
