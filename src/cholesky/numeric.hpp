// Numeric sparse Cholesky factorization (up-looking, CSparse-style) and
// triangular solves.
//
// This complements the symbolic analysis in cholesky.hpp: the factor's
// per-column nonzero counts must agree exactly with the Gilbert–Ng–Peyton
// counts (cross-validated in the tests), and together with the solves it
// turns the fill-in study of Fig. 6 into a runnable direct solver, making
// the fill numbers concrete (more fill = more memory and flops).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace ordo {

/// Lower-triangular Cholesky factor L with A = L·Lᵀ, stored column-wise
/// (compressed sparse column: col_ptr/row_idx/values), diagonal first in
/// every column.
struct CholeskyFactor {
  index_t n = 0;
  std::vector<offset_t> col_ptr;
  std::vector<index_t> row_idx;
  std::vector<value_t> values;
  std::vector<index_t> parent;  ///< elimination tree used by the solve

  offset_t num_nonzeros() const {
    return col_ptr.empty() ? 0 : col_ptr.back();
  }
};

/// Factorizes a symmetric positive definite matrix given by its full
/// (both-triangle) pattern. Returns std::nullopt when a non-positive pivot
/// is encountered (the matrix is not positive definite).
std::optional<CholeskyFactor> cholesky_factorize(const CsrMatrix& a);

/// Solves L·y = b (forward substitution).
std::vector<value_t> forward_solve(const CholeskyFactor& factor,
                                   std::span<const value_t> b);

/// Solves Lᵀ·x = y (backward substitution).
std::vector<value_t> backward_solve(const CholeskyFactor& factor,
                                    std::span<const value_t> y);

/// Solves A·x = b via the factorization (forward then backward solve).
std::vector<value_t> cholesky_solve(const CholeskyFactor& factor,
                                    std::span<const value_t> b);

/// Reconstructs A = L·Lᵀ as a dense row-major matrix; for test-sized
/// problems only.
std::vector<value_t> reconstruct_dense(const CholeskyFactor& factor);

}  // namespace ordo
