#include "cholesky/numeric.hpp"

#include <algorithm>
#include <cmath>

#include "cholesky/cholesky.hpp"
#include "sparse/csr_ops.hpp"

namespace ordo {
namespace {

// Pattern of row k of L: the columns j < k reachable by walking up the
// elimination tree from each below-diagonal entry of row k of A. Returns
// them in topological (descendant-before-ancestor) order in `pattern`
// (filled from the back of the scratch stack, as in CSparse's cs_ereach).
void etree_reach(const CsrMatrix& a, index_t k,
                 const std::vector<index_t>& parent,
                 std::vector<index_t>& mark, std::vector<index_t>& stack,
                 std::vector<index_t>& pattern) {
  pattern.clear();
  mark[static_cast<std::size_t>(k)] = k;
  for (index_t j : a.row_cols(k)) {
    if (j >= k) break;
    // Climb from j to the first marked ancestor, recording the path.
    stack.clear();
    index_t t = j;
    while (mark[static_cast<std::size_t>(t)] != k) {
      stack.push_back(t);
      mark[static_cast<std::size_t>(t)] = k;
      t = parent[static_cast<std::size_t>(t)];
    }
    // The path runs descendant -> ancestor; prepend it reversed so overall
    // order stays topological.
    pattern.insert(pattern.end(), stack.rbegin(), stack.rend());
  }
  // `pattern` now holds each subtree path ancestor-last; sorting by etree
  // topology is what the numeric step needs. The concatenation above yields
  // ancestors after their descendants within each path; across paths the
  // relative order is arbitrary but safe because updates only flow from
  // column j into later rows.
  std::sort(pattern.begin(), pattern.end());
}

}  // namespace

std::optional<CholeskyFactor> cholesky_factorize(const CsrMatrix& a_in) {
  require(a_in.is_square(), "cholesky_factorize: matrix must be square");
  const CsrMatrix a =
      is_pattern_symmetric(a_in) ? a_in : symmetrize(a_in);
  const index_t n = a.num_rows();

  CholeskyFactor factor;
  factor.n = n;
  factor.parent = elimination_tree(a);
  const std::vector<index_t> counts = cholesky_column_counts(a);

  factor.col_ptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j) {
    factor.col_ptr[static_cast<std::size_t>(j) + 1] =
        factor.col_ptr[static_cast<std::size_t>(j)] +
        counts[static_cast<std::size_t>(j)];
  }
  factor.row_idx.resize(static_cast<std::size_t>(factor.col_ptr.back()));
  factor.values.resize(static_cast<std::size_t>(factor.col_ptr.back()));

  // next[j]: position of the next free slot in column j. The diagonal takes
  // the first slot of each column.
  std::vector<offset_t> next(factor.col_ptr.begin(), factor.col_ptr.end() - 1);
  std::vector<value_t> x(static_cast<std::size_t>(n), 0.0);
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  std::vector<index_t> stack, pattern;

  for (index_t k = 0; k < n; ++k) {
    // Scatter row k of A (lower part incl. diagonal) into x.
    value_t diag = 0.0;
    {
      const auto cols = a.row_cols(k);
      const auto vals = a.row_values(k);
      for (std::size_t p = 0; p < cols.size() && cols[p] <= k; ++p) {
        if (cols[p] == k) {
          diag = vals[p];
        } else {
          x[static_cast<std::size_t>(cols[p])] = vals[p];
        }
      }
    }

    etree_reach(a, k, factor.parent, mark, stack, pattern);

    // Up-looking elimination: for each j in the row pattern (ascending
    // order respects the etree topology), finalize L(k,j) and apply the
    // rank-1 update of column j to x.
    for (index_t j : pattern) {
      const offset_t j_begin = factor.col_ptr[static_cast<std::size_t>(j)];
      const value_t l_jj = factor.values[static_cast<std::size_t>(j_begin)];
      const value_t l_kj = x[static_cast<std::size_t>(j)] / l_jj;
      x[static_cast<std::size_t>(j)] = 0.0;
      for (offset_t p = j_begin + 1; p < next[static_cast<std::size_t>(j)];
           ++p) {
        x[static_cast<std::size_t>(
            factor.row_idx[static_cast<std::size_t>(p)])] -=
            factor.values[static_cast<std::size_t>(p)] * l_kj;
      }
      diag -= l_kj * l_kj;
      // Append L(k,j) to column j.
      const offset_t slot = next[static_cast<std::size_t>(j)]++;
      factor.row_idx[static_cast<std::size_t>(slot)] = k;
      factor.values[static_cast<std::size_t>(slot)] = l_kj;
    }

    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    const offset_t k_slot = next[static_cast<std::size_t>(k)]++;
    factor.row_idx[static_cast<std::size_t>(k_slot)] = k;
    factor.values[static_cast<std::size_t>(k_slot)] = std::sqrt(diag);
  }
  return factor;
}

std::vector<value_t> forward_solve(const CholeskyFactor& factor,
                                   std::span<const value_t> b) {
  require(b.size() == static_cast<std::size_t>(factor.n),
          "forward_solve: size mismatch");
  std::vector<value_t> y(b.begin(), b.end());
  for (index_t j = 0; j < factor.n; ++j) {
    const offset_t begin = factor.col_ptr[static_cast<std::size_t>(j)];
    const offset_t end = factor.col_ptr[static_cast<std::size_t>(j) + 1];
    y[static_cast<std::size_t>(j)] /=
        factor.values[static_cast<std::size_t>(begin)];
    const value_t yj = y[static_cast<std::size_t>(j)];
    for (offset_t p = begin + 1; p < end; ++p) {
      y[static_cast<std::size_t>(factor.row_idx[static_cast<std::size_t>(p)])] -=
          factor.values[static_cast<std::size_t>(p)] * yj;
    }
  }
  return y;
}

std::vector<value_t> backward_solve(const CholeskyFactor& factor,
                                    std::span<const value_t> y) {
  require(y.size() == static_cast<std::size_t>(factor.n),
          "backward_solve: size mismatch");
  std::vector<value_t> x(y.begin(), y.end());
  for (index_t j = factor.n - 1; j >= 0; --j) {
    const offset_t begin = factor.col_ptr[static_cast<std::size_t>(j)];
    const offset_t end = factor.col_ptr[static_cast<std::size_t>(j) + 1];
    value_t sum = x[static_cast<std::size_t>(j)];
    for (offset_t p = begin + 1; p < end; ++p) {
      sum -= factor.values[static_cast<std::size_t>(p)] *
             x[static_cast<std::size_t>(
                 factor.row_idx[static_cast<std::size_t>(p)])];
    }
    x[static_cast<std::size_t>(j)] =
        sum / factor.values[static_cast<std::size_t>(begin)];
    if (j == 0) break;
  }
  return x;
}

std::vector<value_t> cholesky_solve(const CholeskyFactor& factor,
                                    std::span<const value_t> b) {
  const std::vector<value_t> y = forward_solve(factor, b);
  return backward_solve(factor, y);
}

std::vector<value_t> reconstruct_dense(const CholeskyFactor& factor) {
  const std::size_t n = static_cast<std::size_t>(factor.n);
  std::vector<value_t> dense(n * n, 0.0);
  // A = L Lᵀ: accumulate outer products column by column.
  for (index_t j = 0; j < factor.n; ++j) {
    const offset_t begin = factor.col_ptr[static_cast<std::size_t>(j)];
    const offset_t end = factor.col_ptr[static_cast<std::size_t>(j) + 1];
    for (offset_t p = begin; p < end; ++p) {
      for (offset_t q = begin; q < end; ++q) {
        dense[static_cast<std::size_t>(
                  factor.row_idx[static_cast<std::size_t>(p)]) *
                  n +
              static_cast<std::size_t>(
                  factor.row_idx[static_cast<std::size_t>(q)])] +=
            factor.values[static_cast<std::size_t>(p)] *
            factor.values[static_cast<std::size_t>(q)];
      }
    }
  }
  return dense;
}

}  // namespace ordo
