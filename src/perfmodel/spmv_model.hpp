// Execution-time model for parallel CSR SpMV on the Table 2 machines.
//
// Per-thread cost combines three components, mirroring how the paper
// explains its measurements (Sections 4.4-4.5):
//
//  * a compute term — per-nonzero issue cost, per-row loop overhead, and a
//    branch-misprediction penalty whenever consecutive rows change length
//    (the effect Gray ordering targets);
//  * a latency term — x-vector gather misses classified by *exact* LRU
//    stack-distance analysis against the architecture's L1/L2/LLC-share
//    capacities, with DRAM misses overlapped by the architecture's
//    memory-level parallelism;
//  * a bandwidth term — streaming bytes (CSR arrays, y, and x lines missing
//    the LLC) over the thread's share of aggregate DRAM bandwidth.
//
// Thread time is the roofline max of the compute+latency and bandwidth
// terms; kernel time is the max over threads (this is where 1D load
// imbalance bites) plus a parallel-region overhead. Cache capacities are
// divided by ModelOptions::cache_scale so the scaled-down corpus retains the
// paper's matrix-size/cache-size ratios (DESIGN.md, substitution table).
//
// The per-thread boundaries the cost loop walks come from the engine: the
// model evaluates a prepared plan's ThreadPartition rather than recomputing
// row/nonzero splits itself, so the partition it prices is — by
// construction — the one the execution layer runs.
#pragma once

#include "engine/engine.hpp"
#include "perfmodel/arch.hpp"
#include "perfmodel/stack_distance.hpp"
#include "sparse/csr.hpp"

namespace ordo {

struct ModelOptions {
  /// Cache capacities are divided by this factor (see header comment).
  double cache_scale = 64.0;
  /// Fixed parallel-region (fork/barrier) overhead in microseconds.
  double sync_overhead_us = 0.5;
};

/// Reads ModelOptions overrides from the ORDO_CACHE_SCALE and ORDO_SYNC_US
/// environment variables; returns defaults otherwise.
ModelOptions model_options_from_env();

/// One simulated SpMV measurement — the quantities the paper's artifact
/// records per (matrix, ordering, machine).
struct SpmvEstimate {
  double seconds = 0.0;       ///< time of one SpMV iteration
  double gflops = 0.0;        ///< 2·nnz / seconds / 1e9
  double imbalance = 1.0;     ///< max thread nnz / mean thread nnz
  std::int64_t min_thread_nnz = 0;
  std::int64_t max_thread_nnz = 0;
  double mean_thread_nnz = 0.0;
  std::int64_t dram_bytes = 0;      ///< total modelled DRAM traffic
  std::int64_t x_dram_misses = 0;   ///< x-gather lines missing the LLC
};

/// Reusable per-matrix model state: the x-access reuse profile is computed
/// once and shared across all (kernel, architecture) evaluations. The
/// matrix must outlive the model.
class SpmvModel {
 public:
  explicit SpmvModel(const CsrMatrix& a,
                     const ModelOptions& options = ModelOptions{});

  /// Simulates one SpMV iteration of the given kernel on the given machine.
  /// The plan is fetched through the engine's plan cache for arch.cores
  /// threads.
  SpmvEstimate estimate(const SpmvKernel& kernel,
                        const Architecture& arch) const;

  /// Simulates one SpMV iteration against an already-prepared plan (must
  /// have been prepared for the same matrix). This is the core evaluation;
  /// the kernel-id overload is a cache lookup plus this.
  SpmvEstimate estimate(const engine::Plan& plan,
                        const Architecture& arch) const;

 private:
  const CsrMatrix& a_;
  ModelOptions options_;
  ReuseProfile profile_;
  /// row_length_changed_[i]: row i's nonzero count differs from row i-1's.
  std::vector<unsigned char> row_length_changed_;
};

/// One-shot convenience wrapper around SpmvModel.
SpmvEstimate estimate_spmv(const CsrMatrix& a, const SpmvKernel& kernel,
                           const Architecture& arch,
                           const ModelOptions& options = ModelOptions{});

}  // namespace ordo
