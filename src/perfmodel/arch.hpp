// Architecture descriptors for the eight multicore CPUs of Table 2.
//
// This reproduction runs on a single machine, so the paper's cross-platform
// measurements are replaced by an execution-time model instantiated with
// Table 2's published parameters (sockets, cores, cache sizes, bandwidth,
// frequency) plus microarchitectural cost coefficients chosen per family
// (e.g. the ARM parts get higher per-nonzero issue cost and lower
// memory-level parallelism, reflecting the weak ARM baselines the paper
// reports in Section 4.3). See DESIGN.md for the substitution rationale.
#pragma once

#include <string>
#include <vector>

namespace ordo {

struct Architecture {
  std::string name;        ///< short name used in the paper's tables
  std::string cpu;         ///< marketing name
  std::string isa;         ///< instruction set
  std::string microarch;   ///< microarchitecture
  int sockets = 1;
  int cores = 1;           ///< total cores (= threads used by the study)
  double freq_ghz = 1.0;   ///< sustained all-core frequency
  int l1d_kib_per_core = 32;
  int l2_kib_per_core = 512;
  int l3_mib_per_socket = 32;
  double bandwidth_gbs = 100.0;  ///< aggregate DRAM bandwidth

  // Model coefficients (not from Table 2; see header comment).
  double cycles_per_nonzero = 1.3;   ///< sustained issue cost per nonzero
  double row_overhead_cycles = 4.0;  ///< loop start/stop cost per row
  double branch_miss_cycles = 12.0;  ///< penalty when row length changes
  /// Latency terms are *effective* (overlap-adjusted) costs per access:
  /// out-of-order cores hide most of the raw L2/L3 latency, so these sit
  /// well below the architectural load-to-use numbers.
  double l2_hit_cycles = 3.0;        ///< effective L1-miss-L2-hit cost
  double l3_hit_cycles = 10.0;       ///< effective L2-miss-LLC-hit cost
  double dram_latency_cycles = 260.0;
  double memory_level_parallelism = 8.0;  ///< overlapped outstanding misses
  double per_core_bandwidth_gbs = 22.0;   ///< single-core streaming bound
};

/// The eight machines of Table 2, in the paper's column order: Skylake,
/// Ice Lake, Naples, Rome, Milan A, Milan B, TX2, Hi1620.
const std::vector<Architecture>& table2_architectures();

/// Lookup by short name ("Milan B", "Ice Lake", ...); throws when unknown.
const Architecture& architecture_by_name(const std::string& name);

/// Distinct thread counts across the eight machines (the partitions the
/// sweeps must evaluate): {16, 32, 48, 64, 72, 128}.
std::vector<int> distinct_thread_counts();

}  // namespace ordo
