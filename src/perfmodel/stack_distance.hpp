// Exact LRU stack-distance analysis of an access stream.
//
// For every access, the stack distance is the number of *distinct* other
// cache lines touched since the previous access to the same line (infinite
// for a line's first access). A fully-associative LRU cache of capacity C
// lines hits exactly when the stack distance is < C, so one analysis of a
// stream yields the miss count for every capacity at once — this is what
// lets the performance model evaluate all eight architectures' cache
// hierarchies from a single pass per (matrix, ordering).
//
// The classic O(n log n) algorithm is used: a Fenwick tree over access
// timestamps holds one mark at each line's most recent access; the stack
// distance of an access at time t whose line was last touched at time t' is
// the number of marks in (t', t).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "sparse/types.hpp"

namespace ordo {

/// Fenwick tree (binary indexed tree) over [0, n) with +/- point updates and
/// prefix-sum queries. Exposed for reuse and direct testing.
class FenwickTree {
 public:
  explicit FenwickTree(std::size_t n) : tree_(n + 1, 0) {}

  /// Adds `delta` at position i.
  void add(std::size_t i, std::int32_t delta) {
    for (std::size_t k = i + 1; k < tree_.size(); k += k & (~k + 1)) {
      tree_[k] += delta;
    }
  }

  /// Sum over [0, i).
  std::int64_t prefix_sum(std::size_t i) const {
    std::int64_t sum = 0;
    for (std::size_t k = i; k > 0; k -= k & (~k + 1)) sum += tree_[k];
    return sum;
  }

  /// Sum over [lo, hi).
  std::int64_t range_sum(std::size_t lo, std::size_t hi) const {
    return hi > lo ? prefix_sum(hi) - prefix_sum(lo) : 0;
  }

 private:
  std::vector<std::int64_t> tree_;
};

/// Per-access reuse information for a line-id stream.
struct ReuseProfile {
  /// Sentinel distance for a line's first access (cold miss).
  static constexpr index_t kCold = std::numeric_limits<index_t>::max();

  /// stack_distance[k]: distinct other lines touched between access k and
  /// the previous access to the same line; kCold for first accesses.
  std::vector<index_t> stack_distance;
  /// previous_access[k]: stream index of the previous access to the same
  /// line, or -1. Lets a consumer re-evaluate a *segment* [s, e) of the
  /// stream: within the segment an access is cold iff previous_access < s,
  /// and otherwise its in-segment stack distance equals the global one.
  std::vector<offset_t> previous_access;
};

/// Analyzes the stream. `num_lines` must exceed every line id.
ReuseProfile analyze_reuse(std::span<const index_t> lines, index_t num_lines);

/// Misses of a fully-associative LRU cache with `capacity_lines` lines over
/// the sub-stream [begin, end) of the analyzed stream, treating accesses
/// whose previous access precedes `begin` as cold.
std::int64_t count_misses(const ReuseProfile& profile, offset_t begin,
                          offset_t end, index_t capacity_lines);

/// Reference LRU simulator (explicit recency list); O(n·C). Used to validate
/// the stack-distance engine in tests.
std::int64_t simulate_lru_misses(std::span<const index_t> lines,
                                 index_t capacity_lines);

}  // namespace ordo
