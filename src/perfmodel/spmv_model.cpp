#include "perfmodel/spmv_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "spmv/spmv.hpp"

namespace ordo {
namespace {

constexpr int kLineBytes = 64;
constexpr int kDoublesPerLine = kLineBytes / static_cast<int>(sizeof(value_t));

index_t scaled_capacity_lines(double bytes, double scale) {
  return std::max<index_t>(
      2, static_cast<index_t>(bytes / scale / kLineBytes));
}

}  // namespace

ModelOptions model_options_from_env() {
  ModelOptions options;
  if (const char* scale = std::getenv("ORDO_CACHE_SCALE")) {
    options.cache_scale = std::max(1.0, std::atof(scale));
  }
  if (const char* sync = std::getenv("ORDO_SYNC_US")) {
    options.sync_overhead_us = std::max(0.0, std::atof(sync));
  }
  return options;
}

SpmvModel::SpmvModel(const CsrMatrix& a, const ModelOptions& options)
    : a_(a), options_(options) {
  ORDO_SCOPE("model/reuse_profile");
  ORDO_COUNTER_ADD("model.reuse_profiles", 1);
  // x-access stream at cache-line granularity, in matrix (row-major) order.
  const auto col_idx = a.col_idx();
  std::vector<index_t> lines(col_idx.size());
  for (std::size_t k = 0; k < col_idx.size(); ++k) {
    lines[k] = col_idx[k] / kDoublesPerLine;
  }
  const index_t num_lines =
      a.num_cols() > 0 ? (a.num_cols() - 1) / kDoublesPerLine + 1 : 1;
  profile_ = analyze_reuse(lines, num_lines);

  row_length_changed_.assign(static_cast<std::size_t>(a.num_rows()), 0);
  for (index_t i = 1; i < a.num_rows(); ++i) {
    row_length_changed_[static_cast<std::size_t>(i)] =
        a.row_nonzeros(i) != a.row_nonzeros(i - 1) ? 1 : 0;
  }
}

SpmvEstimate SpmvModel::estimate(const SpmvKernel& kernel,
                                 const Architecture& arch) const {
  if (a_.num_nonzeros() == 0 || a_.num_rows() == 0) return SpmvEstimate{};
  const std::shared_ptr<const engine::Plan> plan =
      engine::prepare_plan(a_, kernel, arch.cores);
  return estimate(*plan, arch);
}

SpmvEstimate SpmvModel::estimate(const engine::Plan& plan,
                                 const Architecture& arch) const {
  ORDO_COUNTER_ADD("model.evaluations", 1);
  const int threads = plan.partition.threads();
  SpmvEstimate estimate;
  const offset_t nnz = a_.num_nonzeros();
  if (nnz == 0 || a_.num_rows() == 0 || threads <= 0) return estimate;

  // Effective per-thread cache capacities (inclusive hierarchy, scaled).
  const double scale = options_.cache_scale;
  const index_t l1_lines =
      scaled_capacity_lines(arch.l1d_kib_per_core * 1024.0, scale);
  const index_t l2_lines =
      l1_lines + scaled_capacity_lines(arch.l2_kib_per_core * 1024.0, scale);
  const index_t llc_lines =
      l2_lines + scaled_capacity_lines(arch.l3_mib_per_socket * 1048576.0 *
                                           arch.sockets / threads,
                                       scale);

  // Thread boundaries in row and nonzero space come from the prepared plan.
  const auto row_ptr = a_.row_ptr();
  const std::vector<offset_t>& nnz_begin = plan.partition.nnz_begin;
  const std::vector<index_t>& row_begin = plan.partition.row_begin;
  const bool full_row_span =
      plan.partition.assignment != engine::RowAssignment::kNnzSplit;

  const double bw_per_thread =
      std::min(arch.bandwidth_gbs * 1e9 / threads,
               arch.per_core_bandwidth_gbs * 1e9);
  const double hz = arch.freq_ghz * 1e9;

  double max_thread_seconds = 0.0;
  estimate.min_thread_nnz = nnz;
  for (int t = 0; t < threads; ++t) {
    const offset_t k0 = nnz_begin[static_cast<std::size_t>(t)];
    const offset_t k1 = nnz_begin[static_cast<std::size_t>(t) + 1];
    const offset_t thread_nnz = k1 - k0;
    estimate.min_thread_nnz = std::min(estimate.min_thread_nnz, thread_nnz);
    estimate.max_thread_nnz = std::max(estimate.max_thread_nnz, thread_nnz);
    if (thread_nnz == 0) continue;

    // Cache misses on the x gather within this thread's nonzero range.
    std::int64_t miss_l1 = 0, miss_l2 = 0, miss_llc = 0;
    for (offset_t k = k0; k < k1; ++k) {
      const std::size_t i = static_cast<std::size_t>(k);
      const bool cold = profile_.previous_access[i] < k0;
      const index_t sd = profile_.stack_distance[i];
      if (cold || sd >= l1_lines) {
        ++miss_l1;
        if (cold || sd >= l2_lines) {
          ++miss_l2;
          if (cold || sd >= llc_lines) ++miss_llc;
        }
      }
    }

    // Rows spanned and row-length transitions (branch behaviour). Plans
    // whose row boundaries cover the full row space (row blocks, merge
    // path) expose the span directly; for the pure nonzero split the span
    // runs from the row containing the first nonzero to the row containing
    // the last one — empty tail rows beyond the final nonzero belong to no
    // thread's sweep (they are zero-filled separately).
    const index_t r0 = row_begin[static_cast<std::size_t>(t)];
    index_t r1;
    if (full_row_span) {
      r1 = row_begin[static_cast<std::size_t>(t) + 1];
    } else {
      const auto last = std::upper_bound(row_ptr.begin(), row_ptr.end(), k1 - 1);
      r1 = static_cast<index_t>(std::distance(row_ptr.begin(), last) - 1) + 1;
    }
    const index_t thread_rows = std::max<index_t>(1, r1 - r0);
    std::int64_t branch_changes = 0;
    for (index_t i = std::max<index_t>(r0, 1); i < r1; ++i) {
      branch_changes += row_length_changed_[static_cast<std::size_t>(i)];
    }

    const double compute_cycles =
        static_cast<double>(thread_nnz) * arch.cycles_per_nonzero +
        static_cast<double>(thread_rows) * arch.row_overhead_cycles +
        static_cast<double>(branch_changes) * arch.branch_miss_cycles;
    const double latency_cycles =
        static_cast<double>(miss_l1 - miss_l2) * arch.l2_hit_cycles +
        static_cast<double>(miss_l2 - miss_llc) * arch.l3_hit_cycles +
        static_cast<double>(miss_llc) * arch.dram_latency_cycles /
            arch.memory_level_parallelism;
    const double seconds_compute = (compute_cycles + latency_cycles) / hz;

    const std::int64_t bytes =
        static_cast<std::int64_t>(thread_nnz) *
            (sizeof(index_t) + sizeof(value_t)) +
        static_cast<std::int64_t>(thread_rows) * 2 *
            static_cast<std::int64_t>(sizeof(value_t)) +
        miss_llc * kLineBytes;
    const double seconds_memory = static_cast<double>(bytes) / bw_per_thread;

    max_thread_seconds =
        std::max(max_thread_seconds, std::max(seconds_compute, seconds_memory));
    estimate.dram_bytes += bytes;
    estimate.x_dram_misses += miss_llc;
  }

  estimate.mean_thread_nnz = static_cast<double>(nnz) / threads;
  estimate.imbalance =
      static_cast<double>(estimate.max_thread_nnz) / estimate.mean_thread_nnz;
  estimate.seconds =
      max_thread_seconds + options_.sync_overhead_us * 1e-6 *
                               (1.0 + static_cast<double>(threads) / 256.0);
  estimate.gflops = 2.0 * static_cast<double>(nnz) / estimate.seconds / 1e9;
  return estimate;
}

SpmvEstimate estimate_spmv(const CsrMatrix& a, const SpmvKernel& kernel,
                           const Architecture& arch,
                           const ModelOptions& options) {
  return SpmvModel(a, options).estimate(kernel, arch);
}

}  // namespace ordo
