#include "perfmodel/stack_distance.hpp"

#include <algorithm>
#include <list>
#include <unordered_map>

namespace ordo {

ReuseProfile analyze_reuse(std::span<const index_t> lines, index_t num_lines) {
  const std::size_t n = lines.size();
  ReuseProfile profile;
  profile.stack_distance.resize(n);
  profile.previous_access.resize(n);

  std::vector<offset_t> last_access(static_cast<std::size_t>(num_lines), -1);
  FenwickTree marks(n);
  for (std::size_t t = 0; t < n; ++t) {
    const index_t line = lines[t];
    require(line >= 0 && line < num_lines, "analyze_reuse: line out of range");
    const offset_t prev = last_access[static_cast<std::size_t>(line)];
    profile.previous_access[t] = prev;
    if (prev < 0) {
      profile.stack_distance[t] = ReuseProfile::kCold;
    } else {
      // Marks sit at each line's most recent access; lines touched since
      // `prev` have their mark strictly inside (prev, t).
      profile.stack_distance[t] = static_cast<index_t>(
          marks.range_sum(static_cast<std::size_t>(prev) + 1, t));
      marks.add(static_cast<std::size_t>(prev), -1);
    }
    marks.add(t, +1);
    last_access[static_cast<std::size_t>(line)] = static_cast<offset_t>(t);
  }
  return profile;
}

std::int64_t count_misses(const ReuseProfile& profile, offset_t begin,
                          offset_t end, index_t capacity_lines) {
  std::int64_t misses = 0;
  for (offset_t k = begin; k < end; ++k) {
    const std::size_t i = static_cast<std::size_t>(k);
    if (profile.previous_access[i] < begin ||
        profile.stack_distance[i] >= capacity_lines) {
      ++misses;
    }
  }
  return misses;
}

std::int64_t simulate_lru_misses(std::span<const index_t> lines,
                                 index_t capacity_lines) {
  std::list<index_t> recency;  // front = most recent
  std::unordered_map<index_t, std::list<index_t>::iterator> where;
  std::int64_t misses = 0;
  for (index_t line : lines) {
    const auto it = where.find(line);
    if (it != where.end()) {
      recency.erase(it->second);
      where.erase(it);
    } else {
      ++misses;
      if (static_cast<index_t>(recency.size()) ==
          capacity_lines) {  // evict LRU
        where.erase(recency.back());
        recency.pop_back();
      }
    }
    recency.push_front(line);
    where[line] = recency.begin();
  }
  return misses;
}

}  // namespace ordo
