#include "perfmodel/arch.hpp"

#include <algorithm>

#include "sparse/types.hpp"

namespace ordo {

const std::vector<Architecture>& table2_architectures() {
  static const std::vector<Architecture> machines = [] {
    std::vector<Architecture> v;

    Architecture skylake;
    skylake.name = "Skylake";
    skylake.cpu = "Intel Xeon Gold 6130";
    skylake.isa = "x86-64";
    skylake.microarch = "Skylake";
    skylake.sockets = 2;
    skylake.cores = 32;
    skylake.freq_ghz = 2.8;
    skylake.l1d_kib_per_core = 32;
    skylake.l2_kib_per_core = 1024;
    skylake.l3_mib_per_socket = 22;
    skylake.bandwidth_gbs = 256.0;
    skylake.cycles_per_nonzero = 1.25;
    skylake.memory_level_parallelism = 9.0;
    v.push_back(skylake);

    Architecture icelake;
    icelake.name = "Ice Lake";
    icelake.cpu = "Intel Xeon Platinum 8360Y";
    icelake.isa = "x86-64";
    icelake.microarch = "Ice Lake";
    icelake.sockets = 2;
    icelake.cores = 72;
    icelake.freq_ghz = 2.8;
    icelake.l1d_kib_per_core = 48;
    icelake.l2_kib_per_core = 1280;
    icelake.l3_mib_per_socket = 54;
    icelake.bandwidth_gbs = 409.6;
    icelake.cycles_per_nonzero = 1.2;
    icelake.memory_level_parallelism = 10.0;
    v.push_back(icelake);

    Architecture naples;
    naples.name = "Naples";
    naples.cpu = "AMD Epyc 7601";
    naples.isa = "x86-64";
    naples.microarch = "Zen";
    naples.sockets = 2;
    naples.cores = 64;
    naples.freq_ghz = 2.9;
    naples.l1d_kib_per_core = 32;
    naples.l2_kib_per_core = 512;
    naples.l3_mib_per_socket = 64;
    naples.bandwidth_gbs = 342.0;
    naples.cycles_per_nonzero = 1.4;
    naples.memory_level_parallelism = 7.0;
    naples.dram_latency_cycles = 300.0;  // cross-CCX penalties on Zen 1
    v.push_back(naples);

    Architecture rome;
    rome.name = "Rome";
    rome.cpu = "AMD Epyc 7302P";
    rome.isa = "x86-64";
    rome.microarch = "Zen 2";
    rome.sockets = 1;
    rome.cores = 16;
    rome.freq_ghz = 3.0;
    rome.l1d_kib_per_core = 32;
    rome.l2_kib_per_core = 512;
    rome.l3_mib_per_socket = 16;
    rome.bandwidth_gbs = 204.8;
    rome.cycles_per_nonzero = 1.3;
    rome.memory_level_parallelism = 8.0;
    v.push_back(rome);

    Architecture milan_a;
    milan_a.name = "Milan A";
    milan_a.cpu = "AMD Epyc 7413";
    milan_a.isa = "x86-64";
    milan_a.microarch = "Zen 3";
    milan_a.sockets = 2;
    milan_a.cores = 48;
    milan_a.freq_ghz = 3.0;
    milan_a.l1d_kib_per_core = 32;
    milan_a.l2_kib_per_core = 512;
    milan_a.l3_mib_per_socket = 128;
    milan_a.bandwidth_gbs = 409.6;
    milan_a.cycles_per_nonzero = 1.25;
    milan_a.memory_level_parallelism = 9.0;
    v.push_back(milan_a);

    Architecture milan_b;
    milan_b.name = "Milan B";
    milan_b.cpu = "AMD Epyc 7763";
    milan_b.isa = "x86-64";
    milan_b.microarch = "Zen 3";
    milan_b.sockets = 2;
    milan_b.cores = 128;
    milan_b.freq_ghz = 2.9;
    milan_b.l1d_kib_per_core = 32;
    milan_b.l2_kib_per_core = 512;
    milan_b.l3_mib_per_socket = 256;
    milan_b.bandwidth_gbs = 409.6;
    milan_b.cycles_per_nonzero = 1.25;
    milan_b.memory_level_parallelism = 9.0;
    v.push_back(milan_b);

    Architecture tx2;
    tx2.name = "TX2";
    tx2.cpu = "Cavium TX2 CN9980";
    tx2.isa = "ARMv8.1";
    tx2.microarch = "Vulcan";
    tx2.sockets = 2;
    tx2.cores = 64;
    tx2.freq_ghz = 2.2;
    tx2.l1d_kib_per_core = 32;
    tx2.l2_kib_per_core = 256;
    tx2.l3_mib_per_socket = 32;
    tx2.bandwidth_gbs = 342.0;
    // The ARM baselines in the paper are 2-4x below the x86 parts; the study
    // attributes this to limited instruction-level parallelism and compiler
    // support (Section 4.3). Modelled as higher per-nonzero cost and lower
    // memory-level parallelism, which also makes locality gains translate
    // more directly into speedup — the 2D/ARM effect of Table 4.
    tx2.cycles_per_nonzero = 3.2;
    tx2.l2_hit_cycles = 6.0;
    tx2.l3_hit_cycles = 20.0;
    tx2.row_overhead_cycles = 7.0;
    tx2.branch_miss_cycles = 16.0;
    tx2.memory_level_parallelism = 3.5;
    tx2.dram_latency_cycles = 240.0;
    tx2.per_core_bandwidth_gbs = 14.0;
    v.push_back(tx2);

    Architecture hi1620;
    hi1620.name = "Hi1620";
    hi1620.cpu = "HiSilicon Kunpeng 920-6426";
    hi1620.isa = "ARMv8.2";
    hi1620.microarch = "TaiShan v110";
    hi1620.sockets = 2;
    hi1620.cores = 128;
    hi1620.freq_ghz = 2.6;
    hi1620.l1d_kib_per_core = 64;
    hi1620.l2_kib_per_core = 512;
    hi1620.l3_mib_per_socket = 64;
    hi1620.bandwidth_gbs = 342.0;
    hi1620.cycles_per_nonzero = 3.0;
    hi1620.l2_hit_cycles = 5.0;
    hi1620.l3_hit_cycles = 16.0;
    hi1620.row_overhead_cycles = 6.0;
    hi1620.branch_miss_cycles = 14.0;
    hi1620.memory_level_parallelism = 4.0;
    hi1620.per_core_bandwidth_gbs = 12.0;
    v.push_back(hi1620);

    return v;
  }();
  return machines;
}

const Architecture& architecture_by_name(const std::string& name) {
  for (const Architecture& arch : table2_architectures()) {
    if (arch.name == name) return arch;
  }
  throw invalid_argument_error("architecture_by_name: unknown machine " +
                               name);
}

std::vector<int> distinct_thread_counts() {
  std::vector<int> counts;
  for (const Architecture& arch : table2_architectures()) {
    counts.push_back(arch.cores);
  }
  std::sort(counts.begin(), counts.end());
  counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
  return counts;
}

}  // namespace ordo
