#include "pipeline/shard.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <memory>
#include <optional>
#include <utility>

#include "engine/registry.hpp"
#include "obs/agg/fleet.hpp"
#include "obs/agg/trace_merge.hpp"
#include "obs/obs.hpp"
#include "obs/status/status.hpp"
#include "pipeline/journal.hpp"

namespace ordo::pipeline {
namespace {

namespace fs = std::filesystem;

/// How worker k left: clean, or a reason string for the synthesized
/// failure rows of its unfinished slice.
struct ShardExit {
  bool crashed = false;
  std::string reason;
};

ShardExit describe_exit(int wait_status) {
  ShardExit result;
  if (WIFEXITED(wait_status)) {
    const int code = WEXITSTATUS(wait_status);
    if (code != 0) {
      result.crashed = true;
      result.reason = "exited with status " + std::to_string(code);
    }
  } else if (WIFSIGNALED(wait_status)) {
    result.crashed = true;
    result.reason =
        "killed by signal " + std::to_string(WTERMSIG(wait_status));
  } else {
    result.crashed = true;
    result.reason = "ended with unrecognized wait status " +
                    std::to_string(wait_status);
  }
  return result;
}

/// The worker body. Runs inside the forked child; never returns.
[[noreturn]] void run_shard_worker(const std::vector<CorpusEntry>& corpus,
                                   const StudyOptions& options,
                                   int shard_index) {
  int code = 0;
  const std::string suffix = ".shard" + std::to_string(shard_index);
  try {
    // Drop the consumer state inherited from the parent (nothing is
    // running — the parent suspended its consumers before forking — but
    // the parked restart configuration must not leak into the child) and
    // start this worker's own heartbeat.
    obs::status::stop();
    // Re-point the inherited per-process outputs: N workers writing the
    // parent's ORDO_TRACE / ORDO_METRICS paths would clobber each other
    // (and the parent's own dump), so each gets the journal/heartbeat
    // naming scheme's .shard<k> suffix. The bench report stays with the
    // parent — a worker writing BENCH_*.json would shadow the real one.
    if (const std::string trace = obs::trace_output_path(); !trace.empty()) {
      obs::set_trace_output_path(trace + suffix);
    }
    if (const std::string metrics = obs::metrics_output_path();
        !metrics.empty()) {
      obs::set_metrics_output_path(metrics + suffix);
    }
    obs::set_bench_report_output_path(std::string());
    obs::set_trace_process_label("shard " + std::to_string(shard_index));
    obs::status::start_heartbeat(
        shard_heartbeat_path(options.checkpoint_dir, shard_index),
        /*interval_seconds=*/0.5);
    StudyOptions worker_options = options;
    worker_options.shard_index = shard_index;
    run_study_pipeline(corpus, worker_options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ordo: shard %d failed: %s\n", shard_index,
                 e.what());
    code = 1;
  }
  // Orderly export before _exit skips the atexit chain: one final heartbeat
  // snapshot plus this worker's own (suffixed) trace and metrics dumps —
  // the parent's files are untouched because the paths were re-pointed
  // above.
  obs::finalize();
  std::fflush(nullptr);
  ::_exit(code);
}

/// The fleet monitor's shard list: heartbeat paths in shard order.
obs::agg::FleetConfig fleet_config(const std::string& checkpoint_dir,
                                   int shards) {
  obs::agg::FleetConfig config;
  config.shards.reserve(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    config.shards.push_back({k, shard_heartbeat_path(checkpoint_dir, k)});
  }
  return config;
}

}  // namespace

std::string shard_heartbeat_path(const std::string& checkpoint_dir,
                                 int shard_index) {
  require(shard_index >= 0, "pipeline: negative shard index");
  if (const char* base = std::getenv("ORDO_STATUS_FILE")) {
    if (*base != '\0') {
      return std::string(base) + ".shard" + std::to_string(shard_index);
    }
  }
  return (fs::path(checkpoint_dir) /
          ("ordo_status.shard" + std::to_string(shard_index) + ".json"))
      .string();
}

StudyReport run_sharded_study(const std::vector<CorpusEntry>& corpus,
                              const StudyOptions& options) {
  if (options.shards <= 1) return run_study_pipeline(corpus, options);
  require(options.shard_index < 0,
          "pipeline: run_sharded_study cannot be nested inside a shard "
          "worker");
  require(!options.checkpoint_dir.empty(),
          "pipeline: --shards needs a checkpoint directory (the shard "
          "journals are the merge channel)");
  require(!options.hw_counters,
          "pipeline: --shards is incompatible with host hardware counters "
          "(a counter session observes one process; N-1 shards' samples "
          "would be dropped silently)");
  // Fail configuration errors in the parent, once, instead of N times in
  // the workers: resolve the kernel set (throws on unknown ids) and apply
  // the same determinism refusal run_study_pipeline applies.
  for (const SpmvKernel& kernel : study_kernels(options)) {
    const engine::KernelDesc& desc = engine::kernel(kernel.id());
    require(desc.caps.deterministic || options.allow_nondeterministic,
            "pipeline: kernel '" + kernel.id() +
                "' is nondeterministic (" + desc.summary +
                "), which breaks the shard merge's byte-identical "
                "guarantee; pass --allow-nondeterministic to sweep it "
                "anyway");
  }

  const int shards = options.shards;
  const std::size_t n = corpus.size();
  fs::create_directories(options.checkpoint_dir);
  const JournalKey key = make_journal_key(corpus, options);
  auto shard_of = [&](std::size_t i) {
    return static_cast<int>(i % static_cast<std::size_t>(shards));
  };
  auto journal_path = [&](int k) {
    return (fs::path(options.checkpoint_dir) / shard_journal_filename(k))
        .string();
  };
  auto failures_path = [&](int k) {
    return (fs::path(options.checkpoint_dir) / shard_failures_filename(k))
        .string();
  };

  // Pre-scan: count the records the workers will replay (mirroring their
  // replay logic exactly — shard journals first, then the merged journal)
  // so the report's resumed/computed split matches an unsharded run's.
  // Also clear stale per-shard failure and heartbeat files: a leftover
  // failure file would be merged as if this run produced it, and a
  // leftover heartbeat would feed the aggregation section until the new
  // worker's first write.
  std::vector<char> pre_done(n, 0);
  for (int k = 0; k < shards; ++k) {
    std::error_code ignored;
    fs::remove(failures_path(k), ignored);
    fs::remove(shard_heartbeat_path(options.checkpoint_dir, k), ignored);
    if (!options.resume) continue;
    for (const JournalRecord& record : load_journal(journal_path(k), key)) {
      const auto idx = static_cast<std::size_t>(record.index);
      if (shard_of(idx) == k) pre_done[idx] = 1;
    }
  }
  StudyReport report;
  if (options.resume) {
    const std::string merged =
        (fs::path(options.checkpoint_dir) / kJournalFilename).string();
    for (const JournalRecord& record : load_journal(merged, key)) {
      pre_done[static_cast<std::size_t>(record.index)] = 1;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (pre_done[i]) ++report.resumed;
    }
  }

  // Fork window: no status service thread may exist while forking (the
  // child would inherit the memory of a thread that does not run there).
  obs::status::suspend_consumers();
  std::vector<pid_t> pids(static_cast<std::size_t>(shards), -1);
  for (int k = 0; k < shards; ++k) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Unwind the workers already forked, restore the consumers, then
      // surface the failure.
      for (int j = 0; j < k; ++j) {
        ::kill(pids[static_cast<std::size_t>(j)], SIGKILL);
        int status = 0;
        ::waitpid(pids[static_cast<std::size_t>(j)], &status, 0);
      }
      obs::status::resume_consumers();
      require(false, "pipeline: fork failed for shard " + std::to_string(k));
    }
    if (pid == 0) {
      run_shard_worker(corpus, options, k);  // never returns
    }
    pids[static_cast<std::size_t>(k)] = pid;
  }
  obs::status::resume_consumers();
  obs::logf(obs::LogLevel::kProgress,
            "sharded study: %d workers over %zu matrices (checkpoints in %s)",
            shards, n, options.checkpoint_dir.c_str());
  // Fleet telemetry: every parent /stats snapshot polls the worker
  // heartbeats through the monitor — per-shard progress and liveness, a
  // straggler verdict, and the bucket-exact merge of the workers' latency
  // histograms. The monitor outlives this call inside the section lambda
  // (late polls after end_run still see the final fleet state).
  auto fleet_monitor = std::make_shared<obs::agg::FleetMonitor>(
      fleet_config(options.checkpoint_dir, shards));
  obs::status::register_section(
      "fleet", [fleet_monitor](std::string& out) {
        fleet_monitor->append_section(out);
      });
  // Each worker's trace file (suffixed at fork) feeds the parent's
  // finalize-time stitch, so ORDO_TRACE on a sharded run yields one merged
  // multi-process timeline at the configured path.
  if (const std::string trace = obs::trace_output_path(); !trace.empty()) {
    obs::set_trace_process_label("parent");
    for (int k = 0; k < shards; ++k) {
      obs::agg::register_trace_merge_input(
          trace + ".shard" + std::to_string(k),
          "shard " + std::to_string(k));
    }
  }

  std::vector<ShardExit> exits(static_cast<std::size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    int status = 0;
    const pid_t waited =
        ::waitpid(pids[static_cast<std::size_t>(k)], &status, 0);
    if (waited < 0) {
      exits[static_cast<std::size_t>(k)] = {true, "waitpid failed"};
      continue;
    }
    exits[static_cast<std::size_t>(k)] = describe_exit(status);
    if (exits[static_cast<std::size_t>(k)].crashed) {
      obs::logf(obs::LogLevel::kProgress, "shard %d %s", k,
                exits[static_cast<std::size_t>(k)].reason.c_str());
    }
  }

  // Fold the workers' final latency histograms (their last heartbeat
  // snapshots, bucket-exact) into the parent's own registry: the closing
  // /stats snapshot, ordo_metrics.json and BENCH report then carry
  // fleet-wide tail percentiles, not the parent's empty ones.
  for (const auto& [name, snapshot] : fleet_monitor->poll().merged_latency) {
    obs::agg::latency(name).merge(snapshot);
  }

  // Deterministic merge: replay every shard journal and failure file into
  // per-index slots, synthesize failure rows for a crashed worker's
  // unfinished indices, then walk the slots in corpus order — the same
  // slot-merge discipline run_study_pipeline uses, so the result layout is
  // byte-identical to an unsharded run's.
  std::vector<std::optional<MatrixStudyRows>> slots(n);
  std::vector<std::optional<StudyTaskFailure>> failure_slots(n);
  for (int k = 0; k < shards; ++k) {
    for (JournalRecord& record : load_journal(journal_path(k), key)) {
      const auto idx = static_cast<std::size_t>(record.index);
      if (shard_of(idx) != k) continue;
      slots[idx] = std::move(record.rows);
    }
    for (StudyTaskFailure& failure : load_failures_file(failures_path(k))) {
      if (failure.index < 0 || static_cast<std::size_t>(failure.index) >= n) {
        continue;
      }
      const auto idx = static_cast<std::size_t>(failure.index);
      if (shard_of(idx) != k || slots[idx]) continue;
      failure_slots[idx] = std::move(failure);
    }
    const ShardExit& worker_exit = exits[static_cast<std::size_t>(k)];
    if (!worker_exit.crashed) continue;
    for (std::size_t i = 0; i < n; ++i) {
      if (shard_of(i) != k || slots[i] || failure_slots[i]) continue;
      StudyTaskFailure failure;
      failure.index = static_cast<int>(i);
      failure.group = corpus[i].group;
      failure.name = corpus[i].name;
      failure.error = "shard worker " + std::to_string(k) + " " +
                      worker_exit.reason + " before finishing this matrix";
      failure_slots[i] = std::move(failure);
    }
  }

  // Merged journal first, while the slots still own their rows: the same
  // study_journal.jsonl an unsharded checkpointed run leaves behind,
  // rebuilt from the shard files in corpus order (the results build below
  // moves the rows out of the slots). Shard journals are kept — they are
  // the resume state of a later sharded run.
  {
    JournalWriter journal(
        (fs::path(options.checkpoint_dir) / kJournalFilename).string(), key);
    for (std::size_t i = 0; i < n; ++i) {
      if (slots[i]) journal.append({static_cast<int>(i), *slots[i]});
    }
  }

  const auto& machines = table2_architectures();
  for (const Architecture& arch : machines) {
    for (const SpmvKernel& kernel : study_kernels(options)) {
      report.results[{arch.name, kernel}] = {};
    }
  }
  std::size_t done_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!slots[i]) continue;
    ++done_total;
    for (auto& [result_key, row] : *slots[i]) {
      report.results[result_key].push_back(std::move(row));
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (failure_slots[i]) {
      report.failures.push_back(std::move(*failure_slots[i]));
    }
  }
  report.computed =
      static_cast<int>(done_total) - report.resumed;
  const std::string merged_failures =
      (fs::path(options.checkpoint_dir) / kFailuresFilename).string();
  if (report.failures.empty()) {
    std::error_code ignored;
    fs::remove(merged_failures, ignored);
  } else {
    write_failures_file(merged_failures, report.failures);
  }
  return report;
}

}  // namespace ordo::pipeline
