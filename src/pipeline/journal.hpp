// On-disk checkpoint journal for the study pipeline.
//
// Layout: one JSON document per line ("JSON Lines") in
// `<checkpoint_dir>/study_journal.jsonl`. The first line is a header binding
// the journal to a (corpus, options) fingerprint; every following line is
// one completed matrix with its full set of per-(machine, kernel) rows.
// Appends are flushed line-by-line, so a killed run loses at most the line
// being written — the loader treats an unparsable tail as the crash point
// and replays everything before it.
//
// Doubles are serialized with 17 significant digits (round-trip exact), so
// a resumed study emits byte-identical result files to an uninterrupted one.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/thread_safety.hpp"

namespace ordo::pipeline {

/// Journal file name inside a checkpoint directory.
inline constexpr const char* kJournalFilename = "study_journal.jsonl";

/// Journal file name of shard worker `shard_index` inside a checkpoint
/// directory ("study_journal.shard<k>.jsonl"). Shard journals use the same
/// record format and the same key as the merged journal — the key
/// deliberately excludes shards/jobs, so a shard journal replays under any
/// process topology.
std::string shard_journal_filename(int shard_index);

/// Quotes and escapes `s` as a JSON string literal (shared by the journal
/// and the failure-row writer).
std::string json_quote(const std::string& s);

/// What a journal is valid for: replaying a journal written under a
/// different corpus or different model/reorder options would silently mix
/// incompatible measurements, so both are fingerprinted into the header.
struct JournalKey {
  int matrices = 0;
  std::uint64_t fingerprint = 0;
};

/// Fingerprints the corpus identity (per-entry name/group/shape/nnz) and
/// the result-affecting options (model + reorder knobs).
JournalKey make_journal_key(const std::vector<CorpusEntry>& corpus,
                            const StudyOptions& options);

/// One journal line: a completed matrix and its rows.
struct JournalRecord {
  int index = -1;  ///< position in the corpus
  MatrixStudyRows rows;
};

/// Reads a journal and returns the records whose header matches `key`.
/// Returns empty (never throws) when the file is missing, the header
/// mismatches, or the header is corrupt; stops at the first corrupt record
/// line. Duplicate or out-of-range indices are dropped.
std::vector<JournalRecord> load_journal(const std::string& path,
                                        const JournalKey& key);

/// Rewrites the journal (header + any replayed records) and appends one
/// flushed line per completed matrix. Thread-safe.
class JournalWriter {
 public:
  /// Truncates `path` and writes the header. Throws invalid_argument_error
  /// when the file cannot be opened.
  JournalWriter(const std::string& path, const JournalKey& key);

  void append(const JournalRecord& record);

 private:
  Mutex mutex_;
  std::ofstream out_ ORDO_GUARDED_BY(mutex_);
};

}  // namespace ordo::pipeline
