#include "pipeline/study_pipeline.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <thread>

#include "check/invariants.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/status/status.hpp"
#include "pipeline/cancel.hpp"
#include "pipeline/journal.hpp"
#include "pipeline/task_pool.hpp"

namespace ordo::pipeline {
namespace {

// Fault injection for the shard tests and the CI shard-smoke job:
// ORDO_SHARD_EXIT_AFTER=<shard>:<count> makes shard worker <shard> die
// (hard _exit, no unwinding, no final journal flush beyond what append
// already flushed — the closest in-process model of a SIGKILL) after
// completing <count> tasks in this run. Parsed once per pipeline run;
// ignored outside shard workers.
struct ShardFault {
  int shard = -1;
  int exit_after = -1;
};

ShardFault shard_fault_from_env() {
  ShardFault fault;
  if (const char* raw = std::getenv("ORDO_SHARD_EXIT_AFTER")) {
    int shard = -1;
    int count = -1;
    if (std::sscanf(raw, "%d:%d", &shard, &count) == 2 && shard >= 0 &&
        count >= 0) {
      fault.shard = shard;
      fault.exit_after = count;
    }
  }
  return fault;
}

// Disarms a token from the watchdog on scope exit, including the unwind
// path of a cancelled task (the token dies with this frame).
struct ArmGuard {
  DeadlineWatchdog& watchdog;
  CancelToken& token;
  bool armed = false;
  ~ArmGuard() {
    if (armed) watchdog.disarm(&token);
  }
};

}  // namespace

std::string shard_failures_filename(int shard_index) {
  require(shard_index >= 0, "pipeline: negative shard index");
  return "study_failures.shard" + std::to_string(shard_index) + ".jsonl";
}

void write_failures_file(const std::string& path,
                         const std::vector<StudyTaskFailure>& failures) {
  std::ofstream out(path, std::ios::trunc);
  require(out.good(), "pipeline: cannot open " + path);
  for (const StudyTaskFailure& f : failures) {
    char seconds[32];
    std::snprintf(seconds, sizeof(seconds), "%.6g", f.seconds);
    out << "{\"index\":" << f.index << ",\"group\":" << json_quote(f.group)
        << ",\"name\":" << json_quote(f.name)
        << ",\"timed_out\":" << (f.timed_out ? "true" : "false")
        << ",\"seconds\":" << seconds << ",\"error\":" << json_quote(f.error);
    if (!f.invariant_kind.empty()) {
      out << ",\"invariant_kind\":" << json_quote(f.invariant_kind);
    }
    out << "}\n";
  }
}

std::vector<StudyTaskFailure> load_failures_file(const std::string& path) {
  std::vector<StudyTaskFailure> failures;
  std::ifstream in(path);
  if (!in.good()) return failures;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const obs::JsonValue doc = obs::parse_json(line);
      StudyTaskFailure f;
      f.index = static_cast<int>(doc.at("index").as_int());
      f.group = doc.at("group").as_string();
      f.name = doc.at("name").as_string();
      f.error = doc.at("error").as_string();
      f.timed_out = doc.at("timed_out").boolean;
      f.seconds = doc.at("seconds").as_double();
      if (const obs::JsonValue* kind = doc.find("invariant_kind")) {
        f.invariant_kind = kind->as_string();
      }
      failures.push_back(std::move(f));
    } catch (const std::exception&) {
      break;  // torn tail from a killed writer — same policy as the journal
    }
  }
  return failures;
}

StudyReport run_study_pipeline(const std::vector<CorpusEntry>& corpus,
                               const StudyOptions& options) {
  ORDO_SCOPE("pipeline/run");
  // Legacy knob: --verbose is equivalent to ORDO_LOG=progress (it never
  // lowers a level already raised through the environment).
  if (options.verbose && !obs::log_enabled(obs::LogLevel::kProgress)) {
    obs::set_log_level(obs::LogLevel::kProgress);
  }

  const auto& machines = table2_architectures();
  const std::size_t n = corpus.size();

  // Shard-worker mode (options.shard_index >= 0, set by the fork
  // orchestrator in src/pipeline/shard.cpp): this process owns the corpus
  // indices congruent to shard_index modulo shards, journals to the
  // shard-suffixed files, and leaves every foreign slot empty for the
  // parent's merge.
  const bool shard_worker = options.shard_index >= 0;
  if (shard_worker) {
    require(options.shards > 1 && options.shard_index < options.shards,
            "pipeline: shard_index " + std::to_string(options.shard_index) +
                " out of range for " + std::to_string(options.shards) +
                " shards");
    require(!options.checkpoint_dir.empty(),
            "pipeline: shard workers need a checkpoint directory (the shard "
            "journals are the merge channel)");
  }
  auto owned = [&](std::size_t i) {
    return !shard_worker ||
           static_cast<int>(i % static_cast<std::size_t>(options.shards)) ==
               options.shard_index;
  };

  // Resolve (and validate) the kernel set up front. Nondeterministic
  // kernels are refused in checkpointed sweeps: the journal's guarantee is
  // a byte-identical resume, and atomic-scatter float summation cannot
  // reproduce its rows across runs.
  const std::vector<SpmvKernel> kernels = study_kernels(options);
  if (!options.checkpoint_dir.empty() && !options.allow_nondeterministic) {
    for (const SpmvKernel& kernel : kernels) {
      const engine::KernelDesc& desc = engine::kernel(kernel.id());
      require(desc.caps.deterministic,
              "pipeline: kernel '" + kernel.id() +
                  "' is nondeterministic (" + desc.summary +
                  "), which breaks the checkpoint journal's byte-identical "
                  "resume guarantee; pass --allow-nondeterministic "
                  "(StudyOptions::allow_nondeterministic) or disable "
                  "checkpointing to sweep it anyway");
    }
  }

  StudyReport report;
  // One slot per matrix index: tasks fill their own slot, the merge walks
  // the slots in corpus order — result files come out byte-identical for
  // every jobs value.
  std::vector<std::optional<MatrixStudyRows>> slots(n);
  std::vector<std::optional<StudyTaskFailure>> failure_slots(n);
  std::vector<char> done(n, 0);

  // Checkpoint journal: replay, then rewrite (header + replayed records) so
  // the file also recovers from a corrupt tail left by a killed run.
  std::unique_ptr<JournalWriter> journal;
  if (!options.checkpoint_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(options.checkpoint_dir);
    const std::string path =
        (fs::path(options.checkpoint_dir) /
         (shard_worker ? shard_journal_filename(options.shard_index)
                       : std::string(kJournalFilename)))
            .string();
    const JournalKey key = make_journal_key(corpus, options);
    if (options.resume) {
      ORDO_SCOPE("pipeline/journal_replay");
      for (JournalRecord& record : load_journal(path, key)) {
        // A record outside this worker's slice (the topology changed between
        // runs) is dropped rather than replayed: the shard owning it will
        // recompute it, and replaying it here would double-count the row in
        // the parent's merge.
        if (!owned(static_cast<std::size_t>(record.index))) continue;
        slots[static_cast<std::size_t>(record.index)] = std::move(record.rows);
        done[static_cast<std::size_t>(record.index)] = 1;
        ++report.resumed;
      }
      if (shard_worker) {
        // Cross-topology resume: a merged journal left by a previous run
        // (any shard count, including an unsharded one) seeds the slots the
        // shard journal does not cover. The rewrite below copies them into
        // the shard journal, so the next resume is self-contained.
        const std::string merged =
            (fs::path(options.checkpoint_dir) / kJournalFilename).string();
        for (JournalRecord& record : load_journal(merged, key)) {
          const auto idx = static_cast<std::size_t>(record.index);
          if (!owned(idx) || done[idx]) continue;
          slots[idx] = std::move(record.rows);
          done[idx] = 1;
          ++report.resumed;
        }
      }
      if (report.resumed > 0) {
        ORDO_COUNTER_ADD("pipeline.tasks.resumed", report.resumed);
        obs::logf(obs::LogLevel::kProgress,
                  "resuming study: %d of %zu matrices replayed from %s",
                  report.resumed, n, path.c_str());
      }
    }
    journal = std::make_unique<JournalWriter>(path, key);
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) journal->append({static_cast<int>(i), *slots[i]});
    }
  }

  DeadlineWatchdog watchdog;
  const double timeout = options.task_timeout_seconds;
  const ShardFault fault = shard_fault_from_env();
  std::atomic<int> completed_this_run{0};

  auto execute = [&](std::size_t i) {
    const CorpusEntry& entry = corpus[i];
    obs::Span task_span("pipeline/task/" + entry.name);
    obs::status::task_started(static_cast<int>(i), entry.name, timeout);
    obs::logf(obs::LogLevel::kProgress, "[%zu/%zu] %s (n=%d, nnz=%lld)", i + 1,
              n, entry.name.c_str(), static_cast<int>(entry.matrix.num_rows()),
              static_cast<long long>(entry.matrix.num_nonzeros()));

    CancelToken token;
    ArmGuard guard{watchdog, token};
    if (timeout > 0.0) {
      watchdog.arm(&token, std::chrono::steady_clock::now() +
                               std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(timeout)));
      guard.armed = true;
    }
    StudyOptions task_options = options;
    task_options.reorder.cancel = token.flag();

    obs::Stopwatch watch;
    auto record_failure = [&](const char* what,
                              const std::string& invariant_kind) {
      StudyTaskFailure failure;
      failure.index = static_cast<int>(i);
      failure.group = entry.group;
      failure.name = entry.name;
      failure.error = what;
      failure.timed_out = token.cancelled();
      failure.seconds = watch.seconds();
      failure.invariant_kind = invariant_kind;
      ORDO_COUNTER_ADD("pipeline.tasks.failed", 1);
      if (failure.timed_out) ORDO_COUNTER_ADD("pipeline.tasks.timeout", 1);
      // Failed tasks belong in the tail too: a sweep whose p99 is a string
      // of timeouts must not report the p99 of its successes.
      ORDO_LATENCY_RECORD("task", failure.seconds);
      obs::logf(obs::LogLevel::kProgress, "task %s %s after %.2fs: %s",
                entry.name.c_str(),
                failure.timed_out ? "timed out" : "failed", failure.seconds,
                failure.error.c_str());
      failure_slots[i] = std::move(failure);
    };
    try {
      MatrixStudyRows rows = run_matrix_study(entry, task_options);
      ORDO_HISTOGRAM_RECORD("pipeline.task.seconds", watch.seconds());
      ORDO_LATENCY_RECORD("task", watch.seconds());
      slots[i] = std::move(rows);
      obs::status::set_phase("journal");
      if (journal) {
        // The journal write is the only phase serialized across workers
        // (the writer's internal lock), so its tail is the first place
        // checkpoint-fsync contention shows up.
        obs::Stopwatch journal_watch;
        journal->append({static_cast<int>(i), *slots[i]});
        ORDO_LATENCY_RECORD("phase.journal", journal_watch.seconds());
      }
      ORDO_COUNTER_ADD("pipeline.tasks.completed", 1);
      obs::status::task_finished(/*failed=*/false, /*timed_out=*/false,
                                 watch.seconds());
      // Relaxed: the counter only gates the fault-injection exit below; no
      // other memory is published through it.
      const int completed =
          completed_this_run.fetch_add(1, std::memory_order_relaxed) + 1;
      if (shard_worker && fault.exit_after >= 0 &&
          options.shard_index == fault.shard && completed >= fault.exit_after) {
        obs::logf(obs::LogLevel::kProgress,
                  "shard %d: ORDO_SHARD_EXIT_AFTER fired after %d tasks",
                  options.shard_index, completed);
        ::_exit(113);  // models a SIGKILL: no unwinding, no final flushes
      }
    } catch (const check::InvariantViolation& e) {
      // A contract breach inside one matrix's study is isolated like any
      // other failure, but tagged with its violation class so the failure
      // file distinguishes "wrong answer detected" from "crashed/slow".
      ORDO_COUNTER_ADD("pipeline.tasks.invariant_violations", 1);
      record_failure(e.what(), violation_kind_name(e.kind()));
      obs::status::task_finished(/*failed=*/true, token.cancelled(),
                                 watch.seconds());
    } catch (const std::exception& e) {
      record_failure(e.what(), std::string());
      obs::status::task_finished(/*failed=*/true, token.cancelled(),
                                 watch.seconds());
    }
  };

  std::vector<std::size_t> todo;
  todo.reserve(n);
  std::size_t owned_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!owned(i)) continue;
    ++owned_total;
    if (!done[i]) todo.push_back(i);
  }
  ORDO_COUNTER_ADD("pipeline.tasks.queued",
                   static_cast<std::int64_t>(todo.size()));

  int jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  jobs = std::max(1, jobs);

  // A shard worker reports its own slice as the run: the parent's "shards"
  // status section aggregates the per-shard fractions back into a whole.
  obs::status::begin_run(static_cast<std::int64_t>(owned_total), jobs,
                         report.resumed);
  if (jobs == 1) {
    // Sequential path: inline on the calling thread, in corpus order.
    for (std::size_t i : todo) execute(i);
  } else {
    TaskPool pool(std::min<int>(jobs, static_cast<int>(
                                          std::max<std::size_t>(1, todo.size()))));
    for (std::size_t i : todo) {
      pool.submit([&execute, i] { execute(i); });
    }
    pool.wait_idle();
  }
  obs::status::end_run();

  {
    ORDO_SCOPE("pipeline/merge");
    for (const Architecture& arch : machines) {
      for (const SpmvKernel& kernel : kernels) {
        report.results[{arch.name, kernel}] = {};
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!slots[i]) continue;
      for (auto& [key, row] : *slots[i]) {
        report.results[key].push_back(std::move(row));
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (failure_slots[i]) report.failures.push_back(std::move(*failure_slots[i]));
  }
  report.computed = static_cast<int>(todo.size()) -
                    static_cast<int>(report.failures.size());

  if (!options.checkpoint_dir.empty()) {
    namespace fs = std::filesystem;
    const std::string path =
        (fs::path(options.checkpoint_dir) /
         (shard_worker ? shard_failures_filename(options.shard_index)
                       : std::string(kFailuresFilename)))
            .string();
    if (report.failures.empty()) {
      std::error_code ignored;
      fs::remove(path, ignored);
    } else {
      write_failures_file(path, report.failures);
    }
  }
  return report;
}

}  // namespace ordo::pipeline
