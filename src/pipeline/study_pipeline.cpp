#include "pipeline/study_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <thread>

#include "check/invariants.hpp"
#include "obs/obs.hpp"
#include "obs/status/status.hpp"
#include "pipeline/cancel.hpp"
#include "pipeline/journal.hpp"
#include "pipeline/task_pool.hpp"

namespace ordo::pipeline {
namespace {

void write_failures_file(const std::string& path,
                         const std::vector<StudyTaskFailure>& failures) {
  std::ofstream out(path, std::ios::trunc);
  require(out.good(), "pipeline: cannot open " + path);
  for (const StudyTaskFailure& f : failures) {
    char seconds[32];
    std::snprintf(seconds, sizeof(seconds), "%.6g", f.seconds);
    out << "{\"index\":" << f.index << ",\"group\":" << json_quote(f.group)
        << ",\"name\":" << json_quote(f.name)
        << ",\"timed_out\":" << (f.timed_out ? "true" : "false")
        << ",\"seconds\":" << seconds << ",\"error\":" << json_quote(f.error);
    if (!f.invariant_kind.empty()) {
      out << ",\"invariant_kind\":" << json_quote(f.invariant_kind);
    }
    out << "}\n";
  }
}

// Disarms a token from the watchdog on scope exit, including the unwind
// path of a cancelled task (the token dies with this frame).
struct ArmGuard {
  DeadlineWatchdog& watchdog;
  CancelToken& token;
  bool armed = false;
  ~ArmGuard() {
    if (armed) watchdog.disarm(&token);
  }
};

}  // namespace

StudyReport run_study_pipeline(const std::vector<CorpusEntry>& corpus,
                               const StudyOptions& options) {
  ORDO_SCOPE("pipeline/run");
  // Legacy knob: --verbose is equivalent to ORDO_LOG=progress (it never
  // lowers a level already raised through the environment).
  if (options.verbose && !obs::log_enabled(obs::LogLevel::kProgress)) {
    obs::set_log_level(obs::LogLevel::kProgress);
  }

  const auto& machines = table2_architectures();
  const std::size_t n = corpus.size();

  // Resolve (and validate) the kernel set up front. Nondeterministic
  // kernels are refused in checkpointed sweeps: the journal's guarantee is
  // a byte-identical resume, and atomic-scatter float summation cannot
  // reproduce its rows across runs.
  const std::vector<SpmvKernel> kernels = study_kernels(options);
  if (!options.checkpoint_dir.empty() && !options.allow_nondeterministic) {
    for (const SpmvKernel& kernel : kernels) {
      const engine::KernelDesc& desc = engine::kernel(kernel.id());
      require(desc.caps.deterministic,
              "pipeline: kernel '" + kernel.id() +
                  "' is nondeterministic (" + desc.summary +
                  "), which breaks the checkpoint journal's byte-identical "
                  "resume guarantee; pass --allow-nondeterministic "
                  "(StudyOptions::allow_nondeterministic) or disable "
                  "checkpointing to sweep it anyway");
    }
  }

  StudyReport report;
  // One slot per matrix index: tasks fill their own slot, the merge walks
  // the slots in corpus order — result files come out byte-identical for
  // every jobs value.
  std::vector<std::optional<MatrixStudyRows>> slots(n);
  std::vector<std::optional<StudyTaskFailure>> failure_slots(n);
  std::vector<char> done(n, 0);

  // Checkpoint journal: replay, then rewrite (header + replayed records) so
  // the file also recovers from a corrupt tail left by a killed run.
  std::unique_ptr<JournalWriter> journal;
  if (!options.checkpoint_dir.empty()) {
    namespace fs = std::filesystem;
    fs::create_directories(options.checkpoint_dir);
    const std::string path =
        (fs::path(options.checkpoint_dir) / kJournalFilename).string();
    const JournalKey key = make_journal_key(corpus, options);
    if (options.resume) {
      ORDO_SCOPE("pipeline/journal_replay");
      for (JournalRecord& record : load_journal(path, key)) {
        slots[static_cast<std::size_t>(record.index)] = std::move(record.rows);
        done[static_cast<std::size_t>(record.index)] = 1;
        ++report.resumed;
      }
      if (report.resumed > 0) {
        ORDO_COUNTER_ADD("pipeline.tasks.resumed", report.resumed);
        obs::logf(obs::LogLevel::kProgress,
                  "resuming study: %d of %zu matrices replayed from %s",
                  report.resumed, n, path.c_str());
      }
    }
    journal = std::make_unique<JournalWriter>(path, key);
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) journal->append({static_cast<int>(i), *slots[i]});
    }
  }

  DeadlineWatchdog watchdog;
  const double timeout = options.task_timeout_seconds;

  auto execute = [&](std::size_t i) {
    const CorpusEntry& entry = corpus[i];
    obs::Span task_span("pipeline/task/" + entry.name);
    obs::status::task_started(static_cast<int>(i), entry.name, timeout);
    obs::logf(obs::LogLevel::kProgress, "[%zu/%zu] %s (n=%d, nnz=%lld)", i + 1,
              n, entry.name.c_str(), static_cast<int>(entry.matrix.num_rows()),
              static_cast<long long>(entry.matrix.num_nonzeros()));

    CancelToken token;
    ArmGuard guard{watchdog, token};
    if (timeout > 0.0) {
      watchdog.arm(&token, std::chrono::steady_clock::now() +
                               std::chrono::duration_cast<
                                   std::chrono::steady_clock::duration>(
                                   std::chrono::duration<double>(timeout)));
      guard.armed = true;
    }
    StudyOptions task_options = options;
    task_options.reorder.cancel = token.flag();

    obs::Stopwatch watch;
    auto record_failure = [&](const char* what,
                              const std::string& invariant_kind) {
      StudyTaskFailure failure;
      failure.index = static_cast<int>(i);
      failure.group = entry.group;
      failure.name = entry.name;
      failure.error = what;
      failure.timed_out = token.cancelled();
      failure.seconds = watch.seconds();
      failure.invariant_kind = invariant_kind;
      ORDO_COUNTER_ADD("pipeline.tasks.failed", 1);
      if (failure.timed_out) ORDO_COUNTER_ADD("pipeline.tasks.timeout", 1);
      obs::logf(obs::LogLevel::kProgress, "task %s %s after %.2fs: %s",
                entry.name.c_str(),
                failure.timed_out ? "timed out" : "failed", failure.seconds,
                failure.error.c_str());
      failure_slots[i] = std::move(failure);
    };
    try {
      MatrixStudyRows rows = run_matrix_study(entry, task_options);
      ORDO_HISTOGRAM_RECORD("pipeline.task.seconds", watch.seconds());
      slots[i] = std::move(rows);
      obs::status::set_phase("journal");
      if (journal) journal->append({static_cast<int>(i), *slots[i]});
      ORDO_COUNTER_ADD("pipeline.tasks.completed", 1);
      obs::status::task_finished(/*failed=*/false, /*timed_out=*/false,
                                 watch.seconds());
    } catch (const check::InvariantViolation& e) {
      // A contract breach inside one matrix's study is isolated like any
      // other failure, but tagged with its violation class so the failure
      // file distinguishes "wrong answer detected" from "crashed/slow".
      ORDO_COUNTER_ADD("pipeline.tasks.invariant_violations", 1);
      record_failure(e.what(), violation_kind_name(e.kind()));
      obs::status::task_finished(/*failed=*/true, token.cancelled(),
                                 watch.seconds());
    } catch (const std::exception& e) {
      record_failure(e.what(), std::string());
      obs::status::task_finished(/*failed=*/true, token.cancelled(),
                                 watch.seconds());
    }
  };

  std::vector<std::size_t> todo;
  todo.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!done[i]) todo.push_back(i);
  }
  ORDO_COUNTER_ADD("pipeline.tasks.queued",
                   static_cast<std::int64_t>(todo.size()));

  int jobs = options.jobs;
  if (jobs == 0) {
    jobs = std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  }
  jobs = std::max(1, jobs);

  obs::status::begin_run(static_cast<std::int64_t>(n), jobs, report.resumed);
  if (jobs == 1) {
    // Sequential path: inline on the calling thread, in corpus order.
    for (std::size_t i : todo) execute(i);
  } else {
    TaskPool pool(std::min<int>(jobs, static_cast<int>(
                                          std::max<std::size_t>(1, todo.size()))));
    for (std::size_t i : todo) {
      pool.submit([&execute, i] { execute(i); });
    }
    pool.wait_idle();
  }
  obs::status::end_run();

  {
    ORDO_SCOPE("pipeline/merge");
    for (const Architecture& arch : machines) {
      for (const SpmvKernel& kernel : kernels) {
        report.results[{arch.name, kernel}] = {};
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (!slots[i]) continue;
      for (auto& [key, row] : *slots[i]) {
        report.results[key].push_back(std::move(row));
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (failure_slots[i]) report.failures.push_back(std::move(*failure_slots[i]));
  }
  report.computed = static_cast<int>(todo.size()) -
                    static_cast<int>(report.failures.size());

  if (!options.checkpoint_dir.empty()) {
    namespace fs = std::filesystem;
    const std::string path =
        (fs::path(options.checkpoint_dir) / kFailuresFilename).string();
    if (report.failures.empty()) {
      std::error_code ignored;
      fs::remove(path, ignored);
    } else {
      write_failures_file(path, report.failures);
    }
  }
  return report;
}

}  // namespace ordo::pipeline
