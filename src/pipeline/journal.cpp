#include "pipeline/journal.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/obs.hpp"

namespace ordo::pipeline {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON subset: what the journal emits, and nothing more. Numbers
// keep their raw text so int64 fields round-trip without a detour through
// double. A parse failure anywhere throws invalid_argument_error, which the
// loader treats as the crash point of the interrupted run.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  std::string text;  ///< raw number text, or decoded string value
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue& at(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return v;
    }
    throw invalid_argument_error("journal: missing key " + key);
  }
  std::int64_t as_int() const {
    require(kind == Kind::kNumber, "journal: expected number");
    return std::strtoll(text.c_str(), nullptr, 10);
  }
  double as_double() const {
    require(kind == Kind::kNumber, "journal: expected number");
    return std::strtod(text.c_str(), nullptr);
  }
  const std::string& as_string() const {
    require(kind == Kind::kString, "journal: expected string");
    return text;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    require(pos_ == text_.size(), "journal: trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }
  char peek() {
    require(pos_ < text_.size(), "journal: unexpected end of line");
    return text_[pos_];
  }
  void expect(char c) {
    require(peek() == c, std::string("journal: expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return boolean();
      case 'n': return null_value();
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    for (;;) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key.text), value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    for (;;) {
      require(pos_ < text_.size(), "journal: unterminated string");
      char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        require(pos_ < text_.size(), "journal: bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': v.text += '"'; break;
          case '\\': v.text += '\\'; break;
          case '/': v.text += '/'; break;
          case 'n': v.text += '\n'; break;
          case 't': v.text += '\t'; break;
          case 'r': v.text += '\r'; break;
          default:
            throw invalid_argument_error("journal: unsupported escape");
        }
        continue;
      }
      v.text += c;
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      throw invalid_argument_error("journal: bad literal");
    }
    return v;
  }

  JsonValue null_value() {
    require(text_.compare(pos_, 4, "null") == 0, "journal: bad literal");
    pos_ += 4;
    return {};
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::strchr("+-.eE0123456789", text_[pos_]) != nullptr)) {
      ++pos_;
    }
    require(pos_ > start, "journal: expected number");
    v.text = text_.substr(start, pos_ - start);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // round-trip exact
  out += buf;
}

// ---------------------------------------------------------------------------
// Fingerprint (FNV-1a over the result-affecting inputs).
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t fnv1a_str(std::uint64_t hash, const std::string& s) {
  return fnv1a(hash, s.data(), s.size());
}

template <typename T>
std::uint64_t fnv1a_pod(std::uint64_t hash, T value) {
  return fnv1a(hash, &value, sizeof(value));
}

// ---------------------------------------------------------------------------
// Record serialization.
// ---------------------------------------------------------------------------

std::string encode_record(const JournalRecord& record) {
  std::string line;
  line.reserve(4096);
  line += "{\"index\":";
  line += std::to_string(record.index);
  line += ",\"per_machine\":[";
  bool first = true;
  for (const auto& [key, row] : record.rows) {
    if (!first) line += ',';
    first = false;
    line += "{\"machine\":";
    append_json_string(line, key.first);
    line += ",\"kernel\":";
    append_json_string(line, key.second.id());
    line += ",\"group\":";
    append_json_string(line, row.group);
    line += ",\"name\":";
    append_json_string(line, row.name);
    line += ",\"rows\":" + std::to_string(row.rows);
    line += ",\"cols\":" + std::to_string(row.cols);
    line += ",\"nnz\":" + std::to_string(row.nnz);
    line += ",\"threads\":" + std::to_string(row.threads);
    line += ",\"m\":[";
    for (std::size_t k = 0; k < row.orderings.size(); ++k) {
      const OrderingMeasurement& m = row.orderings[k];
      if (k > 0) line += ',';
      line += '[';
      line += std::to_string(m.min_thread_nnz);
      line += ',';
      line += std::to_string(m.max_thread_nnz);
      line += ',';
      append_double(line, m.mean_thread_nnz);
      line += ',';
      append_double(line, m.imbalance);
      line += ',';
      append_double(line, m.seconds);
      line += ',';
      append_double(line, m.gflops_max);
      line += ',';
      append_double(line, m.gflops_mean);
      line += ',';
      line += std::to_string(m.bandwidth);
      line += ',';
      line += std::to_string(m.profile);
      line += ',';
      line += std::to_string(m.off_diagonal_nnz);
      line += ']';
    }
    line += "]}";
  }
  line += "]}";
  return line;
}

JournalRecord decode_record(const std::string& line) {
  const JsonValue v = JsonParser(line).parse();
  JournalRecord record;
  record.index = static_cast<int>(v.at("index").as_int());
  for (const JsonValue& pm : v.at("per_machine").items) {
    MeasurementRow row;
    const std::string machine = pm.at("machine").as_string();
    // Kernels are journaled by registry id; the header fingerprint hashes
    // the sweep's kernel set, so a record can only carry ids this run
    // resolves too.
    const SpmvKernel kernel{pm.at("kernel").as_string()};
    row.group = pm.at("group").as_string();
    row.name = pm.at("name").as_string();
    row.rows = static_cast<index_t>(pm.at("rows").as_int());
    row.cols = static_cast<index_t>(pm.at("cols").as_int());
    row.nnz = pm.at("nnz").as_int();
    row.threads = static_cast<int>(pm.at("threads").as_int());
    for (const JsonValue& tuple : pm.at("m").items) {
      require(tuple.items.size() == 10, "journal: bad measurement arity");
      OrderingMeasurement m;
      m.min_thread_nnz = tuple.items[0].as_int();
      m.max_thread_nnz = tuple.items[1].as_int();
      m.mean_thread_nnz = tuple.items[2].as_double();
      m.imbalance = tuple.items[3].as_double();
      m.seconds = tuple.items[4].as_double();
      m.gflops_max = tuple.items[5].as_double();
      m.gflops_mean = tuple.items[6].as_double();
      m.bandwidth = tuple.items[7].as_int();
      m.profile = tuple.items[8].as_int();
      m.off_diagonal_nnz = tuple.items[9].as_int();
      row.orderings.push_back(m);
    }
    record.rows.emplace(std::make_pair(machine, kernel), std::move(row));
  }
  return record;
}

std::string encode_header(const JournalKey& key) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"format\":\"ordo_study_journal\",\"version\":1,"
                "\"matrices\":%d,\"fingerprint\":\"%016llx\"}",
                key.matrices,
                static_cast<unsigned long long>(key.fingerprint));
  return buf;
}

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  append_json_string(out, s);
  return out;
}

JournalKey make_journal_key(const std::vector<CorpusEntry>& corpus,
                            const StudyOptions& options) {
  JournalKey key;
  key.matrices = static_cast<int>(corpus.size());
  std::uint64_t h = 14695981039346656037ULL;
  for (const CorpusEntry& entry : corpus) {
    h = fnv1a_str(h, entry.group);
    h = fnv1a_str(h, entry.name);
    h = fnv1a_pod(h, entry.matrix.num_rows());
    h = fnv1a_pod(h, entry.matrix.num_cols());
    h = fnv1a_pod(h, entry.matrix.num_nonzeros());
  }
  h = fnv1a_pod(h, options.model.cache_scale);
  h = fnv1a_pod(h, options.model.sync_overhead_us);
  h = fnv1a_pod(h, options.reorder.gp_parts);
  h = fnv1a_pod(h, options.reorder.gp_nnz_weighted);
  h = fnv1a_pod(h, options.reorder.hp_parts);
  h = fnv1a_pod(h, options.reorder.gray_bits);
  h = fnv1a_pod(h, options.reorder.gray_dense_threshold);
  h = fnv1a_pod(h, options.reorder.nd_leaf_size);
  h = fnv1a_pod(h, options.reorder.sbd_leaf_rows);
  h = fnv1a_pod(h, options.reorder.seed);
  // The resolved kernel set is part of the sweep's identity: a journal
  // written for {csr_1d, csr_2d} must not be replayed into a sweep that
  // also expects merge rows (and vice versa).
  for (const SpmvKernel& kernel : study_kernels(options)) {
    h = fnv1a_str(h, kernel.id());
  }
  key.fingerprint = h;
  return key;
}

std::vector<JournalRecord> load_journal(const std::string& path,
                                        const JournalKey& key) {
  std::ifstream in(path);
  if (!in.good()) return {};

  std::string line;
  if (!std::getline(in, line)) return {};
  if (line != encode_header(key)) {
    obs::logf(obs::LogLevel::kProgress,
              "journal %s does not match this corpus/options; ignoring it",
              path.c_str());
    return {};
  }

  std::vector<JournalRecord> records;
  std::vector<bool> seen(static_cast<std::size_t>(key.matrices), false);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalRecord record;
    try {
      record = decode_record(line);
    } catch (const std::exception& e) {
      // An unparsable line is where the previous run died mid-append.
      obs::logf(obs::LogLevel::kDebug, "journal: stopping at corrupt line: %s",
                e.what());
      break;
    }
    if (record.index < 0 || record.index >= key.matrices ||
        seen[static_cast<std::size_t>(record.index)]) {
      continue;
    }
    seen[static_cast<std::size_t>(record.index)] = true;
    records.push_back(std::move(record));
  }
  return records;
}

JournalWriter::JournalWriter(const std::string& path, const JournalKey& key) {
  out_.open(path, std::ios::trunc);
  require(out_.good(), "journal: cannot open " + path);
  out_ << encode_header(key) << '\n' << std::flush;
}

void JournalWriter::append(const JournalRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << encode_record(record) << '\n' << std::flush;
}

}  // namespace ordo::pipeline
