#include "pipeline/journal.hpp"

#include <cstdio>
#include <utility>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "select/model.hpp"

namespace ordo::pipeline {
namespace {

// The journal speaks the shared ordo JSON subset (obs/json.hpp — hoisted
// from this file's original private parser). A parse failure anywhere
// throws invalid_argument_error, which the loader treats as the crash point
// of the interrupted run.
using obs::JsonValue;
using obs::append_json_string;

void append_double(std::string& out, double v) {
  obs::append_json_double(out, v);  // %.17g — round-trip exact
}

// ---------------------------------------------------------------------------
// Fingerprint (FNV-1a over the result-affecting inputs).
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t fnv1a_str(std::uint64_t hash, const std::string& s) {
  return fnv1a(hash, s.data(), s.size());
}

template <typename T>
std::uint64_t fnv1a_pod(std::uint64_t hash, T value) {
  return fnv1a(hash, &value, sizeof(value));
}

// ---------------------------------------------------------------------------
// Record serialization.
// ---------------------------------------------------------------------------

std::string encode_record(const JournalRecord& record) {
  std::string line;
  line.reserve(4096);
  line += "{\"index\":";
  line += std::to_string(record.index);
  line += ",\"per_machine\":[";
  bool first = true;
  for (const auto& [key, row] : record.rows) {
    if (!first) line += ',';
    first = false;
    line += "{\"machine\":";
    append_json_string(line, key.first);
    line += ",\"kernel\":";
    append_json_string(line, key.second.id());
    line += ",\"group\":";
    append_json_string(line, row.group);
    line += ",\"name\":";
    append_json_string(line, row.name);
    line += ",\"rows\":" + std::to_string(row.rows);
    line += ",\"cols\":" + std::to_string(row.cols);
    line += ",\"nnz\":" + std::to_string(row.nnz);
    line += ",\"threads\":" + std::to_string(row.threads);
    line += ",\"m\":[";
    for (std::size_t k = 0; k < row.orderings.size(); ++k) {
      const OrderingMeasurement& m = row.orderings[k];
      if (k > 0) line += ',';
      line += '[';
      line += std::to_string(m.min_thread_nnz);
      line += ',';
      line += std::to_string(m.max_thread_nnz);
      line += ',';
      append_double(line, m.mean_thread_nnz);
      line += ',';
      append_double(line, m.imbalance);
      line += ',';
      append_double(line, m.seconds);
      line += ',';
      append_double(line, m.gflops_max);
      line += ',';
      append_double(line, m.gflops_mean);
      line += ',';
      line += std::to_string(m.bandwidth);
      line += ',';
      line += std::to_string(m.profile);
      line += ',';
      line += std::to_string(m.off_diagonal_nnz);
      if (m.has_hw) {
        // Host hardware-counter tail (15-tuple); absent counters keep the
        // original 10-tuple so hw-less journals stay byte-identical.
        line += ",1,";
        append_double(line, m.hw_ipc);
        line += ',';
        append_double(line, m.hw_llc_miss_rate);
        line += ',';
        append_double(line, m.hw_gbps);
        line += ',';
        append_double(line, m.hw_seconds);
      }
      line += ']';
    }
    line += ']';
    if (row.has_select) {
      // Selector annotation (--auto-order): a fixed 6-tuple per row. Rows
      // without it keep the original record shape, so journals from default
      // sweeps stay byte-identical; the header fingerprint includes the
      // auto-order mode, budget, and model fingerprint, so the two shapes
      // never mix within one journal.
      line += ",\"sel\":[";
      line += std::to_string(row.pick);
      line += ',';
      line += std::to_string(row.oracle);
      line += ',';
      append_double(line, row.regret);
      line += ',';
      append_double(line, row.pick_net_seconds);
      line += ',';
      append_double(line, row.oracle_net_seconds);
      line += ',';
      append_double(line, row.pick_amortize_calls);
      line += ']';
    }
    line += '}';
  }
  line += "]}";
  return line;
}

JournalRecord decode_record(const std::string& line) {
  const JsonValue v = obs::parse_json(line);
  JournalRecord record;
  record.index = static_cast<int>(v.at("index").as_int());
  for (const JsonValue& pm : v.at("per_machine").items) {
    MeasurementRow row;
    const std::string machine = pm.at("machine").as_string();
    // Kernels are journaled by registry id; the header fingerprint hashes
    // the sweep's kernel set, so a record can only carry ids this run
    // resolves too.
    const SpmvKernel kernel{pm.at("kernel").as_string()};
    row.group = pm.at("group").as_string();
    row.name = pm.at("name").as_string();
    row.rows = static_cast<index_t>(pm.at("rows").as_int());
    row.cols = static_cast<index_t>(pm.at("cols").as_int());
    row.nnz = pm.at("nnz").as_int();
    row.threads = static_cast<int>(pm.at("threads").as_int());
    for (const JsonValue& tuple : pm.at("m").items) {
      require(tuple.items.size() == 10 || tuple.items.size() == 15,
              "journal: bad measurement arity");
      OrderingMeasurement m;
      m.min_thread_nnz = tuple.items[0].as_int();
      m.max_thread_nnz = tuple.items[1].as_int();
      m.mean_thread_nnz = tuple.items[2].as_double();
      m.imbalance = tuple.items[3].as_double();
      m.seconds = tuple.items[4].as_double();
      m.gflops_max = tuple.items[5].as_double();
      m.gflops_mean = tuple.items[6].as_double();
      m.bandwidth = tuple.items[7].as_int();
      m.profile = tuple.items[8].as_int();
      m.off_diagonal_nnz = tuple.items[9].as_int();
      if (tuple.items.size() == 15) {
        m.has_hw = tuple.items[10].as_int() != 0;
        m.hw_ipc = tuple.items[11].as_double();
        m.hw_llc_miss_rate = tuple.items[12].as_double();
        m.hw_gbps = tuple.items[13].as_double();
        m.hw_seconds = tuple.items[14].as_double();
      }
      row.orderings.push_back(m);
    }
    if (const JsonValue* sel = pm.find("sel")) {
      require(sel->items.size() == 6, "journal: bad selection arity");
      row.has_select = true;
      row.pick = static_cast<int>(sel->items[0].as_int());
      row.oracle = static_cast<int>(sel->items[1].as_int());
      row.regret = sel->items[2].as_double();
      row.pick_net_seconds = sel->items[3].as_double();
      row.oracle_net_seconds = sel->items[4].as_double();
      row.pick_amortize_calls = sel->items[5].as_double();
    }
    record.rows.emplace(std::make_pair(machine, kernel), std::move(row));
  }
  return record;
}

std::string encode_header(const JournalKey& key) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "{\"format\":\"ordo_study_journal\",\"version\":1,"
                "\"matrices\":%d,\"fingerprint\":\"%016llx\"}",
                key.matrices,
                static_cast<unsigned long long>(key.fingerprint));
  return buf;
}

}  // namespace

std::string json_quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  append_json_string(out, s);
  return out;
}

std::string shard_journal_filename(int shard_index) {
  require(shard_index >= 0, "journal: negative shard index");
  return "study_journal.shard" + std::to_string(shard_index) + ".jsonl";
}

JournalKey make_journal_key(const std::vector<CorpusEntry>& corpus,
                            const StudyOptions& options) {
  JournalKey key;
  key.matrices = static_cast<int>(corpus.size());
  std::uint64_t h = 14695981039346656037ULL;
  for (const CorpusEntry& entry : corpus) {
    h = fnv1a_str(h, entry.group);
    h = fnv1a_str(h, entry.name);
    h = fnv1a_pod(h, entry.matrix.num_rows());
    h = fnv1a_pod(h, entry.matrix.num_cols());
    h = fnv1a_pod(h, entry.matrix.num_nonzeros());
  }
  h = fnv1a_pod(h, options.model.cache_scale);
  h = fnv1a_pod(h, options.model.sync_overhead_us);
  h = fnv1a_pod(h, options.reorder.gp_parts);
  h = fnv1a_pod(h, options.reorder.gp_nnz_weighted);
  h = fnv1a_pod(h, options.reorder.hp_parts);
  h = fnv1a_pod(h, options.reorder.gray_bits);
  h = fnv1a_pod(h, options.reorder.gray_dense_threshold);
  h = fnv1a_pod(h, options.reorder.nd_leaf_size);
  h = fnv1a_pod(h, options.reorder.sbd_leaf_rows);
  h = fnv1a_pod(h, options.reorder.seed);
  // The resolved kernel set is part of the sweep's identity: a journal
  // written for {csr_1d, csr_2d} must not be replayed into a sweep that
  // also expects merge rows (and vice versa).
  for (const SpmvKernel& kernel : study_kernels(options)) {
    h = fnv1a_str(h, kernel.id());
  }
  // The hw configuration is identity too: a journal written without the
  // host-measured columns must not be replayed into a run that expects
  // them, and the counter backend decides what those columns mean.
  h = fnv1a_pod(h, options.hw_counters);
  if (options.hw_counters) {
    h = fnv1a_str(h, obs::hw::config_fingerprint());
  }
  // So is the auto-order mode: its rows carry selection tuples computed by
  // a specific committed model under a specific SpMV budget, and a journal
  // written under either another model or another budget (or no selector at
  // all) must not be replayed into this run.
  h = fnv1a_pod(h, options.auto_order);
  if (options.auto_order) {
    h = fnv1a_pod(h, options.spmv_budget);
    h = fnv1a_pod(h, select::model_fingerprint());
  }
  key.fingerprint = h;
  return key;
}

std::vector<JournalRecord> load_journal(const std::string& path,
                                        const JournalKey& key) {
  std::ifstream in(path);
  if (!in.good()) return {};

  std::string line;
  if (!std::getline(in, line)) return {};
  if (line != encode_header(key)) {
    obs::logf(obs::LogLevel::kProgress,
              "journal %s does not match this corpus/options; ignoring it",
              path.c_str());
    return {};
  }

  std::vector<JournalRecord> records;
  std::vector<bool> seen(static_cast<std::size_t>(key.matrices), false);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    JournalRecord record;
    try {
      record = decode_record(line);
    } catch (const std::exception& e) {
      // An unparsable line is where the previous run died mid-append.
      obs::logf(obs::LogLevel::kDebug, "journal: stopping at corrupt line: %s",
                e.what());
      break;
    }
    if (record.index < 0 || record.index >= key.matrices ||
        seen[static_cast<std::size_t>(record.index)]) {
      continue;
    }
    seen[static_cast<std::size_t>(record.index)] = true;
    records.push_back(std::move(record));
  }
  return records;
}

JournalWriter::JournalWriter(const std::string& path, const JournalKey& key) {
  out_.open(path, std::ios::trunc);
  require(out_.good(), "journal: cannot open " + path);
  out_ << encode_header(key) << '\n' << std::flush;
}

void JournalWriter::append(const JournalRecord& record) {
  MutexLock lock(mutex_);
  out_ << encode_record(record) << '\n' << std::flush;
}

}  // namespace ordo::pipeline
