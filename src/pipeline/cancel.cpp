#include "pipeline/cancel.hpp"

namespace ordo::pipeline {

// The scan period bounds how late a deadline fires, not how accurate the
// cancellation is: the task still runs until its next poll site. A few
// milliseconds keeps even test-sized deadlines (sub-millisecond) effective
// while costing one wakeup per period for the whole pipeline run.
constexpr std::chrono::milliseconds kScanPeriod{2};

DeadlineWatchdog::~DeadlineWatchdog() {
  // Move the thread out under the lock (it is guarded state — arm() may
  // still be assigning it), then join without holding the mutex so the
  // loop's final lock acquisition cannot deadlock against us.
  std::thread scanner;
  {
    MutexLock lock(mutex_);
    stop_ = true;
    scanner = std::move(thread_);
  }
  cv_.notify_all();
  if (scanner.joinable()) scanner.join();
}

void DeadlineWatchdog::arm(CancelToken* token,
                           std::chrono::steady_clock::time_point deadline) {
  MutexLock lock(mutex_);
  armed_[token] = deadline;
  if (!thread_.joinable()) {
    thread_ = std::thread([this] { loop(); });
  }
}

void DeadlineWatchdog::disarm(CancelToken* token) {
  MutexLock lock(mutex_);
  armed_.erase(token);
}

void DeadlineWatchdog::loop() {
  MutexLock lock(mutex_);
  while (!stop_) {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = armed_.begin(); it != armed_.end();) {
      if (it->second <= now) {
        it->first->cancel();
        it = armed_.erase(it);
      } else {
        ++it;
      }
    }
    cv_.wait_for(lock.native(), kScanPeriod);
  }
}

}  // namespace ordo::pipeline
