#include "pipeline/cancel.hpp"

namespace ordo::pipeline {

// The scan period bounds how late a deadline fires, not how accurate the
// cancellation is: the task still runs until its next poll site. A few
// milliseconds keeps even test-sized deadlines (sub-millisecond) effective
// while costing one wakeup per period for the whole pipeline run.
constexpr std::chrono::milliseconds kScanPeriod{2};

DeadlineWatchdog::~DeadlineWatchdog() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void DeadlineWatchdog::arm(CancelToken* token,
                           std::chrono::steady_clock::time_point deadline) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_[token] = deadline;
  if (!thread_.joinable()) {
    thread_ = std::thread([this] { loop(); });
  }
}

void DeadlineWatchdog::disarm(CancelToken* token) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.erase(token);
}

void DeadlineWatchdog::loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    const auto now = std::chrono::steady_clock::now();
    for (auto it = armed_.begin(); it != armed_.end();) {
      if (it->second <= now) {
        it->first->cancel();
        it = armed_.erase(it);
      } else {
        ++it;
      }
    }
    cv_.wait_for(lock, kScanPeriod);
  }
}

}  // namespace ordo::pipeline
