// The study scheduler: runs the per-matrix study tasks (orderings →
// features → per-(machine, kernel) model evaluation) of a corpus sweep on a
// work-stealing thread pool, with
//   (a) per-task error isolation — a matrix whose reordering throws becomes
//       a structured StudyTaskFailure row, never an aborted sweep;
//   (b) soft per-task deadlines with cooperative cancellation (the deadline
//       watchdog flags the task's cancel token; the task unwinds at its next
//       ordering / bisection / separator-level poll site);
//   (c) an on-disk checkpoint journal — one JSON line per completed matrix
//       under options.checkpoint_dir — so an interrupted sweep resumes
//       exactly where it stopped;
//   (d) deterministic output — results are buffered per matrix index and
//       merged in corpus order, so any --jobs value produces byte-identical
//       result files.
//
// Observability: `pipeline.tasks.{queued,completed,failed,timeout,resumed}`
// counters, the `pipeline.task.seconds` histogram, the
// `pipeline.pool.{occupancy,steals}` instruments, and `pipeline/task/<name>`
// spans (see src/obs).
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace ordo::pipeline {

/// One isolated per-matrix failure. Failures are not checkpointed: a resumed
/// run retries them (a timeout may have been transient load; a poisoned
/// matrix fails again and is re-recorded).
struct StudyTaskFailure {
  int index = -1;          ///< position in the corpus
  std::string group;
  std::string name;
  std::string error;       ///< exception message
  bool timed_out = false;  ///< failed via the soft deadline
  double seconds = 0.0;    ///< task wall time until the failure
  /// Violation class (check::violation_kind_name) when the task failed an
  /// ordo::check invariant contract; empty for ordinary failures.
  std::string invariant_kind;
};

struct StudyReport {
  StudyResults results;
  std::vector<StudyTaskFailure> failures;
  int resumed = 0;   ///< matrices replayed from the checkpoint journal
  int computed = 0;  ///< matrices computed by this run
};

/// Runs the sweep. Scheduling knobs (jobs, task_timeout_seconds,
/// checkpoint_dir, resume) come from `options`; jobs == 1 executes tasks
/// inline on the calling thread in corpus order (the sequential path), any
/// other value uses the work-stealing pool. Also writes
/// `<checkpoint_dir>/study_failures.jsonl` (one structured row per failure;
/// removed again when a run has none) when checkpointing is enabled.
StudyReport run_study_pipeline(const std::vector<CorpusEntry>& corpus,
                               const StudyOptions& options);

/// Failure-row file name inside a checkpoint directory.
inline constexpr const char* kFailuresFilename = "study_failures.jsonl";

/// Failure-row file name of shard worker `shard_index`
/// ("study_failures.shard<k>.jsonl").
std::string shard_failures_filename(int shard_index);

/// Reads a failure-row file back (the shard merge path). Returns empty when
/// the file is missing; skips unparsable lines (a torn tail from a killed
/// worker loses at most the row being written).
std::vector<StudyTaskFailure> load_failures_file(const std::string& path);

/// Writes one structured JSON line per failure (truncating `path`) — the
/// format load_failures_file reads back. Shared by the pipeline and the
/// shard orchestrator's merge.
void write_failures_file(const std::string& path,
                         const std::vector<StudyTaskFailure>& failures);

}  // namespace ordo::pipeline
