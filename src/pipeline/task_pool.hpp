// Work-stealing thread pool for the study pipeline.
//
// Each worker owns a deque: it pops its own work from the back (LIFO, warm
// caches) and steals from the front of a victim's deque (FIFO, oldest —
// i.e. typically largest remaining — work first). Submissions from outside
// the pool are dealt round-robin across the deques, so a sweep whose
// matrices vary wildly in cost (the corpus spans three orders of magnitude
// in nnz) self-balances: a worker that drains its share early steals the
// stragglers' queued work instead of idling.
//
// Tasks must not throw — the pipeline wraps every study task in its own
// error isolation; a task that does throw anyway terminates the process
// (matching the repo-wide fail-fast idiom for internal invariants).
//
// Observability: `pipeline.pool.occupancy` (gauge, running tasks),
// `pipeline.pool.steals` (counter) — see src/obs.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/thread_safety.hpp"

namespace ordo::pipeline {

class TaskPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit TaskPool(int threads);
  /// Waits for all submitted tasks, then joins the workers.
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues a task; never blocks.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  struct Worker {
    Mutex mutex;
    std::deque<std::function<void()>> queue ORDO_GUARDED_BY(mutex);
  };

  bool try_pop_own(std::size_t self, std::function<void()>& task);
  bool try_steal(std::size_t self, std::function<void()>& task);
  void worker_loop(std::size_t self);

  // ordo-analyze: allow(guard-coverage) sized in the constructor before any
  // worker starts, never resized; Worker contents carry their own guards.
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // wake_mutex_ guards the counters below and the two condition variables;
  // per-worker queue mutexes are never held while taking it.
  Mutex wake_mutex_;
  std::condition_variable wake_cv_;  ///< workers sleep here when starved
  std::condition_variable idle_cv_;  ///< wait_idle() sleeps here
  std::size_t unclaimed_ ORDO_GUARDED_BY(wake_mutex_) = 0;
  std::size_t in_flight_ ORDO_GUARDED_BY(wake_mutex_) = 0;
  std::size_t next_ ORDO_GUARDED_BY(wake_mutex_) = 0;
  bool stop_ ORDO_GUARDED_BY(wake_mutex_) = false;
};

}  // namespace ordo::pipeline
