// Multi-process sharded execution of the study sweep (run_study --shards).
//
// Process diagram (N = options.shards):
//
//   parent (orchestrator)
//     ├── suspend status consumers, fork N workers, resume consumers
//     ├── register the "fleet" /stats section (obs/agg/fleet.hpp polls the
//     │   worker heartbeats: progress, liveness, stragglers, merged
//     │   latency histograms) and the workers' trace files as merge inputs
//     ├── waitpid × N  (a crashed worker faults only its own slice)
//     ├── fold the workers' final latency snapshots into its own registry
//     └── merge: replay every shard journal + failure file in corpus
//         order, synthesize StudyTaskFailure rows for a crashed worker's
//         unfinished slice, write the merged study_journal.jsonl and
//         study_failures.jsonl; finalize() stitches the shard traces into
//         one multi-process timeline (obs/agg/trace_merge.hpp)
//   worker k (forked child, _exits, never returns)
//     ├── heartbeat → <checkpoint_dir>/ordo_status.shard<k>.json
//     ├── ORDO_TRACE / ORDO_METRICS re-pointed to <path>.shard<k>
//     └── run_study_pipeline over the slice { i : i mod N == k },
//         journal → study_journal.shard<k>.jsonl
//
// Protocol invariants (docs/DESIGN.md §14):
//   * The slice function is index-deterministic (i mod N), so the same
//     (corpus, N) always produces the same ownership and the merge needs no
//     coordination beyond the journals.
//   * Shard journals share the merged journal's fingerprint key — the key
//     excludes shards/jobs — so any worker topology can resume any
//     predecessor's checkpoints (shard files first, merged file second).
//   * All study measurements come from the deterministic analytical model
//     (host hw counters are opt-in and refused with sharding), so the
//     merged results are byte-identical to a --shards 1 run for every N,
//     including a resume after a worker was SIGKILLed mid-run.
//   * Workers leave via _exit after one explicit obs::finalize(): their
//     trace/metrics dumps go to the .shard<k>-suffixed paths set at fork,
//     never the parent's files, and no inherited consumer thread exists
//     (the parent suspends its listener/heartbeat around the fork window).
#pragma once

#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "pipeline/study_pipeline.hpp"

namespace ordo::pipeline {

/// Heartbeat file of shard worker `shard_index`: `$ORDO_STATUS_FILE.shard<k>`
/// when ORDO_STATUS_FILE is set (so an operator watching one file finds the
/// per-shard files next to it), else
/// `<checkpoint_dir>/ordo_status.shard<k>.json`. The parent's "fleet"
/// status section reads the same paths back.
std::string shard_heartbeat_path(const std::string& checkpoint_dir,
                                 int shard_index);

/// Runs the sweep across options.shards worker processes and merges their
/// journals into one StudyReport (plus the merged study_journal.jsonl /
/// study_failures.jsonl under options.checkpoint_dir). Falls through to
/// run_study_pipeline when shards <= 1. Throws invalid_argument_error when
/// shards > 1 without a checkpoint_dir, inside a shard worker, or with
/// options.hw_counters set (host counters measure only the calling
/// process, which would silently drop N-1 shards' worth of samples).
StudyReport run_sharded_study(const std::vector<CorpusEntry>& corpus,
                              const StudyOptions& options);

}  // namespace ordo::pipeline
