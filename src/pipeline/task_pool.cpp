#include "pipeline/task_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "obs/obs.hpp"

namespace ordo::pipeline {

#if defined(ORDO_OBS_ENABLED)
namespace {
// Running-task count across all pools, mirrored into the occupancy gauge
// (the metrics registry is process-wide, so the count is too).
std::atomic<int> g_running{0};
}  // namespace
#endif

TaskPool::TaskPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

TaskPool::~TaskPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    target = next_++ % workers_.size();
    ++unclaimed_;
    ++in_flight_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void TaskPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

bool TaskPool::try_pop_own(std::size_t self, std::function<void()>& task) {
  Worker& w = *workers_[self];
  std::lock_guard<std::mutex> lock(w.mutex);
  if (w.queue.empty()) return false;
  task = std::move(w.queue.back());
  w.queue.pop_back();
  return true;
}

bool TaskPool::try_steal(std::size_t self, std::function<void()>& task) {
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(self + k) % n];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.queue.empty()) continue;
    task = std::move(victim.queue.front());
    victim.queue.pop_front();
    ORDO_COUNTER_ADD("pipeline.pool.steals", 1);
    return true;
  }
  return false;
}

void TaskPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop_own(self, task) || try_steal(self, task)) {
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --unclaimed_;
      }
#if defined(ORDO_OBS_ENABLED)
      obs::gauge("pipeline.pool.occupancy")
          .set(g_running.fetch_add(1, std::memory_order_relaxed) + 1);
#endif
      task();
#if defined(ORDO_OBS_ENABLED)
      obs::gauge("pipeline.pool.occupancy")
          .set(g_running.fetch_sub(1, std::memory_order_relaxed) - 1);
#endif
      bool idle;
      {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        idle = (--in_flight_ == 0);
      }
      if (idle) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    if (stop_) return;
    if (unclaimed_ > 0) continue;  // raced with a submit; rescan the queues
    wake_cv_.wait(lock, [this] { return stop_ || unclaimed_ > 0; });
  }
}

}  // namespace ordo::pipeline
