#include "pipeline/task_pool.hpp"

#include <algorithm>
#include <atomic>
#include <utility>

#include "obs/obs.hpp"

namespace ordo::pipeline {

#if defined(ORDO_OBS_ENABLED)
namespace {
// Running-task count across all pools, mirrored into the occupancy gauge
// (the metrics registry is process-wide, so the count is too).
std::atomic<int> g_running{0};
}  // namespace
#endif

TaskPool::TaskPool(int threads) {
  const int n = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back(
        [this, i] { worker_loop(static_cast<std::size_t>(i)); });
  }
}

TaskPool::~TaskPool() {
  wait_idle();
  {
    MutexLock lock(wake_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::submit(std::function<void()> task) {
  std::size_t target;
  {
    MutexLock lock(wake_mutex_);
    target = next_++ % workers_.size();
    ++unclaimed_;
    ++in_flight_;
  }
  {
    MutexLock lock(workers_[target]->mutex);
    workers_[target]->queue.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void TaskPool::wait_idle() {
  MutexLock lock(wake_mutex_);
  // Explicit wait loop — see worker_loop for why not the predicate form.
  while (in_flight_ != 0) idle_cv_.wait(lock.native());
}

bool TaskPool::try_pop_own(std::size_t self, std::function<void()>& task) {
  Worker& w = *workers_[self];
  MutexLock lock(w.mutex);
  if (w.queue.empty()) return false;
  task = std::move(w.queue.back());
  w.queue.pop_back();
  return true;
}

bool TaskPool::try_steal(std::size_t self, std::function<void()>& task) {
  const std::size_t n = workers_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(self + k) % n];
    MutexLock lock(victim.mutex);
    if (victim.queue.empty()) continue;
    task = std::move(victim.queue.front());
    victim.queue.pop_front();
    ORDO_COUNTER_ADD("pipeline.pool.steals", 1);
    return true;
  }
  return false;
}

void TaskPool::worker_loop(std::size_t self) {
  for (;;) {
    std::function<void()> task;
    if (try_pop_own(self, task) || try_steal(self, task)) {
      {
        MutexLock lock(wake_mutex_);
        --unclaimed_;
      }
#if defined(ORDO_OBS_ENABLED)
      // Relaxed: the occupancy gauge is telemetry; momentarily stale
      // +-1 readings are fine (both fetch_add and fetch_sub below).
      obs::gauge("pipeline.pool.occupancy")
          .set(g_running.fetch_add(1, std::memory_order_relaxed) + 1);
#endif
      task();
#if defined(ORDO_OBS_ENABLED)
      obs::gauge("pipeline.pool.occupancy")
          .set(g_running.fetch_sub(1, std::memory_order_relaxed) - 1);
#endif
      bool idle;
      {
        MutexLock lock(wake_mutex_);
        idle = (--in_flight_ == 0);
      }
      if (idle) idle_cv_.notify_all();
      continue;
    }
    MutexLock lock(wake_mutex_);
    if (stop_) return;
    if (unclaimed_ > 0) continue;  // raced with a submit; rescan the queues
    // Explicit wait loop (not the predicate overload): the guarded reads
    // stay lexically under the lock, where -Wthread-safety can see them.
    while (!stop_ && unclaimed_ == 0) wake_cv_.wait(lock.native());
  }
}

}  // namespace ordo::pipeline
