// Cooperative cancellation for pipeline tasks.
//
// A CancelToken owns the `std::atomic<bool>` flag that the compute layers
// poll (ReorderOptions::cancel / PartitionOptions::cancel — see
// poll_cancelled in sparse/types.hpp). The token itself never watches the
// clock: soft deadlines are enforced by a DeadlineWatchdog thread that scans
// the armed tokens every few milliseconds and sets the flag of any task past
// its deadline. The cancelled task unwinds with operation_cancelled_error at
// its next poll site (an ordering/model phase boundary, a bisection, or an
// ND separator level), which the scheduler records as a timed-out failure.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <thread>

#include "core/thread_safety.hpp"

namespace ordo::pipeline {

/// Per-task cancellation flag. The raw flag pointer is what gets threaded
/// into ReorderOptions/PartitionOptions; the token stays owned by the
/// scheduler frame running the task.
class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }
  const std::atomic<bool>* flag() const { return &flag_; }

 private:
  std::atomic<bool> flag_{false};
};

/// Flags armed tokens once their deadline passes. One watchdog serves all
/// workers of a pipeline run; its thread starts lazily on the first arm()
/// and joins in the destructor. Tokens must be disarmed before destruction.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog() = default;
  ~DeadlineWatchdog();
  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

  void arm(CancelToken* token, std::chrono::steady_clock::time_point deadline);
  void disarm(CancelToken* token);

 private:
  void loop();

  Mutex mutex_;
  std::condition_variable cv_;
  std::map<CancelToken*, std::chrono::steady_clock::time_point> armed_
      ORDO_GUARDED_BY(mutex_);
  // Guarded: arm() lazily starts the thread, so creation races with other
  // arm() calls; the destructor moves it out under the lock before joining.
  std::thread thread_ ORDO_GUARDED_BY(mutex_);
  bool stop_ ORDO_GUARDED_BY(mutex_) = false;
};

}  // namespace ordo::pipeline
