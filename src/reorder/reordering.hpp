// Common interface for matrix reordering algorithms (Table 1 of the paper).
//
// Every symmetric ordering (RCM, AMD, ND, GP, HP) produces one permutation
// applied to both rows and columns; the Gray ordering permutes rows only.
// All orderings that assume structural symmetry operate on the pattern of
// A + Aᵀ, as in Section 3.3.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/csr_ops.hpp"
#include "sparse/permutation.hpp"

namespace ordo {

/// The reordering algorithms of the study, plus extra baselines used for
/// ablation benches.
enum class OrderingKind {
  kOriginal,    ///< identity (the matrix as given)
  kRcm,         ///< Reverse Cuthill–McKee
  kAmd,         ///< approximate minimum degree
  kNd,          ///< nested dissection
  kGp,          ///< graph-partitioning-based (METIS-style, edge-cut)
  kHp,          ///< hypergraph-partitioning-based (PaToH-style, cut-net)
  kGray,        ///< Gray-code row ordering (Zhao et al.)
  kSbd,         ///< separated block diagonal (Yzelman & Bisseling), extension
  kKing,        ///< King's wavefront-minimising ordering, extension
  kSimilarity,  ///< greedy TSP-style row-similarity tour, extension
  kRandom,      ///< uniformly random symmetric permutation (ablation)
  kDegreeSort,  ///< rows sorted by ascending degree (ablation)
};

/// Knobs shared by the ordering implementations.
struct ReorderOptions {
  /// Parts used by GP; the paper matches the core count of the machine
  /// (16/32/48/64/72/128).
  index_t gp_parts = 128;
  /// When true, GP weights each vertex by its row's nonzero count so the
  /// partitioner balances nonzeros instead of rows. The paper uses the
  /// unweighted (row-balancing) variant; this knob enables the alternative
  /// Section 3.3 mentions, for ablation.
  bool gp_nnz_weighted = false;
  /// Parts used by HP; the paper fixes 128-way partitioning for PaToH.
  index_t hp_parts = 128;
  /// Gray ordering: number of bitmap sections (16 bits in the paper).
  int gray_bits = 16;
  /// Gray ordering: rows with more nonzeros than this are "dense".
  index_t gray_dense_threshold = 20;
  /// Nested dissection switches to AMD below this subgraph size.
  index_t nd_leaf_size = 64;
  /// SBD recursion stops below this many rows.
  index_t sbd_leaf_rows = 64;
  /// Seed for partitioner tie-breaking and the random baseline.
  std::uint64_t seed = 1;
  /// Optional cooperative cancellation flag (see poll_cancelled in
  /// sparse/types.hpp). The expensive recursive orderings (ND, GP, HP)
  /// forward it to the partitioners and poll it once per separator level /
  /// bisection, so a pipeline soft deadline can stop a pathological case
  /// mid-ordering. Null means not cancellable.
  const std::atomic<bool>* cancel = nullptr;
};

/// A computed ordering: row permutation, column permutation and whether the
/// two coincide (perm[new] == old convention, see permutation.hpp).
struct Ordering {
  Permutation row_perm;
  Permutation col_perm;
  bool symmetric = true;
};

/// Computes the ordering of the given kind for a square matrix.
Ordering compute_ordering(const CsrMatrix& a, OrderingKind kind,
                          const ReorderOptions& options = {});

/// Applies an ordering to a matrix (symmetric or row-only as appropriate).
CsrMatrix apply_ordering(const CsrMatrix& a, const Ordering& ordering);

/// Short display name matching the paper's tables ("RCM", "GP", ...).
std::string ordering_name(OrderingKind kind);

/// Parses a short name back to the kind; throws on unknown names.
OrderingKind parse_ordering_name(const std::string& name);

/// The seven orderings of the study in the paper's canonical column order:
/// Original, RCM, AMD, ND, GP, HP, Gray.
std::vector<OrderingKind> study_orderings();

/// The six non-identity reorderings of Table 1.
std::vector<OrderingKind> table1_orderings();

// ---------------------------------------------------------------------------
// Individual algorithms (all return old-of-new permutations).
// ---------------------------------------------------------------------------

/// Reverse Cuthill–McKee on the pattern of A + Aᵀ, per connected component,
/// starting each component from a George–Liu pseudo-peripheral vertex.
Permutation rcm_ordering(const CsrMatrix& a);

/// Cuthill–McKee without the final reversal (exposed for tests/ablation).
Permutation cuthill_mckee_ordering(const CsrMatrix& a);

/// Band-limited windowed RCM — the out-of-core variant: RCM is computed
/// independently on each contiguous block of `window_rows` rows (edges
/// leaving the block are clipped), so the pass touches O(window) rows of
/// the source matrix at a time and the union of the block-local
/// permutations is a valid global permutation. Degenerates to exact RCM
/// semantics per block; quality approaches global RCM as window_rows grows
/// past the matrix bandwidth. Polls `cancel` once per window.
Permutation windowed_rcm_ordering(const CsrMatrix& a, index_t window_rows,
                                  const std::atomic<bool>* cancel = nullptr);

/// Applies an ordering by streaming rows through the paged spill writer
/// into `<spill_dir>/<name>.ordocsr` (mmap backend) — O(rows) heap on both
/// sides, so an out-of-core matrix can be reordered without ever holding
/// either copy in RAM. The general-permutation core of the windowed-RCM
/// out-of-core path.
CsrMatrix apply_ordering_out_of_core(const CsrMatrix& a,
                                     const Ordering& ordering,
                                     const std::string& spill_dir,
                                     const std::string& name);

/// Approximate minimum degree (Amestoy–Davis–Duff) on A + Aᵀ.
Permutation amd_ordering(const CsrMatrix& a);

/// Nested dissection: recursive vertex separators from the multilevel graph
/// partitioner; leaves ordered by AMD.
Permutation nd_ordering(const CsrMatrix& a, const ReorderOptions& options = {});

/// Graph-partitioning ordering: k-way edge-cut partition of A + Aᵀ with rows
/// grouped by part id (original order kept within a part).
Permutation gp_ordering(const CsrMatrix& a, const ReorderOptions& options = {});

/// Hypergraph-partitioning ordering: column-net model, cut-net objective,
/// rows grouped by part id.
Permutation hp_ordering(const CsrMatrix& a, const ReorderOptions& options = {});

/// Gray-code row ordering (Zhao et al.): dense/sparse split at
/// `gray_dense_threshold` nonzeros per row, density ordering for the dense
/// block, section-bitmap Gray-code ordering for the sparse block.
Permutation gray_row_ordering(const CsrMatrix& a,
                              const ReorderOptions& options = {});

/// Separated block diagonal ordering (Yzelman & Bisseling 2009), an
/// extension beyond the paper's six: rows are recursively bisected with the
/// column-net hypergraph partitioner and the cut columns of each bisection
/// are moved between the two column blocks, yielding independent row and
/// column permutations and a cache-oblivious doubly-separated form.
std::pair<Permutation, Permutation> sbd_ordering(
    const CsrMatrix& a, const ReorderOptions& options = {});

/// King's ordering (1970): CM-style numbering that greedily minimises
/// wavefront growth; extension from the bandwidth/profile family.
Permutation king_ordering(const CsrMatrix& a);

/// Greedy nearest-neighbour tour over rows in column-overlap space — the
/// simplest TSP-based locality ordering of the Pinar & Heath family the
/// paper's related work surveys. Symmetric permutation.
Permutation similarity_ordering(const CsrMatrix& a, std::uint64_t seed = 1);

}  // namespace ordo
