// Graph-partitioning-based ordering (the study's GP).
//
// The matrix graph (A + Aᵀ) is partitioned into k parts with the multilevel
// edge-cut partitioner using an unweighted graph — which balances the number
// of rows per part, exactly the configuration Section 3.3 uses with METIS —
// and rows/columns are then grouped by part id, preserving the original
// relative order within each part.
#include <numeric>

#include "graph/graph.hpp"
#include "partition/graph_partitioner.hpp"
#include "reorder/reordering.hpp"

namespace ordo {

Permutation gp_ordering(const CsrMatrix& a, const ReorderOptions& options) {
  require(a.is_square(), "gp_ordering: matrix must be square");
  Graph g = Graph::from_matrix(a);
  if (options.gp_nnz_weighted) {
    // Weight vertices by row nonzero count: the partitioner then balances
    // nonzeros per part instead of rows (the alternative of Section 3.3).
    std::vector<index_t> vweights(static_cast<std::size_t>(g.num_vertices()));
    for (index_t v = 0; v < g.num_vertices(); ++v) {
      vweights[static_cast<std::size_t>(v)] =
          std::max<index_t>(1, static_cast<index_t>(a.row_nonzeros(v)));
    }
    std::vector<offset_t> adj_ptr(g.adj_ptr().begin(), g.adj_ptr().end());
    std::vector<index_t> adj(g.adj().begin(), g.adj().end());
    g = Graph(g.num_vertices(), std::move(adj_ptr), std::move(adj),
              std::move(vweights), {});
  }

  PartitionOptions popt;
  popt.num_parts = std::min<index_t>(options.gp_parts,
                                     std::max<index_t>(1, g.num_vertices()));
  popt.seed = options.seed;
  popt.cancel = options.cancel;
  const PartitionResult partition = partition_graph(g, popt);

  // Stable counting sort of vertices by part id.
  std::vector<offset_t> part_begin(
      static_cast<std::size_t>(partition.num_parts) + 1, 0);
  for (index_t p : partition.part) {
    part_begin[static_cast<std::size_t>(p) + 1]++;
  }
  std::partial_sum(part_begin.begin(), part_begin.end(), part_begin.begin());
  Permutation perm(static_cast<std::size_t>(g.num_vertices()));
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    perm[static_cast<std::size_t>(
        part_begin[static_cast<std::size_t>(
            partition.part[static_cast<std::size_t>(v)])]++)] = v;
  }
  return perm;
}

}  // namespace ordo
