// Band-limited windowed RCM — the reordering pass of the out-of-core path.
//
// Classic RCM needs the whole adjacency structure resident (a global BFS
// revisits rows in data-dependent order). The windowed variant processes
// the matrix in contiguous row blocks of `window_rows`: each window gets a
// window-local RCM (degree-ordered BFS from a pseudo-peripheral vertex per
// component, reversed within the window) over the subgraph induced by its
// own rows, with edges leaving the window clipped. Every window permutes
// only its own row range, so
//   * the union of the window permutations is a valid global permutation,
//   * the pass touches O(window) rows of the source matrix at a time (one
//     forward sweep — mmap-backed matrices page each region in once), and
//   * the streamed apply below emits the reordered matrix through the
//     PagedCsrWriter with O(rows) heap, never materialising either side.
// For matrices whose structure is already band-limited (the streamed
// banded family), edges rarely cross window boundaries, so the quality
// loss against global RCM shrinks as window_rows / bandwidth grows.
#include <algorithm>
#include <filesystem>
#include <vector>

#include "graph/graph.hpp"
#include "reorder/reordering.hpp"
#include "sparse/storage.hpp"

namespace ordo {

Permutation windowed_rcm_ordering(const CsrMatrix& a, index_t window_rows,
                                  const std::atomic<bool>* cancel) {
  require(a.is_square(), "windowed_rcm_ordering: matrix must be square");
  require(window_rows > 0, "windowed_rcm_ordering: window must be positive");
  const index_t n = a.num_rows();

  Permutation order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<offset_t> local_ptr;
  std::vector<index_t> local_adj;
  std::vector<std::vector<index_t>> local_lists;
  for (index_t w0 = 0; w0 < n; w0 += window_rows) {
    poll_cancelled(cancel, "windowed_rcm_ordering");
    const index_t w1 = std::min<index_t>(n, w0 + window_rows);
    const index_t wn = w1 - w0;

    // Window-local symmetrised adjacency: both directions of every in-window
    // edge, deduplicated, self-loops dropped. Only rows [w0, w1) are read.
    local_lists.assign(static_cast<std::size_t>(wn), {});
    for (index_t i = w0; i < w1; ++i) {
      for (const index_t j : a.row_cols(i)) {
        if (j < w0 || j >= w1 || j == i) continue;
        local_lists[static_cast<std::size_t>(i - w0)].push_back(j - w0);
        local_lists[static_cast<std::size_t>(j - w0)].push_back(i - w0);
      }
    }
    local_ptr.assign(1, 0);
    local_adj.clear();
    for (index_t v = 0; v < wn; ++v) {
      auto& list = local_lists[static_cast<std::size_t>(v)];
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
      local_adj.insert(local_adj.end(), list.begin(), list.end());
      local_ptr.push_back(static_cast<offset_t>(local_adj.size()));
    }
    const Graph g(wn, local_ptr, local_adj);

    // Window-local CM, then the RCM reversal within the window: component
    // starts follow the same ascending-lowest-vertex discipline as the
    // global algorithm, so the pass is deterministic.
    std::vector<index_t> window_order;
    window_order.reserve(static_cast<std::size_t>(wn));
    std::vector<bool> visited(static_cast<std::size_t>(wn), false);
    for (index_t s = 0; s < wn; ++s) {
      if (visited[static_cast<std::size_t>(s)]) continue;
      const index_t start = pseudo_peripheral_vertex(g, s);
      const BfsResult bfs = bfs_degree_ordered(g, start);
      for (index_t v : bfs.order) {
        visited[static_cast<std::size_t>(v)] = true;
        window_order.push_back(v);
      }
    }
    std::reverse(window_order.begin(), window_order.end());
    for (const index_t v : window_order) order.push_back(w0 + v);
  }
  return order;
}

CsrMatrix apply_ordering_out_of_core(const CsrMatrix& a,
                                     const Ordering& ordering,
                                     const std::string& spill_dir,
                                     const std::string& name) {
  require(!spill_dir.empty(),
          "apply_ordering_out_of_core: spill directory must be set");
  require_valid_permutation(ordering.row_perm, "apply_ordering_out_of_core");
  require_valid_permutation(ordering.col_perm, "apply_ordering_out_of_core");
  require(static_cast<index_t>(ordering.row_perm.size()) == a.num_rows() &&
              static_cast<index_t>(ordering.col_perm.size()) == a.num_cols(),
          "apply_ordering_out_of_core: permutation size mismatch");

  const Permutation inv_col = invert_permutation(ordering.col_perm);
  namespace fs = std::filesystem;
  fs::create_directories(spill_dir);
  PagedCsrWriter writer((fs::path(spill_dir) / (name + ".ordocsr")).string(),
                        a.num_rows(), a.num_cols());

  // One source row per output row; heap stays O(rows + max row length).
  // With a window-local row permutation (windowed RCM) the source rows of
  // consecutive output rows stay within one window, so an mmap-backed
  // source pages each region in once.
  std::vector<std::pair<index_t, value_t>> entries;
  std::vector<index_t> cols;
  std::vector<value_t> values;
  for (index_t r = 0; r < a.num_rows(); ++r) {
    const index_t old_row = ordering.row_perm[static_cast<std::size_t>(r)];
    const auto old_cols = a.row_cols(old_row);
    const auto old_values = a.row_values(old_row);
    entries.clear();
    for (std::size_t k = 0; k < old_cols.size(); ++k) {
      entries.emplace_back(inv_col[static_cast<std::size_t>(old_cols[k])],
                           old_values[k]);
    }
    std::sort(entries.begin(), entries.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    cols.clear();
    values.clear();
    for (const auto& [c, v] : entries) {
      cols.push_back(c);
      values.push_back(v);
    }
    writer.append_row(cols, values);
  }
  return CsrMatrix(a.num_rows(), a.num_cols(), writer.finish());
}

}  // namespace ordo
