// Extension orderings from the paper's related-work section.
//
//  * King's ordering (1970): a Cuthill–McKee variant that, instead of
//    degree-sorting whole BFS levels, always numbers next the frontier
//    vertex that adds the fewest new vertices to the frontier — directly
//    minimising wavefront growth (a profile-reduction heuristic).
//  * Similarity ordering: a greedy nearest-neighbour tour over rows in
//    column-overlap space, the simplest member of the TSP-based
//    locality-improving family of Pinar & Heath (SC '99) and Heras et al.
//    that Section 5 surveys: consecutive rows share as many column
//    accesses as possible, maximising x-vector reuse between rows.
#include <limits>
#include <queue>

#include "graph/graph.hpp"
#include "reorder/reordering.hpp"
#include "sparse/csr_ops.hpp"

namespace ordo {

Permutation king_ordering(const CsrMatrix& a) {
  require(a.is_square(), "king_ordering: matrix must be square");
  const Graph g = Graph::from_matrix(a);
  const index_t n = g.num_vertices();

  Permutation order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> numbered(static_cast<std::size_t>(n), false);
  std::vector<bool> in_frontier(static_cast<std::size_t>(n), false);
  // unnumbered_neighbors[v] drives the greedy choice.
  std::vector<index_t> unnumbered(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) unnumbered[static_cast<std::size_t>(v)] = g.degree(v);

  std::vector<index_t> frontier;
  for (index_t component_seed = 0; component_seed < n; ++component_seed) {
    if (numbered[static_cast<std::size_t>(component_seed)]) continue;
    index_t next = pseudo_peripheral_vertex(g, component_seed);
    while (next >= 0) {
      const index_t v = next;
      numbered[static_cast<std::size_t>(v)] = true;
      in_frontier[static_cast<std::size_t>(v)] = false;
      order.push_back(v);
      for (index_t u : g.neighbors(v)) {
        unnumbered[static_cast<std::size_t>(u)]--;
        if (!numbered[static_cast<std::size_t>(u)] &&
            !in_frontier[static_cast<std::size_t>(u)]) {
          in_frontier[static_cast<std::size_t>(u)] = true;
          frontier.push_back(u);
        }
      }
      // Greedy: number the frontier vertex adding the fewest new vertices.
      next = -1;
      index_t best_growth = std::numeric_limits<index_t>::max();
      std::size_t out = 0;
      for (std::size_t k = 0; k < frontier.size(); ++k) {
        const index_t u = frontier[k];
        if (numbered[static_cast<std::size_t>(u)]) continue;
        frontier[out++] = u;
        if (unnumbered[static_cast<std::size_t>(u)] < best_growth) {
          best_growth = unnumbered[static_cast<std::size_t>(u)];
          next = u;
        }
      }
      frontier.resize(out);
    }
  }
  require(order.size() == static_cast<std::size_t>(n),
          "king_ordering: incomplete ordering");
  return order;
}

Permutation similarity_ordering(const CsrMatrix& a, std::uint64_t seed) {
  require(a.is_square(), "similarity_ordering: matrix must be square");
  const index_t n = a.num_rows();
  if (n == 0) return {};
  const CsrMatrix at = transpose(a);

  // Columns incident to very many rows add cost without discriminating
  // between candidates; skip them when scoring.
  constexpr std::size_t kMaxColumnFanOut = 64;

  Permutation order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  std::vector<index_t> score(static_cast<std::size_t>(n), 0);
  std::vector<index_t> touched;

  index_t current = static_cast<index_t>(seed % static_cast<std::uint64_t>(n));
  index_t scan = 0;
  for (index_t step = 0; step < n; ++step) {
    visited[static_cast<std::size_t>(current)] = true;
    order.push_back(current);

    // Score unvisited rows by the number of columns they share with the
    // current row (the nearest-neighbour move of the greedy TSP tour).
    touched.clear();
    for (index_t j : a.row_cols(current)) {
      const auto sharers = at.row_cols(j);
      if (sharers.size() > kMaxColumnFanOut) continue;
      for (index_t r : sharers) {
        if (visited[static_cast<std::size_t>(r)]) continue;
        if (score[static_cast<std::size_t>(r)] == 0) touched.push_back(r);
        score[static_cast<std::size_t>(r)]++;
      }
    }
    index_t best = -1, best_score = 0;
    for (index_t r : touched) {
      if (score[static_cast<std::size_t>(r)] > best_score) {
        best_score = score[static_cast<std::size_t>(r)];
        best = r;
      }
      score[static_cast<std::size_t>(r)] = 0;
    }
    if (best < 0) {
      // Tour stranded: restart from the next unvisited row.
      while (scan < n && visited[static_cast<std::size_t>(scan)]) ++scan;
      if (scan >= n) break;
      best = scan;
    }
    current = best;
  }
  require(order.size() == static_cast<std::size_t>(n),
          "similarity_ordering: incomplete ordering");
  return order;
}

}  // namespace ordo
