// Nested dissection ordering (George 1973; Gilbert & Tarjan 1987).
//
// The graph is recursively bisected with the multilevel partitioner; a
// vertex separator is extracted from each bisection's cut, the two remaining
// parts are ordered first (recursively) and the separator's vertices are
// numbered last. Small leaf subgraphs are ordered with AMD, following the
// practice of METIS-style ND implementations.
#include <numeric>

#include "graph/graph.hpp"
#include "partition/graph_partitioner.hpp"
#include "reorder/reordering.hpp"

namespace ordo {
namespace {

// Orders the subgraph of `g` induced by `vertices` (parent-graph ids),
// appending parent ids to `out` in elimination order.
void dissect(const Graph& g, const std::vector<index_t>& vertices,
             const ReorderOptions& options, std::uint64_t seed,
             std::vector<index_t>& out) {
  const index_t n = static_cast<index_t>(vertices.size());
  if (n == 0) return;
  poll_cancelled(options.cancel, "nd_ordering");

  // Build the induced subgraph.
  std::vector<index_t> to_sub(static_cast<std::size_t>(g.num_vertices()), -1);
  for (index_t i = 0; i < n; ++i) {
    to_sub[static_cast<std::size_t>(vertices[static_cast<std::size_t>(i)])] = i;
  }
  std::vector<offset_t> adj_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> adj;
  for (index_t i = 0; i < n; ++i) {
    const index_t v = vertices[static_cast<std::size_t>(i)];
    for (index_t u : g.neighbors(v)) {
      const index_t su = to_sub[static_cast<std::size_t>(u)];
      if (su >= 0) adj.push_back(su);
    }
    adj_ptr[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(adj.size());
  }
  const Graph sub(n, std::move(adj_ptr), std::move(adj));

  // Leaf: order with AMD via a pattern-only CSR of the subgraph.
  if (n <= options.nd_leaf_size) {
    std::vector<offset_t> row_ptr(static_cast<std::size_t>(n) + 1);
    for (index_t i = 0; i <= n; ++i) {
      row_ptr[static_cast<std::size_t>(i)] = sub.adj_ptr()[i];
    }
    std::vector<index_t> cols(sub.adj().begin(), sub.adj().end());
    std::vector<value_t> vals(cols.size(), 1.0);
    const CsrMatrix leaf(n, n, std::move(row_ptr), std::move(cols),
                         std::move(vals));
    for (index_t i : amd_ordering(leaf)) {
      out.push_back(vertices[static_cast<std::size_t>(i)]);
    }
    return;
  }

  PartitionOptions popt;
  popt.num_parts = 2;
  popt.seed = seed;
  popt.cancel = options.cancel;
  const PartitionResult bisection = bisect_graph(sub, 0.5, popt);
  const std::vector<bool> separator =
      vertex_separator_from_bisection(sub, bisection.part);

  std::vector<index_t> left, right, middle;
  for (index_t i = 0; i < n; ++i) {
    const index_t v = vertices[static_cast<std::size_t>(i)];
    if (separator[static_cast<std::size_t>(i)]) {
      middle.push_back(v);
    } else if (bisection.part[static_cast<std::size_t>(i)] == 0) {
      left.push_back(v);
    } else {
      right.push_back(v);
    }
  }

  // Degenerate split (e.g. the separator swallowed a whole side): stop
  // recursing and fall back to AMD-free sequential numbering to guarantee
  // termination.
  if (left.empty() && right.empty()) {
    out.insert(out.end(), middle.begin(), middle.end());
    return;
  }

  dissect(g, left, options, seed * 6364136223846793005ULL + 1, out);
  dissect(g, right, options, seed * 6364136223846793005ULL + 2, out);
  out.insert(out.end(), middle.begin(), middle.end());
}

}  // namespace

Permutation nd_ordering(const CsrMatrix& a, const ReorderOptions& options) {
  require(a.is_square(), "nd_ordering: matrix must be square");
  const Graph g = Graph::from_matrix(a);
  std::vector<index_t> all(static_cast<std::size_t>(g.num_vertices()));
  std::iota(all.begin(), all.end(), index_t{0});
  Permutation order;
  order.reserve(all.size());
  dissect(g, all, options, options.seed, order);
  return order;
}

}  // namespace ordo
