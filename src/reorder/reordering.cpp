// Registry and dispatch for the reordering algorithms.
#include "reorder/reordering.hpp"

#include <algorithm>

#include "check/check.hpp"
#include "obs/obs.hpp"

namespace ordo {
namespace {

Permutation degree_sort_ordering(const CsrMatrix& a) {
  Permutation perm = identity_permutation(a.num_rows());
  std::stable_sort(perm.begin(), perm.end(), [&](index_t x, index_t y) {
    return a.row_nonzeros(x) < a.row_nonzeros(y);
  });
  return perm;
}

}  // namespace

Ordering compute_ordering(const CsrMatrix& a, OrderingKind kind,
                          const ReorderOptions& options) {
  require(a.is_square(), "compute_ordering: matrix must be square");
  // Phase-granular instrumentation: one span plus one wall-time histogram
  // sample per ordering computation (the Table 5 quantity, observed).
  obs::Span span("reorder/" + ordering_name(kind));
  obs::Stopwatch watch;
  struct RecordOnExit {
    OrderingKind kind;
    obs::Stopwatch& watch;
    ~RecordOnExit() {
#if defined(ORDO_OBS_ENABLED)
      // Read the clock before building metric names: the histogram sample
      // must not include string construction or registry lookups.
      const double seconds = watch.seconds();
      const std::string prefix = "reorder." + ordering_name(kind);
      obs::counter(prefix + ".calls").increment();
      obs::histogram(prefix + ".seconds").record(seconds);
#endif
    }
  } record{kind, watch};
  Ordering result;
  result.symmetric = true;
  switch (kind) {
    case OrderingKind::kOriginal:
      result.row_perm = identity_permutation(a.num_rows());
      break;
    case OrderingKind::kRcm:
      result.row_perm = rcm_ordering(a);
      break;
    case OrderingKind::kAmd:
      result.row_perm = amd_ordering(a);
      break;
    case OrderingKind::kNd:
      result.row_perm = nd_ordering(a, options);
      break;
    case OrderingKind::kGp:
      result.row_perm = gp_ordering(a, options);
      break;
    case OrderingKind::kHp:
      result.row_perm = hp_ordering(a, options);
      break;
    case OrderingKind::kGray:
      result.row_perm = gray_row_ordering(a, options);
      result.symmetric = false;
      break;
    case OrderingKind::kSbd: {
      const auto [rows, cols] = sbd_ordering(a, options);
      result.row_perm = rows;
      result.col_perm = cols;
      result.symmetric = false;
      ORDO_CHECK(validate_reordering_result(
          a, result, "compute_ordering(" + ordering_name(kind) + ")"));
      return result;
    }
    case OrderingKind::kKing:
      result.row_perm = king_ordering(a);
      break;
    case OrderingKind::kSimilarity:
      result.row_perm = similarity_ordering(a, options.seed);
      break;
    case OrderingKind::kRandom:
      result.row_perm = random_permutation(a.num_rows(), options.seed);
      break;
    case OrderingKind::kDegreeSort:
      result.row_perm = degree_sort_ordering(a);
      break;
  }
  result.col_perm = result.symmetric ? result.row_perm
                                     : identity_permutation(a.num_cols());
  // Contract: whatever the algorithm did, the result must be a bijection on
  // the rows (and columns) — a silently non-bijective permutation corrupts
  // every downstream bandwidth/profile/GFLOPS figure.
  ORDO_CHECK(validate_reordering_result(
      a, result, "compute_ordering(" + ordering_name(kind) + ")"));
  return result;
}

CsrMatrix apply_ordering(const CsrMatrix& a, const Ordering& ordering) {
  if (ordering.symmetric) return permute_symmetric(a, ordering.row_perm);
  // Unsymmetric orderings carry independent row and column permutations
  // (Gray's column permutation is the identity; SBD's is not).
  if (ordering.col_perm == identity_permutation(a.num_cols())) {
    return permute_rows(a, ordering.row_perm);
  }
  return permute(a, ordering.row_perm, ordering.col_perm);
}

std::string ordering_name(OrderingKind kind) {
  switch (kind) {
    case OrderingKind::kOriginal: return "Original";
    case OrderingKind::kRcm: return "RCM";
    case OrderingKind::kAmd: return "AMD";
    case OrderingKind::kNd: return "ND";
    case OrderingKind::kGp: return "GP";
    case OrderingKind::kHp: return "HP";
    case OrderingKind::kGray: return "Gray";
    case OrderingKind::kSbd: return "SBD";
    case OrderingKind::kKing: return "King";
    case OrderingKind::kSimilarity: return "TSPsim";
    case OrderingKind::kRandom: return "Random";
    case OrderingKind::kDegreeSort: return "DegSort";
  }
  return "?";
}

OrderingKind parse_ordering_name(const std::string& name) {
  for (OrderingKind kind :
       {OrderingKind::kOriginal, OrderingKind::kRcm, OrderingKind::kAmd,
        OrderingKind::kNd, OrderingKind::kGp, OrderingKind::kHp,
        OrderingKind::kGray, OrderingKind::kSbd, OrderingKind::kKing,
        OrderingKind::kSimilarity, OrderingKind::kRandom,
        OrderingKind::kDegreeSort}) {
    if (ordering_name(kind) == name) return kind;
  }
  throw invalid_argument_error("parse_ordering_name: unknown ordering " +
                               name);
}

std::vector<OrderingKind> study_orderings() {
  return {OrderingKind::kOriginal, OrderingKind::kRcm, OrderingKind::kAmd,
          OrderingKind::kNd,       OrderingKind::kGp,  OrderingKind::kHp,
          OrderingKind::kGray};
}

std::vector<OrderingKind> table1_orderings() {
  return {OrderingKind::kRcm, OrderingKind::kAmd, OrderingKind::kNd,
          OrderingKind::kGp,  OrderingKind::kHp,  OrderingKind::kGray};
}

}  // namespace ordo
