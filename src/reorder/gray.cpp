// Gray-code row ordering (Zhao et al., ICCD 2020), with the parameters the
// paper adopts: 16 bitmap sections and a dense-row threshold of 20 nonzeros.
//
// Rows are first split into a dense and a sparse submatrix by nonzero count.
// Dense rows receive the *density* ordering (grouped by similar nonzero
// count to improve branch prediction); sparse rows receive the
// *bitmap* ordering: each row is summarised by a bitmap recording which of
// the equal-width column sections contain a nonzero, and rows are sorted by
// the binary-reflected Gray-code rank of that bitmap, so consecutive rows
// touch nearly the same sections of the input vector. Only rows move; the
// ordering is unsymmetric.
#include <algorithm>
#include <numeric>

#include "reorder/reordering.hpp"

namespace ordo {
namespace {

/// Rank of a bitmap in the binary-reflected Gray code sequence: the value r
/// such that gray(r) == bits, computed by the standard prefix-XOR inverse.
std::uint32_t gray_rank(std::uint32_t bits) {
  std::uint32_t r = bits;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) {
    r ^= r >> shift;
  }
  return r;
}

}  // namespace

Permutation gray_row_ordering(const CsrMatrix& a,
                              const ReorderOptions& options) {
  const index_t m = a.num_rows();
  const index_t n = a.num_cols();
  const int bits = options.gray_bits;
  require(bits >= 1 && bits <= 31, "gray_row_ordering: bits must be in 1..31");

  struct RowKey {
    index_t row;
    offset_t nnz;
    std::uint32_t rank;
  };
  std::vector<RowKey> dense, sparse;
  const double section_width =
      n > 0 ? static_cast<double>(n) / static_cast<double>(bits) : 1.0;
  for (index_t i = 0; i < m; ++i) {
    const offset_t nnz = a.row_nonzeros(i);
    if (nnz > options.gray_dense_threshold) {
      dense.push_back(RowKey{i, nnz, 0});
    } else {
      std::uint32_t bitmap = 0;
      for (index_t j : a.row_cols(i)) {
        const int section = std::min<int>(
            bits - 1, static_cast<int>(static_cast<double>(j) / section_width));
        bitmap |= 1u << section;
      }
      sparse.push_back(RowKey{i, nnz, gray_rank(bitmap)});
    }
  }

  // Density ordering for the dense block: group rows of similar nonzero
  // count together (descending, so the heaviest rows lead).
  std::stable_sort(dense.begin(), dense.end(),
                   [](const RowKey& x, const RowKey& y) {
                     return x.nnz > y.nnz;
                   });
  // Bitmap ordering for the sparse block: Gray-code rank, then density.
  std::stable_sort(sparse.begin(), sparse.end(),
                   [](const RowKey& x, const RowKey& y) {
                     return x.rank != y.rank ? x.rank < y.rank
                                             : x.nnz > y.nnz;
                   });

  Permutation perm;
  perm.reserve(static_cast<std::size_t>(m));
  for (const RowKey& key : dense) perm.push_back(key.row);
  for (const RowKey& key : sparse) perm.push_back(key.row);
  return perm;
}

}  // namespace ordo
