// Approximate minimum degree ordering (Amestoy, Davis & Duff, "An
// Approximate Minimum Degree Ordering Algorithm", 1996/2004).
//
// The algorithm simulates symmetric Gaussian elimination on the quotient
// graph: eliminating a variable p turns it into an *element* whose variable
// list L_p is the union of p's variable- and element-adjacencies. Degrees of
// the variables in L_p are then *approximated* by the ADD bound
//
//   d(v) = min( n_live,  d_old(v) + |L_p \ v|,
//               |A_v \ v| + |L_p \ v| + sum_{e in E_v, e != p} |L_e \ L_p| )
//
// where the |L_e \ L_p| terms are obtained for all affected elements in one
// sweep using per-element counters (the "w" trick), giving the algorithm its
// near-linear runtime. Indistinguishable variables are merged into
// supervariables (detected by hashing), and elements whose variable lists
// become subsets of L_p are absorbed.
//
// This implementation favours clarity (vector-based adjacency with lazy
// cleanup through a representative mapping) over the in-place array
// compression of the reference code; the produced orderings have the same
// character and quality class.
#include <algorithm>
#include <limits>
#include <queue>

#include "cholesky/cholesky.hpp"
#include "graph/graph.hpp"
#include "reorder/reordering.hpp"

namespace ordo {
namespace {

class AmdSolver {
 public:
  explicit AmdSolver(const Graph& g) : n_(g.num_vertices()) {
    adj_vars_.resize(static_cast<std::size_t>(n_));
    adj_elems_.resize(static_cast<std::size_t>(n_));
    element_vars_.resize(static_cast<std::size_t>(n_));
    degree_.resize(static_cast<std::size_t>(n_));
    nv_.assign(static_cast<std::size_t>(n_), 1);
    state_.assign(static_cast<std::size_t>(n_), State::kVariable);
    parent_.resize(static_cast<std::size_t>(n_));
    members_.resize(static_cast<std::size_t>(n_));
    mark_.assign(static_cast<std::size_t>(n_), 0);
    w_.assign(static_cast<std::size_t>(n_), -1);
    for (index_t v = 0; v < n_; ++v) {
      parent_[static_cast<std::size_t>(v)] = v;
      members_[static_cast<std::size_t>(v)] = {v};
      const auto neighbors = g.neighbors(v);
      adj_vars_[static_cast<std::size_t>(v)].assign(neighbors.begin(),
                                                    neighbors.end());
      degree_[static_cast<std::size_t>(v)] =
          static_cast<index_t>(neighbors.size());
      heap_.emplace(-degree_[static_cast<std::size_t>(v)], v);
    }
  }

  Permutation solve() {
    Permutation order;
    order.reserve(static_cast<std::size_t>(n_));
    index_t live = n_;
    while (!heap_.empty()) {
      const auto [neg_degree, p] = heap_.top();
      heap_.pop();
      if (state_[static_cast<std::size_t>(p)] != State::kVariable ||
          -neg_degree != degree_[static_cast<std::size_t>(p)]) {
        continue;  // stale heap entry
      }
      eliminate(p, live, order);
      live -= nv_[static_cast<std::size_t>(p)];
    }
    require(order.size() == static_cast<std::size_t>(n_),
            "amd: internal error, incomplete ordering");
    return order;
  }

 private:
  enum class State : unsigned char { kVariable, kElement, kDead };

  index_t find(index_t v) {
    while (parent_[static_cast<std::size_t>(v)] != v) {
      parent_[static_cast<std::size_t>(v)] =
          parent_[static_cast<std::size_t>(parent_[static_cast<std::size_t>(v)])];
      v = parent_[static_cast<std::size_t>(v)];
    }
    return v;
  }

  // Rebuilds `list` keeping one copy of each live variable representative,
  // excluding those currently marked (mark_[u] == stamp) and excluding
  // `self`. Representatives encountered are appended to `out` and marked.
  void gather_live_vars(const std::vector<index_t>& list, index_t self,
                        index_t stamp, std::vector<index_t>& out) {
    for (index_t raw : list) {
      index_t u = find(raw);
      if (u == self || state_[static_cast<std::size_t>(u)] != State::kVariable)
        continue;
      if (mark_[static_cast<std::size_t>(u)] == stamp) continue;
      mark_[static_cast<std::size_t>(u)] = stamp;
      out.push_back(u);
    }
  }

  void eliminate(index_t p, index_t live, Permutation& order) {
    // --- Form L_p: live variables adjacent to p directly or via elements.
    ++stamp_;
    std::vector<index_t> lp;
    gather_live_vars(adj_vars_[static_cast<std::size_t>(p)], p, stamp_, lp);
    for (index_t raw_e : adj_elems_[static_cast<std::size_t>(p)]) {
      if (state_[static_cast<std::size_t>(raw_e)] != State::kElement) continue;
      gather_live_vars(element_vars_[static_cast<std::size_t>(raw_e)], p,
                       stamp_, lp);
      // p absorbs this element.
      state_[static_cast<std::size_t>(raw_e)] = State::kDead;
      element_vars_[static_cast<std::size_t>(raw_e)].clear();
      element_vars_[static_cast<std::size_t>(raw_e)].shrink_to_fit();
    }

    // --- p becomes an element (or is simply retired when isolated).
    const index_t lp_stamp = stamp_;
    std::int64_t dp = 0;  // weighted size of L_p
    for (index_t u : lp) dp += nv_[static_cast<std::size_t>(u)];

    for (index_t member : members_[static_cast<std::size_t>(p)]) {
      order.push_back(member);
    }
    adj_vars_[static_cast<std::size_t>(p)].clear();
    adj_elems_[static_cast<std::size_t>(p)].clear();
    if (lp.empty()) {
      state_[static_cast<std::size_t>(p)] = State::kDead;
      return;
    }
    state_[static_cast<std::size_t>(p)] = State::kElement;
    element_vars_[static_cast<std::size_t>(p)] = lp;

    // --- Compute w[e] = |L_e \ L_p| (weighted) for every element touching
    // L_p, in one sweep.
    std::vector<index_t> touched_elements;
    for (index_t v : lp) {
      for (index_t e : adj_elems_[static_cast<std::size_t>(v)]) {
        if (state_[static_cast<std::size_t>(e)] != State::kElement || e == p)
          continue;
        if (w_[static_cast<std::size_t>(e)] < 0) {
          // First touch: initialise with the full weighted size of L_e.
          std::int64_t size = 0;
          for (index_t raw : element_vars_[static_cast<std::size_t>(e)]) {
            const index_t u = find(raw);
            if (state_[static_cast<std::size_t>(u)] == State::kVariable) {
              size += nv_[static_cast<std::size_t>(u)];
            }
          }
          w_[static_cast<std::size_t>(e)] = size;
          touched_elements.push_back(e);
        }
        w_[static_cast<std::size_t>(e)] -= nv_[static_cast<std::size_t>(v)];
      }
    }

    // --- Update each v in L_p.
    for (index_t v : lp) {
      auto& ev = adj_elems_[static_cast<std::size_t>(v)];
      // Drop dead elements; absorb elements entirely inside L_p (w == 0).
      std::size_t out = 0;
      std::int64_t external_elements = 0;
      for (index_t e : ev) {
        if (state_[static_cast<std::size_t>(e)] != State::kElement || e == p)
          continue;
        if (w_[static_cast<std::size_t>(e)] == 0) {
          // Aggressive absorption: e's variables all lie inside L_p.
          state_[static_cast<std::size_t>(e)] = State::kDead;
          element_vars_[static_cast<std::size_t>(e)].clear();
          continue;
        }
        external_elements += w_[static_cast<std::size_t>(e)];
        ev[out++] = e;
      }
      ev.resize(out);
      ev.push_back(p);

      // Prune A_v: keep live representatives not already covered by L_p.
      auto& av = adj_vars_[static_cast<std::size_t>(v)];
      std::size_t keep = 0;
      ++stamp_;  // private scratch stamp for dedup within A_v
      std::int64_t av_weight = 0;
      for (index_t raw : av) {
        const index_t u = find(raw);
        if (u == v || u == p ||
            state_[static_cast<std::size_t>(u)] != State::kVariable)
          continue;
        if (mark_[static_cast<std::size_t>(u)] == lp_stamp) continue;  // in L_p
        if (mark_[static_cast<std::size_t>(u)] == stamp_) continue;    // dup
        mark_[static_cast<std::size_t>(u)] = stamp_;
        av[keep++] = u;
        av_weight += nv_[static_cast<std::size_t>(u)];
      }
      av.resize(keep);

      // ADD approximate degree. The n-k bound uses the live count after p's
      // supervariable has been eliminated.
      const std::int64_t lp_minus_v = dp - nv_[static_cast<std::size_t>(v)];
      const std::int64_t bound_live = static_cast<std::int64_t>(live) -
                                      nv_[static_cast<std::size_t>(p)] -
                                      nv_[static_cast<std::size_t>(v)];
      const std::int64_t bound_old =
          static_cast<std::int64_t>(degree_[static_cast<std::size_t>(v)]) +
          lp_minus_v;
      const std::int64_t bound_lists =
          av_weight + lp_minus_v + external_elements;
      const std::int64_t d =
          std::max<std::int64_t>(
              0, std::min({bound_live, bound_old, bound_lists}));
      degree_[static_cast<std::size_t>(v)] = static_cast<index_t>(d);
    }

    // Reset w counters.
    for (index_t e : touched_elements) w_[static_cast<std::size_t>(e)] = -1;

    detect_supervariables(lp, p);

    // Re-queue surviving variables with their fresh degrees.
    for (index_t v : lp) {
      if (state_[static_cast<std::size_t>(v)] == State::kVariable &&
          find(v) == v) {
        heap_.emplace(-degree_[static_cast<std::size_t>(v)], v);
      }
    }
  }

  // Hash-based detection of indistinguishable variables within L_p: two
  // variables with identical adjacency (A_v and E_v, as representative sets)
  // will produce identical elimination behaviour and are merged.
  void detect_supervariables(std::vector<index_t>& lp, index_t p) {
    std::vector<std::pair<std::uint64_t, index_t>> hashes;
    hashes.reserve(lp.size());
    for (index_t v : lp) {
      if (state_[static_cast<std::size_t>(v)] != State::kVariable) continue;
      std::uint64_t h = 1469598103934665603ULL;
      for (index_t u : adj_vars_[static_cast<std::size_t>(v)]) {
        h += static_cast<std::uint64_t>(find(u)) * 0x9E3779B97F4A7C15ULL;
      }
      for (index_t e : adj_elems_[static_cast<std::size_t>(v)]) {
        if (state_[static_cast<std::size_t>(e)] == State::kElement) {
          h += (static_cast<std::uint64_t>(e) + 0x100000000ULL) *
               0xC2B2AE3D27D4EB4FULL;
        }
      }
      hashes.emplace_back(h, v);
    }
    std::sort(hashes.begin(), hashes.end());

    for (std::size_t i = 0; i < hashes.size(); ++i) {
      const index_t v = hashes[i].second;
      if (find(v) != v ||
          state_[static_cast<std::size_t>(v)] != State::kVariable)
        continue;
      for (std::size_t j = i + 1;
           j < hashes.size() && hashes[j].first == hashes[i].first; ++j) {
        const index_t u = hashes[j].second;
        if (find(u) != u ||
            state_[static_cast<std::size_t>(u)] != State::kVariable)
          continue;
        if (indistinguishable(v, u, p)) merge(v, u);
      }
    }
    // Compact L_p: drop merged members.
    std::size_t out = 0;
    for (index_t v : lp) {
      if (find(v) == v &&
          state_[static_cast<std::size_t>(v)] == State::kVariable) {
        lp[out++] = v;
      }
    }
    lp.resize(out);
    element_vars_[static_cast<std::size_t>(p)] = lp;
  }

  bool indistinguishable(index_t v, index_t u, index_t p) {
    auto canon_vars = [&](index_t x) {
      std::vector<index_t> result;
      for (index_t raw : adj_vars_[static_cast<std::size_t>(x)]) {
        const index_t r = find(raw);
        if (r != v && r != u &&
            state_[static_cast<std::size_t>(r)] == State::kVariable) {
          result.push_back(r);
        }
      }
      std::sort(result.begin(), result.end());
      result.erase(std::unique(result.begin(), result.end()), result.end());
      return result;
    };
    auto canon_elems = [&](index_t x) {
      std::vector<index_t> result;
      for (index_t e : adj_elems_[static_cast<std::size_t>(x)]) {
        if (state_[static_cast<std::size_t>(e)] == State::kElement) {
          result.push_back(e);
        }
      }
      std::sort(result.begin(), result.end());
      result.erase(std::unique(result.begin(), result.end()), result.end());
      return result;
    };
    (void)p;
    return canon_vars(v) == canon_vars(u) && canon_elems(v) == canon_elems(u);
  }

  void merge(index_t keep, index_t absorb) {
    parent_[static_cast<std::size_t>(absorb)] = keep;
    nv_[static_cast<std::size_t>(keep)] += nv_[static_cast<std::size_t>(absorb)];
    auto& dst = members_[static_cast<std::size_t>(keep)];
    auto& src = members_[static_cast<std::size_t>(absorb)];
    dst.insert(dst.end(), src.begin(), src.end());
    src.clear();
    src.shrink_to_fit();
    state_[static_cast<std::size_t>(absorb)] = State::kDead;
    degree_[static_cast<std::size_t>(keep)] = static_cast<index_t>(
        std::max<std::int64_t>(0,
                               degree_[static_cast<std::size_t>(keep)] -
                                   nv_[static_cast<std::size_t>(absorb)]));
    adj_vars_[static_cast<std::size_t>(absorb)].clear();
    adj_elems_[static_cast<std::size_t>(absorb)].clear();
  }

  index_t n_;
  std::vector<std::vector<index_t>> adj_vars_;
  std::vector<std::vector<index_t>> adj_elems_;
  std::vector<std::vector<index_t>> element_vars_;
  std::vector<index_t> degree_;
  std::vector<index_t> nv_;
  std::vector<State> state_;
  std::vector<index_t> parent_;
  std::vector<std::vector<index_t>> members_;
  std::vector<index_t> mark_;
  index_t stamp_ = 0;
  std::vector<std::int64_t> w_;
  // Max-heap keyed by negated degree => min-degree extraction.
  std::priority_queue<std::pair<index_t, index_t>> heap_;
};

}  // namespace

Permutation amd_ordering(const CsrMatrix& a) {
  require(a.is_square(), "amd_ordering: matrix must be square");
  const Graph g = Graph::from_matrix(a);
  AmdSolver solver(g);
  Permutation elimination = solver.solve();
  // Like SuiteSparse AMD, postorder the elimination tree of the reordered
  // matrix: fill-in is invariant under etree postordering, but grouping each
  // subtree contiguously markedly improves the ordering's data locality.
  const CsrMatrix permuted = permute_symmetric(a, elimination);
  const Permutation post = tree_postorder(elimination_tree(permuted));
  return compose_permutations(elimination, post);
}

}  // namespace ordo
