// Hypergraph-partitioning-based ordering (the study's HP).
//
// The column-net hypergraph of A (rows = vertices, columns = nets) is
// partitioned into 128 parts with the cut-net objective — the PaToH
// configuration of Section 3.3 — and rows are grouped by part id. The same
// permutation is applied to the columns, keeping the reordering symmetric.
#include <numeric>

#include "partition/hypergraph.hpp"
#include "partition/hypergraph_partitioner.hpp"
#include "reorder/reordering.hpp"

namespace ordo {

Permutation hp_ordering(const CsrMatrix& a, const ReorderOptions& options) {
  require(a.is_square(), "hp_ordering: matrix must be square");
  const Hypergraph h = Hypergraph::column_net(a);

  PartitionOptions popt;
  popt.num_parts = std::min<index_t>(options.hp_parts,
                                     std::max<index_t>(1, h.num_vertices()));
  popt.seed = options.seed;
  popt.cancel = options.cancel;
  const PartitionResult partition = partition_hypergraph(h, popt);

  std::vector<offset_t> part_begin(
      static_cast<std::size_t>(partition.num_parts) + 1, 0);
  for (index_t p : partition.part) {
    part_begin[static_cast<std::size_t>(p) + 1]++;
  }
  std::partial_sum(part_begin.begin(), part_begin.end(), part_begin.begin());
  Permutation perm(static_cast<std::size_t>(a.num_rows()));
  for (index_t v = 0; v < a.num_rows(); ++v) {
    perm[static_cast<std::size_t>(
        part_begin[static_cast<std::size_t>(
            partition.part[static_cast<std::size_t>(v)])]++)] = v;
  }
  return perm;
}

}  // namespace ordo
