// Separated block diagonal (SBD) ordering (Yzelman & Bisseling, "Cache-
// Oblivious Sparse Matrix-Vector Multiplication by Using Sparse Matrix
// Partitioning Methods", SISC 2009) — the other hypergraph-partitioning
// reordering Section 2.1.3 cites; implemented as an extension beyond the
// paper's six studied algorithms.
//
// Rows are recursively bisected with the column-net hypergraph partitioner.
// At each level the columns split three ways: columns touched only by the
// top row block, columns touched by both blocks (the separator), and columns
// touched only by the bottom block. Ordering the columns [top | separator |
// bottom] and recursing on the two pure blocks produces the separated block
// diagonal form, whose nested separators give cache-oblivious x-vector reuse
// for SpMV.
#include <numeric>

#include "partition/hypergraph.hpp"
#include "partition/hypergraph_partitioner.hpp"
#include "reorder/reordering.hpp"

namespace ordo {
namespace {

struct SbdContext {
  const ReorderOptions* options;
  Permutation row_order;  // filled in recursion order
  std::uint64_t seed;
};

// Orders the submatrix given by `rows` x `cols` (original ids). Appends row
// ids to ctx.row_order and writes the column order into `col_order`, which
// the caller splices between its own column groups.
void sbd_recurse(const CsrMatrix& a, const std::vector<index_t>& rows,
                 const std::vector<index_t>& cols, SbdContext& ctx,
                 std::vector<index_t>& col_order) {
  const index_t num_rows = static_cast<index_t>(rows.size());
  if (num_rows <= ctx.options->sbd_leaf_rows || cols.size() <= 1) {
    ctx.row_order.insert(ctx.row_order.end(), rows.begin(), rows.end());
    col_order.insert(col_order.end(), cols.begin(), cols.end());
    return;
  }

  // Column-net hypergraph of the submatrix: vertices = local rows, nets =
  // local columns with >= 2 pins.
  std::vector<index_t> col_to_local(static_cast<std::size_t>(a.num_cols()),
                                    -1);
  for (std::size_t c = 0; c < cols.size(); ++c) {
    col_to_local[static_cast<std::size_t>(cols[c])] = static_cast<index_t>(c);
  }
  std::vector<index_t> row_in(static_cast<std::size_t>(a.num_rows()), -1);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    row_in[static_cast<std::size_t>(rows[r])] = static_cast<index_t>(r);
  }

  // Count pins per local column.
  std::vector<offset_t> col_count(cols.size(), 0);
  for (index_t row : rows) {
    for (index_t j : a.row_cols(row)) {
      const index_t local = col_to_local[static_cast<std::size_t>(j)];
      if (local >= 0) col_count[static_cast<std::size_t>(local)]++;
    }
  }
  std::vector<index_t> net_of_col(cols.size(), -1);
  std::vector<offset_t> net_ptr{0};
  for (std::size_t c = 0; c < cols.size(); ++c) {
    if (col_count[c] >= 2) {
      net_of_col[c] = static_cast<index_t>(net_ptr.size()) - 1;
      net_ptr.push_back(net_ptr.back() + col_count[c]);
    }
  }
  std::vector<index_t> pins(static_cast<std::size_t>(net_ptr.back()));
  std::vector<offset_t> fill(net_ptr.begin(), net_ptr.end() - 1);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (index_t j : a.row_cols(rows[r])) {
      const index_t local = col_to_local[static_cast<std::size_t>(j)];
      if (local < 0) continue;
      const index_t net = net_of_col[static_cast<std::size_t>(local)];
      if (net >= 0) {
        pins[static_cast<std::size_t>(fill[static_cast<std::size_t>(net)]++)] =
            static_cast<index_t>(r);
      }
    }
  }
  const Hypergraph h(num_rows, std::move(net_ptr), std::move(pins), {}, {});

  PartitionOptions popt;
  popt.num_parts = 2;
  popt.seed = ctx.seed;
  popt.cancel = ctx.options->cancel;
  ctx.seed = ctx.seed * 6364136223846793005ULL + 1;
  const PartitionResult bisection = bisect_hypergraph(h, 0.5, popt);

  // Split rows by side and classify columns by which sides touch them.
  std::vector<index_t> rows_top, rows_bottom;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    (bisection.part[r] == 0 ? rows_top : rows_bottom).push_back(rows[r]);
  }
  if (rows_top.empty() || rows_bottom.empty()) {
    // Degenerate bisection; stop recursing to guarantee termination.
    ctx.row_order.insert(ctx.row_order.end(), rows.begin(), rows.end());
    col_order.insert(col_order.end(), cols.begin(), cols.end());
    return;
  }

  std::vector<unsigned char> touched(cols.size(), 0);  // bit0 top, bit1 bottom
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const unsigned char side = bisection.part[r] == 0 ? 1 : 2;
    for (index_t j : a.row_cols(rows[r])) {
      const index_t local = col_to_local[static_cast<std::size_t>(j)];
      if (local >= 0) touched[static_cast<std::size_t>(local)] |= side;
    }
  }
  std::vector<index_t> cols_top, cols_cut, cols_bottom;
  for (std::size_t c = 0; c < cols.size(); ++c) {
    switch (touched[c]) {
      case 1: cols_top.push_back(cols[c]); break;
      case 2: cols_bottom.push_back(cols[c]); break;
      case 3: cols_cut.push_back(cols[c]); break;
      default: cols_top.push_back(cols[c]); break;  // untouched: keep left
    }
  }

  // [top block | separator columns | bottom block].
  std::vector<index_t> top_cols_ordered, bottom_cols_ordered;
  sbd_recurse(a, rows_top, cols_top, ctx, top_cols_ordered);
  sbd_recurse(a, rows_bottom, cols_bottom, ctx, bottom_cols_ordered);
  col_order.insert(col_order.end(), top_cols_ordered.begin(),
                   top_cols_ordered.end());
  col_order.insert(col_order.end(), cols_cut.begin(), cols_cut.end());
  col_order.insert(col_order.end(), bottom_cols_ordered.begin(),
                   bottom_cols_ordered.end());
}

}  // namespace

std::pair<Permutation, Permutation> sbd_ordering(
    const CsrMatrix& a, const ReorderOptions& options) {
  SbdContext ctx;
  ctx.options = &options;
  ctx.seed = options.seed + 0x5bdULL;
  ctx.row_order.reserve(static_cast<std::size_t>(a.num_rows()));

  std::vector<index_t> all_rows(static_cast<std::size_t>(a.num_rows()));
  std::iota(all_rows.begin(), all_rows.end(), index_t{0});
  std::vector<index_t> all_cols(static_cast<std::size_t>(a.num_cols()));
  std::iota(all_cols.begin(), all_cols.end(), index_t{0});

  Permutation col_order;
  col_order.reserve(all_cols.size());
  sbd_recurse(a, all_rows, all_cols, ctx, col_order);

  require_valid_permutation(ctx.row_order, "sbd_ordering(rows)");
  require_valid_permutation(col_order, "sbd_ordering(cols)");
  return {std::move(ctx.row_order), std::move(col_order)};
}

}  // namespace ordo
