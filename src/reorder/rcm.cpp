// Cuthill–McKee and Reverse Cuthill–McKee orderings.
//
// CM performs a breadth-first traversal of the matrix graph where each
// level's vertices are visited in ascending-degree order; RCM reverses the
// result, which is known to produce less fill for symmetric positive
// definite factorizations (Liu & Sherman 1976) and is the variant evaluated
// by the paper. Components are each started from a George–Liu
// pseudo-peripheral vertex and processed in ascending order of their lowest
// vertex id for determinism.
#include <algorithm>

#include "graph/graph.hpp"
#include "reorder/reordering.hpp"

namespace ordo {

Permutation cuthill_mckee_ordering(const CsrMatrix& a) {
  require(a.is_square(), "cuthill_mckee_ordering: matrix must be square");
  const Graph g = Graph::from_matrix(a);
  const index_t n = g.num_vertices();

  Permutation order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  for (index_t s = 0; s < n; ++s) {
    if (visited[static_cast<std::size_t>(s)]) continue;
    const index_t start = pseudo_peripheral_vertex(g, s);
    const BfsResult bfs = bfs_degree_ordered(g, start);
    for (index_t v : bfs.order) {
      visited[static_cast<std::size_t>(v)] = true;
      order.push_back(v);
    }
  }
  return order;
}

Permutation rcm_ordering(const CsrMatrix& a) {
  Permutation order = cuthill_mckee_ordering(a);
  std::reverse(order.begin(), order.end());
  return order;
}

}  // namespace ordo
