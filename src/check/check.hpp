// ordo::check — invariant contracts, structure layer.
//
// Whole-structure validators over the public types of sparse/, graph/,
// partition/ and reorder/, built on the raw validators of
// check/invariants.hpp. These are what the ORDO_CHECK(...) seams invoke at
// subsystem boundaries:
//
//   compute_ordering  → validate_reordering_result
//   partition_graph / partition_hypergraph → validate_partition
//   bisect_graph      → validate_bisection_balance
//   Graph::from_matrix / symmetrize → validate_graph / validate_symmetric_pattern
//   read_matrix_market → validate_csr
//   elimination_tree  → validate_elimination_tree (raw layer)
//   run_matrix_study  → validate_reordered_matrix
//
// See docs/ARCHITECTURE.md "Correctness tooling" for the contract-point map.
#pragma once

#include "check/invariants.hpp"
#include "graph/graph.hpp"
#include "partition/hypergraph.hpp"
#include "partition/partitioning.hpp"
#include "reorder/reordering.hpp"
#include "sparse/csr.hpp"
#include "sparse/permutation.hpp"

namespace ordo::check {

/// Full CSR re-validation (the same contract the CsrMatrix constructor
/// maintains, re-checked from the outside — for data that crossed an I/O or
/// subsystem boundary).
void validate_csr(const CsrMatrix& a, const std::string& where);

/// `perm` must be a bijection on {0, ..., n-1}.
void validate_permutation(const Permutation& perm, index_t n,
                          const std::string& where);

/// Adjacency structure plus mirror-symmetry of every edge (the property all
/// symmetric orderings assume), plus weight-array consistency.
void validate_graph(const Graph& g, const std::string& where);

/// The matrix pattern must equal its transpose's (what symmetrize promises).
void validate_symmetric_pattern(const CsrMatrix& a, const std::string& where);

/// Partition consistency: assignment covers every vertex with part ids in
/// [0, num_parts), and the recorded cut and imbalance match a recount over
/// the assignment. Deliberately does NOT enforce the balance tolerance:
/// with many parts on small (or coarse, heavy-vertex) graphs the tolerance
/// is best-effort, and the recorded imbalance is itself a study output —
/// the invariant is that it is *reported truthfully*, not that it is small.
void validate_partition(const Graph& g, const PartitionResult& result,
                        index_t num_parts, const std::string& where);

/// Structural contract of a single bisection: the recorded imbalance is a
/// possible value (>= 1) and neither side is empty (a graph with >= 2
/// vertices must actually be bisected). Deliberately does NOT enforce the
/// 1 + 2*tolerance window: FM refinement maintains it per level, but the
/// coarsest level's vertex granularity can exceed any fixed tolerance, so
/// only the non-degeneracy contract is universal.
void validate_bisection_balance(const Graph& g, const PartitionResult& result,
                                double tolerance, const std::string& where);

/// Same consistency contract as validate_partition, for the column-net
/// hypergraph partitioner (cut recounted with compute_cut_nets).
void validate_hypergraph_partition(const Hypergraph& h,
                                   const PartitionResult& result,
                                   index_t num_parts,
                                   const std::string& where);

/// Reordering contract: the row permutation is a bijection on the rows, the
/// column permutation on the columns, and a symmetric ordering uses one
/// permutation for both.
void validate_reordering_result(const CsrMatrix& a, const Ordering& ordering,
                                const std::string& where);

/// Cheap O(1) post-apply check: permuting never changes the shape or the
/// nonzero count.
void validate_reordered_matrix(const CsrMatrix& original,
                               const CsrMatrix& reordered,
                               const std::string& where);

}  // namespace ordo::check
