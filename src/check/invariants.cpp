#include "check/invariants.hpp"

#include <algorithm>
#include <vector>

#include "obs/obs.hpp"

namespace ordo::check {

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kCsr: return "csr";
    case ViolationKind::kPermutation: return "permutation";
    case ViolationKind::kGraph: return "graph";
    case ViolationKind::kPartition: return "partition";
    case ViolationKind::kOrdering: return "ordering";
    case ViolationKind::kCholesky: return "cholesky";
    case ViolationKind::kPlan: return "plan";
  }
  return "?";
}

InvariantViolation::InvariantViolation(ViolationKind kind,
                                       const std::string& where,
                                       const std::string& detail)
    : invalid_argument_error(where + ": " + detail),
      kind_(kind),
      where_(where) {}

namespace {

std::string counter_name(ViolationKind kind) {
  return std::string("check.violations.") + violation_kind_name(kind);
}

}  // namespace

void report_violation(ViolationKind kind, const std::string& where,
                      const std::string& detail) {
#if defined(ORDO_OBS_ENABLED)
  obs::counter(counter_name(kind)).increment();
  obs::logf(obs::LogLevel::kProgress, "invariant violation [%s] at %s: %s",
            violation_kind_name(kind), where.c_str(), detail.c_str());
#endif
  throw InvariantViolation(kind, where, detail);
}

std::int64_t violation_count(ViolationKind kind) {
#if defined(ORDO_OBS_ENABLED)
  const std::string name = counter_name(kind);
  return obs::has_metric(name) ? obs::counter(name).value() : 0;
#else
  (void)kind;
  return 0;
#endif
}

void validate_csr_raw(index_t num_rows, index_t num_cols,
                      std::span<const offset_t> row_ptr,
                      std::span<const index_t> col_idx,
                      std::size_t num_values, const std::string& where) {
  const ViolationKind kind = ViolationKind::kCsr;
  if (num_rows < 0 || num_cols < 0) {
    report_violation(kind, where, "negative dimension");
  }
  if (row_ptr.size() != static_cast<std::size_t>(num_rows) + 1) {
    report_violation(kind, where, "row_ptr size must be num_rows + 1");
  }
  if (row_ptr.front() != 0) {
    report_violation(kind, where, "row_ptr must start at 0");
  }
  if (row_ptr.back() != static_cast<offset_t>(col_idx.size())) {
    report_violation(kind, where, "row_ptr must end at nnz");
  }
  if (col_idx.size() != num_values) {
    report_violation(kind, where, "col_idx and values must have equal length");
  }
  for (index_t i = 0; i < num_rows; ++i) {
    if (row_ptr[static_cast<std::size_t>(i)] >
        row_ptr[static_cast<std::size_t>(i) + 1]) {
      report_violation(kind, where,
                       "row_ptr must be nondecreasing (row " +
                           std::to_string(i) + ")");
    }
    for (offset_t k = row_ptr[static_cast<std::size_t>(i)];
         k < row_ptr[static_cast<std::size_t>(i) + 1]; ++k) {
      const index_t j = col_idx[static_cast<std::size_t>(k)];
      if (j < 0 || j >= num_cols) {
        report_violation(kind, where,
                         "column index out of range (row " +
                             std::to_string(i) + ")");
      }
      if (k > row_ptr[static_cast<std::size_t>(i)] &&
          col_idx[static_cast<std::size_t>(k - 1)] >= j) {
        report_violation(
            kind, where,
            "columns must be strictly ascending within a row (row " +
                std::to_string(i) + ")");
      }
    }
  }
}

void validate_permutation_raw(std::span<const index_t> perm, index_t n,
                              const std::string& where) {
  const ViolationKind kind = ViolationKind::kPermutation;
  if (perm.size() != static_cast<std::size_t>(n)) {
    report_violation(kind, where,
                     "permutation length " + std::to_string(perm.size()) +
                         " does not match n = " + std::to_string(n));
  }
  // In-range and no repeats together imply bijectivity in both directions.
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    const index_t image = perm[i];
    if (image < 0 || image >= n) {
      report_violation(kind, where,
                       "image out of range at position " + std::to_string(i));
    }
    if (seen[static_cast<std::size_t>(image)]) {
      report_violation(kind, where,
                       "image " + std::to_string(image) +
                           " repeated (not a bijection)");
    }
    seen[static_cast<std::size_t>(image)] = 1;
  }
}

void validate_adjacency_raw(index_t num_vertices,
                            std::span<const offset_t> adj_ptr,
                            std::span<const index_t> adj, bool check_symmetry,
                            const std::string& where) {
  const ViolationKind kind = ViolationKind::kGraph;
  if (num_vertices < 0) {
    report_violation(kind, where, "negative vertex count");
  }
  if (adj_ptr.size() != static_cast<std::size_t>(num_vertices) + 1) {
    report_violation(kind, where, "adj_ptr size must be num_vertices + 1");
  }
  if (adj_ptr.front() != 0) {
    report_violation(kind, where, "adj_ptr must start at 0");
  }
  if (adj_ptr.back() != static_cast<offset_t>(adj.size())) {
    report_violation(kind, where, "adj_ptr must end at adjacency size");
  }
  for (index_t v = 0; v < num_vertices; ++v) {
    if (adj_ptr[static_cast<std::size_t>(v)] >
        adj_ptr[static_cast<std::size_t>(v) + 1]) {
      report_violation(kind, where, "adj_ptr not monotone");
    }
    for (offset_t k = adj_ptr[static_cast<std::size_t>(v)];
         k < adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
      const index_t u = adj[static_cast<std::size_t>(k)];
      if (u < 0 || u >= num_vertices) {
        report_violation(kind, where,
                         "neighbour out of range at vertex " +
                             std::to_string(v));
      }
      if (u == v) {
        report_violation(kind, where,
                         "self-loop at vertex " + std::to_string(v));
      }
    }
  }
  if (check_symmetry) {
    // Every directed entry (v, u) needs its mirror (u, v). Sort the full
    // directed edge list once, then binary-search each mirror: O(m log m),
    // fine at seam granularity.
    std::vector<std::pair<index_t, index_t>> edges;
    edges.reserve(adj.size());
    for (index_t v = 0; v < num_vertices; ++v) {
      for (offset_t k = adj_ptr[static_cast<std::size_t>(v)];
           k < adj_ptr[static_cast<std::size_t>(v) + 1]; ++k) {
        edges.emplace_back(v, adj[static_cast<std::size_t>(k)]);
      }
    }
    std::sort(edges.begin(), edges.end());
    for (const auto& [v, u] : edges) {
      if (!std::binary_search(edges.begin(), edges.end(),
                              std::make_pair(u, v))) {
        report_violation(kind, where,
                         "edge (" + std::to_string(v) + ", " +
                             std::to_string(u) +
                             ") has no mirror (adjacency not symmetric)");
      }
    }
  }
}

void validate_elimination_tree_raw(std::span<const index_t> parent,
                                   const std::string& where) {
  const index_t n = static_cast<index_t>(parent.size());
  for (index_t j = 0; j < n; ++j) {
    const index_t p = parent[static_cast<std::size_t>(j)];
    if (p != -1 && (p <= j || p >= n)) {
      report_violation(ViolationKind::kCholesky, where,
                       "etree parent of column " + std::to_string(j) +
                           " must be -1 or in (j, n)");
    }
  }
}

void validate_thread_partition_raw(index_t num_rows,
                                   std::span<const offset_t> row_ptr,
                                   ThreadPartitionKind kind,
                                   std::span<const index_t> row_begin,
                                   std::span<const offset_t> nnz_begin,
                                   const std::string& where) {
  const ViolationKind violation = ViolationKind::kPlan;
  if (num_rows < 0 ||
      row_ptr.size() != static_cast<std::size_t>(num_rows) + 1) {
    report_violation(violation, where, "row_ptr size must be num_rows + 1");
  }
  if (row_begin.size() != nnz_begin.size() || nnz_begin.size() < 2) {
    report_violation(violation, where,
                     "row_begin and nnz_begin must both have threads + 1 "
                     "entries (threads >= 1)");
  }
  const offset_t nnz = row_ptr.back();
  if (nnz_begin.front() != 0 || nnz_begin.back() != nnz) {
    report_violation(violation, where,
                     "nonzero boundaries must run from 0 to nnz");
  }
  const std::size_t boundaries = nnz_begin.size();
  for (std::size_t t = 1; t < boundaries; ++t) {
    if (nnz_begin[t - 1] > nnz_begin[t] || row_begin[t - 1] > row_begin[t]) {
      report_violation(violation, where,
                       "thread boundaries must be nondecreasing (boundary " +
                           std::to_string(t) + ")");
    }
  }
  const bool full_row_span = kind != ThreadPartitionKind::kNnzSplit;
  if (full_row_span &&
      (row_begin.front() != 0 || row_begin.back() != num_rows)) {
    report_violation(violation, where,
                     "row boundaries must run from 0 to num_rows");
  }
  for (std::size_t t = 0; t < boundaries; ++t) {
    const index_t row = row_begin[t];
    if (row < 0 || row > num_rows) {
      report_violation(violation, where,
                       "row boundary out of range (boundary " +
                           std::to_string(t) + ")");
    }
    switch (kind) {
      case ThreadPartitionKind::kRowBlocks:
        if (nnz_begin[t] != row_ptr[static_cast<std::size_t>(row)]) {
          report_violation(violation, where,
                           "nonzero boundary must coincide with the start of "
                           "its row (boundary " +
                               std::to_string(t) + ")");
        }
        break;
      case ThreadPartitionKind::kNnzSplit:
        if (num_rows > 0 && row >= num_rows) {
          report_violation(violation, where,
                           "boundary row must be an existing row (boundary " +
                               std::to_string(t) + ")");
        }
        [[fallthrough]];
      case ThreadPartitionKind::kMergePath:
        // The boundary nonzero must lie inside (or at the exclusive end of)
        // its boundary row: row_ptr[row] <= nnz_begin[t] <= row_ptr[row+1].
        if (row < num_rows &&
            (nnz_begin[t] < row_ptr[static_cast<std::size_t>(row)] ||
             nnz_begin[t] > row_ptr[static_cast<std::size_t>(row) + 1])) {
          report_violation(violation, where,
                           "boundary nonzero lies outside its boundary row "
                           "(boundary " +
                               std::to_string(t) + ")");
        }
        if (row == num_rows && nnz_begin[t] != nnz) {
          report_violation(violation, where,
                           "a boundary at the row end must sit at nnz "
                           "(boundary " +
                               std::to_string(t) + ")");
        }
        break;
    }
  }
}

}  // namespace ordo::check
