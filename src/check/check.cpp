#include "check/check.hpp"

#include <algorithm>
#include <string>

#include "sparse/csr_ops.hpp"

namespace ordo::check {

void validate_csr(const CsrMatrix& a, const std::string& where) {
  validate_csr_raw(a.num_rows(), a.num_cols(), a.row_ptr(), a.col_idx(),
                   a.values().size(), where);
}

void validate_permutation(const Permutation& perm, index_t n,
                          const std::string& where) {
  validate_permutation_raw(perm, n, where);
}

void validate_graph(const Graph& g, const std::string& where) {
  validate_adjacency_raw(g.num_vertices(), g.adj_ptr(), g.adj(),
                         /*check_symmetry=*/true, where);
  if (g.has_weights()) {
    for (index_t v = 0; v < g.num_vertices(); ++v) {
      if (g.vertex_weight(v) <= 0) {
        report_violation(ViolationKind::kGraph, where,
                         "nonpositive vertex weight at vertex " +
                             std::to_string(v));
      }
    }
  }
}

void validate_symmetric_pattern(const CsrMatrix& a, const std::string& where) {
  if (!a.is_square()) {
    report_violation(ViolationKind::kCsr, where,
                     "symmetric pattern requires a square matrix");
  }
  if (!is_pattern_symmetric(a)) {
    report_violation(ViolationKind::kCsr, where,
                     "matrix pattern is not symmetric");
  }
}

void validate_partition(const Graph& g, const PartitionResult& result,
                        index_t num_parts, const std::string& where) {
  const ViolationKind kind = ViolationKind::kPartition;
  if (result.num_parts != num_parts) {
    report_violation(kind, where,
                     "recorded num_parts " + std::to_string(result.num_parts) +
                         " does not match requested " +
                         std::to_string(num_parts));
  }
  if (result.part.size() != static_cast<std::size_t>(g.num_vertices())) {
    report_violation(kind, where, "assignment does not cover every vertex");
  }
  for (std::size_t v = 0; v < result.part.size(); ++v) {
    if (result.part[v] < 0 || result.part[v] >= num_parts) {
      report_violation(kind, where,
                       "part id out of range at vertex " + std::to_string(v));
    }
  }
  const std::int64_t cut = compute_edge_cut(g, result.part);
  if (cut != result.cut) {
    report_violation(kind, where,
                     "recorded cut " + std::to_string(result.cut) +
                         " does not match recount " + std::to_string(cut));
  }
  const double imbalance =
      compute_partition_imbalance(g, result.part, num_parts);
  // Exact comparison is intended: the recount runs the identical arithmetic
  // on the identical assignment, so any difference means the recorded value
  // was not derived from this partition.
  if (imbalance != result.imbalance) {  // ordo-lint: allow(float-eq)
    report_violation(kind, where,
                     "recorded imbalance does not match recount");
  }
}

void validate_bisection_balance(const Graph& g, const PartitionResult& result,
                                double tolerance, const std::string& where) {
  (void)tolerance;
  if (g.num_vertices() < 2) return;
  const ViolationKind kind = ViolationKind::kPartition;
  // Imbalance is max part weight over average part weight, so it is >= 1 by
  // construction and reaches 2 exactly when one side is empty. A tighter
  // bound (1 + 2*tolerance) holds on well-conditioned graphs — the seed's
  // partition tests assert it there — but the multilevel scheme cannot
  // promise it universally: the coarsest level's vertex granularity can
  // exceed any fixed tolerance. The universal contract is that a bisection
  // actually bisects.
  if (result.imbalance < 1.0) {
    report_violation(kind, where,
                     "recorded imbalance " + std::to_string(result.imbalance) +
                         " is below 1 (impossible for max/average)");
  }
  std::int64_t weight0 = 0;
  std::int64_t weight1 = 0;
  for (std::size_t v = 0; v < result.part.size(); ++v) {
    (result.part[v] == 0 ? weight0 : weight1) +=
        g.vertex_weight(static_cast<index_t>(v));
  }
  if (weight0 == 0 || weight1 == 0) {
    report_violation(kind, where,
                     "degenerate bisection: one side is empty (weights " +
                         std::to_string(weight0) + " / " +
                         std::to_string(weight1) + ")");
  }
}

void validate_hypergraph_partition(const Hypergraph& h,
                                   const PartitionResult& result,
                                   index_t num_parts,
                                   const std::string& where) {
  const ViolationKind kind = ViolationKind::kPartition;
  if (result.num_parts != num_parts) {
    report_violation(kind, where,
                     "recorded num_parts " + std::to_string(result.num_parts) +
                         " does not match requested " +
                         std::to_string(num_parts));
  }
  if (result.part.size() != static_cast<std::size_t>(h.num_vertices())) {
    report_violation(kind, where, "assignment does not cover every vertex");
  }
  for (std::size_t v = 0; v < result.part.size(); ++v) {
    if (result.part[v] < 0 || result.part[v] >= num_parts) {
      report_violation(kind, where,
                       "part id out of range at vertex " + std::to_string(v));
    }
  }
  const std::int64_t cut = compute_cut_nets(h, result.part);
  if (cut != result.cut) {
    report_violation(kind, where,
                     "recorded cut-net count " + std::to_string(result.cut) +
                         " does not match recount " + std::to_string(cut));
  }
}

void validate_reordering_result(const CsrMatrix& a, const Ordering& ordering,
                                const std::string& where) {
  validate_permutation_raw(ordering.row_perm, a.num_rows(),
                           where + " (row_perm)");
  validate_permutation_raw(ordering.col_perm, a.num_cols(),
                           where + " (col_perm)");
  if (ordering.symmetric && ordering.row_perm != ordering.col_perm) {
    report_violation(ViolationKind::kOrdering, where,
                     "symmetric ordering must use one permutation for rows "
                     "and columns");
  }
}

void validate_reordered_matrix(const CsrMatrix& original,
                               const CsrMatrix& reordered,
                               const std::string& where) {
  const ViolationKind kind = ViolationKind::kOrdering;
  if (reordered.num_rows() != original.num_rows() ||
      reordered.num_cols() != original.num_cols()) {
    report_violation(kind, where, "permuting changed the matrix shape");
  }
  if (reordered.num_nonzeros() != original.num_nonzeros()) {
    report_violation(kind, where,
                     "permuting changed the nonzero count (" +
                         std::to_string(original.num_nonzeros()) + " -> " +
                         std::to_string(reordered.num_nonzeros()) + ")");
  }
}

}  // namespace ordo::check
