// ordo::check — invariant contracts, raw-array layer.
//
// Every number the study reports flows through a handful of structures: CSR
// matrices, permutations, adjacency graphs and partitions. A silent defect
// in any of them — a non-bijective permutation, an unsorted row, a row
// pointer that skips nonzeros — corrupts every downstream bandwidth,
// profile, fill-in and modeled-GFLOPS figure without failing a test. This
// layer re-verifies those invariants from first principles and reports
// violations through ordo::obs (one counter per violation class plus a
// structured log line) before throwing a typed InvariantViolation, which
// the pipeline's per-task error isolation records as a StudyTaskFailure
// instead of aborting the sweep.
//
// Two tiers:
//  * the raw validators here operate on bare spans so the constructors in
//    sparse/ and graph/ can call them without an include cycle, and so
//    tests can feed deliberately corrupted arrays that the owning classes
//    refuse to construct;
//  * structure-level validators (whole CsrMatrix / Graph / Ordering /
//    PartitionResult) live in check/check.hpp.
//
// Compile-time gating: the validators themselves are always compiled (the
// constructors and the tests need them in every build type); only the
// ORDO_CHECK(...) seam macro below compiles away when ORDO_CHECK_INVARIANTS
// is OFF (the Release default), so hot paths pay nothing.
#pragma once

#include <span>
#include <string>

#include "sparse/types.hpp"

namespace ordo::check {

/// Violation classes, one obs counter each ("check.violations.<name>").
enum class ViolationKind {
  kCsr,          ///< malformed CSR arrays
  kPermutation,  ///< not a bijection on {0, ..., n-1}
  kGraph,        ///< malformed or asymmetric adjacency
  kPartition,    ///< inconsistent partition assignment or metrics
  kOrdering,     ///< malformed reordering result
  kCholesky,     ///< malformed elimination tree / factor counts
  kPlan,         ///< malformed engine plan thread-partition
};

/// Counter suffix and log tag for a violation class ("csr", "permutation",
/// "graph", "partition", "ordering", "cholesky").
const char* violation_kind_name(ViolationKind kind);

/// Thrown by every validator on a broken invariant. Derives from
/// invalid_argument_error so call sites that predate the check layer (and
/// the tests asserting them) keep working unchanged.
class InvariantViolation : public invalid_argument_error {
 public:
  InvariantViolation(ViolationKind kind, const std::string& where,
                     const std::string& detail);

  ViolationKind kind() const { return kind_; }
  /// The contract point that fired, e.g. "partition_graph" or the matrix id
  /// the caller embedded ("run_matrix_study(lp_0003)").
  const std::string& where() const { return where_; }

 private:
  ViolationKind kind_;
  std::string where_;
};

/// Records the violation in ordo::obs (counter + structured log) and throws
/// InvariantViolation. All validators funnel through here.
[[noreturn]] void report_violation(ViolationKind kind, const std::string& where,
                                   const std::string& detail);

/// Number of violations reported so far for `kind` (0 when the obs registry
/// is compiled out). For tests.
std::int64_t violation_count(ViolationKind kind);

// ---------------------------------------------------------------------------
// Raw validators. Each throws InvariantViolation via report_violation on the
// first broken invariant and returns normally otherwise.
// ---------------------------------------------------------------------------

/// CSR invariants: row_ptr has num_rows+1 monotone entries from 0 to nnz,
/// column indices are in [0, num_cols) and strictly ascending within each
/// row (sorted, no duplicates), and the value array matches nnz.
void validate_csr_raw(index_t num_rows, index_t num_cols,
                      std::span<const offset_t> row_ptr,
                      std::span<const index_t> col_idx,
                      std::size_t num_values, const std::string& where);

/// Permutation invariants: length n and a bijection in both directions
/// (every image in range, no image repeated — which together imply every
/// preimage is hit).
void validate_permutation_raw(std::span<const index_t> perm, index_t n,
                              const std::string& where);

/// Adjacency invariants: monotone pointer array, neighbours in range, no
/// self-loops; with `check_symmetry`, every directed entry (u, v) must have
/// its mirror (v, u) — the property all symmetric orderings assume.
void validate_adjacency_raw(index_t num_vertices,
                            std::span<const offset_t> adj_ptr,
                            std::span<const index_t> adj, bool check_symmetry,
                            const std::string& where);

/// Elimination-tree invariant: parent[j] is -1 or strictly greater than j
/// (columns are eliminated in order, so parents always come later).
void validate_elimination_tree_raw(std::span<const index_t> parent,
                                   const std::string& where);

/// How an engine plan's thread-partition assigns rows — mirrors
/// ordo::engine::RowAssignment without depending on the engine layer
/// (check/ sits below engine/; the engine translates at its seam).
enum class ThreadPartitionKind {
  kRowBlocks,  ///< nonzero boundaries coincide with row starts
  kNnzSplit,   ///< row_begin[t] is the row containing nonzero nnz_begin[t]
  kMergePath,  ///< full row span, boundaries may fall mid-row
};

/// Engine-plan invariants: row_begin and nnz_begin have the same length
/// (>= 2, i.e. at least one thread), both are monotone, nnz boundaries run
/// from 0 to nnz, and per `kind` either nonzero boundaries align with row
/// starts (kRowBlocks), every boundary nonzero lies inside its boundary row
/// (kNnzSplit / kMergePath), and — for the full-row-span kinds — row
/// boundaries run from 0 to num_rows. `row_ptr` is the matrix's row
/// pointer the plan was prepared from (num_rows + 1 entries).
void validate_thread_partition_raw(index_t num_rows,
                                   std::span<const offset_t> row_ptr,
                                   ThreadPartitionKind kind,
                                   std::span<const index_t> row_begin,
                                   std::span<const offset_t> nnz_begin,
                                   const std::string& where);

}  // namespace ordo::check

// Seam macro: ORDO_CHECK(validate_partition(g, result, options, "where"))
// expands to the ordo::check:: call when invariant checking is compiled in
// and to nothing otherwise. Seams are phase-granular (one validation per
// ordering / partition / factorization), so even the O(nnz) validators add
// no more than a constant factor to a Debug run — and Release binaries are
// byte-for-byte free of them.
#if defined(ORDO_CHECK_INVARIANTS_ENABLED)
#define ORDO_CHECK(call) (::ordo::check::call)
#else
#define ORDO_CHECK(call) ((void)0)
#endif

/// True when ORDO_CHECK seams are compiled in (for tests and reporting).
namespace ordo::check {
constexpr bool invariant_checks_enabled() {
#if defined(ORDO_CHECK_INVARIANTS_ENABLED)
  return true;
#else
  return false;
#endif
}
}  // namespace ordo::check
