#!/usr/bin/env python3
"""ordo_analyze: deep cross-file static pass over the concurrency and
hot-path contracts that single-line lint (tools/ordo_lint.py) cannot see.

The analyzer parses the tree with a small brace-automaton (namespaces,
classes, function bodies) and runs seven rules on top of it. It is
deliberately heuristic — it reads the annotation conventions of
src/core/thread_safety.hpp rather than real C++ semantics — and it is
tuned so a clean tree stays clean: every rule either fires on a real
defect or is silenced by an `// ordo-analyze: allow(rule) <why>` comment
that carries its justification inline.

Rules (see docs/ARCHITECTURE.md "Static analysis" for rationale):

  lock-order      Cross-file. Builds the mutex acquisition-order graph from
                  every `MutexLock` site (lexical nesting, ORDO_REQUIRES
                  preconditions, and one level of direct calls) and reports
                  any cycle — a deadlock the thread-safety annotations
                  alone cannot express.
  memory-order    Every std::atomic operation (.load/.store/.exchange/
                  .fetch_*/.compare_exchange_*) must spell its
                  std::memory_order explicitly; the argument list is parsed
                  across line breaks. Seq-cst-by-default hides intent and
                  costs fences on the hot path.
  relaxed-note    Every memory_order_relaxed use must carry a justification
                  comment on the same line or within the 4 lines above it:
                  relaxed is only correct for reasons the code cannot show.
  timed-region    Inside a Stopwatch window (declaration to first
                  .seconds()/.millis()/.micros() read) or a CounterScope
                  window (construction to .stop()), flags logging, locking,
                  allocation and string construction — overhead that lands
                  inside the measured quantity.
  cancel-poll     Call-graph reachability: run_matrix_study must reach
                  nd_ordering, partition_graph and partition_hypergraph,
                  and each of those subtrees (and run_matrix_study itself)
                  must reach a poll_cancelled() call, so the watchdog can
                  stop the three super-linear reordering paths.
  guard-coverage  In the annotated dirs, any class holding an ordo::Mutex
                  must annotate every other data member ORDO_GUARDED_BY /
                  ORDO_PT_GUARDED_BY (atomics, condition variables,
                  threads, once-flags and nested Mutexes are exempt by
                  type) or justify the exception.
  raw-mutex       In the annotated dirs, no std::mutex / std::lock_guard /
                  std::unique_lock / std::scoped_lock tokens: all locking
                  flows through ordo::Mutex + ordo::MutexLock so the clang
                  -Wthread-safety pass sees it (src/core/thread_safety.hpp
                  itself is the one sanctioned wrapper site).
  bare-allow      An `ordo-analyze: allow(...)` comment with no inline
                  justification text. A bare allow suppresses nothing.

Suppressions:
  // ordo-analyze: allow(rule) <one-line justification>
  on the offending line, or on one of the 2 lines above a multi-line
  declaration. The justification is mandatory (rule bare-allow).

Usage:
  tools/ordo_analyze.py [paths...]   analyze (default: src)
  tools/ordo_analyze.py --self-test  verify every rule fires on a seeded
                                     violation and honours suppressions

Exit status: 0 clean, 1 violations (or a failed self-test).
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATHS = ["src"]
CXX_EXTENSIONS = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}

# Directories whose locking is required to flow through the annotated
# ordo::Mutex wrappers (raw-mutex) and whose mutex-holding classes must be
# fully annotated (guard-coverage).
ANNOTATED_DIRS = ("src/pipeline", "src/engine", "src/obs", "src/select")

ALLOW_RE = re.compile(r"//\s*ordo-analyze:\s*allow\(([\w,\s-]+)\)\s*(.*)")
MIN_JUSTIFICATION = 10  # characters of inline why-text an allow must carry

ALL_RULES = [
    "lock-order",
    "memory-order",
    "relaxed-note",
    "timed-region",
    "cancel-poll",
    "guard-coverage",
    "raw-mutex",
    "bare-allow",
]


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def rel(path):
    try:
        return os.path.relpath(path, REPO_ROOT)
    except ValueError:
        return path


def in_annotated_dir(relpath):
    posix = relpath.replace(os.sep, "/")
    return any(posix == d or posix.startswith(d + "/") for d in ANNOTATED_DIRS)


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments so rule regexes only
    see code. Block comments are handled line-locally (good enough for this
    tree, which does not use multi-line /* */ in code positions)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            end = line.find("*/", i + 2)
            if end == -1:
                break
            out.append(" " * (end + 2 - i))
            i = end + 2
            continue
        if c in ('"', "'"):
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class SourceFile:
    """One parsed file: raw lines, code-only lines, and allow() sites."""

    def __init__(self, path, text):
        self.path = path
        self.rel = rel(path)
        self.raw = text.splitlines()
        self.code = [strip_comments_and_strings(l) for l in self.raw]
        # line number (1-based) -> (set of allowed rules, justification)
        self.allows = {}
        for idx, line in enumerate(self.raw):
            m = ALLOW_RE.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                self.allows[idx + 1] = (rules, m.group(2).strip())

    def allowed(self, lineno, rule, lookback=0):
        """True if an allow(rule) with a justification covers `lineno` (the
        line itself or up to `lookback` lines above it)."""
        for ln in range(max(1, lineno - lookback), lineno + 1):
            entry = self.allows.get(ln)
            if entry and rule in entry[0] and len(entry[1]) >= MIN_JUSTIFICATION:
                return True
        return False


# ---------------------------------------------------------------------------
# Structural parse: classes, data members, function bodies.
# ---------------------------------------------------------------------------

KEYWORD_HEADS = {
    "if", "for", "while", "switch", "catch", "do", "else", "return",
    "sizeof", "alignof", "decltype", "static_assert", "new", "throw",
}
CLASS_HEAD_RE = re.compile(
    r"\b(?:class|struct)\s+(?:ORDO_\w+\s*\([^)]*\)\s*)*(\w+)\b(?!\s*;)")
MUTEX_MEMBER_RE = re.compile(r"\b(?:ordo::)?Mutex\s+(\w+)\s*;")
MEMBER_EXEMPT_TYPES_RE = re.compile(
    r"std::atomic\b|std::condition_variable\b|std::thread\b|"
    r"std::once_flag\b|\bMutex\b")
GUARDED_RE = re.compile(r"ORDO_(?:PT_)?GUARDED_BY\s*\(")
REQUIRES_RE = re.compile(r"ORDO_REQUIRES\s*\(([^)]*)\)")


class ClassInfo:
    def __init__(self, name, file, line):
        self.name = name
        self.file = file          # SourceFile
        self.line = line
        self.mutexes = []         # member names of type ordo::Mutex
        self.members = []         # (stmt_text, first_lineno) data members


class FuncInfo:
    def __init__(self, name, qualclass, file, line):
        self.name = name
        self.qualclass = qualclass  # enclosing/qualifying class name or None
        self.file = file            # SourceFile
        self.line = line
        self.requires = []          # ORDO_REQUIRES expressions (signature)
        self.signature = ""         # full signature text (for param types)
        self.body = []              # (lineno, code_line)


def classify_pending(pending):
    """What does the '{' we just hit open? Returns ('namespace'|'class'|
    'enum'|'func'|'block', name-or-None, requires-list)."""
    text = pending.strip()
    if not text:
        return ("block", None, [])
    if re.search(r"\bnamespace\b", text) and "(" not in text:
        return ("namespace", None, [])
    if re.search(r"\benum\b", text):
        return ("enum", None, [])
    m = CLASS_HEAD_RE.search(text)
    if m and "=" not in text.split("{")[0] and "(" not in text[: m.start()]:
        # `struct X {` / `class ORDO_CAPABILITY("m") X {` — but not
        # `Type x = SomeStruct{...}` expressions.
        if not re.search(r"\)\s*$", text):
            return ("class", m.group(1), [])
    paren = text.find("(")
    if paren > 0 and "=" not in text[:paren]:
        head = text[:paren].rstrip()
        name_m = re.search(r"([~\w]+)\s*$", head)
        if name_m and name_m.group(1) not in KEYWORD_HEADS:
            name = name_m.group(1)
            qual_m = re.search(r"(\w+)\s*::\s*[~\w]+\s*$", head)
            qual = qual_m.group(1) if qual_m else None
            requires = REQUIRES_RE.findall(text)
            return ("func", name, requires, qual)
    return ("block", None, [])


def parse_structure(files):
    """Walks every file's braces once, producing the class table and the
    function index (file-scope functions and inline class methods alike)."""
    classes = {}   # name -> ClassInfo (last definition wins; names unique)
    functions = {}  # name -> [FuncInfo, ...]

    for f in files:
        # Context stack entries: [kind, name, class_obj_or_func_obj]
        stack = []
        pending = ""
        pending_start = None
        member_start = None
        member_text = ""

        def top_kind():
            return stack[-1][0] if stack else "global"

        for idx, code in enumerate(f.code):
            lineno = idx + 1
            if code.lstrip().startswith("#"):
                # Preprocessor lines carry no structure and would pollute
                # the pending-statement text (e.g. #define parens).
                for kind, _name, obj in stack:
                    if kind == "func":
                        obj.body.append((lineno, ""))
                        break
                continue
            i = 0
            while i < len(code):
                c = code[i]
                if c == "{":
                    info = classify_pending(pending)
                    kind = info[0]
                    if kind == "func" and top_kind() in (
                            "global", "namespace", "class"):
                        qual = info[3]
                        if qual is None and top_kind() == "class":
                            qual = stack[-1][1]
                        fn = FuncInfo(info[1], qual, f,
                                      pending_start or lineno)
                        fn.requires = info[2]
                        fn.signature = pending.strip()
                        functions.setdefault(fn.name, []).append(fn)
                        stack.append(["func", fn.name, fn])
                    elif kind == "class" and top_kind() in (
                            "global", "namespace", "class"):
                        cls = ClassInfo(info[1], f, pending_start or lineno)
                        classes[cls.name] = cls
                        stack.append(["class", cls.name, cls])
                        member_text, member_start = "", None
                    elif kind == "namespace" and top_kind() in (
                            "global", "namespace"):
                        stack.append(["namespace", None, None])
                    else:
                        stack.append(["block", None, None])
                    pending = ""
                    pending_start = None
                elif c == "}":
                    if stack:
                        stack.pop()
                    pending = ""
                    pending_start = None
                    member_text, member_start = "", None
                elif c == ";":
                    if top_kind() == "class" and member_text.strip():
                        cls = stack[-1][2]
                        stmt = member_text.strip()
                        cls.members.append((stmt, member_start or lineno))
                        mm = MUTEX_MEMBER_RE.search(stmt + ";")
                        if mm:
                            cls.mutexes.append(mm.group(1))
                    pending = ""
                    pending_start = None
                    member_text, member_start = "", None
                else:
                    if pending.strip() == "" and not c.isspace():
                        pending_start = lineno
                    pending += c
                    if top_kind() == "class":
                        if member_text.strip() == "" and not c.isspace():
                            member_start = lineno
                        member_text += c
                i += 1
            # Record body lines for every function on the stack (innermost
            # functions see their own lines; an enclosing function also owns
            # its nested blocks' lines, which is what the rules want).
            for kind, _name, obj in stack:
                if kind == "func":
                    obj.body.append((lineno, code))
                    break  # only the outermost function collects
            pending += " "
            if top_kind() == "class" and member_text:
                member_text += " "
    return classes, functions


# ---------------------------------------------------------------------------
# Rule: guard-coverage
# ---------------------------------------------------------------------------

ACCESS_LABEL_RE = re.compile(r"\b(?:public|private|protected)\s*:")


def check_guard_coverage(classes, violations):
    for cls in classes.values():
        if not cls.mutexes or not in_annotated_dir(cls.file.rel):
            continue
        for stmt, lineno in cls.members:
            text = ACCESS_LABEL_RE.sub("", stmt).strip()
            if not text:
                continue
            head = text.split()[0]
            if head in ("using", "typedef", "friend", "template", "static",
                        "constexpr", "enum", "class", "struct", "operator"):
                continue
            # Members are declared with brace/default/no init in this tree,
            # so any parenthesis marks a function declaration — except the
            # parens of the ORDO_* attribute macros themselves.
            bare = re.sub(r"ORDO_\w+\s*\([^)]*\)", "", text)
            if "(" in bare:
                continue
            if MEMBER_EXEMPT_TYPES_RE.search(text):
                continue
            if GUARDED_RE.search(stmt):
                continue
            if cls.file.allowed(lineno, "guard-coverage", lookback=2):
                continue
            name_m = re.search(r"(\w+)\s*(?:\[[^\]]*\])?\s*(?:=.*|\{.*\})?$",
                               text)
            member = name_m.group(1) if name_m else text
            violations.append(Violation(
                cls.file.rel, lineno, "guard-coverage",
                f"member '{member}' of mutex-holding class '{cls.name}' has "
                f"no ORDO_GUARDED_BY annotation (annotate it, or justify "
                f"with // ordo-analyze: allow(guard-coverage) <why>)"))


# ---------------------------------------------------------------------------
# Rule: raw-mutex
# ---------------------------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"std::(?:recursive_|shared_|timed_)?mutex\b|std::lock_guard\b|"
    r"std::unique_lock\b|std::scoped_lock\b")


def check_raw_mutex(f, violations):
    if not in_annotated_dir(f.rel):
        return
    for idx, code in enumerate(f.code):
        lineno = idx + 1
        if RAW_MUTEX_RE.search(code):
            if f.allowed(lineno, "raw-mutex", lookback=1):
                continue
            violations.append(Violation(
                f.rel, lineno, "raw-mutex",
                "raw std::mutex/lock types are invisible to -Wthread-safety; "
                "use ordo::Mutex + ordo::MutexLock (core/thread_safety.hpp)"))


# ---------------------------------------------------------------------------
# Rule: memory-order (multi-line aware) and relaxed-note
# ---------------------------------------------------------------------------

ATOMIC_OP_RE = re.compile(
    r"\.(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or|"
    r"fetch_xor|compare_exchange_weak|compare_exchange_strong|"
    r"test_and_set|clear|wait|notify_one|notify_all)\s*\(")
# Ops whose default argument list may legitimately be empty of orders only
# if an order token appears; notify_* take none and are skipped.
ORDERLESS_OPS = {"notify_one", "notify_all"}
COMMENT_RE = re.compile(r"//\s*\S")


def collect_call_args(f, start_idx, open_col, max_lines=8):
    """Returns the argument text of a call whose '(' sits at
    f.code[start_idx][open_col], following line breaks."""
    depth = 0
    parts = []
    for idx in range(start_idx, min(start_idx + max_lines, len(f.code))):
        line = f.code[idx]
        begin = open_col if idx == start_idx else 0
        for col in range(begin, len(line)):
            c = line[col]
            if c == "(":
                depth += 1
                if depth == 1:
                    continue
            elif c == ")":
                depth -= 1
                if depth == 0:
                    return "".join(parts)
            if depth >= 1:
                parts.append(c)
        parts.append(" ")
    return "".join(parts)  # unbalanced: give the rule what we saw


def check_memory_order(f, violations):
    for idx, code in enumerate(f.code):
        lineno = idx + 1
        for m in ATOMIC_OP_RE.finditer(code):
            op = m.group(1)
            if op in ORDERLESS_OPS:
                continue
            # Only lines that plausibly act on an atomic: the receiver ends
            # in an identifier / ] / ) right before the dot.
            if m.start() == 0 or not re.search(r"[\w\])]$",
                                               code[: m.start()]):
                continue
            args = collect_call_args(f, idx, m.end() - 1)
            if "memory_order" in args:
                continue
            # `clear`/`wait`/`test_and_set` on non-atomics (containers,
            # condvars) are everyday C++; only hold them to the rule when
            # an order is plainly intended, i.e. never bare.
            if op in ("clear", "wait", "test_and_set"):
                continue
            if f.allowed(lineno, "memory-order"):
                continue
            violations.append(Violation(
                f.rel, lineno, "memory-order",
                f"atomic .{op}() without an explicit std::memory_order "
                f"argument (seq_cst by default hides intent and fences the "
                f"hot path)"))


def check_relaxed_note(f, violations):
    for idx, raw in enumerate(f.raw):
        lineno = idx + 1
        if "memory_order_relaxed" not in f.code[idx]:
            continue
        has_note = bool(COMMENT_RE.search(raw))
        if not has_note:
            for back in range(1, 5):
                j = idx - back
                if j < 0:
                    break
                if COMMENT_RE.search(f.raw[j]):
                    has_note = True
                    break
        if not has_note:
            # A comment that says "relaxed" earlier in the same block covers
            # a whole batch of tallies (stats counters, snapshot readers);
            # the scan stops at the head or end of the enclosing function.
            for back in range(1, 61):
                j = idx - back
                if j < 0:
                    break
                raw_above = f.raw[j]
                if COMMENT_RE.search(raw_above) and "relax" in \
                        raw_above.lower():
                    has_note = True
                    break
                code_above = f.code[j].rstrip()
                if raw_above.startswith("}"):
                    break
                if raw_above[:1].strip() and code_above.endswith("{"):
                    break
        if has_note:
            continue
        if f.allowed(lineno, "relaxed-note"):
            continue
        violations.append(Violation(
            f.rel, lineno, "relaxed-note",
            "memory_order_relaxed without a justification comment on the "
            "line or within the 4 lines above — say why relaxed is safe"))


# ---------------------------------------------------------------------------
# Rule: timed-region
# ---------------------------------------------------------------------------

STOPWATCH_DECL_RE = re.compile(r"\b(?:obs::)?Stopwatch\s+(\w+)\s*;")
SCOPE_DECL_RE = re.compile(r"\b(?:obs::hw::)?CounterScope\s+(\w+)\s*\(")
TIMED_FLAGS = [
    ("logging", re.compile(r"\blogf\s*\(|\bf?printf\s*\(|std::cout\b|"
                           r"std::cerr\b")),
    ("locking", re.compile(r"\bMutexLock\b|std::lock_guard\b|"
                           r"std::unique_lock\b|\.lock\s*\(\s*\)")),
    ("allocation", re.compile(r"\bnew\s+\w|\bmake_unique\s*<|"
                              r"\bmake_shared\s*<|\bmalloc\s*\(|"
                              r"\bcalloc\s*\(")),
    ("string-build", re.compile(r"std::to_string\s*\(|std::ostringstream\b|"
                                r"\bstd::string\s+\w+\s*[=({]")),
]


def brace_delta(code):
    return code.count("{") - code.count("}")


def scan_timed_region(f, start_idx, end_re, violations):
    """Flags overhead between `start_idx` (exclusive) and the first line
    matching `end_re` (exclusive) or the close of the declaring scope."""
    depth = brace_delta(f.code[start_idx])
    for idx in range(start_idx + 1, len(f.code)):
        code = f.code[idx]
        if end_re.search(code):
            return
        depth += brace_delta(code)
        if depth < 0:
            return
        lineno = idx + 1
        for label, pattern in TIMED_FLAGS:
            if pattern.search(code):
                if f.allowed(lineno, "timed-region", lookback=1):
                    continue
                violations.append(Violation(
                    f.rel, lineno, "timed-region",
                    f"{label} inside a timed region (started at "
                    f"{f.rel}:{start_idx + 1}) — it lands inside the "
                    f"measured quantity; hoist it out or read the clock "
                    f"first"))


def check_timed_region(f, violations):
    for idx, code in enumerate(f.code):
        m = STOPWATCH_DECL_RE.search(code)
        if m:
            var = re.escape(m.group(1))
            end_re = re.compile(
                rf"\b{var}\s*\.\s*(?:seconds|millis|micros)\s*\(")
            scan_timed_region(f, idx, end_re, violations)
        m = SCOPE_DECL_RE.search(code)
        if m:
            var = re.escape(m.group(1))
            end_re = re.compile(rf"\b{var}\s*\.\s*stop\s*\(")
            scan_timed_region(f, idx, end_re, violations)


# ---------------------------------------------------------------------------
# Rule: cancel-poll
# ---------------------------------------------------------------------------

CANCEL_ROOT = "run_matrix_study"
CANCEL_TARGETS = ("nd_ordering", "partition_graph", "partition_hypergraph")
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")


def body_calls(fn, functions):
    calls = set()
    for _lineno, code in fn.body:
        for m in CALL_RE.finditer(code):
            name = m.group(1)
            if name in functions and name != fn.name:
                calls.add(name)
    return calls


def reachable_from(root, functions):
    seen = set()
    frontier = [root]
    while frontier:
        name = frontier.pop()
        if name in seen or name not in functions:
            continue
        seen.add(name)
        for fn in functions[name]:
            frontier.extend(body_calls(fn, functions))
    return seen


def subtree_polls(root, functions):
    for name in reachable_from(root, functions):
        for fn in functions.get(name, []):
            for _lineno, code in fn.body:
                if "poll_cancelled" in code:
                    return True
    return False


def check_cancel_poll(functions, violations):
    if CANCEL_ROOT not in functions:
        return  # partial-tree run; the rule only means something repo-wide
    root_fn = functions[CANCEL_ROOT][0]
    reach = reachable_from(CANCEL_ROOT, functions)

    def report(fn, message):
        if fn.file.allowed(fn.line, "cancel-poll", lookback=1):
            return
        violations.append(Violation(fn.file.rel, fn.line, "cancel-poll",
                                    message))

    if not any("poll_cancelled" in code for _l, code in root_fn.body):
        report(root_fn,
               f"{CANCEL_ROOT} never calls poll_cancelled() itself — the "
               f"study loop must observe cancellation between phases")
    for target in CANCEL_TARGETS:
        if target not in functions:
            report(root_fn,
                   f"cancellation target {target}() not found in the "
                   f"scanned tree")
            continue
        fn = functions[target][0]
        if target not in reach:
            report(fn,
                   f"{target}() is not reachable from {CANCEL_ROOT}() — "
                   f"the study no longer exercises this reordering path "
                   f"(update CANCEL_TARGETS if that is deliberate)")
        if not subtree_polls(target, functions):
            report(fn,
                   f"no poll_cancelled() call is reachable from {target}() "
                   f"— this super-linear path cannot be cancelled")


# ---------------------------------------------------------------------------
# Rule: lock-order
# ---------------------------------------------------------------------------

ACQUIRE_RE = re.compile(r"\bMutexLock\s+(\w+)\s*\(\s*([^)]+?)\s*\)")
UNLOCK_RE = re.compile(r"\b(\w+)\s*\.\s*unlock\s*\(\s*\)")
LOCAL_TYPE_RE = re.compile(r"\b([A-Z]\w*)\s*[&*]\s*(\w+)\b")


def resolve_mutex(expr, fn, classes, member_owners, local_types):
    """Canonical mutex identity for an acquisition expression."""
    expr = expr.strip().replace("this->", "")
    if expr.endswith("()"):
        return f"{fn.file.rel}::{expr}"
    m = re.search(r"(\w+)\s*(?:\.|->)\s*(\w+)$", expr)
    if m:
        recv, member = m.group(1), m.group(2)
        recv_type = local_types.get(recv)
        if recv_type and member in [
                mu for mu in getattr(classes.get(recv_type), "mutexes", [])]:
            return f"{recv_type}::{member}"
        owners = member_owners.get(member, [])
        if len(owners) == 1:
            return f"{owners[0]}::{member}"
        return f"{fn.file.rel}::{expr}"
    member = expr
    if fn.qualclass and member in getattr(
            classes.get(fn.qualclass), "mutexes", []):
        return f"{fn.qualclass}::{member}"
    owners = member_owners.get(member, [])
    if len(owners) == 1:
        return f"{owners[0]}::{member}"
    return f"{fn.file.rel}::{member}"


def function_acquisitions(fn, classes, member_owners):
    """All (mutex_id, lineno) a function acquires, plus the nesting edges
    (held_id, acquired_id, lineno) and the direct calls made while holding
    a lock (held_id, callee, lineno)."""
    local_types = {}
    for m in LOCAL_TYPE_RE.finditer(fn.signature):
        local_types.setdefault(m.group(2), m.group(1))
    for _lineno, code in fn.body:
        for m in LOCAL_TYPE_RE.finditer(code):
            local_types.setdefault(m.group(2), m.group(1))
    held = []  # [depth_at_acquisition, lock_var, mutex_id]
    acquisitions, edges, held_calls = [], [], []
    base = [resolve_mutex(r, fn, classes, member_owners, local_types)
            for r in fn.requires]
    depth = 0
    for lineno, code in fn.body:
        for m in ACQUIRE_RE.finditer(code):
            mid = resolve_mutex(m.group(2), fn, classes, member_owners,
                                local_types)
            acq_depth = (depth + code[: m.start()].count("{")
                         - code[: m.start()].count("}"))
            for held_id in base + [h[2] for h in held]:
                edges.append((held_id, mid, lineno))
            held.append([acq_depth, m.group(1), mid])
            acquisitions.append((mid, lineno))
        for m in UNLOCK_RE.finditer(code):
            held = [h for h in held if h[1] != m.group(1)]
        if held or base:
            for m in CALL_RE.finditer(code):
                name = m.group(1)
                # Only free-function calls propagate: `obj.method()` tokens
                # would collide with unrelated methods of the same name
                # (every container's empty()/size() would alias whichever
                # class method the index happens to hold).
                before = code[: m.start()].rstrip()
                if before.endswith(".") or before.endswith("->"):
                    continue
                if name not in ("MutexLock",):
                    for held_id in base + [h[2] for h in held]:
                        held_calls.append((held_id, name, lineno))
        # A lock dies when the scope it was declared in closes, i.e. the
        # brace depth drops below the depth recorded at its acquisition.
        depth += brace_delta(code)
        held = [h for h in held if depth >= h[0]]
    return acquisitions, edges, held_calls


def check_lock_order(classes, functions, violations):
    member_owners = {}
    for cls in classes.values():
        for mu in cls.mutexes:
            member_owners.setdefault(mu, []).append(cls.name)

    func_acqs = {}  # name -> set of mutex ids it acquires anywhere
    edges = {}      # (a, b) -> (file, line)
    pending_calls = []
    for name, fns in functions.items():
        acquired = set()
        for fn in fns:
            acqs, fn_edges, held_calls = function_acquisitions(
                fn, classes, member_owners)
            acquired.update(mid for mid, _ in acqs)
            for a, b, lineno in fn_edges:
                if fn.file.allowed(lineno, "lock-order", lookback=1):
                    continue
                edges.setdefault((a, b), (fn.file.rel, lineno))
            for held_id, callee, lineno in held_calls:
                if fn.file.allowed(lineno, "lock-order", lookback=1):
                    continue
                pending_calls.append((held_id, callee, fn.file.rel, lineno))
        func_acqs[name] = acquired
    # One level of call propagation: holding A while calling f() that
    # acquires B orders A before B.
    for held_id, callee, relpath, lineno in pending_calls:
        for b in func_acqs.get(callee, ()):
            if held_id != b:
                edges.setdefault((held_id, b), (relpath, lineno))

    graph = {}
    for (a, b), _site in edges.items():
        graph.setdefault(a, set()).add(b)

    # Cycle detection: iterative DFS with colors.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in graph}
    reported = set()

    def find_cycle(start):
        stack = [(start, iter(sorted(graph.get(start, ()))))]
        path = [start]
        color[start] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color.get(nxt, WHITE) == GRAY and nxt in path:
                    cycle = path[path.index(nxt):] + [nxt]
                    for node_on_path in path:
                        color[node_on_path] = BLACK
                    return cycle
                if color.get(nxt, WHITE) == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(sorted(graph.get(nxt, ())))))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
        return None

    for node in sorted(graph):
        if color.get(node, WHITE) != WHITE:
            continue
        cycle = find_cycle(node)
        if not cycle:
            continue
        key = frozenset(cycle)
        if key in reported:
            continue
        reported.add(key)
        first_edge = (cycle[0], cycle[1])
        site = edges.get(first_edge, ("src", 0))
        chain = " -> ".join(cycle)
        violations.append(Violation(
            site[0], site[1], "lock-order",
            f"lock acquisition cycle (potential deadlock): {chain}; "
            f"establish a single order or break the nesting"))


# ---------------------------------------------------------------------------
# Rule: bare-allow
# ---------------------------------------------------------------------------

def check_bare_allow(f, violations):
    for lineno, (rules, justification) in sorted(f.allows.items()):
        if len(justification) < MIN_JUSTIFICATION:
            violations.append(Violation(
                f.rel, lineno, "bare-allow",
                f"allow({', '.join(sorted(rules))}) carries no inline "
                f"justification — say in the same comment why the rule "
                f"does not apply here (a bare allow suppresses nothing)"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(paths):
    files = []
    for path in paths:
        absolute = path if os.path.isabs(path) else os.path.join(REPO_ROOT,
                                                                 path)
        if os.path.isfile(absolute):
            if os.path.splitext(absolute)[1] in CXX_EXTENSIONS:
                files.append(absolute)
            continue
        for root, dirs, names in os.walk(absolute):
            dirs.sort()
            for name in sorted(names):
                if os.path.splitext(name)[1] in CXX_EXTENSIONS:
                    files.append(os.path.join(root, name))
    return files


def run_analysis(paths):
    files = []
    for path in collect_files(paths):
        try:
            with open(path, encoding="utf-8", errors="replace") as handle:
                files.append(SourceFile(path, handle.read()))
        except OSError as error:
            print(f"ordo_analyze: cannot read {path}: {error}",
                  file=sys.stderr)
    violations = []
    classes, functions = parse_structure(files)
    for f in files:
        check_raw_mutex(f, violations)
        check_memory_order(f, violations)
        check_relaxed_note(f, violations)
        check_timed_region(f, violations)
        check_bare_allow(f, violations)
    check_guard_coverage(classes, violations)
    check_cancel_poll(functions, violations)
    check_lock_order(classes, functions, violations)
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


# ---------------------------------------------------------------------------
# Self-test
# ---------------------------------------------------------------------------

SELF_TEST_FIXTURES = {
    # Each entry: relative path -> source. "bad" files must fire the rule;
    # "ok" files exercise the justified-allow path and must stay silent.
    "src/obs/bad_lock_order.cpp": """
struct LeftHolder { Mutex left; };
struct RightHolder { Mutex right; };
void take_left_then_right(LeftHolder& a, RightHolder& b) {
  MutexLock first(a.left);
  MutexLock second(b.right);
}
void take_right_then_left(LeftHolder& a, RightHolder& b) {
  MutexLock first(b.right);
  MutexLock second(a.left);
}
""",
    "src/obs/ok_lock_order.cpp": """
struct UpHolder { Mutex up; };
struct DownHolder { Mutex down; };
void order_a(UpHolder& a, DownHolder& b) {
  MutexLock first(a.up);
  MutexLock second(b.down);
}
void order_b(UpHolder& a, DownHolder& b) {
  MutexLock first(b.down);
  // ordo-analyze: allow(lock-order) self-test: inversion is quarantined
  MutexLock second(a.up);
}
""",
    "src/obs/bad_memory_order.cpp": """
#include <atomic>
void tick(std::atomic<int>& n) {
  n.store(1);
}
""",
    "src/obs/ok_memory_order.cpp": """
#include <atomic>
void tick(std::atomic<int>& n) {
  n.store(1);  // ordo-analyze: allow(memory-order) self-test: deliberate
  // Relaxed: self-test fixture, no ordering needed.
  n.store(2,
          std::memory_order_relaxed);
}
""",
    "src/obs/bad_relaxed_note.cpp": """
#include <atomic>
int peek(const std::atomic<int>& n) {

  return n.load(std::memory_order_relaxed);
}
""",
    "src/obs/ok_relaxed_note.cpp": """
#include <atomic>
int peek(const std::atomic<int>& n) {
  // ordo-analyze: allow(relaxed-note) self-test: justified via allow form
  return n.load(std::memory_order_relaxed);
}
""",
    "src/core/bad_timed_region.cpp": """
void measure() {
  obs::Stopwatch watch;
  std::string label = make_label();
  record(watch.seconds());
}
""",
    "src/core/ok_timed_region.cpp": """
void measure() {
  obs::Stopwatch watch;
  // ordo-analyze: allow(timed-region) self-test: label build is measured
  std::string label = make_label();
  record(watch.seconds());
}
""",
    "src/core/study.cpp": """
void run_matrix_study() {
  poll_cancelled(cancel, "study");
  nd_ordering();
  partition_graph();
  partition_hypergraph();
}
void nd_ordering() {
  dissect();
}
void dissect() {
  recurse();
}
void partition_graph() {
  poll_cancelled(cancel, "gp");
}
// ordo-analyze: allow(cancel-poll) self-test: suppressed target below
void partition_hypergraph() {
  refine();
}
""",
    "src/obs/bad_guard.cpp": """
struct Unguarded {
  Mutex mutex;
  int counter;
};
""",
    "src/obs/ok_guard.cpp": """
struct Guarded {
  Mutex mutex;
  int counter ORDO_GUARDED_BY(mutex);
  // ordo-analyze: allow(guard-coverage) self-test: write-once before spawn
  int config;
};
""",
    "src/obs/bad_raw_mutex.cpp": """
#include <mutex>
std::mutex raw_guard;
""",
    "src/obs/ok_raw_mutex.cpp": """
#include <mutex>
// ordo-analyze: allow(raw-mutex) self-test: sanctioned wrapper fixture
std::mutex raw_guard;
""",
    "src/obs/bad_bare_allow.cpp": """
#include <mutex>
std::mutex raw_guard;  // ordo-analyze: allow(raw-mutex)
""",
}

SELF_TEST_EXPECT = {
    "lock-order": "bad_lock_order.cpp",
    "memory-order": "bad_memory_order.cpp",
    "relaxed-note": "bad_relaxed_note.cpp",
    "timed-region": "bad_timed_region.cpp",
    "cancel-poll": "study.cpp",
    "guard-coverage": "bad_guard.cpp",
    "raw-mutex": "bad_raw_mutex.cpp",
    "bare-allow": "bad_bare_allow.cpp",
}


def self_test():
    global REPO_ROOT
    failures = []
    with tempfile.TemporaryDirectory(prefix="ordo_analyze_selftest_") as tmp:
        for relpath, source in SELF_TEST_FIXTURES.items():
            path = os.path.join(tmp, relpath)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(source.lstrip("\n"))
        saved_root = REPO_ROOT
        REPO_ROOT = tmp
        try:
            violations = run_analysis(["src"])
        finally:
            REPO_ROOT = saved_root
    by_rule = {}
    for v in violations:
        by_rule.setdefault(v.rule, []).append(v)
    for rule, bad_file in sorted(SELF_TEST_EXPECT.items()):
        hits = [v for v in by_rule.get(rule, []) if bad_file in v.path]
        if not hits:
            failures.append(f"rule '{rule}' did not fire on seeded "
                            f"violation in {bad_file}")
    for v in violations:
        basename = os.path.basename(v.path)
        if basename.startswith("ok_"):
            failures.append(f"justified allow() was not honoured: {v}")
        if basename == "study.cpp" and "partition_hypergraph" in v.message:
            failures.append(f"cancel-poll allow() was not honoured: {v}")
    # The seeded bare allow must both fire bare-allow and fail to suppress.
    if not any(v.rule == "raw-mutex" and "bad_bare_allow" in v.path
               for v in violations):
        failures.append("a bare allow() suppressed a violation")
    if failures:
        for failure in failures:
            print(f"self-test FAILED: {failure}")
        print("--- violations seen ---")
        for v in violations:
            print(f"  {v}")
        return 1
    print(f"ordo_analyze self-test OK ({len(ALL_RULES)} rules verified)")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Deep static pass: lock ordering, memory orders, timed "
                    "regions, cancellation coverage, guard annotations.")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories (default: src)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on seeded violations")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    paths = args.paths or DEFAULT_PATHS
    violations = run_analysis(paths)
    for violation in violations:
        print(violation)
    if violations:
        print(f"ordo_analyze: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
