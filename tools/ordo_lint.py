#!/usr/bin/env python3
"""ordo_lint: repo-specific static checks the generic tools don't cover.

Rules (see docs/ARCHITECTURE.md "Correctness tooling" for rationale):

  random         src/ only. No rand()/srand()/std::random_device: every
                 random choice in the library must flow through the seeded,
                 deterministic generators (reproducible studies).
  thread         src/ only, src/pipeline/ and src/obs/status/ exempt. No
                 naked std::thread: concurrency lives behind the pipeline
                 scheduler so error isolation, cancellation and TSan
                 coverage stay centralised (the status listener/heartbeat
                 service threads are the deliberate exception).
  io             src/ only, src/obs/ and src/core/gnuplot.* exempt. No
                 printf/std::cout/std::cerr console output: the library
                 reports through ordo::obs (snprintf/vsnprintf formatting
                 into buffers is fine).
  omp            src/ only, src/engine/ and src/spmv/ exempt. No
                 #pragma omp: OpenMP parallelism lives behind the engine's
                 registered kernels — other layers consume prepared plans
                 (engine::prepare_plan / engine::spmv), never raw threads.
  socket         src/ only, src/obs/status/ exempt. No raw POSIX sockets
                 (::socket/::bind/::listen/::accept/::connect or the
                 <sys/socket.h> family): the loopback-only status listener
                 is the single sanctioned network surface in the library.
  mmap           src/ only, src/sparse/ exempt. No raw memory mapping
                 (::mmap/::munmap/::ftruncate or <sys/mman.h>): the
                 out-of-core storage backend (sparse/storage.hpp) is the
                 single sanctioned mapping surface — everything else
                 consumes CsrStorage spans and stays backend-agnostic.
  memory_order   src/ only. Every std::atomic operation that opens and
                 closes on one line (.load/.store/.exchange/.fetch_*/
                 .compare_exchange_*) must pass an explicit
                 std::memory_order — seq_cst-by-default hides intent.
                 Multi-line calls are audited by tools/ordo_analyze.py.
  float-eq       src/ only. No == / != on floating-point values (float
                 literals, or identifiers declared double/float in the same
                 file). Use explicit tolerances — or suppress where exact
                 equality is the point (bit-identity contracts).
  pragma-once    Every header must use #pragma once (matches the tree; no
                 include guards to drift).
  include-order  Within each contiguous #include block, paths must be
                 sorted (the prevailing style: own header first, then a
                 sorted <system> block, then a sorted "project" block).

Suppressions:
  // ordo-lint: allow(rule)        on the offending line
  // ordo-lint: allow-file(rule)   anywhere in the file, whole-file

Usage:
  tools/ordo_lint.py [paths...]   lint (default: src tests bench tools)
  tools/ordo_lint.py --self-test  verify every rule fires on a seeded
                                  violation and honours suppressions

Exit status: 0 clean, 1 violations (or a failed self-test).
"""

import argparse
import os
import re
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_PATHS = ["src", "tests", "bench", "tools"]
CXX_EXTENSIONS = {".cpp", ".hpp", ".cc", ".hh", ".cxx", ".h"}
HEADER_EXTENSIONS = {".hpp", ".hh", ".h"}

ALLOW_LINE_RE = re.compile(r"//\s*ordo-lint:\s*allow\(([\w,\s-]+)\)")
ALLOW_FILE_RE = re.compile(r"//\s*ordo-lint:\s*allow-file\(([\w,\s-]+)\)")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line):
    """Blanks out string/char literals and // comments so rule regexes only
    see code. Block comments are handled line-locally (good enough for this
    tree, which does not use multi-line /* */ in code positions)."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == '/' and i + 1 < n and line[i + 1] == '/':
            break
        if c == '/' and i + 1 < n and line[i + 1] == '*':
            end = line.find("*/", i + 2)
            if end == -1:
                break
            out.append(" " * (end + 2 - i))
            i = end + 2
            continue
        if c in ('"', "'"):
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def rel(path):
    try:
        return os.path.relpath(path, REPO_ROOT)
    except ValueError:
        return path


def in_src(relpath):
    return relpath.startswith("src" + os.sep)


# --- simple token rules ----------------------------------------------------

RANDOM_RE = re.compile(r"\bstd::random_device\b|(?<![\w:])s?rand\s*\(")
THREAD_RE = re.compile(r"\bstd::thread\b")
CHRONO_RE = re.compile(r"\bstd::chrono\b")
IO_RE = re.compile(
    r"\bstd::c(?:out|err|log)\b|(?<![\w:])(?:f|v|vf)?printf\s*\(|(?<![\w:])f?puts\s*\(")
OMP_RE = re.compile(r"#\s*pragma\s+omp\b")
SOCKET_RE = re.compile(
    r"::\s*(?:socket|bind|listen|accept|connect)\s*\("
    r"|<sys/socket\.h>|<netinet/|<arpa/inet\.h>")
MMAP_RE = re.compile(
    r"::\s*(?:mmap|munmap|ftruncate)\s*\(|<sys/mman\.h>")
# An atomic op whose argument list closes on the same line and names no
# memory_order. Nested-paren and multi-line calls are left to the deeper
# pass in tools/ordo_analyze.py.
MEMORY_ORDER_RE = re.compile(
    r"[\w\])]\.(?:load|store|exchange|fetch_add|fetch_sub|fetch_and|"
    r"fetch_or|fetch_xor|compare_exchange_weak|compare_exchange_strong)"
    r"\s*\(([^()]*)\)")


def memory_order_violations(code):
    return any("memory_order" not in m.group(1)
               for m in MEMORY_ORDER_RE.finditer(code))


def io_exempt(relpath):
    if relpath.startswith(os.path.join("src", "obs") + os.sep):
        return True
    return os.path.basename(relpath).startswith("gnuplot.")


def omp_exempt(relpath):
    return relpath.startswith(
        (os.path.join("src", "engine") + os.sep,
         os.path.join("src", "spmv") + os.sep))


def thread_exempt(relpath):
    # The pipeline scheduler owns worker threads; the status listener and
    # heartbeat writer each need one detachable service thread (they cannot
    # run on pool workers — they must keep serving while the pool is busy).
    return relpath.startswith(
        (os.path.join("src", "pipeline") + os.sep,
         os.path.join("src", "obs", "status") + os.sep))


def socket_exempt(relpath):
    return relpath.startswith(
        os.path.join("src", "obs", "status") + os.sep)


def mmap_exempt(relpath):
    # The storage backend owns the raw mappings (sparse/storage.hpp
    # documents the ORDOCSR layout); every other layer consumes spans.
    return relpath.startswith(os.path.join("src", "sparse") + os.sep)


def chrono_exempt(relpath):
    # obs owns the clocks (Stopwatch, trace time base) and the pipeline's
    # deadline scheduling legitimately speaks std::chrono; everything else
    # should time through obs::Stopwatch so timing stays in one place.
    return relpath.startswith(
        (os.path.join("src", "obs") + os.sep,
         os.path.join("src", "pipeline") + os.sep))


# --- float-eq --------------------------------------------------------------

FLOAT_LITERAL_RE = re.compile(r"(?<![\w.])(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fF]?(?![\w.])")
FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(?:[&*]\s*)?([A-Za-z_]\w*)")
EQ_CMP_RE = re.compile(r"(?<![<>!=&|^+\-*/%])([!=])=(?![=])")
OPERAND_TAIL_RE = re.compile(r"([A-Za-z_]\w*)\s*$")
OPERAND_HEAD_RE = re.compile(r"^\s*([A-Za-z_]\w*)")


def collect_float_identifiers(code):
    return {m.group(1) for m in FLOAT_DECL_RE.finditer(code)}


def float_eq_violations(code, float_names):
    """True when a == / != on this line has a float-typed operand: a float
    literal on either side, or an identifier declared double/float in this
    file. A heuristic, not a type checker — suppress false positives with
    ordo-lint: allow(float-eq)."""
    for m in EQ_CMP_RE.finditer(code):
        left, right = code[: m.start()], code[m.end():]
        operands = []
        tail = OPERAND_TAIL_RE.search(left)
        if tail:
            operands.append(tail.group(1))
        head = OPERAND_HEAD_RE.search(right)
        if head:
            operands.append(head.group(1))
        sides_with_literal = (
            bool(FLOAT_LITERAL_RE.search(left[-24:]))
            and left.rstrip().endswith(tuple("0123456789.fF"))
        ) or bool(FLOAT_LITERAL_RE.match(right.lstrip()))
        if sides_with_literal or any(name in float_names for name in operands):
            return True
    return False


# --- include order ---------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^">]+)[">]')


def include_order_violations(path, lines):
    violations = []
    block = []  # (line_number, sort_key, raw_path)
    def flush():
        nonlocal block
        for k in range(1, len(block)):
            if block[k][1] < block[k - 1][1]:
                violations.append(
                    Violation(path, block[k][0], "include-order",
                              f'"{block[k][2]}" sorts before "{block[k - 1][2]}"'
                              " — keep each include block sorted"))
                break
        block = []

    for lineno, line in enumerate(lines, 1):
        m = INCLUDE_RE.match(line)
        if m:
            block.append((lineno, m.group(2).lower(), m.group(2)))
        else:
            flush()
    flush()
    return violations


# --- driver ----------------------------------------------------------------

def lint_file(path):
    relpath = rel(path)
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return [Violation(relpath, 0, "io-error", str(e))]

    file_allows = set()
    for line in lines:
        m = ALLOW_FILE_RE.search(line)
        if m:
            file_allows.update(r.strip() for r in m.group(1).split(","))

    code_lines = [strip_comments_and_strings(line) for line in lines]
    src = in_src(relpath)
    # Identifiers declared double/float, tracked per top-level scope: a `}`
    # in column 0 ends a function/class, so its locals and parameters stop
    # tainting comparisons elsewhere in the file (declarations precede uses).
    float_names = set()

    violations = []

    def check(lineno, rule, hit, message):
        if not hit or rule in file_allows:
            return
        m = ALLOW_LINE_RE.search(lines[lineno - 1])
        if m and rule in {r.strip() for r in m.group(1).split(",")}:
            return
        violations.append(Violation(relpath, lineno, rule, message))

    for lineno, code in enumerate(code_lines, 1):
        if code.startswith("}"):
            float_names = set()
        float_names |= collect_float_identifiers(code)
        if src:
            check(lineno, "random", RANDOM_RE.search(code),
                  "non-deterministic RNG in library code — use the seeded "
                  "generators (reproducible studies)")
            if not thread_exempt(relpath):
                check(lineno, "thread", THREAD_RE.search(code),
                      "naked std::thread outside src/pipeline/ and "
                      "src/obs/status/ — run work through the pipeline "
                      "scheduler")
            if not socket_exempt(relpath):
                check(lineno, "socket", SOCKET_RE.search(code),
                      "raw socket call outside src/obs/status/ — the "
                      "loopback status listener is the only sanctioned "
                      "network surface")
            if not mmap_exempt(relpath):
                check(lineno, "mmap", MMAP_RE.search(code),
                      "raw memory mapping outside src/sparse/ — go through "
                      "the CsrStorage backend seam (sparse/storage.hpp)")
            if not io_exempt(relpath):
                check(lineno, "io", IO_RE.search(code),
                      "console I/O in library code — report through "
                      "ordo::obs (logf/metrics)")
            if not omp_exempt(relpath):
                check(lineno, "omp", OMP_RE.search(code),
                      "#pragma omp outside src/engine/ and src/spmv/ — "
                      "consume a prepared engine plan instead of spawning "
                      "threads")
            if not chrono_exempt(relpath):
                check(lineno, "chrono", CHRONO_RE.search(code),
                      "raw std::chrono outside src/obs/ and src/pipeline/ — "
                      "time through obs::Stopwatch / trace_now_us")
            check(lineno, "memory_order", memory_order_violations(code),
                  "atomic operation without an explicit std::memory_order — "
                  "spell the ordering (and justify relaxed; see "
                  "tools/ordo_analyze.py)")
            check(lineno, "float-eq", float_eq_violations(code, float_names),
                  "floating-point == / != — compare with a tolerance, or "
                  "suppress where exact equality is the contract")

    if os.path.splitext(path)[1] in HEADER_EXTENSIONS:
        if "pragma-once" not in file_allows and not any(
                re.match(r"\s*#\s*pragma\s+once\b", line) for line in lines):
            violations.append(
                Violation(relpath, 1, "pragma-once",
                          "header is missing #pragma once"))

    if "include-order" not in file_allows:
        for v in include_order_violations(relpath, lines):
            m = ALLOW_LINE_RE.search(lines[v.line - 1])
            if not (m and "include-order" in
                    {r.strip() for r in m.group(1).split(",")}):
                violations.append(v)

    return violations


def collect_files(paths):
    files = []
    for p in paths:
        full = p if os.path.isabs(p) else os.path.join(REPO_ROOT, p)
        if os.path.isfile(full):
            files.append(full)
            continue
        for dirpath, dirnames, filenames in os.walk(full):
            dirnames.sort()
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in CXX_EXTENSIONS:
                    files.append(os.path.join(dirpath, name))
    return files


def run_lint(paths):
    violations = []
    for path in collect_files(paths):
        violations.extend(lint_file(path))
    for v in violations:
        print(v)
    return 1 if violations else 0


# --- self test -------------------------------------------------------------

SEEDED_BAD = """\
#include <vector>
#include <random>

double jitter() {
  std::random_device rd;
  return rand() / 100.0;
}

void report(double x) {
  std::thread worker([] {});
  auto t0 = std::chrono::steady_clock::now();
  if (x == 1.0) printf("hit\\n");
  double y = x;
  if (y != x) return;
}

void scale(std::vector<double>& v) {
#pragma omp parallel for
  for (auto& x : v) x *= 2.0;
}

void tick(std::atomic<int>& n) {
  n.store(1);
}

int open_backdoor() {
  return ::socket(2, 1, 0);
}

void* map_scratch(int fd, long n) {
  return ::mmap(0, n, 3, 2, fd, 0);
}
"""

SEEDED_SUPPRESSED = """\
#pragma once
#include <vector>
#include <random>  // ordo-lint: allow(include-order)

inline bool same(double a, double b) {
  return a == b;  // ordo-lint: allow(float-eq)
}
"""


def self_test():
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        srcdir = os.path.join(tmp, "src")
        os.makedirs(srcdir)
        bad = os.path.join(srcdir, "seeded_bad.cpp")
        with open(bad, "w", encoding="utf-8") as f:
            f.write(SEEDED_BAD)
        hdr = os.path.join(srcdir, "seeded_missing_pragma.hpp")
        with open(hdr, "w", encoding="utf-8") as f:
            f.write("inline int one() { return 1; }\n")
        ok = os.path.join(srcdir, "seeded_suppressed.hpp")
        with open(ok, "w", encoding="utf-8") as f:
            f.write(SEEDED_SUPPRESSED)

        global REPO_ROOT
        saved_root = REPO_ROOT
        REPO_ROOT = tmp
        try:
            bad_violations = lint_file(bad)
            hdr_violations = lint_file(hdr)
            ok_violations = lint_file(ok)
        finally:
            REPO_ROOT = saved_root

        fired = {v.rule for v in bad_violations}
        for rule in ("random", "thread", "io", "omp", "chrono", "socket",
                     "mmap", "memory_order", "float-eq", "include-order"):
            if rule not in fired:
                failures.append(f"rule '{rule}' did not fire on seeded code")
        if "pragma-once" not in {v.rule for v in hdr_violations}:
            failures.append("rule 'pragma-once' did not fire on seeded header")
        if ok_violations:
            failures.extend(
                f"suppression ignored: {v}" for v in ok_violations)

    if failures:
        for f in failures:
            print(f"self-test FAILED: {f}")
        return 1
    print("ordo_lint self-test: all rules fire and suppressions hold")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=DEFAULT_PATHS,
                        help="files or directories relative to the repo root")
    parser.add_argument("--self-test", action="store_true",
                        help="seed violations in a tempdir and verify every "
                             "rule fires and suppressions hold")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    return run_lint(args.paths)


if __name__ == "__main__":
    sys.exit(main())
