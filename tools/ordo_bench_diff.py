#!/usr/bin/env python3
"""Compare two ordo BENCH_*.json reports and flag regressions.

Usage:
    tools/ordo_bench_diff.py OLD.json NEW.json [--threshold FRAC]
    tools/ordo_bench_diff.py --self-test

Both files must be schema_version-1 reports written by obs/report.cpp
(BenchReport::to_json). Cases are matched by name; for each pair the NEW
median is compared against the OLD median with a noise-aware rule: a case
regresses only when

    new_median > old_median * (1 + threshold)        (relative slowdown)
    AND new_median - old_median > noise              (outside jitter)

where noise is the larger IQR of the two runs (zero when reps < 4, so
single-rep cases fall back to the pure relative rule). The default
threshold is 0.20 — the acceptance bar: a 20% slowdown fails, a re-run of
the same binary passes.

Exit status: 0 = no regressions, 1 = at least one regression, 2 = usage or
file/schema error. Added/missing cases and host fingerprint changes are
reported but do not fail the diff (a new bench case is not a regression).

stdlib-only on purpose: CI runs this straight from the checkout.
"""

import argparse
import json
import sys

SCHEMA_VERSION = 1
DEFAULT_THRESHOLD = 0.20


def load_report(path):
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"ordo_bench_diff: cannot read {path}: {e}")
    if report.get("schema_version") != SCHEMA_VERSION:
        raise SystemExit(
            f"ordo_bench_diff: {path}: unsupported schema_version "
            f"{report.get('schema_version')!r} (want {SCHEMA_VERSION})")
    for key in ("name", "host", "cases"):
        if key not in report:
            raise SystemExit(f"ordo_bench_diff: {path}: missing key {key!r}")
    return report


def case_map(report):
    cases = {}
    for case in report["cases"]:
        cases[case["name"]] = case
    return cases


def host_line(report):
    host = report["host"]
    return "{} | {} | {} {} | {} cpus".format(
        host.get("cpu", "?"), host.get("os", "?"), host.get("compiler", "?"),
        host.get("build", "?"), host.get("logical_cpus", "?"))


def diff_reports(old, new, threshold):
    """Returns (regressions, lines): the failing case names and a report."""
    old_cases = case_map(old)
    new_cases = case_map(new)
    lines = []
    regressions = []

    old_host = host_line(old)
    new_host = host_line(new)
    if old_host != new_host:
        lines.append("note: host fingerprint changed")
        lines.append(f"  old: {old_host}")
        lines.append(f"  new: {new_host}")

    for name in sorted(set(old_cases) | set(new_cases)):
        if name not in new_cases:
            lines.append(f"missing: {name} (in old only)")
            continue
        if name not in old_cases:
            lines.append(f"added:   {name} (in new only)")
            continue
        old_case = old_cases[name]
        new_case = new_cases[name]
        old_median = float(old_case.get("median_seconds", 0.0))
        new_median = float(new_case.get("median_seconds", 0.0))
        if old_median <= 0.0 or new_median <= 0.0:
            # Informational cases (e.g. membw_peak carries its payload in
            # counters) have no timing to compare.
            lines.append(f"skip:    {name} (no timing)")
            continue
        ratio = new_median / old_median
        noise = max(float(old_case.get("iqr_seconds", 0.0)),
                    float(new_case.get("iqr_seconds", 0.0)))
        slower_by = new_median - old_median
        regressed = ratio > 1.0 + threshold and slower_by > noise
        marker = "REGRESSED" if regressed else "ok"
        lines.append(
            f"{marker:9s} {name}: {old_median:.6g}s -> {new_median:.6g}s "
            f"({(ratio - 1.0) * 100.0:+.1f}%, noise {noise:.3g}s)")
        if regressed:
            regressions.append(name)

    return regressions, lines


# --- self-test --------------------------------------------------------------

def synthetic_report(scale):
    def case(name, base, reps=5, spread=0.01):
        samples = [base * scale * (1.0 + spread * ((i % 3) - 1))
                   for i in range(reps)]
        samples.sort()
        median = samples[len(samples) // 2]
        iqr = samples[(3 * len(samples)) // 4] - samples[len(samples) // 4]
        return {"name": name, "reps": samples, "median_seconds": median,
                "iqr_seconds": iqr, "counters": {}}

    return {
        "schema_version": SCHEMA_VERSION,
        "name": "self_test",
        "host": {"os": "test", "cpu": "test", "logical_cpus": 1,
                 "compiler": "test", "build": "Release",
                 "hw_backend": "off"},
        "cases": [case("spmv_fast", 1e-3), case("spmv_slow", 5e-2),
                  {"name": "peak_only", "reps": [], "median_seconds": 0.0,
                   "iqr_seconds": 0.0, "counters": {"peak_gbps": 10.0}}],
    }


def self_test():
    base = synthetic_report(1.0)

    # Same report against itself: identical medians must pass.
    regressions, _ = diff_reports(base, base, DEFAULT_THRESHOLD)
    assert regressions == [], f"same-report diff flagged {regressions}"

    # A uniform +25% slowdown must be flagged on every timed case.
    slower = synthetic_report(1.25)
    regressions, _ = diff_reports(base, slower, DEFAULT_THRESHOLD)
    assert sorted(regressions) == ["spmv_fast", "spmv_slow"], (
        f"+25% run flagged {regressions}")

    # +25% the other way round (a speedup) must pass.
    regressions, _ = diff_reports(slower, base, DEFAULT_THRESHOLD)
    assert regressions == [], f"speedup flagged {regressions}"

    # A slowdown inside the noise band must pass: +30% relative but the IQR
    # is wider than the delta.
    noisy_old = synthetic_report(1.0)
    noisy_new = synthetic_report(1.3)
    for case in noisy_old["cases"] + noisy_new["cases"]:
        if case["median_seconds"] > 0.0:
            case["iqr_seconds"] = case["median_seconds"]  # huge jitter
    regressions, _ = diff_reports(noisy_old, noisy_new, DEFAULT_THRESHOLD)
    assert regressions == [], f"in-noise slowdown flagged {regressions}"

    # Added/missing cases are reported but never regressions.
    fewer = synthetic_report(1.0)
    fewer["cases"] = fewer["cases"][:1]
    regressions, lines = diff_reports(fewer, base, DEFAULT_THRESHOLD)
    assert regressions == [], f"added case flagged {regressions}"
    assert any(line.startswith("added:") for line in lines), lines

    print("ordo_bench_diff: self-test passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="compare two ordo BENCH_*.json reports")
    parser.add_argument("old", nargs="?", help="baseline report")
    parser.add_argument("new", nargs="?", help="candidate report")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative slowdown that fails (default 0.20)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.old or not args.new:
        parser.print_usage(sys.stderr)
        return 2

    old = load_report(args.old)
    new = load_report(args.new)
    regressions, lines = diff_reports(old, new, args.threshold)
    print(f"ordo_bench_diff: {old['name']} ({args.old}) vs "
          f"{new['name']} ({args.new}), threshold "
          f"{args.threshold * 100.0:.0f}%")
    for line in lines:
        print(f"  {line}")
    if regressions:
        print(f"ordo_bench_diff: {len(regressions)} regression(s): "
              + ", ".join(regressions))
        return 1
    print("ordo_bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
