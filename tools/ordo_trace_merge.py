#!/usr/bin/env python3
"""ordo_trace_merge: stitch per-shard Chrome trace files into one timeline.

A sharded run (run_study --shards N with ORDO_TRACE set) leaves one trace
file per process: the parent's at the configured path and each worker's at
`<path>.shard<k>` (the worker re-points its output at fork). Every file
shares one steady-clock time origin — the parent pins the trace anchor
before forking and the workers inherit it — so stitching is pure
concatenation: no timestamp rebasing, just one `process_name` /
`process_sort_index` metadata pair per input so chrome://tracing (or
Perfetto) shows each process as a named row.

The in-process twin of this tool is obs/agg/trace_merge.hpp: the sharded
parent's finalize() already writes the stitched file when merge inputs are
registered. This tool exists for offline use — merging traces of a run
that crashed before finalize, or re-merging after copying files off the
machine — and as CI's stdlib-only validator for merged traces.

Usage:
  ordo_trace_merge.py -o merged.json parent.json shard0.json shard1.json
  ordo_trace_merge.py --check merged.json --expect-processes 3
  ordo_trace_merge.py --self-test

Stdlib only; exit status: 0 ok, 1 validation/merge failure.
"""

import argparse
import json
import sys

METADATA_PHASE = "M"


def load_trace(path):
    """Returns (pid, label, events) for one per-process trace file."""
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"),
                                                   list):
        raise ValueError(f"{path}: not a Chrome trace object with "
                         f"traceEvents")
    pid = doc.get("pid")
    label = doc.get("process_label")
    return pid, label, doc["traceEvents"]


def metadata_rows(pid, label, sort_index):
    return [
        {"name": "process_name", "ph": METADATA_PHASE, "pid": pid,
         "args": {"name": label}},
        {"name": "process_sort_index", "ph": METADATA_PHASE, "pid": pid,
         "args": {"sort_index": sort_index}},
    ]


def merge(input_paths, output_path):
    """Stitches the input trace files into one merged file."""
    events = []
    seen_pids = set()
    for sort_index, path in enumerate(input_paths):
        pid, label, input_events = load_trace(path)
        if pid is None:
            # A file without the top-level pid (foreign tool, old schema)
            # still merges; a synthetic negative pid keeps its row distinct.
            pid = -(sort_index + 1)
        if pid in seen_pids:
            raise ValueError(f"{path}: duplicate pid {pid} — merging the "
                             f"same process twice")
        seen_pids.add(pid)
        if not label:
            label = f"pid {pid}"
        events.extend(metadata_rows(pid, label, sort_index))
        for event in input_events:
            if isinstance(event, dict) \
                    and event.get("ph") == METADATA_PHASE:
                continue  # replaced by our metadata rows
            events.append(event)
    merged = {"displayTimeUnit": "ms", "traceEvents": events}
    with open(output_path, "w", encoding="utf-8") as f:
        json.dump(merged, f)
        f.write("\n")
    print(f"ordo_trace_merge: wrote {output_path} "
          f"({len(events)} events from {len(input_paths)} processes)")


def check(path, expect_processes):
    """Returns a list of problems with a merged trace (empty = valid)."""
    errors = []
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return [f"cannot parse {path}: {e}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: traceEvents missing or not a list"]

    named_pids = {}
    span_pids = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"traceEvents[{i}] is not an object")
            continue
        phase = event.get("ph")
        if phase == METADATA_PHASE:
            if event.get("name") == "process_name":
                name = (event.get("args") or {}).get("name")
                if not isinstance(name, str) or not name:
                    errors.append(f"traceEvents[{i}]: process_name row "
                                  f"without args.name")
                else:
                    named_pids[event.get("pid")] = name
            continue
        if phase != "X":
            continue  # future phases are legal Chrome trace content
        for key, kind in (("name", str), ("ts", (int, float)),
                          ("dur", (int, float)), ("pid", int),
                          ("tid", int)):
            if not isinstance(event.get(key), kind):
                errors.append(
                    f"traceEvents[{i}]: span {key} missing or mistyped")
        if isinstance(event.get("pid"), int):
            span_pids.add(event["pid"])

    unnamed = span_pids - set(named_pids)
    if unnamed:
        errors.append(f"spans from pids {sorted(unnamed)} have no "
                      f"process_name metadata row")
    if expect_processes is not None and len(named_pids) != expect_processes:
        errors.append(f"expected {expect_processes} named processes, "
                      f"found {len(named_pids)}: {sorted(named_pids)}")
    if not errors:
        rows = ", ".join(f"{named_pids[pid]} (pid {pid})"
                         for pid in sorted(named_pids))
        print(f"ordo_trace_merge --check: {path} valid — "
              f"{len(span_pids)} span-emitting processes, rows: {rows}")
    return errors


def self_test():
    """Merges synthetic shard traces in a temp dir and checks the result."""
    import os
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for k, (pid, label) in enumerate(
                ((1000, "parent"), (1001, "shard 0"), (1002, "shard 1"))):
            doc = {
                "schema_version": 1, "pid": pid, "process_label": label,
                "displayTimeUnit": "ms",
                "traceEvents": [
                    {"name": "process_name", "ph": "M", "pid": pid,
                     "args": {"name": label}},
                    {"name": f"span{k}", "cat": "ordo", "ph": "X",
                     "ts": 100 * k, "dur": 50, "pid": pid, "tid": 1,
                     "args": {"depth": 0}},
                ],
            }
            path = os.path.join(tmp, f"trace{k}.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump(doc, f)
            paths.append(path)
        merged_path = os.path.join(tmp, "merged.json")
        merge(paths, merged_path)
        errors = check(merged_path, expect_processes=3)
        # The merge must keep every span and deduplicate nothing else.
        with open(merged_path, encoding="utf-8") as f:
            merged = json.load(f)
        spans = [e for e in merged["traceEvents"] if e.get("ph") == "X"]
        if len(spans) != 3:
            errors.append(f"self-test: expected 3 spans, got {len(spans)}")
        if sorted(e["pid"] for e in spans) != [1000, 1001, 1002]:
            errors.append("self-test: span pids were not preserved")
    for error in errors:
        print(f"ordo_trace_merge --self-test FAILED: {error}")
    if not errors:
        print("ordo_trace_merge --self-test: PASS")
    return 1 if errors else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="*",
                        help="per-process trace files, parent first "
                             "(row order follows argument order)")
    parser.add_argument("-o", "--output",
                        help="write the merged trace to this path")
    parser.add_argument("--check", metavar="FILE",
                        help="validate a merged trace instead of merging")
    parser.add_argument("--expect-processes", type=int,
                        help="with --check: require exactly N named "
                             "process rows")
    parser.add_argument("--self-test", action="store_true",
                        help="merge synthetic traces in a temp dir and "
                             "validate the result (CI smoke)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.check:
        errors = check(args.check, args.expect_processes)
        for error in errors:
            print(f"ordo_trace_merge --check FAILED: {error}")
        return 1 if errors else 0
    if not args.inputs or not args.output:
        parser.error("merge mode needs input files and -o/--output "
                     "(or use --check / --self-test)")
    try:
        merge(args.inputs, args.output)
    except (OSError, ValueError) as e:
        print(f"ordo_trace_merge: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
