#!/usr/bin/env python3
"""ordo_top: live terminal monitor for a running ordo study.

Polls the status snapshots a study publishes (schema in
docs/ARCHITECTURE.md "Live telemetry") from either source:

  --port P / --url U   GET /stats from run_study --status-port P
  --file PATH          read the atomically-renamed heartbeat JSON
                       (run_study --status-file, works without a socket)

and renders a top-style view: progress bar, completed/failed/timeout
tally, EWMA ETA, per-worker in-flight matrices with their current phase
(reorder/profile/features/spmv/model/journal) and deadline margin, plan
cache hit rate, the ordering selector's tally when the study runs with
--auto-order (decisions, oracle hit rate, mean regret, per-ordering
picks), tail-latency percentiles (p50/p90/p99/p999 per task and phase),
and — when the study runs with --hw — the latest counter window
(IPC, LLC miss rate, achieved vs peak GB/s). During a sharded run
(run_study --shards N) the parent's snapshot carries a "fleet" section:
one row per shard worker with LIVE/STALE/DEAD/DONE state, progress,
pace, and straggler flags, plus the exact bucket-merged fleet-wide
latency percentiles.

Modes:
  (default)     full-screen curses refresh every --interval seconds;
                falls back to plain scrolling frames on dumb terminals
  --once        print a single plain-text frame and exit
  --check       fetch one snapshot, validate it against the published
                schema (types, required keys, absent-not-zero rules),
                print PASS/FAIL details, exit 0/1 — CI's schema gate

Stdlib only; exit status: 0 ok, 1 validation failure, 2 unreachable.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

POLL_TIMEOUT_SECONDS = 5.0
PHASES = ("reorder", "profile", "features", "spmv", "model", "journal")
SHARD_STATES = ("unknown", "live", "stale", "dead", "done")
PERCENTILE_KEYS = ("p50", "p90", "p99", "p999")


def fetch(args):
    """Returns the parsed snapshot dict, or raises OSError/ValueError."""
    if args.file:
        with open(args.file, encoding="utf-8") as f:
            return json.load(f)
    with urllib.request.urlopen(args.url, timeout=POLL_TIMEOUT_SECONDS) as r:
        return json.load(r)


# --- schema validation (--check) -------------------------------------------

def _expect(errors, cond, message):
    if not cond:
        errors.append(message)


def validate(snap):
    """Returns a list of schema violations (empty = valid)."""
    errors = []
    _expect(errors, isinstance(snap, dict), "snapshot is not a JSON object")
    if not isinstance(snap, dict):
        return errors
    _expect(errors, snap.get("schema_version") == 2,
            f"schema_version != 2 (got {snap.get('schema_version')!r})")
    for key, kind in (("pid", int), ("uptime_seconds", (int, float)),
                      ("run", dict), ("workers", list), ("metrics", dict)):
        _expect(errors, isinstance(snap.get(key), kind),
                f"missing or mistyped top-level key '{key}'")

    run = snap.get("run", {})
    if isinstance(run, dict):
        for key in ("running", "total", "completed", "failed", "timeouts",
                    "resumed", "in_flight", "workers", "fraction",
                    "elapsed_seconds"):
            _expect(errors, key in run, f"run.{key} missing")
        for key in ("total", "completed", "failed", "timeouts", "resumed",
                    "in_flight", "workers"):
            value = run.get(key)
            _expect(errors, isinstance(value, int) and value >= 0,
                    f"run.{key} is not a non-negative integer")
        fraction = run.get("fraction")
        _expect(errors, isinstance(fraction, (int, float))
                and 0.0 <= fraction <= 1.0,
                "run.fraction outside [0, 1]")
        # Absent-not-zero: before the first completion there is no EWMA,
        # so the field must be missing rather than a misleading 0.
        if "eta_seconds" in run:
            _expect(errors, isinstance(run["eta_seconds"], (int, float))
                    and run["eta_seconds"] >= 0.0,
                    "run.eta_seconds present but negative/mistyped")
            _expect(errors, run.get("completed", 0) + run.get("failed", 0) > 0,
                    "run.eta_seconds present before any task finished")
        # Same rule for the v2 pace field the fleet monitor consumes.
        if "rate_tasks_per_second" in run:
            _expect(errors,
                    isinstance(run["rate_tasks_per_second"], (int, float))
                    and run["rate_tasks_per_second"] > 0.0,
                    "run.rate_tasks_per_second present but non-positive")
            _expect(errors, run.get("completed", 0) + run.get("failed", 0) > 0,
                    "run.rate_tasks_per_second present before any task "
                    "finished")

    for i, worker in enumerate(snap.get("workers") or []):
        for key, kind in (("slot", int), ("task_index", int),
                          ("matrix", str), ("phase", str),
                          ("elapsed_seconds", (int, float))):
            _expect(errors, isinstance(worker.get(key), kind),
                    f"workers[{i}].{key} missing or mistyped")

    metrics = snap.get("metrics", {})
    if isinstance(metrics, dict):
        for group in ("counters", "gauges", "histograms"):
            _expect(errors, isinstance(metrics.get(group), dict),
                    f"metrics.{group} missing")
        for name, entry in (metrics.get("counters") or {}).items():
            _expect(errors, isinstance(entry, dict) and "value" in entry
                    and "delta" in entry,
                    f"metrics.counters[{name!r}] lacks value/delta")

    # hw is optional (only with a counter session), but when present the
    # derived fields follow the same absent-not-zero convention.
    hw = snap.get("hw")
    if hw is not None:
        _expect(errors, isinstance(hw, dict) and "backend" in hw,
                "hw present but lacks backend")
        if isinstance(hw, dict) and "achieved_frac" in hw:
            _expect(errors, "gbps" in hw and "peak_gbps" in hw,
                    "hw.achieved_frac without gbps/peak_gbps")

    # select is optional (registered on the first --auto-order decision);
    # when present it carries the selector's full tally.
    sel = snap.get("select")
    if sel is not None:
        _expect(errors, isinstance(sel, dict),
                "select present but not an object")
        if isinstance(sel, dict):
            for key in ("model_version", "decisions", "oracle_hits",
                        "hit_rate", "mean_regret", "max_regret", "picks",
                        "amortize_hist"):
                _expect(errors, key in sel, f"select.{key} missing")
            _expect(errors, isinstance(sel.get("picks"), dict),
                    "select.picks is not an object")

    # latency (v2) is optional — a histogram appears only once something
    # was recorded into it (absent-not-zero, like the EWMA fields).
    latency = snap.get("latency")
    if latency is not None:
        _expect(errors, isinstance(latency, dict),
                "latency present but not an object")
        if isinstance(latency, dict):
            for name, entry in latency.items():
                errors.extend(validate_latency_entry(f"latency[{name!r}]",
                                                     entry))

    # fleet is optional (only a sharded parent registers it).
    fleet = snap.get("fleet")
    if fleet is not None:
        errors.extend(validate_fleet(fleet))
    return errors


def validate_latency_entry(label, entry):
    """Violations in one serialized latency histogram snapshot."""
    errors = []
    _expect(errors, isinstance(entry, dict), f"{label} is not an object")
    if not isinstance(entry, dict):
        return errors
    for key in ("count", "sum_ns", "mean_seconds") + PERCENTILE_KEYS:
        _expect(errors, isinstance(entry.get(key), (int, float)),
                f"{label}.{key} missing or mistyped")
    _expect(errors, isinstance(entry.get("count"), int)
            and entry.get("count", 0) > 0,
            f"{label}.count is not a positive integer (empty histograms "
            f"must be absent, not zero)")
    quantiles = [entry.get(key) for key in PERCENTILE_KEYS]
    if all(isinstance(q, (int, float)) for q in quantiles):
        _expect(errors, all(a <= b for a, b in zip(quantiles, quantiles[1:])),
                f"{label} percentiles are not monotone "
                f"(p50..p999 = {quantiles})")
    if "buckets" in entry:
        buckets = entry["buckets"]
        _expect(errors, isinstance(buckets, list)
                and all(isinstance(p, list) and len(p) == 2 for p in buckets),
                f"{label}.buckets is not a list of [index, count] pairs")
        if isinstance(buckets, list) \
                and all(isinstance(p, list) and len(p) == 2 for p in buckets):
            _expect(errors,
                    sum(p[1] for p in buckets) == entry.get("count"),
                    f"{label}.buckets do not sum to count")
    return errors


def validate_fleet(fleet):
    """Violations in the sharded parent's fleet section."""
    errors = []
    _expect(errors, isinstance(fleet, dict), "fleet is not an object")
    if not isinstance(fleet, dict):
        return errors
    _expect(errors, fleet.get("schema_version") == 1,
            f"fleet.schema_version != 1 "
            f"(got {fleet.get('schema_version')!r})")
    _expect(errors, isinstance(fleet.get("shards"), list),
            "fleet.shards missing or not a list")
    stragglers = fleet.get("stragglers")
    _expect(errors, isinstance(stragglers, int) and stragglers >= 0,
            "fleet.stragglers is not a non-negative integer")
    flagged = 0
    for i, shard in enumerate(fleet.get("shards") or []):
        label = f"fleet.shards[{i}]"
        if not isinstance(shard, dict):
            errors.append(f"{label} is not an object")
            continue
        _expect(errors, isinstance(shard.get("shard"), int),
                f"{label}.shard missing or mistyped")
        _expect(errors, shard.get("state") in SHARD_STATES,
                f"{label}.state not one of {SHARD_STATES}")
        _expect(errors, isinstance(shard.get("heartbeat"), bool),
                f"{label}.heartbeat missing or mistyped")
        if shard.get("heartbeat") is not True:
            continue  # no heartbeat file yet: only identity keys exist
        for key in ("pid", "total", "completed", "failed", "resumed"):
            _expect(errors, isinstance(shard.get(key), int),
                    f"{label}.{key} missing or mistyped")
        for key in ("heartbeat_age_seconds", "fraction", "elapsed_seconds"):
            _expect(errors, isinstance(shard.get(key), (int, float)),
                    f"{label}.{key} missing or mistyped")
        for key in ("pid_alive", "running"):
            _expect(errors, isinstance(shard.get(key), bool),
                    f"{label}.{key} missing or mistyped")
        if shard.get("straggler"):
            flagged += 1
            _expect(errors, isinstance(shard.get("straggler_reason"), str),
                    f"{label}.straggler set without straggler_reason")
        for name, entry in (shard.get("latency") or {}).items():
            errors.extend(
                validate_latency_entry(f"{label}.latency[{name!r}]", entry))
    if isinstance(stragglers, int) and isinstance(fleet.get("shards"), list):
        _expect(errors, flagged == stragglers,
                f"fleet.stragglers ({stragglers}) != flagged shard rows "
                f"({flagged})")
    _expect(errors, isinstance(fleet.get("latency"), dict),
            "fleet.latency (merged histograms) missing or not an object")
    for name, entry in (fleet.get("latency") or {}).items():
        errors.extend(
            validate_latency_entry(f"fleet.latency[{name!r}]", entry))
    return errors


# --- rendering -------------------------------------------------------------

def format_seconds(seconds):
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def progress_bar(fraction, width):
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def format_latency(seconds):
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


def latency_lines(latency, header):
    """Lines for one latency section ({name: {p50..p999, count}, ...})."""
    if not isinstance(latency, dict) or not latency:
        return []
    lines = [header]
    for name, entry in sorted(latency.items()):
        if not isinstance(entry, dict):
            continue
        quantiles = "  ".join(
            f"{key} {format_latency(entry[key])}"
            for key in PERCENTILE_KEYS if key in entry)
        lines.append(f"  {name:<16.16} n={entry.get('count', 0):<7} "
                     f"{quantiles}")
    return lines


def fleet_lines(fleet):
    """Per-shard rows of the sharded parent's fleet section."""
    if not isinstance(fleet, dict):
        return []
    shards = fleet.get("shards") or []
    lines = ["", f"fleet ({len(shards)} shards, "
                 f"{fleet.get('stragglers', 0)} stragglers):"]
    for shard in shards:
        if not isinstance(shard, dict):
            continue
        state = str(shard.get("state", "?")).upper()
        row = f"  shard {shard.get('shard', '?'):>2}  {state:<7}"
        if shard.get("heartbeat"):
            done = shard.get("completed", 0) + shard.get("failed", 0) \
                + shard.get("resumed", 0)
            row += (f" {done:>4}/{shard.get('total', 0):<4} "
                    f"({100.0 * shard.get('fraction', 0.0):3.0f}%) ")
            if "rate_tasks_per_second" in shard:
                row += f" {shard['rate_tasks_per_second']:6.2f} tasks/s"
            if shard.get("phases"):
                row += f"  [{shard['phases']}]"
            if shard.get("straggler"):
                row += f"  !! {shard.get('straggler_reason', 'straggler')}"
        else:
            row += "  (no heartbeat yet)"
        lines.append(row)
    lines.extend(latency_lines(fleet.get("latency"),
                               "fleet latency (bucket-merged):"))
    return lines


def render(snap, width=78):
    """Returns the frame as a list of lines (shared by all display modes)."""
    run = snap.get("run", {})
    lines = []
    state = "running" if run.get("running") else "idle"
    lines.append(
        f"ordo study pid {snap.get('pid', '?')} — {state}, "
        f"up {format_seconds(snap.get('uptime_seconds', 0))}")

    total = run.get("total", 0)
    done = run.get("completed", 0) + run.get("failed", 0) \
        + run.get("resumed", 0)
    bar = progress_bar(run.get("fraction", 0.0), max(10, width - 30))
    lines.append(f"{bar} {done}/{total} ({100.0 * run.get('fraction', 0.0):.0f}%)")

    tally = (f"completed {run.get('completed', 0)}  "
             f"failed {run.get('failed', 0)}  "
             f"timeouts {run.get('timeouts', 0)}  "
             f"resumed {run.get('resumed', 0)}  "
             f"elapsed {format_seconds(run.get('elapsed_seconds', 0))}")
    if "eta_seconds" in run:
        tally += f"  eta {format_seconds(run['eta_seconds'])}"
    lines.append(tally)

    cache = snap.get("plan_cache")
    if isinstance(cache, dict):
        lines.append(
            f"plan cache: {cache.get('hits', 0)} hits / "
            f"{cache.get('hits', 0) + cache.get('misses', 0)} lookups "
            f"({100.0 * cache.get('hit_rate', 0.0):.0f}%), "
            f"{cache.get('size', 0)}/{cache.get('capacity', 0)} plans")

    sel = snap.get("select")
    if isinstance(sel, dict):
        lines.append(
            f"select[v{sel.get('model_version', '?')}]: "
            f"{sel.get('decisions', 0)} decisions, "
            f"{100.0 * sel.get('hit_rate', 0.0):.0f}% oracle hits, "
            f"mean regret {100.0 * sel.get('mean_regret', 0.0):.2f}%")
        picks = ", ".join(
            f"{name} {count}"
            for name, count in sorted((sel.get("picks") or {}).items(),
                                      key=lambda kv: -kv[1])
            if count > 0)
        if picks:
            lines.append(f"  picks: {picks}")

    hw = snap.get("hw")
    if isinstance(hw, dict):
        parts = [f"hw[{hw.get('backend', '?')}]"]
        if "ipc" in hw:
            parts.append(f"IPC {hw['ipc']:.2f}")
        if "llc_miss_rate" in hw:
            parts.append(f"LLC miss {100.0 * hw['llc_miss_rate']:.1f}%")
        if "gbps" in hw:
            parts.append(f"{hw['gbps']:.2f} GB/s")
        if "achieved_frac" in hw:
            parts.append(f"{100.0 * hw['achieved_frac']:.0f}% of "
                         f"{hw['peak_gbps']:.1f} GB/s peak")
        lines.append("  ".join(parts))

    lines.extend(latency_lines(snap.get("latency"), "latency:"))
    lines.extend(fleet_lines(snap.get("fleet")))

    workers = snap.get("workers") or []
    lines.append("")
    lines.append(f"in-flight workers ({len(workers)}/{run.get('workers', 0)}):")
    if not workers:
        lines.append("  (none)")
    for worker in sorted(workers, key=lambda w: w.get("slot", 0)):
        row = (f"  slot {worker.get('slot', '?'):>3}  "
               f"#{worker.get('task_index', '?'):<5} "
               f"{worker.get('matrix', '?'):<24.24} "
               f"{worker.get('phase', '?'):<9} "
               f"{format_seconds(worker.get('elapsed_seconds', 0)):>7}")
        if "deadline_margin_seconds" in worker:
            margin = worker["deadline_margin_seconds"]
            row += f"  deadline {'-' if margin < 0 else ''}" \
                   f"{format_seconds(abs(margin))}"
        lines.append(row)
    return lines


def plain_frame(args):
    snap = fetch(args)
    for line in render(snap):
        print(line)
    return snap


def watch_plain(args):
    while True:
        print()
        snap = plain_frame(args)
        if not snap.get("run", {}).get("running"):
            return
        time.sleep(args.interval)


def watch_curses(args):
    import curses

    def loop(screen):
        curses.curs_set(0)
        screen.timeout(int(args.interval * 1000))
        while True:
            try:
                snap = fetch(args)
                lines = render(snap, width=screen.getmaxyx()[1] - 2)
            except (OSError, ValueError) as e:
                lines = [f"ordo_top: snapshot unavailable: {e}"]
            screen.erase()
            max_rows = screen.getmaxyx()[0]
            for row, line in enumerate(lines[: max_rows - 1]):
                screen.addnstr(row, 0, line, screen.getmaxyx()[1] - 1)
            screen.refresh()
            if screen.getch() in (ord("q"), 27):  # q / ESC
                return

    curses.wrapper(loop)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group()
    source.add_argument("--port", type=int,
                        help="poll http://127.0.0.1:PORT/stats")
    source.add_argument("--url", help="poll this /stats URL directly")
    source.add_argument("--file", help="read the heartbeat JSON at PATH")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="print one plain-text frame and exit")
    parser.add_argument("--check", action="store_true",
                        help="validate one snapshot against the schema and "
                             "exit 0/1 (CI gate)")
    parser.add_argument("--plain", action="store_true",
                        help="scrolling frames instead of curses")
    args = parser.parse_args()
    if args.port is not None:
        args.url = f"http://127.0.0.1:{args.port}/stats"
    if not args.url and not args.file:
        args.url = "http://127.0.0.1:8787/stats"

    try:
        if args.check:
            snap = fetch(args)
            errors = validate(snap)
            for error in errors:
                print(f"ordo_top --check FAILED: {error}")
            if not errors:
                run = snap.get("run", {})
                fleet = snap.get("fleet")
                fleet_note = ""
                if isinstance(fleet, dict):
                    fleet_note = (f", fleet of "
                                  f"{len(fleet.get('shards') or [])} shards")
                print(f"ordo_top --check: snapshot valid "
                      f"(schema_version 2, {run.get('completed', 0)}/"
                      f"{run.get('total', 0)} completed{fleet_note})")
            return 1 if errors else 0
        if args.once:
            plain_frame(args)
            return 0
        if args.plain or not sys.stdout.isatty():
            watch_plain(args)
            return 0
        try:
            watch_curses(args)
        except ImportError:
            watch_plain(args)
        return 0
    except urllib.error.URLError as e:
        print(f"ordo_top: cannot reach {args.url}: {e}", file=sys.stderr)
        return 2
    except OSError as e:
        print(f"ordo_top: cannot read snapshot: {e}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
