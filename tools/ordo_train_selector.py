#!/usr/bin/env python3
"""Train the ordering selector and regenerate src/select/model_coeffs.inc.

Offline half of src/select (the C++ half only does inference).  Three fits,
all tiny and dependency-free (hand-rolled ridge regression solved by Gaussian
elimination -- no numpy):

  1. Speedup model: per (kernel x ordering), linear weights over the schema-v1
     feature vector (src/features/feature_vector.hpp) predicting
     log2(SpMV speedup over Original).  Training rows come from the cached
     study result files (ordo_results/*.txt, one row per matrix x machine).
  2. Reorder-cost model: per ordering, log2(seconds) as an affine function of
     log2(1+nnz) and log2(1+rows), fitted to the wall-clock measurements that
     bench/table5_reorder_time writes to reorder_times.txt.
  3. Decision margin: grid-searched by replaying the selection rule over the
     training sweep and keeping the margin that minimises the geomean realized
     net time (modeled SpMV seconds + amortized reorder cost).

The output is a C++ table (model_coeffs.inc) consumed by src/select/model.cpp;
kModelVersion bumps on every retrain so journal fingerprints change with the
model.  Diagnostics printed at the end include the acceptance check: geomean
realized net time of the selector's picks vs. the best single fixed ordering.

Usage:
  python3 tools/ordo_train_selector.py --results ordo_results \
      --costs ordo_results/reorder_times.txt --out src/select/model_coeffs.inc
  python3 tools/ordo_train_selector.py --self-test
"""

import argparse
import math
import os
import re
import sys

# Must mirror the C++ study order (reorder/reordering.hpp study_orderings())
# and the schema in src/features/feature_vector.hpp.
ORDERINGS = ["Original", "RCM", "AMD", "ND", "GP", "HP", "Gray"]
KERNELS = ["csr_1d", "csr_2d"]
FEATURE_VERSION = 1
NUM_FEATURES = 8
NUM_WEIGHTS = NUM_FEATURES + 1  # bias first

RESULT_FILE_RE = re.compile(
    r"^(?P<kernel>csr_1d|csr_2d)_(?P<machine>.+)_(?P<threads>\d+)_threads_"
    r"(?P<corpus>ss\d+)\.txt$")


# ---------------------------------------------------------------------------
# Linear algebra (no numpy: Gaussian elimination with partial pivoting).
# ---------------------------------------------------------------------------

def solve(a, b):
    """Solve a x = b for a dense square system, destructively."""
    n = len(b)
    m = [row[:] + [b[i]] for i, row in enumerate(a)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(m[r][col]))
        if abs(m[pivot][col]) < 1e-300:
            raise ValueError("singular system in solve()")
        m[col], m[pivot] = m[pivot], m[col]
        inv = 1.0 / m[col][col]
        for r in range(col + 1, n):
            f = m[r][col] * inv
            if f == 0.0:
                continue
            for c in range(col, n + 1):
                m[r][c] -= f * m[col][c]
    x = [0.0] * n
    for r in range(n - 1, -1, -1):
        acc = m[r][n] - sum(m[r][c] * x[c] for c in range(r + 1, n))
        x[r] = acc / m[r][r]
    return x


def ridge_fit(xs, ys, lam):
    """Least squares with L2 penalty lam on every weight except the bias.

    xs: list of feature rows WITHOUT the leading 1 (bias is added here).
    Returns [bias, w_0, ..., w_{k-1}].
    """
    if not xs:
        raise ValueError("ridge_fit: empty training set")
    k = len(xs[0]) + 1
    xtx = [[0.0] * k for _ in range(k)]
    xty = [0.0] * k
    for row, y in zip(xs, ys):
        full = [1.0] + list(row)
        for i in range(k):
            xty[i] += full[i] * y
            for j in range(i, k):
                xtx[i][j] += full[i] * full[j]
    for i in range(k):
        for j in range(i):
            xtx[i][j] = xtx[j][i]
    for i in range(1, k):  # leave the bias unpenalised
        xtx[i][i] += lam
    return solve(xtx, xty)


def predict(weights, features):
    return weights[0] + sum(w * f for w, f in zip(weights[1:], features))


def r_squared(weights, xs, ys):
    mean = sum(ys) / len(ys)
    ss_tot = sum((y - mean) ** 2 for y in ys) or 1e-300
    ss_res = sum((y - predict(weights, x)) ** 2 for x, y in zip(xs, ys))
    return 1.0 - ss_res / ss_tot


# ---------------------------------------------------------------------------
# Result-file parsing.
# ---------------------------------------------------------------------------

def log2_1p(v):
    return math.log2(1.0 + float(v))


def parse_result_file(path):
    """Returns (columns, rows) where columns maps header token -> index."""
    with open(path, "r", encoding="utf-8") as f:
        header = f.readline().split()
        if not header or header[0] != "#":
            raise ValueError("%s: missing '#' header" % path)
        columns = {tok: i for i, tok in enumerate(header[1:])}
        rows = []
        for line in f:
            fields = line.split()
            if not fields:
                continue
            if len(fields) != len(columns):
                raise ValueError("%s: row arity %d != header arity %d"
                                 % (path, len(fields), len(columns)))
            rows.append(fields)
    return columns, rows


def make_features(columns, fields, imbalance_1d):
    """Schema-v1 feature vector; mirrors features::make_selector_features."""
    rows = float(fields[columns["rows"]])
    nnz = float(fields[columns["nnz"]])
    threads = float(fields[columns["threads"]])
    bandwidth = float(fields[columns["Original:bandwidth"]])
    profile = float(fields[columns["Original:profile"]])
    offdiag = float(fields[columns["Original:offdiag_nnz"]])
    return [
        log2_1p(rows),
        log2_1p(nnz),
        nnz / max(rows, 1.0),
        bandwidth / max(rows, 1.0),
        log2_1p(profile),
        offdiag / max(nnz, 1.0),
        imbalance_1d,
        math.log2(max(threads, 1.0)),
    ]


def load_sweep(results_dir):
    """Load every study result file.

    Returns a list of dicts, one per (kernel, machine) table:
      {kernel, machine, threads, rows: [(name, features, seconds[7],
                                         nrows, nnz)]}
    The f6 feature (1-D load imbalance under Original) always comes from the
    csr_1d sibling file, matching core/auto_order.cpp.
    """
    files = {}
    for entry in sorted(os.listdir(results_dir)):
        m = RESULT_FILE_RE.match(entry)
        if m:
            files[entry] = m
    if not files:
        raise ValueError("no study result files found in %s" % results_dir)

    # First pass: per (machine, corpus), matrix name -> Original 1-D imbalance.
    imbalance_1d = {}
    for entry, m in files.items():
        if m.group("kernel") != "csr_1d":
            continue
        columns, rows = parse_result_file(os.path.join(results_dir, entry))
        per_name = {}
        for fields in rows:
            per_name[fields[columns["name"]]] = float(
                fields[columns["Original:imbalance"]])
        imbalance_1d[(m.group("machine"), m.group("corpus"))] = per_name

    tables = []
    for entry, m in files.items():
        sibling = imbalance_1d.get((m.group("machine"), m.group("corpus")))
        if sibling is None:
            raise ValueError("%s: no csr_1d sibling for the f6 feature"
                             % entry)
        columns, raw = parse_result_file(os.path.join(results_dir, entry))
        seconds_cols = [columns["%s:seconds" % o] for o in ORDERINGS]
        rows = []
        for fields in raw:
            name = fields[columns["name"]]
            feats = make_features(columns, fields, sibling[name])
            secs = [float(fields[c]) for c in seconds_cols]
            rows.append((name, feats, secs,
                         int(fields[columns["rows"]]),
                         int(fields[columns["nnz"]])))
        tables.append({
            "kernel": m.group("kernel"),
            "machine": m.group("machine"),
            "threads": int(m.group("threads")),
            "rows": rows,
        })
    return tables


# ---------------------------------------------------------------------------
# Fits.
# ---------------------------------------------------------------------------

def fit_speedup_model(tables, lam):
    """kSpeedupWeights[kernel][ordering][bias+8] plus per-fit R^2."""
    weights = [[[0.0] * NUM_WEIGHTS for _ in ORDERINGS] for _ in KERNELS]
    diag = []
    for ki, kernel in enumerate(KERNELS):
        rows = [r for t in tables if t["kernel"] == kernel for r in t["rows"]]
        if not rows:
            raise ValueError("no training rows for kernel %s" % kernel)
        xs = [r[1] for r in rows]
        for oi in range(1, len(ORDERINGS)):
            ys = [math.log2(r[2][0] / r[2][oi]) for r in rows]
            w = ridge_fit(xs, ys, lam)
            weights[ki][oi] = w
            diag.append((kernel, ORDERINGS[oi], len(rows),
                         r_squared(w, xs, ys)))
    return weights, diag


def load_costs(path):
    """reorder_times.txt -> list of (ordering, rows, nnz, seconds)."""
    samples = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            fields = line.split()
            if not fields or fields[0].startswith("#"):
                continue
            name, rows, nnz, ordering, ms = fields
            samples.append((ordering, int(rows), int(nnz),
                            float(ms) * 1e-3))
    if not samples:
        raise ValueError("no cost samples in %s" % path)
    return samples


def fit_cost_model(samples, lam):
    """kReorderCostCoeffs[ordering][c0,c1,c2] plus per-fit R^2.

    The table's shape is log2(seconds) = c0 + c1*log2(1+nnz) +
    c2*log2(1+rows), but rows and nnz are almost perfectly collinear over the
    ten calibration stand-ins, so fitting both gives nonsense signs ("bigger
    reorders faster").  We fit the nnz term only and pin c2 = 0 -- the rows
    axis stays in the table for a future, better-conditioned calibration set.
    Original costs nothing (row kept zero; model.cpp returns 0 for index 0).
    """
    coeffs = [[0.0, 0.0, 0.0] for _ in ORDERINGS]
    diag = []
    for oi, ordering in enumerate(ORDERINGS):
        if oi == 0:
            continue
        pts = [s for s in samples if s[0] == ordering]
        if not pts:
            raise ValueError("no cost samples for ordering %s" % ordering)
        xs = [[log2_1p(nnz)] for _, _, nnz, _ in pts]
        ys = [math.log2(sec) for _, _, _, sec in pts]
        w = ridge_fit(xs, ys, lam)
        coeffs[oi] = [w[0], w[1], 0.0]
        diag.append((ordering, len(pts), r_squared(w, xs, ys)))
    return coeffs, diag


def cost_seconds(coeffs, oi, nrows, nnz):
    if oi == 0:
        return 0.0
    c = coeffs[oi]
    return 2.0 ** (c[0] + c[1] * log2_1p(nnz) + c[2] * log2_1p(nrows))


# ---------------------------------------------------------------------------
# Decision replay (mirrors select::select_ordering + core/auto_order.cpp).
# ---------------------------------------------------------------------------

def replay(tables, weights, coeffs, budget, margin):
    """Replay the selection rule over the sweep.

    Returns (geomean pick net, geomean oracle net, [geomean fixed net per
    ordering], hit_rate, mean_regret).  All nets are realized: measured
    modeled seconds + model reorder cost amortized over the budget.
    """
    n = 0
    log_pick = log_oracle = 0.0
    log_fixed = [0.0] * len(ORDERINGS)
    hits = 0
    regret_sum = 0.0
    for table in tables:
        ki = KERNELS.index(table["kernel"])
        for _, feats, secs, nrows, nnz in table["rows"]:
            amort = [cost_seconds(coeffs, oi, nrows, nnz) / budget
                     for oi in range(len(ORDERINGS))]
            pred = [secs[0] / (2.0 ** predict(weights[ki][oi], feats))
                    + amort[oi] if oi else secs[0]
                    for oi in range(len(ORDERINGS))]
            pick = min(range(len(ORDERINGS)), key=lambda i: (pred[i], i))
            if pick != 0 and pred[pick] > pred[0] * (1.0 - margin):
                pick = 0
            real = [secs[oi] + amort[oi] for oi in range(len(ORDERINGS))]
            oracle = min(range(len(ORDERINGS)), key=lambda i: (real[i], i))
            n += 1
            log_pick += math.log(real[pick])
            log_oracle += math.log(real[oracle])
            for oi in range(len(ORDERINGS)):
                log_fixed[oi] += math.log(real[oi])
            hits += pick == oracle
            regret_sum += real[pick] / real[oracle] - 1.0
    return (math.exp(log_pick / n), math.exp(log_oracle / n),
            [math.exp(v / n) for v in log_fixed], hits / n, regret_sum / n)


def search_margin(tables, weights, coeffs, budget, grid):
    best = None
    rows = []
    for margin in grid:
        pick_net, _, _, hit, _ = replay(tables, weights, coeffs, budget,
                                        margin)
        rows.append((margin, pick_net, hit))
        if best is None or pick_net < best[1] - 1e-15:
            best = (margin, pick_net)
    return best[0], rows


# ---------------------------------------------------------------------------
# Emission.
# ---------------------------------------------------------------------------

def fmt(v):
    """Shortest decimal that round-trips (C++ parses it back exactly)."""
    if v == 0.0:
        return "0"
    return repr(float(v))


def emit_inc(weights, coeffs, margin, version):
    lines = []
    out = lines.append
    out("// Generated by tools/ordo_train_selector.py — do not edit by hand.")
    out("// Trained on the cached ss490 sweep; regenerate with:")
    out("//   python3 tools/ordo_train_selector.py --results ordo_results")
    out("//     --costs ordo_results/reorder_times.txt "
        "--out src/select/model_coeffs.inc")
    out("inline constexpr int kModelVersion = %d;" % version)
    out("inline constexpr int kModelFeatureVersion = %d;" % FEATURE_VERSION)
    out("inline constexpr int kModelNumKernels = %d;" % len(KERNELS))
    out("inline constexpr int kModelNumOrderings = %d;" % len(ORDERINGS))
    out("inline constexpr int kModelNumWeights = %d;  // bias + %d features"
        % (NUM_WEIGHTS, NUM_FEATURES))
    out("inline constexpr const char* kModelKernels[kModelNumKernels] = {")
    out("    %s};" % ", ".join('"%s"' % k for k in KERNELS))
    out("// log2(SpMV speedup over Original) = w[0] + sum_i w[1+i] * "
        "feature[i];")
    out("// ordering axis in study order (Original row unused, kept for "
        "alignment).")
    out("inline constexpr double kSpeedupWeights[kModelNumKernels]"
        "[kModelNumOrderings]")
    out("                                       [kModelNumWeights] = {")
    for ki, kernel in enumerate(KERNELS):
        out("    // %s" % kernel)
        out("    {")
        for oi, ordering in enumerate(ORDERINGS):
            body = ", ".join(fmt(w) for w in weights[ki][oi])
            out("        // %s" % ordering)
            out("        {%s}," % body)
        out("    },")
    out("};")
    out("// log2(reorder seconds) = c0 + c1*log2(1+nnz) + c2*log2(1+rows);")
    out("// Original row unused. Calibrated from reorder_times.txt "
        "(bench/table5).")
    out("inline constexpr double kReorderCostCoeffs[kModelNumOrderings][3]"
        " = {")
    for oi, ordering in enumerate(ORDERINGS):
        out("    {%s},  // %s"
            % (", ".join(fmt(c) for c in coeffs[oi]), ordering))
    out("};")
    out("// Relative margin a pick's predicted net time must beat "
        "Original's by.")
    out("inline constexpr double kDecisionMargin = %s;" % fmt(margin))
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Self test (synthetic, no repo files needed).
# ---------------------------------------------------------------------------

def self_test():
    # solve(): known 3x3 system.
    x = solve([[2.0, 1.0, 0.0], [1.0, 3.0, 1.0], [0.0, 1.0, 2.0]],
              [3.0, 5.0, 3.0])
    assert all(abs(v - 1.0) < 1e-12 for v in x), x

    # ridge_fit(): exact linear data is recovered (tiny lambda).
    xs = [[float(i), float(i * i % 7)] for i in range(40)]
    ys = [2.0 + 3.0 * a - 1.5 * b for a, b in xs]
    w = ridge_fit(xs, ys, 1e-9)
    assert abs(w[0] - 2.0) < 1e-6 and abs(w[1] - 3.0) < 1e-6 \
        and abs(w[2] + 1.5) < 1e-6, w
    assert r_squared(w, xs, ys) > 0.999999

    # fit_cost_model(): synthesized from known coefficients, recovered.
    truth = (-20.0, 1.25)
    samples = []
    for i in range(1, 11):
        nrows, nnz = 1000 * i, 17000 * i * i
        sec = 2.0 ** (truth[0] + truth[1] * log2_1p(nnz))
        samples.append(("RCM", nrows, nnz, sec))
        samples.append(("Gray", nrows, nnz, sec * 0.125))
    samples += [(o, 1000, 17000, 1e-3) for o in ("AMD", "ND", "GP", "HP")]
    coeffs, diag = fit_cost_model(samples, 1e-9)
    assert all(c[2] == 0.0 for c in coeffs)  # rows axis pinned
    got = cost_seconds(coeffs, ORDERINGS.index("RCM"), 5000, 17000 * 25)
    want = 2.0 ** (truth[0] + truth[1] * log2_1p(17000 * 25))
    assert abs(got / want - 1.0) < 1e-3, (got, want)
    gray = cost_seconds(coeffs, ORDERINGS.index("Gray"), 5000, 17000 * 25)
    assert abs(gray / (want * 0.125) - 1.0) < 1e-3, (gray, want)
    assert cost_seconds(coeffs, 0, 5000, 17000) == 0.0

    # replay(): a sweep where RCM is always the winner and the model knows
    # it -> picks match the oracle, regret 0, margin 0.5 forces Original.
    weights = [[[0.0] * NUM_WEIGHTS for _ in ORDERINGS] for _ in KERNELS]
    for ki in range(len(KERNELS)):
        weights[ki][ORDERINGS.index("RCM")][0] = 1.0  # predict 2x speedup
    free = [[0.0, 0.0, 0.0] for _ in ORDERINGS]  # zero-cost orderings
    secs = [1e-4] * len(ORDERINGS)
    secs[ORDERINGS.index("RCM")] = 0.5e-4
    tables = [{"kernel": "csr_1d", "machine": "m", "threads": 4,
               "rows": [("a", [0.0] * NUM_FEATURES, secs, 100, 1000)]}]
    free_cost = [[c for c in row] for row in free]
    for oi in range(1, len(ORDERINGS)):
        free_cost[oi][0] = -60.0  # ~8.7e-19 s: negligible but nonzero
    pick_net, oracle_net, fixed, hit, regret = replay(
        tables, weights, free_cost, 1000.0, 0.0)
    assert hit == 1.0 and regret < 1e-12, (hit, regret)
    assert abs(pick_net - oracle_net) < 1e-18
    assert min(fixed) >= oracle_net - 1e-18
    pick_net_m, _, _, hit_m, _ = replay(tables, weights, free_cost, 1000.0,
                                        0.9)
    assert hit_m == 0.0 and pick_net_m > pick_net  # margin forced Original

    # emit_inc(): output has every constant the C++ side static_asserts on.
    inc = emit_inc(weights, free_cost, 0.02, 3)
    for token in ("kModelVersion = 3", "kModelFeatureVersion = 1",
                  "kSpeedupWeights", "kReorderCostCoeffs",
                  "kDecisionMargin = 0.02"):
        assert token in inc, token
    assert inc.count("{") == inc.count("}")

    print("ordo_train_selector: self-test OK")
    return 0


# ---------------------------------------------------------------------------


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default="ordo_results",
                        help="directory with study result files")
    parser.add_argument("--costs", default=None,
                        help="reorder_times.txt (default <results>/"
                             "reorder_times.txt)")
    parser.add_argument("--out", default=None,
                        help="write model_coeffs.inc here (default: print "
                             "diagnostics only)")
    parser.add_argument("--budget", type=float, default=10000.0,
                        help="SpMV calls the reorder cost amortizes over "
                             "(must match StudyOptions.spmv_budget)")
    parser.add_argument("--ridge", type=float, default=1e-3,
                        help="L2 penalty for the speedup fit")
    parser.add_argument("--cost-ridge", type=float, default=1e-2,
                        help="L2 penalty for the reorder-cost fit")
    parser.add_argument("--version", type=int, default=1,
                        help="kModelVersion to stamp into the table")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    costs_path = args.costs or os.path.join(args.results,
                                            "reorder_times.txt")
    tables = load_sweep(args.results)
    n_rows = sum(len(t["rows"]) for t in tables)
    print("loaded %d tables (%d rows) from %s"
          % (len(tables), n_rows, args.results))

    weights, speed_diag = fit_speedup_model(tables, args.ridge)
    print("\nspeedup fit (label: log2 speedup over Original):")
    for kernel, ordering, n, r2 in speed_diag:
        print("  %-7s %-5s n=%-5d R^2=%.3f" % (kernel, ordering, n, r2))

    coeffs, cost_diag = fit_cost_model(load_costs(costs_path),
                                       args.cost_ridge)
    print("\nreorder-cost fit (label: log2 seconds):")
    for ordering, n, r2 in cost_diag:
        print("  %-5s n=%-3d R^2=%.3f  coeffs=[%s]"
              % (ordering, n, r2,
                 ", ".join("%.4f" % c for c in coeffs[ORDERINGS.index(
                     ordering)])))

    grid = [0.0, 0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.1, 0.15, 0.2]
    margin, margin_rows = search_margin(tables, weights, coeffs,
                                        args.budget, grid)
    print("\nmargin grid-search (budget=%g):" % args.budget)
    for m, net, hit in margin_rows:
        mark = " <-- chosen" if m == margin else ""
        print("  margin=%-5g geomean-pick-net=%.6e hit-rate=%.3f%s"
              % (m, net, hit, mark))

    pick_net, oracle_net, fixed, hit, regret = replay(
        tables, weights, coeffs, args.budget, margin)
    best_fixed = min(range(len(ORDERINGS)), key=lambda i: fixed[i])
    print("\ntraining-set evaluation (realized net seconds, geomean):")
    for oi, ordering in enumerate(ORDERINGS):
        print("  fixed %-8s %.6e%s"
              % (ordering, fixed[oi],
                 "  <-- best fixed" if oi == best_fixed else ""))
    print("  selector       %.6e" % pick_net)
    print("  oracle         %.6e" % oracle_net)
    print("  hit-rate %.3f  mean-regret %.4f" % (hit, regret))
    win = fixed[best_fixed] / pick_net - 1.0
    gap = pick_net / oracle_net - 1.0
    print("  selector vs best fixed: %+.2f%%  (oracle gap %.2f%%)"
          % (win * 100.0, gap * 100.0))
    if win <= 0.0:
        print("WARNING: selector does not beat the best fixed ordering")

    if args.out:
        inc = emit_inc(weights, coeffs, margin, args.version)
        with open(args.out, "w", encoding="utf-8") as f:
            f.write(inc)
        print("\nwrote %s (model version %d)" % (args.out, args.version))
    else:
        print("\n(dry run: pass --out src/select/model_coeffs.inc to write)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
