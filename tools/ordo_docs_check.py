#!/usr/bin/env python3
"""Docs reference checker: every path, flag, env var, and ctest label that
the documentation mentions must actually exist in the tree.

Stale docs are the failure mode of a repo that grows one PR at a time:
a renamed binary, a dropped flag, or a retired env var silently survives in
README prose. This tool makes the docs part of tier 1 -- it runs under ctest
(label `check`) and in the CI lint job, and it fails the build when any of
these drift:

  * file paths     -- `src/select/model.hpp`, `tools/ordo_lint.py`,
                      `./build/examples/quickstart` (build/ prefixes map back
                      to the source file that produces the binary), globs
                      (`bench/micro_*.cpp`) must match at least one file;
  * CLI flags      -- every `--flag` in docs must be parsed by some binary or
                      tool in the tree (external tools like cmake/ctest/git
                      have an allowlist);
  * env vars       -- every ORDO_* name in docs must be read somewhere in
                      code, CMake, or the CI workflow;
  * ctest labels   -- every `ctest -L <label>` must name a label that
                      tests/CMakeLists.txt actually assigns;
  * help coverage  -- every flag examples/run_study.cpp parses must appear in
                      its usage text, and vice versa (no undocumented or
                      phantom flags).

Usage:
  python3 tools/ordo_docs_check.py [--root DIR]   # check the tree
  python3 tools/ordo_docs_check.py --self-test    # check the checker
"""

import argparse
import glob
import os
import re
import sys

DOC_FILES = ["README.md", "DESIGN.md", "docs/ARCHITECTURE.md",
             "EXPERIMENTS.md"]

# Directories a doc-mentioned path may live in (relative to repo root).
PATH_PREFIXES = ("src/", "docs/", "tools/", "examples/", "bench/", "tests/",
                 "cmake/", ".github/", "ordo_results/")

# Extensionless doc paths (usually binaries) are resolved by trying these.
SOURCE_SUFFIXES = ("", ".cpp", ".py", ".md")

# Flags that belong to tools outside this repo (cmake, ctest, git, pip...)
# which the docs legitimately mention in command recipes.
EXTERNAL_FLAGS = {
    "--build", "--test-dir", "--output-on-failure", "--parallel",
    "--target", "--config", "--preset", "--version", "--branch", "--depth",
    "--label-regex", "--tests-regex", "--timeout", "--verbose",
}

CODE_SPAN_RE = re.compile(r"`([^`]+)`")
FENCE_RE = re.compile(r"^(```|~~~)")
LINK_RE = re.compile(r"\]\(([^)#]+)\)")
FLAG_RE = re.compile(r"(?<![\w`/=-])--[a-z][a-z0-9-]+\b")
ENV_RE = re.compile(r"\bORDO_[A-Z][A-Z0-9_]*\b")
CTEST_LABEL_RE = re.compile(r"ctest[^\n]*?-L\s+'?\^?([A-Za-z_][\w|]*)")
LABEL_DEF_RE = re.compile(r"LABELS\s+\"?([A-Za-z_]\w*)\"?")
ARG_PARSE_RE = re.compile(r"""arg\s*==\s*"(--[a-z0-9-]+)"|"(--[a-z0-9-]+)=""")


def doc_tokens(text):
    """Yield (line_number, word) for every word inside code spans, fenced
    blocks, and link targets -- the places docs reference concrete names."""
    in_fence = False
    for ln, line in enumerate(text.splitlines(), 1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            for word in line.split():
                yield ln, word
            continue
        for span in CODE_SPAN_RE.findall(line):
            for word in span.split():
                yield ln, word
        for target in LINK_RE.findall(line):
            yield ln, target


def looks_like_path(word):
    if "://" in word or "<" in word or "$" in word or word.startswith("-"):
        return False
    for expanded in expand_braces(word):
        w = expanded.lstrip("./")
        if w.startswith("build/"):
            w = w[len("build/"):]
        if w.startswith(PATH_PREFIXES):
            return True
        # Root-level docs: README.md, DESIGN.md, CHANGES.md ...
        if "/" not in w and w.endswith(".md"):
            return True
    return False


def normalize_path(word):
    w = word.strip("`,.;:()").lstrip("./")
    if w.startswith("build/"):
        w = w[len("build/"):]
    return w.rstrip("/")


def check_path(root, word):
    """True if the doc-mentioned path resolves to something in the tree."""
    w = normalize_path(word)
    if not w:
        return True
    for suffix in SOURCE_SUFFIXES:
        candidate = os.path.join(root, w + suffix)
        if os.path.exists(candidate):
            return True
        if any(ch in w for ch in "*?[{"):
            # Globs (and {a,b} brace alternation, expanded by hand).
            for expanded in expand_braces(w + suffix):
                if glob.glob(os.path.join(root, expanded)):
                    return True
    return False


def expand_braces(pattern):
    m = re.search(r"\{([^{}]*)\}", pattern)
    if not m:
        return [pattern]
    head, tail = pattern[:m.start()], pattern[m.end():]
    out = []
    for alt in m.group(1).split(","):
        out.extend(expand_braces(head + alt + tail))
    return out


def tree_sources(root):
    """All files whose contents define flags / read env vars."""
    files = ["CMakeLists.txt"]
    for sub in ("src", "bench", "examples", "tools", "tests", ".github"):
        for dirpath, _, names in os.walk(os.path.join(root, sub)):
            for name in names:
                if name.endswith((".cpp", ".hpp", ".inc", ".py", ".yml",
                                  ".yaml", ".txt", ".cmake")):
                    files.append(os.path.relpath(os.path.join(dirpath, name),
                                                 root))
    return files


def collect_defined(root):
    """Scan the tree once: defined CLI flags, ORDO_ env vars, ctest labels."""
    flags, env = set(), set()
    labels = {"check"}  # add_test + set_tests_properties assigns it
    for rel in tree_sources(root):
        path = os.path.join(root, rel)
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        env.update(ENV_RE.findall(text))
        for m in re.finditer(r"\"(--[a-z][a-z0-9-]+)[=\"]", text):
            flags.add(m.group(1))
        if rel.endswith((".txt", ".cmake")):
            labels.update(LABEL_DEF_RE.findall(text))
    return flags, env, labels


def check_docs(root, docs=None):
    """Returns a list of 'file:line: message' failure strings."""
    failures = []
    flags_defined, env_defined, labels_defined = collect_defined(root)

    for doc in docs or DOC_FILES:
        path = os.path.join(root, doc)
        if not os.path.exists(path):
            failures.append("%s: documentation file missing" % doc)
            continue
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()

        for ln, word in doc_tokens(text):
            if looks_like_path(word):
                if not check_path(root, word):
                    failures.append("%s:%d: path not in tree: %s"
                                    % (doc, ln, word))
            for flag in FLAG_RE.findall(word):
                if flag not in flags_defined and flag not in EXTERNAL_FLAGS:
                    failures.append("%s:%d: flag not parsed anywhere: %s"
                                    % (doc, ln, flag))

        for ln, line in enumerate(text.splitlines(), 1):
            for var in ENV_RE.findall(line):
                if var not in env_defined:
                    failures.append("%s:%d: env var not read anywhere: %s"
                                    % (doc, ln, var))
            for m in CTEST_LABEL_RE.finditer(line):
                for label in m.group(1).split("|"):
                    if label not in labels_defined:
                        failures.append("%s:%d: ctest label not defined: %s"
                                        % (doc, ln, label))

    failures.extend(check_help_coverage(root, flags_defined=flags_defined))
    return failures


def check_help_coverage(root, rel="examples/run_study.cpp",
                        flags_defined=()):
    """run_study's usage text and its argument parser must agree exactly.

    The usage text may also *mention* flags of other in-repo tools (e.g.
    `tools/ordo_top.py --port`); those count as documented-elsewhere, not as
    phantom run_study flags, as long as something in the tree parses them.
    """
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        return ["%s: missing (help-coverage check)" % rel]
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    parsed = set()
    for m in ARG_PARSE_RE.finditer(text):
        parsed.add(m.group(1) or m.group(2))
    m = re.search(r"print_usage[^{]*\{(.*?)\n\}", text, re.S)
    if not m:
        return ["%s: no print_usage() found (help-coverage check)" % rel]
    documented = set(re.findall(r"--[a-z][a-z0-9-]+", m.group(1)))
    failures = []
    for flag in sorted(parsed - documented):
        failures.append("%s: flag %s is parsed but absent from --help"
                        % (rel, flag))
    for flag in sorted(documented - parsed - set(flags_defined) -
                       EXTERNAL_FLAGS):
        failures.append("%s: --help documents %s but nothing parses it"
                        % (rel, flag))
    return failures


# ---------------------------------------------------------------------------
# Self test: synthetic tree in /tmp with one of each violation.
# ---------------------------------------------------------------------------

def self_test():
    import shutil
    import tempfile

    root = tempfile.mkdtemp(prefix="ordo_docs_check_")
    try:
        def put(rel, content):
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path) or root, exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)

        put("src/good.hpp", "// ORDO_GOOD_VAR\n")
        put("tests/CMakeLists.txt", 'PROPERTIES LABELS obs\n')
        put("examples/demo.cpp", 'if (arg == "--real-flag") {}\n')
        put("examples/run_study.cpp",
            'void print_usage() {\n'
            '  printf("--both N   sets N\\n--help-only X\\n");\n'
            '}\n'
            'int main() { if (arg == "--both") {} '
            'if (arg == "--parsed-only") {} }\n')
        put("README.md",
            "see `src/good.hpp` and `src/missing.hpp`\n"
            "run with `--real-flag` and `--fake-flag`\n"
            "set `ORDO_GOOD_VAR` or `ORDO_FAKE_VAR`\n"
            "then `ctest -L obs` and `ctest -L nolabel`\n"
            "globs: `src/*.hpp` and `src/*.nothing`\n"
            "braces: `{src,tools}/good.hpp` and `{src,tools}/nope.hpp`\n")

        failures = check_docs(root, docs=["README.md"])
        text = "\n".join(failures)
        # Each planted violation fires...
        for needle in ("src/missing.hpp", "--fake-flag", "ORDO_FAKE_VAR",
                       "nolabel", "src/*.nothing", "{src,tools}/nope.hpp",
                       "--parsed-only", "--help-only"):
            assert needle in text, (needle, text)
        # ...and nothing that exists is flagged.
        for clean in ("src/good.hpp\n", "--real-flag", "ORDO_GOOD_VAR",
                      "label not defined: obs", "src/*.hpp",
                      "{src,tools}/good.hpp", "--both"):
            assert clean not in text, (clean, text)
        assert len(failures) == 8, failures

        # A second doc listed in DOC_FILES but absent is itself a failure.
        missing = check_docs(root, docs=["GONE.md"])
        assert any("GONE.md" in f for f in missing)

        print("ordo_docs_check: self-test OK")
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: this script's parent dir)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in unit checks and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    failures = check_docs(root)
    for failure in failures:
        print(failure)
    if failures:
        print("ordo_docs_check: %d stale reference(s)" % len(failures))
        return 1
    print("ordo_docs_check: OK (%d docs checked)" % len(DOC_FILES))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
