// Full-study driver CLI: generates the corpus, runs the complete sweep
// (7 orderings x 8 machines x the kernel set) on the pipeline scheduler and
// writes the artifact-style result files — the programmatic entry point
// behind every figure/table bench, exposed as a standalone tool.
//
//   ./run_study [--count N] [--scale S] [--out DIR] [--seed K] [--jobs N]
//               [--shards N] [--task-timeout S] [--resume|--no-resume]
//               [--verbose] [--log quiet|progress|debug] [--kernels id,...]
//               [--list-kernels] [--allow-nondeterministic] [--hw]
//               [--status-port P] [--status-file PATH] [--auto-order]
//               [--spmv-budget N] [--export-features FILE]
//
// Auto-order (the learned selector, src/select/): --auto-order runs the
// committed model over every row, appends per-matrix pick / oracle / regret
// columns to the result files, and prints the aggregate oracle-gap summary;
// --spmv-budget sets the N in "pays off within N SpMV calls".
// --export-features writes the schema-versioned selector feature vectors
// (one JSON line per matrix × thread count) for tools/ordo_train_selector.py.
//
// Live telemetry: --status-port serves GET /stats + /healthz on loopback
// (poll it with tools/ordo_top.py) and mirrors snapshots to
// <out>/ordo_status.json; --status-file points the heartbeat elsewhere
// (and works alone, for hosts where opening a socket is not an option).
//
// The kernel set defaults to the studied csr_1d/csr_2d pair; --kernels
// extends it with any ids registered in ordo::engine (--list-kernels shows
// them). The pair's result files keep the artifact's exact names and
// format; extra kernels are written as additional files.
//
// The sweep checkpoints one JSON line per completed matrix into
// <out>/study_journal.jsonl; an interrupted run restarted with the same
// arguments resumes where it stopped (--no-resume recomputes from scratch).
// Result files are byte-identical for every --jobs value — and for every
// --shards value: sharded runs fork worker processes that journal into
// <out>/study_journal.shard<k>.jsonl, merged deterministically by the
// parent (src/pipeline/shard.hpp).
//
// Observability: ORDO_TRACE/ORDO_LOG/ORDO_METRICS/ORDO_PROFILE are honoured
// (see src/obs/obs.hpp); the trace and metrics files are written on exit.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <set>
#include <string>

#include "core/auto_order.hpp"
#include "core/experiment.hpp"
#include "engine/engine.hpp"
#include "obs/hw/membw.hpp"
#include "obs/obs.hpp"
#include "obs/status/status.hpp"
#include "pipeline/study_pipeline.hpp"

using namespace ordo;

namespace {

void append_kernel_list(std::vector<std::string>& kernels, const char* list) {
  std::string id;
  for (const char* p = list;; ++p) {
    if (*p == ',' || *p == '\0') {
      if (!id.empty()) kernels.push_back(id);
      id.clear();
      if (*p == '\0') break;
    } else {
      id += *p;
    }
  }
}

void print_kernel_table(std::FILE* out) {
  std::fprintf(out, "registered kernels:\n");
  for (const std::string& id : engine::kernel_ids()) {
    const engine::KernelDesc& desc = engine::kernel(id);
    std::string flags;
    if (!desc.caps.parallel) flags += " serial";
    if (!desc.caps.deterministic) flags += " nondeterministic";
    if (desc.caps.needs_symmetric) flags += " needs-symmetric";
    if (desc.caps.transposed_output) flags += " transposed-output";
    if (flags.empty()) flags = " -";
    std::fprintf(out, "  %-16s %-12s%s\n    %s\n", id.c_str(),
                 desc.display_name.c_str(), flags.c_str(),
                 desc.summary.c_str());
  }
}

void print_usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [options]\n"
               "\n"
               "  --count N          corpus matrices (default %d, or "
               "ORDO_CORPUS_COUNT)\n"
               "  --scale S          per-matrix nonzero scale (default 1.0, "
               "or ORDO_CORPUS_SCALE)\n"
               "  --out DIR          result/cache directory (default "
               "ordo_results, or ORDO_RESULTS_DIR)\n"
               "  --seed K           corpus master seed (default 2023)\n"
               "  --jobs N           parallel per-matrix tasks; 1 = "
               "sequential, 0 = all cores (default 1, or ORDO_JOBS)\n"
               "  --shards N         fork N worker processes, each sweeping "
               "the corpus indices\n"
               "                     congruent to its shard modulo N and "
               "journaling to its own\n"
               "                     <out>/study_journal.shard<k>.jsonl; the "
               "parent merges the shard\n"
               "                     journals in corpus order, so results are "
               "byte-identical to\n"
               "                     --shards 1 — including resume after a "
               "killed worker (default 1,\n"
               "                     or ORDO_SHARDS; composes with --jobs, "
               "which applies per worker)\n"
               "  --task-timeout S   soft per-matrix deadline in seconds; a "
               "task past it is cancelled\n"
               "                     cooperatively and recorded as a failure "
               "(default: none)\n"
               "  --resume           replay <out>/study_journal.jsonl from an "
               "interrupted run (default)\n"
               "  --no-resume        ignore any existing journal and "
               "recompute every matrix\n"
               "  --kernels LIST     comma-separated engine kernel ids swept "
               "in addition to the\n"
               "                     studied csr_1d,csr_2d pair (see "
               "--list-kernels)\n"
               "  --list-kernels     print the registered kernels and exit\n"
               "  --allow-nondeterministic\n"
               "                     permit kernels marked deterministic=false "
               "in a checkpointed\n"
               "                     sweep (their rows are not byte-reproducible "
               "on resume)\n"
               "  --hw               open the hardware performance-counter "
               "session (= ORDO_HW=1)\n"
               "                     and attach host-measured IPC/LLC/GBps "
               "columns to every row;\n"
               "                     degrades gracefully when perf_event is "
               "unavailable\n"
               "  --status-port P    serve live study status on loopback "
               "(GET /stats, /healthz;\n"
               "                     = ORDO_STATUS_PORT) and mirror snapshots "
               "to <out>/ordo_status.json;\n"
               "                     watch with tools/ordo_top.py --port P\n"
               "  --status-file PATH write the atomically-renamed status "
               "heartbeat JSON to PATH\n"
               "                     instead (= ORDO_STATUS_FILE; usable "
               "without --status-port)\n"
               "  --auto-order       run the learned ordering selector "
               "(src/select/) over every\n"
               "                     row: appends per-matrix pick / oracle / "
               "regret columns to the\n"
               "                     result files and prints the aggregate "
               "oracle-gap summary\n"
               "  --spmv-budget N    SpMV calls the one-off reorder cost is "
               "amortized over in the\n"
               "                     auto-order net times (default %.0f)\n"
               "  --export-features FILE\n"
               "                     write the selector feature vectors "
               "(schema-versioned JSON\n"
               "                     lines, one per matrix x thread count) "
               "and continue\n"
               "  --verbose          shorthand for --log progress\n"
               "  --log LEVEL        quiet|progress|debug (default quiet, or "
               "ORDO_LOG)\n"
               "  --help             this message\n",
               argv0, CorpusOptions{}.count, StudyOptions{}.spmv_budget);
}

}  // namespace

int main(int argc, char** argv) {
  obs::init_from_env();
  CorpusOptions corpus = corpus_options_from_env();
  StudyOptions study;
  study.model = model_options_from_env();
  std::string out_dir = default_results_dir();
  int status_port = -1;        // -1 = not requested (0 = ephemeral)
  std::string status_file;
  std::string features_file;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      require(i + 1 < argc, "run_study: missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--count") {
      corpus.count = std::atoi(next());
    } else if (arg == "--scale") {
      corpus.scale = std::atof(next());
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--seed") {
      corpus.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      study.jobs = std::atoi(next());
    } else if (arg == "--shards") {
      study.shards = std::atoi(next());
    } else if (arg == "--task-timeout") {
      study.task_timeout_seconds = std::atof(next());
    } else if (arg == "--resume") {
      study.resume = true;
    } else if (arg == "--no-resume") {
      study.resume = false;
    } else if (arg == "--kernels") {
      append_kernel_list(study.kernels, next());
    } else if (arg == "--list-kernels") {
      print_kernel_table(stdout);
      return 0;
    } else if (arg == "--allow-nondeterministic") {
      study.allow_nondeterministic = true;
    } else if (arg == "--hw") {
      obs::hw::set_enabled(true);
    } else if (arg == "--status-port") {
      status_port = std::atoi(next());
    } else if (arg == "--status-file") {
      status_file = next();
    } else if (arg == "--auto-order") {
      study.auto_order = true;
    } else if (arg == "--spmv-budget") {
      study.spmv_budget = std::atof(next());
    } else if (arg == "--export-features") {
      features_file = next();
    } else if (arg == "--verbose") {
      study.verbose = true;
    } else if (arg == "--log") {
      obs::set_log_level(obs::parse_log_level(next()));
    } else if (arg == "--help") {
      print_usage(stdout, argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "run_study: unknown argument %s\n\n", arg.c_str());
      print_usage(stderr, argv[0]);
      return 2;
    }
  }

  // Live telemetry (in addition to any ORDO_STATUS_* environment wiring):
  // the listener serves /stats on loopback; the heartbeat mirrors the same
  // snapshots to a file so socketless hosts can still be monitored.
  if (status_port >= 0) {
    obs::status::start_listener(status_port);
    std::printf("status: http://127.0.0.1:%d/stats (ordo_top.py --port %d)\n",
                obs::status::listener_port(), obs::status::listener_port());
  }
  if (status_port >= 0 && status_file.empty()) {
    status_file = (std::filesystem::path(out_dir) / "ordo_status.json").string();
  }
  if (!status_file.empty()) {
    // A bare filename has an empty parent_path, which create_directories
    // rejects as an invalid argument.
    const std::filesystem::path parent =
        std::filesystem::path(status_file).parent_path();
    if (!parent.empty()) std::filesystem::create_directories(parent);
    obs::status::start_heartbeat(status_file);
  }

  study.hw_counters = obs::hw::enabled();  // --hw or ORDO_HW=1
  if (study.hw_counters) {
    std::printf("hw counters: %s (%s)\n", obs::hw::backend_name().c_str(),
                obs::hw::backend_detail().c_str());
  }

  std::printf(
      "running study: %d matrices (scale %.2f, seed %llu, jobs %d) -> %s\n",
      corpus.count, corpus.scale,
      static_cast<unsigned long long>(corpus.seed), study.jobs,
      out_dir.c_str());
  const StudyResults results = load_or_run_study(out_dir, corpus, study);

  std::printf("\n%zu result tables written/loaded:\n", results.size());
  for (const auto& [key, rows] : results) {
    std::printf("  %-10s %s: %zu matrices\n", key.first.c_str(),
                spmv_kernel_name(key.second).c_str(), rows.size());
    if (rows.size() != static_cast<std::size_t>(corpus.count)) {
      std::printf("    (%d matrices missing — see %s/%s)\n",
                  corpus.count - static_cast<int>(rows.size()), out_dir.c_str(),
                  pipeline::kFailuresFilename);
    }
  }

  if (!features_file.empty()) {
    write_feature_export(features_file, results);
    std::printf("feature vectors (schema v%d) -> %s\n",
                features::kSelectorFeatureVersion, features_file.c_str());
  }

  if (study.auto_order) {
    // Per-(machine, kernel) oracle-gap table plus the all-rows aggregate.
    // "net/call" figures are geomean per-call seconds including the
    // amortized reorder cost; the selector must beat the best single fixed
    // ordering for the policy to be worth shipping.
    std::printf(
        "\nauto-order selector (model v%d, budget %.0f SpMV calls/matrix):\n"
        "  %-10s %-8s %9s %11s %12s %12s %16s\n",
        select::model_version(), study.spmv_budget, "machine", "kernel",
        "hit-rate", "mean-regret", "pick net[s]", "oracle gap",
        "best fixed net[s]");
    auto print_summary = [](const SelectionSummary& s) {
      const auto kinds = study_orderings();
      std::printf(
          "  %-10s %-8s %8.1f%% %10.2f%% %12.3e %11.2f%% %12.3e (%s)\n",
          s.machine.c_str(), s.kernel_id.c_str(), 100.0 * s.hit_rate(),
          100.0 * s.mean_regret, s.geomean_pick_net, 100.0 * s.oracle_gap(),
          s.geomean_fixed_net[static_cast<std::size_t>(s.best_fixed)],
          ordering_name(kinds[static_cast<std::size_t>(s.best_fixed)])
              .c_str());
    };
    for (const SelectionSummary& s : summarize_selection(results, study)) {
      print_summary(s);
    }
    const SelectionSummary total = total_selection_summary(results, study);
    print_summary(total);
    std::printf(
        "  overall: selector %s the best fixed ordering by %.2f%% on "
        "geomean net time (oracle gap %.2f%%)\n",
        total.win_over_best_fixed() >= 0.0 ? "beats" : "LOSES TO",
        100.0 * total.win_over_best_fixed(), 100.0 * total.oracle_gap());
    std::printf("  pick distribution:");
    const auto kinds = study_orderings();
    for (std::size_t k = 0; k < select::kNumOrderings; ++k) {
      std::printf(" %s=%lld", ordering_name(kinds[k]).c_str(),
                  static_cast<long long>(total.picks[k]));
    }
    std::printf("\n");
  }

  if (study.hw_counters) {
    // Host measurements repeat across the modeled machines, so summarise
    // each kernel once (over every matrix × ordering measurement).
    std::printf("\nhost hw counters per kernel:\n");
    std::set<std::string> seen;
    for (const auto& [key, rows] : results) {
      const std::string kernel_id = key.second.id();
      if (!seen.insert(kernel_id).second) continue;
      int valid = 0;
      double ipc_sum = 0.0;
      double miss_sum = 0.0;
      double gbps_sum = 0.0;
      for (const MeasurementRow& row : rows) {
        for (const OrderingMeasurement& m : row.orderings) {
          if (!m.has_hw) continue;
          ++valid;
          ipc_sum += m.hw_ipc;
          miss_sum += m.hw_llc_miss_rate;
          gbps_sum += m.hw_gbps;
        }
      }
      if (valid == 0) {
        std::printf("  %-10s counters absent (%s)\n", kernel_id.c_str(),
                    obs::hw::backend_detail().c_str());
      } else {
        std::printf(
            "  %-10s %d measurements: mean IPC %.2f, LLC miss %.1f%%, "
            "%.2f GB/s\n",
            kernel_id.c_str(), valid, ipc_sum / valid,
            100.0 * miss_sum / valid, gbps_sum / valid);
      }
    }
    if (obs::hw::measured_peak_gbps() > 0.0) {
      std::printf("  peak (STREAM-like): %.2f GB/s\n",
                  obs::hw::measured_peak_gbps());
    }
  }

  const engine::PlanCache::Stats cache = engine::plan_cache().stats();
  if (cache.lookups() > 0) {
    std::printf(
        "\nengine plan cache: %lld hits / %lld lookups (%.1f%% hit rate, "
        "%lld evictions)\n",
        static_cast<long long>(cache.hits),
        static_cast<long long>(cache.lookups()), 100.0 * cache.hit_rate(),
        static_cast<long long>(cache.evictions));
  }
  obs::finalize();
  return 0;
}
