// Full-study driver CLI: generates the corpus, runs the complete sweep
// (7 orderings x 8 machines x 2 kernels) and writes the artifact-style
// result files — the programmatic entry point behind every figure/table
// bench, exposed as a standalone tool.
//
//   ./run_study [--count N] [--scale S] [--out DIR] [--seed K] [--verbose]
//              [--log quiet|progress|debug]
//
// Observability: ORDO_TRACE/ORDO_LOG/ORDO_METRICS/ORDO_PROFILE are honoured
// (see src/obs/obs.hpp); the trace and metrics files are written on exit.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "obs/obs.hpp"

using namespace ordo;

int main(int argc, char** argv) {
  obs::init_from_env();
  CorpusOptions corpus = corpus_options_from_env();
  StudyOptions study;
  study.model = model_options_from_env();
  std::string out_dir = default_results_dir();

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      require(i + 1 < argc, "run_study: missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--count") {
      corpus.count = std::atoi(next());
    } else if (arg == "--scale") {
      corpus.scale = std::atof(next());
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--seed") {
      corpus.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--verbose") {
      study.verbose = true;
    } else if (arg == "--log") {
      obs::set_log_level(obs::parse_log_level(next()));
    } else if (arg == "--help") {
      std::printf(
          "usage: %s [--count N] [--scale S] [--out DIR] [--seed K] "
          "[--verbose] [--log quiet|progress|debug]\n",
          argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "run_study: unknown argument %s\n", arg.c_str());
      return 2;
    }
  }

  std::printf("running study: %d matrices (scale %.2f, seed %llu) -> %s\n",
              corpus.count, corpus.scale,
              static_cast<unsigned long long>(corpus.seed), out_dir.c_str());
  const StudyResults results = load_or_run_study(out_dir, corpus, study);

  std::printf("\n%zu result tables written/loaded:\n", results.size());
  for (const auto& [key, rows] : results) {
    std::printf("  %-10s %s: %zu matrices\n", key.first.c_str(),
                spmv_kernel_name(key.second).c_str(), rows.size());
  }
  obs::finalize();
  return 0;
}
