// Quickstart: generate a matrix, try all six reorderings, and compare the
// order-sensitive features and the modelled SpMV performance on one machine.
//
//   ./quickstart [matrix-name] [machine]
//
// matrix-name: one of the named stand-ins (default "333SP"); machine: a
// Table 2 short name (default "Milan B").
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "features/features.hpp"

using namespace ordo;

int main(int argc, char** argv) {
  const std::string matrix_name = argc > 1 ? argv[1] : "333SP";
  const std::string machine = argc > 2 ? argv[2] : "Milan B";

  const CorpusEntry entry = generate_named(matrix_name, 0.5);
  const Architecture& arch = architecture_by_name(machine);
  const ModelOptions model = model_options_from_env();

  std::printf("matrix %s (%s): %d x %d, %lld nonzeros; machine: %s (%d cores)\n\n",
              entry.name.c_str(), entry.group.c_str(),
              static_cast<int>(entry.matrix.num_rows()),
              static_cast<int>(entry.matrix.num_cols()),
              static_cast<long long>(entry.matrix.num_nonzeros()),
              arch.name.c_str(), arch.cores);
  std::printf("%-9s %10s %12s %12s %9s %9s %9s %9s\n", "ordering", "bandwidth",
              "profile", "offdiag_nnz", "imb(1D)", "GF/s(1D)", "GF/s(2D)",
              "speed(1D)");

  double baseline_1d = 0.0;
  for (OrderingKind kind : study_orderings()) {
    ReorderOptions reorder;
    reorder.gp_parts = arch.cores;
    const CsrMatrix reordered =
        apply_ordering(entry.matrix, compute_ordering(entry.matrix, kind, reorder));
    const FeatureReport features = compute_features(reordered, arch.cores);
    const SpmvModel spmv(reordered, model);
    const SpmvEstimate e1 = spmv.estimate(SpmvKernel::k1D, arch);
    const SpmvEstimate e2 = spmv.estimate(SpmvKernel::k2D, arch);
    if (kind == OrderingKind::kOriginal) baseline_1d = e1.gflops;
    std::printf("%-9s %10d %12lld %12lld %9.2f %9.1f %9.1f %8.2fx\n",
                ordering_name(kind).c_str(), static_cast<int>(features.bandwidth),
                static_cast<long long>(features.profile),
                static_cast<long long>(features.off_diagonal_nonzeros),
                features.imbalance_1d, e1.gflops, e2.gflops,
                e1.gflops / baseline_1d);
  }
  return 0;
}
