// Corpus characterisation report: per-family counts, size ranges, symmetry
// and skew statistics of the synthetic corpus — the analogue of the paper's
// Section 4.1 dataset description, useful for judging how well the stand-in
// corpus mirrors the SuiteSparse selection.
//
//   ./corpus_report [count] [scale]
#include <cstdio>
#include <map>

#include "corpus/corpus.hpp"
#include "features/matrix_stats.hpp"

using namespace ordo;

namespace {

struct FamilySummary {
  int count = 0;
  std::int64_t min_nnz = 0;
  std::int64_t max_nnz = 0;
  std::int64_t total_nnz = 0;
  double symmetry_sum = 0.0;
  double skew_sum = 0.0;
  int spd = 0;
};

}  // namespace

int main(int argc, char** argv) {
  CorpusOptions options = corpus_options_from_env();
  if (argc > 1) options.count = std::atoi(argv[1]);
  if (argc > 2) options.scale = std::atof(argv[2]);

  std::printf("generating corpus: %d matrices at scale %.2f...\n",
              options.count, options.scale);
  const auto corpus = generate_corpus(options);

  std::map<std::string, FamilySummary> families;
  std::int64_t grand_total = 0;
  for (const CorpusEntry& entry : corpus) {
    const MatrixStats stats = compute_matrix_stats(entry.matrix);
    FamilySummary& family = families[entry.group];
    if (family.count == 0) {
      family.min_nnz = stats.nnz;
      family.max_nnz = stats.nnz;
    }
    family.count++;
    family.min_nnz = std::min(family.min_nnz, stats.nnz);
    family.max_nnz = std::max(family.max_nnz, stats.nnz);
    family.total_nnz += stats.nnz;
    family.symmetry_sum += stats.symmetry;
    family.skew_sum += stats.row_skew;
    family.spd += entry.spd ? 1 : 0;
    grand_total += stats.nnz;
  }

  std::printf("\n%-11s %6s %5s %10s %10s %9s %6s\n", "family", "count", "spd",
              "min nnz", "max nnz", "symmetry", "skew");
  for (const auto& [group, family] : families) {
    std::printf("%-11s %6d %5d %10lld %10lld %8.2f%% %6.2f\n", group.c_str(),
                family.count, family.spd,
                static_cast<long long>(family.min_nnz),
                static_cast<long long>(family.max_nnz),
                100.0 * family.symmetry_sum / family.count,
                family.skew_sum / family.count);
  }
  std::printf("\ntotal: %zu matrices, %lld nonzeros\n", corpus.size(),
              static_cast<long long>(grand_total));
  std::printf(
      "(paper: 490 SuiteSparse matrices, square, non-complex, 1e6..1e9 nnz)\n");
  return 0;
}
