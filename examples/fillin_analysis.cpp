// Direct-solver use case: how much Cholesky fill does each ordering incur?
// Reproduces the Section 4.6 analysis for one matrix, printing nnz(L), the
// fill ratio and the elimination-tree height (a proxy for available
// parallelism in the factorization).
//
//   ./fillin_analysis [matrix-name]
#include <algorithm>
#include <cstdio>

#include "cholesky/cholesky.hpp"
#include "core/experiment.hpp"

using namespace ordo;

namespace {

index_t etree_height(const std::vector<index_t>& parent) {
  // Height via memoised climb.
  std::vector<index_t> depth(parent.size(), -1);
  index_t height = 0;
  for (std::size_t v = 0; v < parent.size(); ++v) {
    // Walk up until a memoised node or a root.
    std::vector<index_t> path;
    index_t u = static_cast<index_t>(v);
    while (u != -1 && depth[static_cast<std::size_t>(u)] < 0) {
      path.push_back(u);
      u = parent[static_cast<std::size_t>(u)];
    }
    index_t base = u == -1 ? 0 : depth[static_cast<std::size_t>(u)];
    for (std::size_t k = path.size(); k > 0; --k) {
      depth[static_cast<std::size_t>(path[k - 1])] = ++base;
    }
    height = std::max(height, base);
  }
  return height;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string matrix_name = argc > 1 ? argv[1] : "333SP";
  const CorpusEntry entry = generate_named(matrix_name, 0.25);
  require(entry.spd,
          "fillin_analysis: pick an SPD stand-in (e.g. 333SP, audikw_1)");
  const CsrMatrix& a = entry.matrix;

  std::printf("Cholesky fill analysis for %s (%d rows, %lld nnz)\n\n",
              entry.name.c_str(), static_cast<int>(a.num_rows()),
              static_cast<long long>(a.num_nonzeros()));
  std::printf("%-9s %14s %10s %14s\n", "ordering", "nnz(L)", "fill", "etree height");

  for (OrderingKind kind :
       {OrderingKind::kOriginal, OrderingKind::kRcm, OrderingKind::kAmd,
        OrderingKind::kNd, OrderingKind::kGp, OrderingKind::kHp}) {
    const CsrMatrix reordered = apply_ordering(a, compute_ordering(a, kind));
    const std::int64_t nnz_l = cholesky_factor_nonzeros(reordered);
    const auto parent = elimination_tree(reordered);
    std::printf("%-9s %14lld %9.2fx %14d\n", ordering_name(kind).c_str(),
                static_cast<long long>(nnz_l),
                static_cast<double>(nnz_l) /
                    static_cast<double>(a.num_nonzeros()),
                static_cast<int>(etree_height(parent)));
  }
  std::printf(
      "\nExpected: AMD and ND give the least fill (Fig. 6); ND additionally\n"
      "gives a shallow, bushy elimination tree (good factorisation\n"
      "parallelism), while RCM's tree is tall and path-like.\n");
  return 0;
}
