// Reorder-explorer CLI: load a Matrix Market file (or generate a named
// stand-in), apply one ordering, report the order-sensitive features, and
// optionally write the reordered matrix back out in Matrix Market format —
// the workflow of the paper's released reordering utilities.
//
//   ./reorder_explorer <matrix.mtx | stand-in-name> <ordering> [out.mtx]
//   ./reorder_explorer <matrix.mtx | stand-in-name> --auto [budget]
//
// ordering: Original, RCM, AMD, ND, GP, HP, Gray (or Random/DegSort).
// --auto asks the trained selector (src/select) instead: it prints the
// predicted speedup, reorder cost, amortized net time, and amortization
// point for every study ordering, then the recommendation for a budget of
// [budget] SpMV calls (default: the study's --spmv-budget default).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/experiment.hpp"
#include "features/features.hpp"
#include "select/select.hpp"
#include "sparse/matrix_market.hpp"

using namespace ordo;

namespace {

// The --auto path: score all orderings with the committed model against the
// Ice Lake 1-D modeled baseline and print the full amortization table.
int explore_auto(const CsrMatrix& a, double budget) {
  const Architecture& arch = architecture_by_name("Ice Lake");
  const ModelOptions model = model_options_from_env();
  const double baseline =
      estimate_spmv(a, SpmvKernel::k1D, arch, model).seconds;

  select::SelectorOptions options;
  options.spmv_budget = budget;
  const select::Decision decision = select::select_ordering(
      a, SpmvKernel::k1D, arch.cores, baseline, options);

  std::printf("\nselector (model v%d, %s 1D baseline %.3e s/call, "
              "budget %g calls):\n",
              select::model_version(), arch.name.c_str(), baseline, budget);
  std::printf("%-9s %9s %12s %12s %14s\n", "ordering", "speedup",
              "reorder[s]", "net[s/call]", "amortizes-at");
  const auto kinds = study_orderings();
  for (std::size_t k = 0; k < select::kNumOrderings; ++k) {
    const double amortize = select::amortization_point(
        decision.predicted_reorder_seconds[k], baseline,
        baseline / decision.predicted_speedup[k]);
    std::string when = "-";
    if (k > 0) {
      when = amortize == select::kNeverAmortizes
                 ? "never"
                 : std::to_string(static_cast<long long>(amortize) + 1) +
                       " calls";
    }
    std::printf("%-9s %8.2fx %12.4e %12.4e %14s%s\n",
                ordering_name(kinds[k]).c_str(), decision.predicted_speedup[k],
                decision.predicted_reorder_seconds[k],
                decision.predicted_net_seconds[k], when.c_str(),
                static_cast<int>(k) == decision.pick ? "  <-- pick" : "");
  }
  std::printf("\nrecommendation: %s\n",
              ordering_name(kinds[static_cast<std::size_t>(decision.pick)])
                  .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <matrix.mtx | stand-in-name> <ordering> [out.mtx]\n"
                 "       %s <matrix.mtx | stand-in-name> --auto [budget]\n"
                 "orderings: Original RCM AMD ND GP HP Gray Random DegSort\n",
                 argv[0], argv[0]);
    return 2;
  }
  const std::string source = argv[1];
  const bool auto_mode = std::string(argv[2]) == "--auto";
  const OrderingKind kind =
      auto_mode ? OrderingKind::kOriginal : parse_ordering_name(argv[2]);

  CsrMatrix a;
  if (std::filesystem::exists(source)) {
    a = load_matrix_market(source);
    std::printf("loaded %s: %d x %d, %lld nonzeros\n", source.c_str(),
                static_cast<int>(a.num_rows()), static_cast<int>(a.num_cols()),
                static_cast<long long>(a.num_nonzeros()));
  } else {
    const CorpusEntry entry = generate_named(source, 0.25);
    a = entry.matrix;
    std::printf("generated stand-in %s (%s): %d x %d, %lld nonzeros\n",
                entry.name.c_str(), entry.group.c_str(),
                static_cast<int>(a.num_rows()), static_cast<int>(a.num_cols()),
                static_cast<long long>(a.num_nonzeros()));
  }

  if (auto_mode) {
    const double budget =
        argc > 3 ? std::atof(argv[3]) : select::SelectorOptions{}.spmv_budget;
    return explore_auto(a, budget);
  }

  const int threads = 128;
  const Ordering ordering = compute_ordering(a, kind);
  const CsrMatrix b = apply_ordering(a, ordering);

  const FeatureReport before = compute_features(a, threads);
  const FeatureReport after = compute_features(b, threads);
  std::printf("\nfeature                 %14s %14s\n", "original",
              ordering_name(kind).c_str());
  std::printf("bandwidth               %14lld %14lld\n",
              static_cast<long long>(before.bandwidth),
              static_cast<long long>(after.bandwidth));
  std::printf("profile                 %14lld %14lld\n",
              static_cast<long long>(before.profile),
              static_cast<long long>(after.profile));
  std::printf("off-diagonal nnz (128b) %14lld %14lld\n",
              static_cast<long long>(before.off_diagonal_nonzeros),
              static_cast<long long>(after.off_diagonal_nonzeros));
  std::printf("imbalance (1D, 128t)    %14.3f %14.3f\n", before.imbalance_1d,
              after.imbalance_1d);

  const ModelOptions model = model_options_from_env();
  std::printf("\nmodelled 1D SpMV gain per machine:\n");
  for (const Architecture& arch : table2_architectures()) {
    const double base =
        estimate_spmv(a, SpmvKernel::k1D, arch, model).gflops;
    const double now = estimate_spmv(b, SpmvKernel::k1D, arch, model).gflops;
    std::printf("  %-9s %6.2fx\n", arch.name.c_str(), now / base);
  }

  if (argc > 3) {
    save_matrix_market(argv[3], b);
    std::printf("\nwrote reordered matrix to %s\n", argv[3]);
  }
  return 0;
}
