// Reorder-explorer CLI: load a Matrix Market file (or generate a named
// stand-in), apply one ordering, report the order-sensitive features, and
// optionally write the reordered matrix back out in Matrix Market format —
// the workflow of the paper's released reordering utilities.
//
//   ./reorder_explorer <matrix.mtx | stand-in-name> <ordering> [out.mtx]
//
// ordering: Original, RCM, AMD, ND, GP, HP, Gray (or Random/DegSort).
#include <cstdio>
#include <filesystem>
#include <string>

#include "core/experiment.hpp"
#include "features/features.hpp"
#include "sparse/matrix_market.hpp"

using namespace ordo;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <matrix.mtx | stand-in-name> <ordering> [out.mtx]\n"
                 "orderings: Original RCM AMD ND GP HP Gray Random DegSort\n",
                 argv[0]);
    return 2;
  }
  const std::string source = argv[1];
  const OrderingKind kind = parse_ordering_name(argv[2]);

  CsrMatrix a;
  if (std::filesystem::exists(source)) {
    a = load_matrix_market(source);
    std::printf("loaded %s: %d x %d, %lld nonzeros\n", source.c_str(),
                static_cast<int>(a.num_rows()), static_cast<int>(a.num_cols()),
                static_cast<long long>(a.num_nonzeros()));
  } else {
    const CorpusEntry entry = generate_named(source, 0.25);
    a = entry.matrix;
    std::printf("generated stand-in %s (%s): %d x %d, %lld nonzeros\n",
                entry.name.c_str(), entry.group.c_str(),
                static_cast<int>(a.num_rows()), static_cast<int>(a.num_cols()),
                static_cast<long long>(a.num_nonzeros()));
  }

  const int threads = 128;
  const Ordering ordering = compute_ordering(a, kind);
  const CsrMatrix b = apply_ordering(a, ordering);

  const FeatureReport before = compute_features(a, threads);
  const FeatureReport after = compute_features(b, threads);
  std::printf("\nfeature                 %14s %14s\n", "original",
              ordering_name(kind).c_str());
  std::printf("bandwidth               %14lld %14lld\n",
              static_cast<long long>(before.bandwidth),
              static_cast<long long>(after.bandwidth));
  std::printf("profile                 %14lld %14lld\n",
              static_cast<long long>(before.profile),
              static_cast<long long>(after.profile));
  std::printf("off-diagonal nnz (128b) %14lld %14lld\n",
              static_cast<long long>(before.off_diagonal_nonzeros),
              static_cast<long long>(after.off_diagonal_nonzeros));
  std::printf("imbalance (1D, 128t)    %14.3f %14.3f\n", before.imbalance_1d,
              after.imbalance_1d);

  const ModelOptions model = model_options_from_env();
  std::printf("\nmodelled 1D SpMV gain per machine:\n");
  for (const Architecture& arch : table2_architectures()) {
    const double base =
        estimate_spmv(a, SpmvKernel::k1D, arch, model).gflops;
    const double now = estimate_spmv(b, SpmvKernel::k1D, arch, model).gflops;
    std::printf("  %-9s %6.2fx\n", arch.name.c_str(), now / base);
  }

  if (argc > 3) {
    save_matrix_market(argv[3], b);
    std::printf("\nwrote reordered matrix to %s\n", argv[3]);
  }
  return 0;
}
