// Iterative-solver pipeline: the paper's motivating use case for reordering
// in iterative methods. Solves A x = b with unpreconditioned conjugate
// gradients, where A is an SPD corpus matrix, once per ordering, and reports
// (a) that convergence is identical — a symmetric permutation does not
// change the spectrum — and (b) the modelled per-iteration SpMV time, which
// is what reordering actually buys.
//
//   ./cg_solver [matrix-name] [machine]
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "core/experiment.hpp"
#include "engine/engine.hpp"

using namespace ordo;

namespace {

// Plain CG on the (real) kernels; returns iterations to reach the tolerance.
// The SpMV plan is prepared once before the iteration loop — the amortised-
// preprocessing pattern the paper's Section 3.1 argues for, and exactly
// where an iterative solver benefits from the engine's prepare/execute
// split (thousands of products against one plan).
int conjugate_gradient(const CsrMatrix& a, std::span<const value_t> b,
                       std::vector<value_t>& x, double tolerance,
                       int max_iterations) {
  const index_t n = a.num_rows();
  std::vector<value_t> r(b.begin(), b.end());
  std::vector<value_t> p(r), ap(static_cast<std::size_t>(n));
  x.assign(static_cast<std::size_t>(n), 0.0);

  auto dot = [](const std::vector<value_t>& u, const std::vector<value_t>& v) {
    double sum = 0.0;
    for (std::size_t i = 0; i < u.size(); ++i) sum += u[i] * v[i];
    return sum;
  };

  const auto plan = engine::prepare_plan(a, SpmvKernel::k1D, 2);
  double rr = dot(r, r);
  const double stop = tolerance * tolerance * rr;
  int iteration = 0;
  for (; iteration < max_iterations && rr > stop; ++iteration) {
    engine::spmv(*plan, a, p, ap);
    const double alpha = rr / dot(p, ap);
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rr_next = dot(r, r);
    const double beta = rr_next / rr;
    rr = rr_next;
    for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
  }
  return iteration;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string matrix_name = argc > 1 ? argv[1] : "audikw_1";
  const std::string machine = argc > 2 ? argv[2] : "Milan B";

  const CorpusEntry entry = generate_named(matrix_name, 0.25);
  require(entry.spd, "cg_solver: pick an SPD stand-in (e.g. audikw_1, 333SP)");
  const Architecture& arch = architecture_by_name(machine);
  const ModelOptions model = model_options_from_env();

  std::printf("CG on %s (%d unknowns, %lld nnz), machine model: %s\n\n",
              entry.name.c_str(), static_cast<int>(entry.matrix.num_rows()),
              static_cast<long long>(entry.matrix.num_nonzeros()),
              arch.name.c_str());
  std::printf("%-9s %10s %14s %16s\n", "ordering", "CG iters",
              "SpMV [us/it]", "solve time [ms]");

  for (OrderingKind kind :
       {OrderingKind::kOriginal, OrderingKind::kRcm, OrderingKind::kAmd,
        OrderingKind::kNd, OrderingKind::kGp, OrderingKind::kHp}) {
    ReorderOptions reorder;
    reorder.gp_parts = arch.cores;
    const Ordering ordering = compute_ordering(entry.matrix, kind, reorder);
    const CsrMatrix a = apply_ordering(entry.matrix, ordering);

    // Permute b consistently so every run solves the same system.
    std::vector<value_t> b(static_cast<std::size_t>(a.num_rows()));
    for (index_t i = 0; i < a.num_rows(); ++i) {
      const index_t original = ordering.row_perm[static_cast<std::size_t>(i)];
      b[static_cast<std::size_t>(i)] =
          1.0 + 0.001 * static_cast<double>(original % 97);
    }

    std::vector<value_t> x;
    const int iterations = conjugate_gradient(a, b, x, 1e-8, 2000);
    const SpmvEstimate spmv = estimate_spmv(a, SpmvKernel::k1D, arch, model);
    std::printf("%-9s %10d %14.2f %16.2f\n", ordering_name(kind).c_str(),
                iterations, spmv.seconds * 1e6,
                iterations * spmv.seconds * 1e3);
  }
  std::printf(
      "\nIteration counts are identical across symmetric orderings (the\n"
      "spectrum is permutation-invariant); the solve-time column shows what\n"
      "a better ordering buys over thousands of SpMV iterations.\n");
  return 0;
}
