file(REMOVE_RECURSE
  "libordo.a"
)
