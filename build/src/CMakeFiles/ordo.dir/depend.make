# Empty dependencies file for ordo.
# This may be replaced when dependencies are built.
