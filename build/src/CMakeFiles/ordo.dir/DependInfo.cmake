
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cholesky/cholesky.cpp" "src/CMakeFiles/ordo.dir/cholesky/cholesky.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/cholesky/cholesky.cpp.o.d"
  "/root/repo/src/cholesky/numeric.cpp" "src/CMakeFiles/ordo.dir/cholesky/numeric.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/cholesky/numeric.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/ordo.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/gnuplot.cpp" "src/CMakeFiles/ordo.dir/core/gnuplot.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/core/gnuplot.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/CMakeFiles/ordo.dir/core/stats.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/core/stats.cpp.o.d"
  "/root/repo/src/corpus/corpus.cpp" "src/CMakeFiles/ordo.dir/corpus/corpus.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/corpus/corpus.cpp.o.d"
  "/root/repo/src/corpus/generators.cpp" "src/CMakeFiles/ordo.dir/corpus/generators.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/corpus/generators.cpp.o.d"
  "/root/repo/src/features/features.cpp" "src/CMakeFiles/ordo.dir/features/features.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/features/features.cpp.o.d"
  "/root/repo/src/features/matrix_stats.cpp" "src/CMakeFiles/ordo.dir/features/matrix_stats.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/features/matrix_stats.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/ordo.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/graph/graph.cpp.o.d"
  "/root/repo/src/partition/coarsening.cpp" "src/CMakeFiles/ordo.dir/partition/coarsening.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/partition/coarsening.cpp.o.d"
  "/root/repo/src/partition/fm_refinement.cpp" "src/CMakeFiles/ordo.dir/partition/fm_refinement.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/partition/fm_refinement.cpp.o.d"
  "/root/repo/src/partition/graph_partitioner.cpp" "src/CMakeFiles/ordo.dir/partition/graph_partitioner.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/partition/graph_partitioner.cpp.o.d"
  "/root/repo/src/partition/hypergraph.cpp" "src/CMakeFiles/ordo.dir/partition/hypergraph.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/partition/hypergraph.cpp.o.d"
  "/root/repo/src/partition/hypergraph_partitioner.cpp" "src/CMakeFiles/ordo.dir/partition/hypergraph_partitioner.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/partition/hypergraph_partitioner.cpp.o.d"
  "/root/repo/src/partition/initial_partition.cpp" "src/CMakeFiles/ordo.dir/partition/initial_partition.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/partition/initial_partition.cpp.o.d"
  "/root/repo/src/partition/partitioning.cpp" "src/CMakeFiles/ordo.dir/partition/partitioning.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/partition/partitioning.cpp.o.d"
  "/root/repo/src/perfmodel/arch.cpp" "src/CMakeFiles/ordo.dir/perfmodel/arch.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/perfmodel/arch.cpp.o.d"
  "/root/repo/src/perfmodel/spmv_model.cpp" "src/CMakeFiles/ordo.dir/perfmodel/spmv_model.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/perfmodel/spmv_model.cpp.o.d"
  "/root/repo/src/perfmodel/stack_distance.cpp" "src/CMakeFiles/ordo.dir/perfmodel/stack_distance.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/perfmodel/stack_distance.cpp.o.d"
  "/root/repo/src/reorder/amd.cpp" "src/CMakeFiles/ordo.dir/reorder/amd.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/reorder/amd.cpp.o.d"
  "/root/repo/src/reorder/extras.cpp" "src/CMakeFiles/ordo.dir/reorder/extras.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/reorder/extras.cpp.o.d"
  "/root/repo/src/reorder/gp.cpp" "src/CMakeFiles/ordo.dir/reorder/gp.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/reorder/gp.cpp.o.d"
  "/root/repo/src/reorder/gray.cpp" "src/CMakeFiles/ordo.dir/reorder/gray.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/reorder/gray.cpp.o.d"
  "/root/repo/src/reorder/hp.cpp" "src/CMakeFiles/ordo.dir/reorder/hp.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/reorder/hp.cpp.o.d"
  "/root/repo/src/reorder/nd.cpp" "src/CMakeFiles/ordo.dir/reorder/nd.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/reorder/nd.cpp.o.d"
  "/root/repo/src/reorder/rcm.cpp" "src/CMakeFiles/ordo.dir/reorder/rcm.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/reorder/rcm.cpp.o.d"
  "/root/repo/src/reorder/reordering.cpp" "src/CMakeFiles/ordo.dir/reorder/reordering.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/reorder/reordering.cpp.o.d"
  "/root/repo/src/reorder/sbd.cpp" "src/CMakeFiles/ordo.dir/reorder/sbd.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/reorder/sbd.cpp.o.d"
  "/root/repo/src/sparse/bsr.cpp" "src/CMakeFiles/ordo.dir/sparse/bsr.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/sparse/bsr.cpp.o.d"
  "/root/repo/src/sparse/coo.cpp" "src/CMakeFiles/ordo.dir/sparse/coo.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/sparse/coo.cpp.o.d"
  "/root/repo/src/sparse/csr.cpp" "src/CMakeFiles/ordo.dir/sparse/csr.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/sparse/csr.cpp.o.d"
  "/root/repo/src/sparse/csr_ops.cpp" "src/CMakeFiles/ordo.dir/sparse/csr_ops.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/sparse/csr_ops.cpp.o.d"
  "/root/repo/src/sparse/matrix_market.cpp" "src/CMakeFiles/ordo.dir/sparse/matrix_market.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/sparse/matrix_market.cpp.o.d"
  "/root/repo/src/sparse/permutation.cpp" "src/CMakeFiles/ordo.dir/sparse/permutation.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/sparse/permutation.cpp.o.d"
  "/root/repo/src/spmv/kernels_extra.cpp" "src/CMakeFiles/ordo.dir/spmv/kernels_extra.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/spmv/kernels_extra.cpp.o.d"
  "/root/repo/src/spmv/spmv.cpp" "src/CMakeFiles/ordo.dir/spmv/spmv.cpp.o" "gcc" "src/CMakeFiles/ordo.dir/spmv/spmv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
