# Empty compiler generated dependencies file for ordo.
# This may be replaced when dependencies are built.
