
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bsr_test.cpp" "tests/CMakeFiles/ordo_tests.dir/bsr_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/bsr_test.cpp.o.d"
  "/root/repo/tests/cholesky_test.cpp" "tests/CMakeFiles/ordo_tests.dir/cholesky_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/cholesky_test.cpp.o.d"
  "/root/repo/tests/corpus_test.cpp" "tests/CMakeFiles/ordo_tests.dir/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/experiment_test.cpp" "tests/CMakeFiles/ordo_tests.dir/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/experiment_test.cpp.o.d"
  "/root/repo/tests/features_test.cpp" "tests/CMakeFiles/ordo_tests.dir/features_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/features_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/ordo_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/kernels_extra_test.cpp" "tests/CMakeFiles/ordo_tests.dir/kernels_extra_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/kernels_extra_test.cpp.o.d"
  "/root/repo/tests/matrix_market_test.cpp" "tests/CMakeFiles/ordo_tests.dir/matrix_market_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/matrix_market_test.cpp.o.d"
  "/root/repo/tests/matrix_stats_test.cpp" "tests/CMakeFiles/ordo_tests.dir/matrix_stats_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/matrix_stats_test.cpp.o.d"
  "/root/repo/tests/numeric_cholesky_test.cpp" "tests/CMakeFiles/ordo_tests.dir/numeric_cholesky_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/numeric_cholesky_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/ordo_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/perfmodel_test.cpp" "tests/CMakeFiles/ordo_tests.dir/perfmodel_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/perfmodel_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/ordo_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/reorder_test.cpp" "tests/CMakeFiles/ordo_tests.dir/reorder_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/reorder_test.cpp.o.d"
  "/root/repo/tests/sparse_smoke_test.cpp" "tests/CMakeFiles/ordo_tests.dir/sparse_smoke_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/sparse_smoke_test.cpp.o.d"
  "/root/repo/tests/sparse_test.cpp" "tests/CMakeFiles/ordo_tests.dir/sparse_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/sparse_test.cpp.o.d"
  "/root/repo/tests/spmv_test.cpp" "tests/CMakeFiles/ordo_tests.dir/spmv_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/spmv_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/ordo_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/ordo_tests.dir/stats_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ordo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
