# Empty compiler generated dependencies file for ordo_tests.
# This may be replaced when dependencies are built.
