file(REMOVE_RECURSE
  "CMakeFiles/fillin_analysis.dir/fillin_analysis.cpp.o"
  "CMakeFiles/fillin_analysis.dir/fillin_analysis.cpp.o.d"
  "fillin_analysis"
  "fillin_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fillin_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
