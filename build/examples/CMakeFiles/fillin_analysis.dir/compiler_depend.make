# Empty compiler generated dependencies file for fillin_analysis.
# This may be replaced when dependencies are built.
