# Empty dependencies file for fig2_speedup_1d.
# This may be replaced when dependencies are built.
