file(REMOVE_RECURSE
  "CMakeFiles/fig2_speedup_1d.dir/fig2_speedup_1d.cpp.o"
  "CMakeFiles/fig2_speedup_1d.dir/fig2_speedup_1d.cpp.o.d"
  "fig2_speedup_1d"
  "fig2_speedup_1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_speedup_1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
