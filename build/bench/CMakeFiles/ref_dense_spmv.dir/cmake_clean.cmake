file(REMOVE_RECURSE
  "CMakeFiles/ref_dense_spmv.dir/ref_dense_spmv.cpp.o"
  "CMakeFiles/ref_dense_spmv.dir/ref_dense_spmv.cpp.o.d"
  "ref_dense_spmv"
  "ref_dense_spmv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ref_dense_spmv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
