# Empty dependencies file for ref_dense_spmv.
# This may be replaced when dependencies are built.
