file(REMOVE_RECURSE
  "CMakeFiles/table4_geomean_2d.dir/table4_geomean_2d.cpp.o"
  "CMakeFiles/table4_geomean_2d.dir/table4_geomean_2d.cpp.o.d"
  "table4_geomean_2d"
  "table4_geomean_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_geomean_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
