# Empty dependencies file for table4_geomean_2d.
# This may be replaced when dependencies are built.
