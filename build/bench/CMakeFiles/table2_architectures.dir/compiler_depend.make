# Empty compiler generated dependencies file for table2_architectures.
# This may be replaced when dependencies are built.
