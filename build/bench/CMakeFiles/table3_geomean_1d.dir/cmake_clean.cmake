file(REMOVE_RECURSE
  "CMakeFiles/table3_geomean_1d.dir/table3_geomean_1d.cpp.o"
  "CMakeFiles/table3_geomean_1d.dir/table3_geomean_1d.cpp.o.d"
  "table3_geomean_1d"
  "table3_geomean_1d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_geomean_1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
