# Empty compiler generated dependencies file for table3_geomean_1d.
# This may be replaced when dependencies are built.
