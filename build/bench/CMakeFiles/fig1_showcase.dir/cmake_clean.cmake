file(REMOVE_RECURSE
  "CMakeFiles/fig1_showcase.dir/fig1_showcase.cpp.o"
  "CMakeFiles/fig1_showcase.dir/fig1_showcase.cpp.o.d"
  "fig1_showcase"
  "fig1_showcase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_showcase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
