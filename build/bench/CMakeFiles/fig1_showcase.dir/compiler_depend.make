# Empty compiler generated dependencies file for fig1_showcase.
# This may be replaced when dependencies are built.
