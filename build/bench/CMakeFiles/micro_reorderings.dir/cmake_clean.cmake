file(REMOVE_RECURSE
  "CMakeFiles/micro_reorderings.dir/micro_reorderings.cpp.o"
  "CMakeFiles/micro_reorderings.dir/micro_reorderings.cpp.o.d"
  "micro_reorderings"
  "micro_reorderings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_reorderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
