# Empty dependencies file for micro_reorderings.
# This may be replaced when dependencies are built.
