# Empty dependencies file for micro_perfmodel.
# This may be replaced when dependencies are built.
