file(REMOVE_RECURSE
  "CMakeFiles/micro_perfmodel.dir/micro_perfmodel.cpp.o"
  "CMakeFiles/micro_perfmodel.dir/micro_perfmodel.cpp.o.d"
  "micro_perfmodel"
  "micro_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
