# Empty compiler generated dependencies file for table5_reorder_time.
# This may be replaced when dependencies are built.
