# Empty dependencies file for fig6_fillin.
# This may be replaced when dependencies are built.
