file(REMOVE_RECURSE
  "CMakeFiles/fig6_fillin.dir/fig6_fillin.cpp.o"
  "CMakeFiles/fig6_fillin.dir/fig6_fillin.cpp.o.d"
  "fig6_fillin"
  "fig6_fillin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_fillin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
