file(REMOVE_RECURSE
  "CMakeFiles/fig5_profiles.dir/fig5_profiles.cpp.o"
  "CMakeFiles/fig5_profiles.dir/fig5_profiles.cpp.o.d"
  "fig5_profiles"
  "fig5_profiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_profiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
