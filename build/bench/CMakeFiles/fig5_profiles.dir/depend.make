# Empty dependencies file for fig5_profiles.
# This may be replaced when dependencies are built.
