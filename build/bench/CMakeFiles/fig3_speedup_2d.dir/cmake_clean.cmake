file(REMOVE_RECURSE
  "CMakeFiles/fig3_speedup_2d.dir/fig3_speedup_2d.cpp.o"
  "CMakeFiles/fig3_speedup_2d.dir/fig3_speedup_2d.cpp.o.d"
  "fig3_speedup_2d"
  "fig3_speedup_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_speedup_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
