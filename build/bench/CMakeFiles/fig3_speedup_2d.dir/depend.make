# Empty dependencies file for fig3_speedup_2d.
# This may be replaced when dependencies are built.
