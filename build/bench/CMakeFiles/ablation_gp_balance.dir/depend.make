# Empty dependencies file for ablation_gp_balance.
# This may be replaced when dependencies are built.
