file(REMOVE_RECURSE
  "CMakeFiles/ablation_gp_balance.dir/ablation_gp_balance.cpp.o"
  "CMakeFiles/ablation_gp_balance.dir/ablation_gp_balance.cpp.o.d"
  "ablation_gp_balance"
  "ablation_gp_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gp_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
