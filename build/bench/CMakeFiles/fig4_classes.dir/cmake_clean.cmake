file(REMOVE_RECURSE
  "CMakeFiles/fig4_classes.dir/fig4_classes.cpp.o"
  "CMakeFiles/fig4_classes.dir/fig4_classes.cpp.o.d"
  "fig4_classes"
  "fig4_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
