# Empty dependencies file for fig4_classes.
# This may be replaced when dependencies are built.
