file(REMOVE_RECURSE
  "CMakeFiles/ablation_block_fill.dir/ablation_block_fill.cpp.o"
  "CMakeFiles/ablation_block_fill.dir/ablation_block_fill.cpp.o.d"
  "ablation_block_fill"
  "ablation_block_fill.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_block_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
