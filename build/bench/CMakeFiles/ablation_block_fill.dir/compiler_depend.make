# Empty compiler generated dependencies file for ablation_block_fill.
# This may be replaced when dependencies are built.
