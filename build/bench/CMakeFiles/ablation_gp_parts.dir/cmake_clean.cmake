file(REMOVE_RECURSE
  "CMakeFiles/ablation_gp_parts.dir/ablation_gp_parts.cpp.o"
  "CMakeFiles/ablation_gp_parts.dir/ablation_gp_parts.cpp.o.d"
  "ablation_gp_parts"
  "ablation_gp_parts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gp_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
