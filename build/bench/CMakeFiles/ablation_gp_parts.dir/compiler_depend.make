# Empty compiler generated dependencies file for ablation_gp_parts.
# This may be replaced when dependencies are built.
