# Empty dependencies file for micro_spmv_kernels.
# This may be replaced when dependencies are built.
