file(REMOVE_RECURSE
  "CMakeFiles/micro_spmv_kernels.dir/micro_spmv_kernels.cpp.o"
  "CMakeFiles/micro_spmv_kernels.dir/micro_spmv_kernels.cpp.o.d"
  "micro_spmv_kernels"
  "micro_spmv_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spmv_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
