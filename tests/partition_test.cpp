// Tests for the multilevel graph and hypergraph partitioners: matching and
// contraction invariants, FM gain correctness, balance constraints, cut
// quality on structured graphs, and separator properties.
#include <gtest/gtest.h>

#include <numeric>
#include <queue>

#include "partition/coarsening.hpp"
#include "partition/fm_refinement.hpp"
#include "partition/graph_partitioner.hpp"
#include "partition/hypergraph.hpp"
#include "partition/hypergraph_partitioner.hpp"
#include "partition/initial_partition.hpp"
#include "test_util.hpp"

namespace ordo {
namespace {

using testing::grid_laplacian_2d;
using testing::random_symmetric;

TEST(Matching, IsSymmetricAndComplete) {
  const Graph g = Graph::from_matrix(random_symmetric(300, 4.0, 2));
  const auto match = heavy_edge_matching(g, 7);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const index_t partner = match[static_cast<std::size_t>(v)];
    ASSERT_GE(partner, 0);
    EXPECT_EQ(match[static_cast<std::size_t>(partner)], v);
  }
}

TEST(Contract, PreservesTotalVertexWeight) {
  const Graph g = Graph::from_matrix(grid_laplacian_2d(15, 15));
  const CoarseLevel level = coarsen_once(g, 3);
  EXPECT_EQ(level.graph.total_vertex_weight(), g.total_vertex_weight());
  EXPECT_LT(level.graph.num_vertices(), g.num_vertices());
  // At least a good fraction of vertices must match on a grid.
  EXPECT_LE(level.graph.num_vertices(), 3 * g.num_vertices() / 4);
}

TEST(Contract, EdgeWeightsAggregateCutInvariantly) {
  // The total edge weight of the coarse graph plus contracted-away edge
  // weight equals the fine total.
  const Graph g = Graph::from_matrix(grid_laplacian_2d(10, 10));
  const auto match = heavy_edge_matching(g, 1);
  const CoarseLevel level = contract(g, match);
  std::int64_t fine_total = 0;
  for (offset_t e = 0; e < g.num_adjacency_entries(); ++e) {
    fine_total += g.edge_weight(e);
  }
  std::int64_t coarse_total = 0;
  for (offset_t e = 0; e < level.graph.num_adjacency_entries(); ++e) {
    coarse_total += level.graph.edge_weight(e);
  }
  std::int64_t contracted = 0;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const index_t partner = match[static_cast<std::size_t>(v)];
    if (partner == v) continue;
    const auto neighbors = g.neighbors(v);
    const offset_t base = g.adj_ptr()[v];
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      if (neighbors[k] == partner) {
        contracted += g.edge_weight(base + static_cast<offset_t>(k));
      }
    }
  }
  EXPECT_EQ(coarse_total + contracted, fine_total);
}

TEST(FmGain, MatchesBruteForceCutDelta) {
  const Graph g = Graph::from_matrix(random_symmetric(80, 4.0, 5));
  std::vector<index_t> part(static_cast<std::size_t>(g.num_vertices()));
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    part[static_cast<std::size_t>(v)] = v % 2;
  }
  const std::int64_t base_cut = compute_edge_cut(g, part);
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    const std::int64_t gain = fm_move_gain(g, part, v);
    part[static_cast<std::size_t>(v)] = 1 - part[static_cast<std::size_t>(v)];
    EXPECT_EQ(base_cut - compute_edge_cut(g, part), gain) << "vertex " << v;
    part[static_cast<std::size_t>(v)] = 1 - part[static_cast<std::size_t>(v)];
  }
}

TEST(FmRefine, NeverWorsensCutAndRespectsBalance) {
  const Graph g = Graph::from_matrix(random_symmetric(200, 5.0, 3));
  std::vector<index_t> part(static_cast<std::size_t>(g.num_vertices()));
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    part[static_cast<std::size_t>(v)] = (v * 7) % 2;
  }
  const std::int64_t before = compute_edge_cut(g, part);
  BisectionBalance balance;
  balance.min_weight0 = g.num_vertices() * 2 / 5;
  balance.max_weight0 = g.num_vertices() * 3 / 5;
  const std::int64_t improvement = fm_refine_bisection(g, part, balance, 8);
  const std::int64_t after = compute_edge_cut(g, part);
  EXPECT_EQ(before - after, improvement);
  EXPECT_GE(improvement, 0);
  std::int64_t weight0 = 0;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    if (part[static_cast<std::size_t>(v)] == 0) weight0 += 1;
  }
  EXPECT_GE(weight0, balance.min_weight0);
  EXPECT_LE(weight0, balance.max_weight0);
}

TEST(Bisection, GridCutNearOptimal) {
  // Bisecting an n x n grid optimally cuts n edges; the multilevel
  // partitioner should be within a small factor.
  const index_t side = 24;
  const Graph g = Graph::from_matrix(grid_laplacian_2d(side, side));
  PartitionOptions options;
  const PartitionResult result = bisect_graph(g, 0.5, options);
  EXPECT_LE(result.cut, 3 * side);
  EXPECT_LE(result.imbalance, 1.0 + 2 * options.imbalance_tolerance);
}

TEST(KwayPartition, BalancedForNonPowerOfTwoParts) {
  const Graph g = Graph::from_matrix(grid_laplacian_2d(30, 30));
  for (index_t parts : {3, 6, 12, 48, 72}) {
    PartitionOptions options;
    options.num_parts = parts;
    const PartitionResult result = partition_graph(g, options);
    EXPECT_EQ(*std::max_element(result.part.begin(), result.part.end()) + 1,
              parts);
    EXPECT_LE(result.imbalance, 1.35) << parts << " parts";
  }
}

TEST(KwayPartition, CutGrowsWithParts) {
  const Graph g = Graph::from_matrix(grid_laplacian_2d(24, 24));
  std::int64_t previous = 0;
  for (index_t parts : {2, 8, 32}) {
    PartitionOptions options;
    options.num_parts = parts;
    const PartitionResult result = partition_graph(g, options);
    EXPECT_GT(result.cut, previous);
    previous = result.cut;
  }
}

TEST(Separator, DisconnectsTheParts) {
  const Graph g = Graph::from_matrix(grid_laplacian_2d(16, 16));
  PartitionOptions options;
  const PartitionResult bisection = bisect_graph(g, 0.5, options);
  const auto separator = vertex_separator_from_bisection(g, bisection.part);
  // No edge may connect part 0 to part 1 once separator vertices are gone.
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    if (separator[static_cast<std::size_t>(v)]) continue;
    for (index_t u : g.neighbors(v)) {
      if (separator[static_cast<std::size_t>(u)]) continue;
      EXPECT_EQ(bisection.part[static_cast<std::size_t>(v)],
                bisection.part[static_cast<std::size_t>(u)]);
    }
  }
  // Separator should be small on a grid (O(side)).
  index_t separator_size = 0;
  for (bool in : separator) separator_size += in ? 1 : 0;
  EXPECT_LE(separator_size, 64);
}

TEST(Hypergraph, ColumnNetStructure) {
  // 3x3 matrix: column 0 has 2 nonzeros -> one net; single-entry columns
  // are dropped.
  CooMatrix coo(3, 3);
  coo.add(0, 0, 1.0);
  coo.add(2, 0, 1.0);
  coo.add(1, 1, 1.0);
  coo.add(2, 2, 1.0);
  const Hypergraph h = Hypergraph::column_net(CsrMatrix::from_coo(coo));
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.num_nets(), 1);
  EXPECT_EQ(h.num_pins(), 2);
  EXPECT_EQ(h.vertex_nets(1).size(), 0u);
}

TEST(Hypergraph, CutMetricsOnKnownPartition) {
  // Two nets: {0,1} and {0,1,2}. Partition {0}|{1,2}: both nets cut;
  // connectivity-1 = 1 + 1.
  Hypergraph h(3, {0, 2, 5}, {0, 1, 0, 1, 2}, {}, {});
  const std::vector<index_t> part{0, 1, 1};
  EXPECT_EQ(compute_cut_nets(h, part), 2);
  EXPECT_EQ(compute_connectivity_minus_one(h, part, 2), 2);
  const std::vector<index_t> together{0, 0, 0};
  EXPECT_EQ(compute_cut_nets(h, together), 0);
}

TEST(HypergraphCoarsening, PreservesWeightAndDropsDegenerateNets) {
  const CsrMatrix a = random_symmetric(200, 4.0, 8);
  const Hypergraph h = Hypergraph::column_net(a);
  const HypergraphCoarseLevel level = coarsen_hypergraph_once(h, 5);
  EXPECT_EQ(level.hypergraph.total_vertex_weight(), h.total_vertex_weight());
  EXPECT_LE(level.hypergraph.num_vertices(), h.num_vertices());
  for (index_t e = 0; e < level.hypergraph.num_nets(); ++e) {
    EXPECT_GE(level.hypergraph.net_pins(e).size(), 2u);
  }
}

TEST(HypergraphBisection, BalancedAndBetterThanRandom) {
  const CsrMatrix a = grid_laplacian_2d(20, 20);
  const Hypergraph h = Hypergraph::column_net(a);
  PartitionOptions options;
  const PartitionResult result = bisect_hypergraph(h, 0.5, options);
  EXPECT_LE(result.imbalance, 1.15);
  // Random bisection of a grid column-net hypergraph cuts nearly every net;
  // the partitioner should cut a small fraction.
  EXPECT_LT(result.cut, h.num_nets() / 4);
}

TEST(HypergraphKway, PartitionsInto128Parts) {
  const CsrMatrix a = random_symmetric(1600, 5.0, 4);
  const Hypergraph h = Hypergraph::column_net(a);
  PartitionOptions options;
  options.num_parts = 128;
  const PartitionResult result = partition_hypergraph(h, options);
  EXPECT_EQ(*std::max_element(result.part.begin(), result.part.end()) + 1,
            128);
  // Recursive bisection compounds the per-level tolerance (~1.05^7) plus
  // integer granularity at ~12 vertices per part.
  EXPECT_LE(result.imbalance, 1.7);
}

TEST(GraphGrowing, HitsWeightTarget) {
  const Graph g = Graph::from_matrix(grid_laplacian_2d(20, 20));
  const auto part = greedy_graph_growing_bisection(g, 0.25, 3);
  std::int64_t weight0 = 0;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    if (part[static_cast<std::size_t>(v)] == 0) weight0 += 1;
  }
  EXPECT_NEAR(static_cast<double>(weight0), 100.0, 12.0);
}

}  // namespace
}  // namespace ordo
