// Shared helpers for ordo tests: small deterministic matrix builders.
#pragma once

#include <random>

#include "sparse/csr.hpp"
#include "sparse/csr_ops.hpp"

namespace ordo::testing {

/// 5-point Laplacian stencil on an nx-by-ny grid (SPD, symmetric pattern).
inline CsrMatrix grid_laplacian_2d(index_t nx, index_t ny) {
  const index_t n = nx * ny;
  CooMatrix coo(n, n);
  auto id = [nx](index_t x, index_t y) { return y * nx + x; };
  for (index_t y = 0; y < ny; ++y) {
    for (index_t x = 0; x < nx; ++x) {
      coo.add(id(x, y), id(x, y), 4.0);
      if (x + 1 < nx) coo.add_symmetric(id(x, y), id(x + 1, y), -1.0);
      if (y + 1 < ny) coo.add_symmetric(id(x, y), id(x, y + 1), -1.0);
    }
  }
  return CsrMatrix::from_coo(coo);
}

/// Erdős–Rényi-style random square matrix with about `avg_degree` nonzeros
/// per row plus a full diagonal. Unsymmetric pattern.
inline CsrMatrix random_square(index_t n, double avg_degree,
                               std::uint64_t seed) {
  CooMatrix coo(n, n);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<index_t> dist(0, n - 1);
  std::poisson_distribution<int> degree(avg_degree);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 4.0 + static_cast<double>(i % 3));
    const int k = degree(rng);
    for (int e = 0; e < k; ++e) coo.add(i, dist(rng), -1.0);
  }
  return CsrMatrix::from_coo(coo);
}

/// Symmetric version of random_square (pattern of R + Rᵀ).
inline CsrMatrix random_symmetric(index_t n, double avg_degree,
                                  std::uint64_t seed) {
  return symmetrize(random_square(n, avg_degree, seed));
}

}  // namespace ordo::testing
