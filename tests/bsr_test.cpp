// Tests for the BSR format: round-trips, SpMV equivalence, block-fill
// accounting and its interaction with reordering.
#include <gtest/gtest.h>

#include <random>

#include "corpus/generators.hpp"
#include "reorder/reordering.hpp"
#include "sparse/bsr.hpp"
#include "spmv/spmv.hpp"
#include "test_util.hpp"

namespace ordo {
namespace {

using testing::random_square;

TEST(Bsr, RoundTripsThroughCsr) {
  const CsrMatrix a = random_square(97, 4.0, 6);  // deliberately not a
                                                  // multiple of the block
  for (int block_size : {1, 2, 3, 4, 8}) {
    const BsrMatrix b = BsrMatrix::from_csr(a, block_size);
    EXPECT_EQ(b.to_csr(), a) << "block size " << block_size;
    EXPECT_EQ(b.structural_nonzeros(), a.num_nonzeros());
    EXPECT_GE(b.stored_values(), a.num_nonzeros());
  }
}

TEST(Bsr, BlockSizeOneIsCsrEquivalent) {
  const CsrMatrix a = random_square(50, 3.0, 2);
  const BsrMatrix b = BsrMatrix::from_csr(a, 1);
  EXPECT_EQ(b.num_blocks(), a.num_nonzeros());
  EXPECT_DOUBLE_EQ(b.block_fill(), 1.0);
}

TEST(Bsr, PerfectlyBlockedFemMatrixHasFullBlocks) {
  // gen_fem_blocked builds dense dofs x dofs node blocks: blocking at dofs
  // captures them exactly.
  const CsrMatrix a = gen_fem_blocked(6, 6, 3);
  const BsrMatrix b = BsrMatrix::from_csr(a, 3);
  EXPECT_DOUBLE_EQ(b.block_fill(), 1.0);
  EXPECT_EQ(b.stored_values(), a.num_nonzeros());
}

TEST(Bsr, MultiplyMatchesCsrSpmv) {
  const CsrMatrix a = random_square(120, 5.0, 9);
  const BsrMatrix b = BsrMatrix::from_csr(a, 4);
  std::mt19937_64 rng(4);
  std::uniform_real_distribution<value_t> dist(-1.0, 1.0);
  const std::size_t padded =
      static_cast<std::size_t>(b.block_cols()) * b.block_size();
  std::vector<value_t> x(padded, 0.0);
  for (index_t j = 0; j < a.num_cols(); ++j) {
    x[static_cast<std::size_t>(j)] = dist(rng);
  }
  std::vector<value_t> y_bsr(
      static_cast<std::size_t>(b.block_rows()) * b.block_size(), 0.0);
  b.multiply(x, y_bsr);
  std::vector<value_t> y_csr(static_cast<std::size_t>(a.num_rows()));
  spmv_serial(a, std::span<const value_t>(x).first(
                     static_cast<std::size_t>(a.num_cols())),
              y_csr);
  for (index_t i = 0; i < a.num_rows(); ++i) {
    EXPECT_NEAR(y_bsr[static_cast<std::size_t>(i)],
                y_csr[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Bsr, ReorderingShredsBlockStructure) {
  // A block-aware matrix blocked at its natural dofs has fill 1.0; a random
  // symmetric permutation breaks node blocks apart, dropping the fill — the
  // cost the paper notes when orderings ignore existing block structure
  // (Section 3.3, last paragraph).
  const CsrMatrix a = gen_fem_blocked(8, 8, 3);
  const double natural_fill = BsrMatrix::from_csr(a, 3).block_fill();
  const CsrMatrix shuffled =
      apply_ordering(a, compute_ordering(a, OrderingKind::kRandom));
  const double shuffled_fill = BsrMatrix::from_csr(shuffled, 3).block_fill();
  EXPECT_DOUBLE_EQ(natural_fill, 1.0);
  EXPECT_LT(shuffled_fill, 0.7);
}

TEST(Bsr, EmptyMatrix) {
  const CsrMatrix a(0, 0, {0}, {}, {});
  const BsrMatrix b = BsrMatrix::from_csr(a, 4);
  EXPECT_EQ(b.num_blocks(), 0);
  EXPECT_DOUBLE_EQ(b.block_fill(), 1.0);
}

}  // namespace
}  // namespace ordo
