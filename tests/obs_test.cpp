// Tests for ordo::obs: span nesting and the trace buffer, thread safety of
// the metrics registry, JSON export well-formedness, the logging sink and
// environment-variable configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "sparse/types.hpp"

namespace ordo::obs {
namespace {

// Minimal JSON well-formedness check: balanced braces/brackets outside
// strings, nothing after the top-level value. Enough to catch the classic
// dump bugs (trailing commas are caught by the balance+structure of our
// fixed-shape documents, unescaped quotes by the string scanner).
bool json_balanced(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  bool seen_value = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); seen_value = true; break;
      case '[': stack.push_back(']'); seen_value = true; break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty() && seen_value;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_tracing_enabled(false);
    clear_trace();
    reset_metrics();
    set_log_level(LogLevel::kQuiet);
  }
  void TearDown() override {
    set_tracing_enabled(false);
    clear_trace();
    set_log_level(LogLevel::kQuiet);
    set_profiling_enabled(false);
  }
};

TEST_F(ObsTest, StopwatchMeasuresElapsedTime) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_GT(watch.seconds(), 0.0);
  EXPECT_GE(watch.micros(), 0);
}

TEST_F(ObsTest, MedianOfRepsRunsWarmupPlusReps) {
  int calls = 0;
  const double median = median_seconds_of_reps(5, [&] { ++calls; });
  EXPECT_EQ(calls, 6);  // 1 warm-up + 5 measured
  EXPECT_GE(median, 0.0);
}

TEST_F(ObsTest, SpansRecordNestingDepthAndContainment) {
  set_tracing_enabled(true);
  {
    Span outer("outer");
    {
      Span inner("outer/inner");
    }
  }
  const std::vector<SpanEvent> events = collect_trace();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer opens first.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "outer/inner");
  EXPECT_EQ(events[1].depth, 1);
  // The child lies within the parent.
  EXPECT_GE(events[1].start_us, events[0].start_us);
  EXPECT_LE(events[1].start_us + events[1].duration_us,
            events[0].start_us + events[0].duration_us);
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  {
    Span span("never");
    ORDO_SCOPE("never/macro");
  }
  EXPECT_TRUE(collect_trace().empty());
}

TEST_F(ObsTest, SpansFromManyThreadsAllCollected) {
  set_tracing_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("worker/span");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const std::vector<SpanEvent> events = collect_trace();
  EXPECT_GE(events.size(), static_cast<std::size_t>(kThreads * kSpansPerThread));
}

TEST_F(ObsTest, ChromeTraceExportIsWellFormedJson) {
  set_tracing_enabled(true);
  {
    Span outer("study/run");
    Span inner("reorder/RCM \"quoted\"\n");
  }
  std::ostringstream out;
  write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("study/run"), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST_F(ObsTest, CountersAreThreadSafe) {
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  Counter& c = counter("test.concurrent_counter");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kAdds);
}

TEST_F(ObsTest, HistogramsAreThreadSafeAndSummarize) {
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  Histogram& h = histogram("test.concurrent_histogram");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kRecords; ++i) {
        h.record(static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::int64_t>(kThreads) * kRecords);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, static_cast<double>(kThreads));
  EXPECT_DOUBLE_EQ(s.sum, kRecords * (1.0 + 2.0 + 3.0 + 4.0));
}

TEST_F(ObsTest, RegistryLookupFromManyThreadsYieldsOneInstrument) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(kThreads, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&seen, t] { seen[static_cast<std::size_t>(t)] =
                         &counter("test.registry_race"); });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)], seen[0]);
  }
}

TEST_F(ObsTest, MetricKindsAreExclusivePerName) {
  counter("test.kind_collision");
  EXPECT_THROW(histogram("test.kind_collision"), invalid_argument_error);
  EXPECT_THROW(gauge("test.kind_collision"), invalid_argument_error);
}

TEST_F(ObsTest, MetricsJsonRoundTripsValuesAndNames) {
  counter("test.json_counter").add(42);
  gauge("test.json_gauge").set(2.5);
  histogram("test.json_histogram").record(3.0);
  histogram("test.json_histogram").record(5.0);

  std::ostringstream out;
  write_metrics_json(out);
  const std::string json = out.str();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"test.json_counter\":42"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_histogram\":{\"count\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"mean\":4"), std::string::npos);

  EXPECT_TRUE(has_metric("test.json_counter"));
  const std::vector<std::string> names = metric_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "test.json_histogram"),
            names.end());
}

TEST_F(ObsTest, ResetZeroesWithoutInvalidatingReferences) {
  Counter& c = counter("test.reset_counter");
  c.add(7);
  Histogram& h = histogram("test.reset_histogram");
  h.record(1.0);
  reset_metrics();
  EXPECT_EQ(c.value(), 0);
  EXPECT_EQ(h.snapshot().count, 0);
  c.add(1);
  EXPECT_EQ(c.value(), 1);
}

TEST_F(ObsTest, LogLevelParsingAndGating) {
  EXPECT_EQ(parse_log_level("quiet"), LogLevel::kQuiet);
  EXPECT_EQ(parse_log_level("Progress"), LogLevel::kProgress);
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("1"), LogLevel::kProgress);
  EXPECT_THROW(parse_log_level("loud"), invalid_argument_error);

  set_log_level(LogLevel::kProgress);
  EXPECT_TRUE(log_enabled(LogLevel::kProgress));
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  set_log_level(LogLevel::kQuiet);
  EXPECT_FALSE(log_enabled(LogLevel::kProgress));
}

TEST_F(ObsTest, InitFromEnvConfiguresEverySink) {
  ::setenv("ORDO_TRACE", "/tmp/ordo_obs_test_trace.json", 1);
  ::setenv("ORDO_LOG", "debug", 1);
  ::setenv("ORDO_METRICS", "/tmp/ordo_obs_test_metrics.json", 1);
  ::setenv("ORDO_PROFILE", "1", 1);
  init_from_env();
  EXPECT_TRUE(tracing_enabled());
  EXPECT_EQ(trace_output_path(), "/tmp/ordo_obs_test_trace.json");
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  EXPECT_EQ(metrics_output_path(), "/tmp/ordo_obs_test_metrics.json");
  EXPECT_TRUE(profiling_enabled());

  ::unsetenv("ORDO_TRACE");
  ::unsetenv("ORDO_LOG");
  ::unsetenv("ORDO_METRICS");
  ::unsetenv("ORDO_PROFILE");
  set_trace_output_path("");
  set_metrics_output_path("");
}

TEST_F(ObsTest, FinalizeWritesConfiguredFiles) {
  const std::string trace_path = ::testing::TempDir() + "/obs_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "/obs_metrics.json";
  set_tracing_enabled(true);
  { Span span("finalize/span"); }
  counter("test.finalize_counter").add(3);
  set_trace_output_path(trace_path);
  set_metrics_output_path(metrics_path);
  finalize();
  set_trace_output_path("");
  set_metrics_output_path("");

  const auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  const std::string trace = slurp(trace_path);
  const std::string metrics = slurp(metrics_path);
  EXPECT_TRUE(json_balanced(trace)) << trace;
  EXPECT_NE(trace.find("finalize/span"), std::string::npos);
  EXPECT_TRUE(json_balanced(metrics)) << metrics;
  EXPECT_NE(metrics.find("\"test.finalize_counter\":3"), std::string::npos);
}

}  // namespace
}  // namespace ordo::obs
