#include <gtest/gtest.h>
#include "sparse/csr.hpp"
TEST(Smoke, Builds) {
  ordo::CooMatrix coo(2, 2);
  coo.add(0, 0, 1.0);
  auto a = ordo::CsrMatrix::from_coo(coo);
  EXPECT_EQ(a.num_nonzeros(), 1);
}
