// Tests for the Matrix Market reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/csr_ops.hpp"
#include "sparse/matrix_market.hpp"
#include "test_util.hpp"

namespace ordo {
namespace {

TEST(MatrixMarket, ReadsGeneralRealCoordinate) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 1.5\n"
      "2 3 -2.0\n"
      "3 1 4.0\n"
      "3 3 1.0\n");
  const CsrMatrix a = to_csr(read_matrix_market(in));
  EXPECT_EQ(a.num_rows(), 3);
  EXPECT_EQ(a.num_nonzeros(), 4);
  EXPECT_EQ(a.row_cols(1).size(), 1u);
  EXPECT_EQ(a.row_cols(1)[0], 2);
  EXPECT_DOUBLE_EQ(a.row_values(2)[0], 4.0);
}

TEST(MatrixMarket, ExpandsSymmetricStorage) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "3 2 -1.0\n");
  const CsrMatrix a = to_csr(read_matrix_market(in));
  // Off-diagonals are mirrored into both triangles (Section 4.1).
  EXPECT_EQ(a.num_nonzeros(), 5);
  EXPECT_TRUE(is_pattern_symmetric(a));
  EXPECT_DOUBLE_EQ(a.row_values(0)[1], -1.0);  // A(0,1) mirrored from (2,1)
}

TEST(MatrixMarket, SkewSymmetricMirrorsWithSignFlip) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const CsrMatrix a = to_csr(read_matrix_market(in));
  EXPECT_EQ(a.num_nonzeros(), 2);
  EXPECT_DOUBLE_EQ(a.row_values(0)[0], -3.0);
  EXPECT_DOUBLE_EQ(a.row_values(1)[0], 3.0);
}

TEST(MatrixMarket, PatternFieldDefaultsToOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  const CsrMatrix a = to_csr(read_matrix_market(in));
  EXPECT_DOUBLE_EQ(a.row_values(0)[0], 1.0);
}

TEST(MatrixMarket, RejectsMalformedInput) {
  {
    std::istringstream in("not a matrix market file\n");
    EXPECT_THROW(read_matrix_market(in), invalid_argument_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n"
        "2 2 2\n"
        "1 1 1.0\n");  // declares 2 entries, provides 1
    EXPECT_THROW(read_matrix_market(in), invalid_argument_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n"
        "1 1 1\n"
        "1 1 1.0 0.0\n");
    EXPECT_THROW(read_matrix_market(in), invalid_argument_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix array real general\n"
        "1 1\n"
        "1.0\n");
    EXPECT_THROW(read_matrix_market(in), invalid_argument_error);
  }
}

TEST(MatrixMarket, RejectsOutOfRangeIndices) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "3 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), invalid_argument_error);
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const CsrMatrix a = testing::random_square(60, 4.0, 9);
  std::ostringstream out;
  write_matrix_market(out, a);
  std::istringstream in(out.str());
  const CsrMatrix b = to_csr(read_matrix_market(in));
  ASSERT_EQ(a.num_nonzeros(), b.num_nonzeros());
  EXPECT_TRUE(std::ranges::equal(a.row_ptr(), b.row_ptr()));
  EXPECT_TRUE(std::ranges::equal(a.col_idx(), b.col_idx()));
  for (std::size_t k = 0; k < a.values().size(); ++k) {
    EXPECT_NEAR(a.values()[k], b.values()[k], 1e-9);
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const CsrMatrix a = testing::grid_laplacian_2d(6, 5);
  const std::string path = ::testing::TempDir() + "/ordo_mm_roundtrip.mtx";
  save_matrix_market(path, a);
  const CsrMatrix b = load_matrix_market(path);
  EXPECT_EQ(a, b);
}

TEST(MatrixMarket, LoadMissingFileThrows) {
  EXPECT_THROW(load_matrix_market("/nonexistent/definitely_not_here.mtx"),
               invalid_argument_error);
}

}  // namespace
}  // namespace ordo
