// Integration tests for the experiment pipeline: full-study execution on a
// tiny corpus, result-file round-trips, and the cache layer.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/experiment.hpp"
#include "obs/obs.hpp"

namespace ordo {
namespace {

CorpusOptions tiny_corpus() {
  CorpusOptions options;
  options.count = 4;
  options.scale = 0.02;
  return options;
}

TEST(FullStudy, ProducesRowsForEveryMachineAndKernel) {
  const auto corpus = generate_corpus(tiny_corpus());
  StudyOptions options;
  const StudyResults results = run_full_study(corpus, options);
  EXPECT_EQ(results.size(), 16u);  // 8 machines x 2 kernels
  for (const auto& [key, rows] : results) {
    EXPECT_EQ(rows.size(), corpus.size()) << key.first;
    for (const MeasurementRow& row : rows) {
      ASSERT_EQ(row.orderings.size(), 7u);
      for (const OrderingMeasurement& m : row.orderings) {
        EXPECT_GT(m.gflops_max, 0.0);
        EXPECT_GE(m.imbalance, 0.99);
        EXPECT_GT(m.seconds, 0.0);
      }
      EXPECT_EQ(row.threads, architecture_by_name(key.first).cores);
    }
  }
}

TEST(FullStudy, TwoDImbalanceIsAlwaysOne) {
  const auto corpus = generate_corpus(tiny_corpus());
  StudyOptions options;
  const StudyResults results = run_full_study(corpus, options);
  for (const auto& [key, rows] : results) {
    if (key.second != SpmvKernel::k2D) continue;
    for (const MeasurementRow& row : rows) {
      for (const OrderingMeasurement& m : row.orderings) {
        // The even nonzero split differs by at most one nonzero per thread,
        // so max <= mean + 1 exactly (the paper's footnote 1: imbalance is
        // always 1, up to this integer granularity).
        EXPECT_LE(static_cast<double>(m.max_thread_nnz),
                  m.mean_thread_nnz + 1.0)
            << row.name;
      }
    }
  }
}

#if defined(ORDO_OBS_ENABLED)
TEST(FullStudy, PopulatesObservabilityMetrics) {
  obs::reset_metrics();
  const auto corpus = generate_corpus(tiny_corpus());
  StudyOptions options;
  const StudyResults results = run_full_study(corpus, options);
  ASSERT_EQ(results.size(), 16u);

  // One model evaluation per (matrix, machine, kernel, ordering).
  EXPECT_EQ(obs::counter("model.evaluations").value(),
            static_cast<std::int64_t>(corpus.size()) * 8 * 2 * 7);
  EXPECT_EQ(obs::counter("study.matrices").value(),
            static_cast<std::int64_t>(corpus.size()));

  // Per-ordering wall time (observed) and modeled per-thread work must be
  // present for every ordering of the study.
  for (OrderingKind kind : study_orderings()) {
    const std::string name = ordering_name(kind);
    EXPECT_TRUE(obs::has_metric("study." + name + ".seconds")) << name;
    EXPECT_TRUE(obs::has_metric("study." + name + ".max_thread_nnz")) << name;
    EXPECT_TRUE(obs::has_metric("study." + name + ".imbalance")) << name;
    if (kind != OrderingKind::kOriginal) {
      EXPECT_TRUE(obs::has_metric("reorder." + name + ".seconds")) << name;
      EXPECT_GT(obs::histogram("reorder." + name + ".seconds")
                    .snapshot().count, 0) << name;
    }
  }

  // The GP/HP orderings exercise the partitioners, which report their own
  // counters.
  EXPECT_GT(obs::counter("partition.gp.bisections").value(), 0);
  EXPECT_GT(obs::counter("partition.fm.passes").value(), 0);
}
#endif

TEST(ReorderingSpeedups, DividesByOriginal) {
  MeasurementRow row;
  row.orderings.resize(7);
  for (std::size_t k = 0; k < 7; ++k) {
    row.orderings[k].gflops_max = static_cast<double>(k + 1);
  }
  const auto speedups = reordering_speedups(row);
  ASSERT_EQ(speedups.size(), 6u);
  EXPECT_DOUBLE_EQ(speedups[0], 2.0);
  EXPECT_DOUBLE_EQ(speedups[5], 7.0);
}

TEST(ResultsFile, RoundTrip) {
  const auto corpus = generate_corpus(tiny_corpus());
  StudyOptions options;
  const StudyResults results = run_full_study(corpus, options);
  const auto& rows = results.at({"Rome", SpmvKernel::k1D});

  const std::string path = ::testing::TempDir() + "/ordo_results_test.txt";
  write_results_file(path, rows);
  const auto loaded = read_results_file(path);
  ASSERT_EQ(loaded.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(loaded[i].name, rows[i].name);
    EXPECT_EQ(loaded[i].nnz, rows[i].nnz);
    for (std::size_t k = 0; k < 7; ++k) {
      EXPECT_NEAR(loaded[i].orderings[k].gflops_max,
                  rows[i].orderings[k].gflops_max,
                  1e-6 * rows[i].orderings[k].gflops_max);
      EXPECT_EQ(loaded[i].orderings[k].bandwidth,
                rows[i].orderings[k].bandwidth);
      EXPECT_EQ(loaded[i].orderings[k].off_diagonal_nnz,
                rows[i].orderings[k].off_diagonal_nnz);
    }
  }
}

TEST(ResultsFilename, MatchesArtifactConvention) {
  EXPECT_EQ(results_filename(SpmvKernel::k1D, architecture_by_name("Milan B"),
                             490),
            "csr_1d_milan_b_128_threads_ss490.txt");
  EXPECT_EQ(results_filename(SpmvKernel::k2D, architecture_by_name("Rome"),
                             56),
            "csr_2d_rome_16_threads_ss56.txt");
}

TEST(StudyCache, SecondLoadReadsFiles) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "/ordo_cache_test";
  fs::remove_all(dir);

  StudyOptions options;
  const StudyResults first = load_or_run_study(dir, tiny_corpus(), options);
  // All 16 files must exist now.
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".txt") ++files;
  }
  EXPECT_EQ(files, 16u);

  const StudyResults second = load_or_run_study(dir, tiny_corpus(), options);
  ASSERT_EQ(second.size(), first.size());
  const auto& a = first.at({"Skylake", SpmvKernel::k1D});
  const auto& b = second.at({"Skylake", SpmvKernel::k1D});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_NEAR(a[i].orderings[4].gflops_max, b[i].orderings[4].gflops_max,
                1e-6 * a[i].orderings[4].gflops_max);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ordo
