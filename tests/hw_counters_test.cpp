// Tests for obs::hw — the perf_event counter layer — and the bench report
// it feeds. Everything here must pass with perf unavailable (containers,
// perf_event_paranoid >= 2, non-Linux): the session is never enabled unless
// a test enables it, and no assertion depends on hardware counters actually
// opening — the degradation path IS the contract under test.
#include "obs/hw/hw_counters.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "obs/hw/membw.hpp"
#include "obs/report.hpp"

namespace ordo::obs::hw {
namespace {

// --- multiplex scaling math on synthetic samples ---------------------------

RawSample sample(std::uint64_t value, std::uint64_t enabled_ns,
                 std::uint64_t running_ns) {
  RawSample s;
  s.value = value;
  s.time_enabled_ns = enabled_ns;
  s.time_running_ns = running_ns;
  return s;
}

TEST(ScaleWindow, UnmultiplexedWindowIsRawDelta) {
  const WindowDelta d =
      scale_window(sample(1000, 5'000, 5'000), sample(4000, 9'000, 9'000));
  EXPECT_TRUE(d.ran);
  EXPECT_FALSE(d.multiplexed);
  EXPECT_DOUBLE_EQ(d.value, 3000.0);
  EXPECT_DOUBLE_EQ(d.scale, 1.0);
}

TEST(ScaleWindow, MultiplexedWindowExtrapolatesByEnabledOverRunning) {
  // Enabled for 8000ns of the window but scheduled on the PMU for only
  // 2000ns: the observed delta must be scaled by 4.
  const WindowDelta d =
      scale_window(sample(500, 1'000, 1'000), sample(1500, 9'000, 3'000));
  EXPECT_TRUE(d.ran);
  EXPECT_TRUE(d.multiplexed);
  EXPECT_DOUBLE_EQ(d.scale, 4.0);
  EXPECT_DOUBLE_EQ(d.value, 4000.0);
}

TEST(ScaleWindow, CounterThatNeverRanIsAbsentNotZero) {
  const WindowDelta d =
      scale_window(sample(700, 1'000, 1'000), sample(700, 9'000, 1'000));
  EXPECT_FALSE(d.ran);  // Δrunning == 0: no information in this window
}

// --- derived metrics on synthetic reading sets -----------------------------

CounterSet synthetic_set(std::vector<std::pair<CounterId, double>> values) {
  CounterSet set;
  set.available = !values.empty();
  for (const auto& [id, value] : values) {
    Reading r;
    r.id = id;
    r.value = value;
    set.readings.push_back(r);
  }
  return set;
}

TEST(DeriveMetrics, FullQuartetYieldsIpcAndMissRate) {
  const CounterSet set = synthetic_set({
      {CounterId::kCycles, 2.0e9},
      {CounterId::kInstructions, 3.0e9},
      {CounterId::kCacheReferences, 1.0e8},
      {CounterId::kCacheMisses, 2.5e7},
  });
  const DerivedMetrics m = derive_metrics(set, 1.0);
  ASSERT_TRUE(m.valid);
  EXPECT_DOUBLE_EQ(m.ipc, 1.5);
  EXPECT_DOUBLE_EQ(m.llc_miss_rate, 0.25);
  EXPECT_DOUBLE_EQ(m.est_bytes,
                   static_cast<double>(cache_line_bytes()) * 2.5e7);
  EXPECT_DOUBLE_EQ(m.gbps, m.est_bytes / 1e9);
}

TEST(DeriveMetrics, PrefersExplicitLlcLoadStorePairForTraffic) {
  const CounterSet set = synthetic_set({
      {CounterId::kCycles, 1.0e9},
      {CounterId::kInstructions, 1.0e9},
      {CounterId::kCacheReferences, 1.0e8},
      {CounterId::kCacheMisses, 4.0e7},
      {CounterId::kLlcLoadMisses, 1.0e7},
      {CounterId::kLlcStoreMisses, 5.0e6},
  });
  const DerivedMetrics m = derive_metrics(set, 2.0);
  ASSERT_TRUE(m.valid);
  EXPECT_DOUBLE_EQ(m.est_bytes,
                   static_cast<double>(cache_line_bytes()) * 1.5e7);
  EXPECT_DOUBLE_EQ(m.gbps, m.est_bytes / 2.0 / 1e9);
}

TEST(DeriveMetrics, SoftwareOnlySetIsNeverValid) {
  const CounterSet set = synthetic_set({
      {CounterId::kTaskClockNs, 1.0e9},
      {CounterId::kPageFaults, 100.0},
      {CounterId::kContextSwitches, 5.0},
  });
  EXPECT_FALSE(derive_metrics(set, 1.0).valid);
}

TEST(DeriveMetrics, EmptySetAndZeroSecondsAreInvalidNotGarbage) {
  EXPECT_FALSE(derive_metrics(CounterSet{}, 1.0).valid);
  const CounterSet set = synthetic_set({
      {CounterId::kCycles, 1.0e9},
      {CounterId::kInstructions, 1.0e9},
      {CounterId::kCacheReferences, 1.0e8},
      {CounterId::kCacheMisses, 1.0e7},
  });
  EXPECT_FALSE(derive_metrics(set, 0.0).valid);
}

TEST(CounterNames, AreStableAndDistinct) {
  std::vector<std::string> names;
  for (int i = 0; i < kNumCounterIds; ++i) {
    names.push_back(counter_name(static_cast<CounterId>(i)));
  }
  EXPECT_EQ(names.front(), "cycles");
  for (std::size_t a = 0; a < names.size(); ++a) {
    EXPECT_FALSE(names[a].empty());
    for (std::size_t b = a + 1; b < names.size(); ++b) {
      EXPECT_NE(names[a], names[b]);
    }
  }
}

// --- the null backend (what this CI host actually exercises) ---------------

TEST(NullBackend, DisabledSessionScopesAreNoOps) {
  ASSERT_FALSE(enabled()) << "tests must run without ORDO_HW";
  EXPECT_FALSE(available());
  EXPECT_EQ(config_fingerprint(), "off");
  CounterScope scope("test.region");
  const CounterSet& set = scope.stop();
  EXPECT_FALSE(set.available);
  EXPECT_TRUE(set.readings.empty());
}

TEST(NullBackend, ScopesNestAndStopIsIdempotent) {
  CounterScope outer("test.outer");
  {
    CounterScope inner("test.inner");
    CounterScope innermost;  // unnamed: records no metrics
    EXPECT_FALSE(innermost.stop().available);
    EXPECT_FALSE(inner.stop().available);
  }
  const CounterSet& first = outer.stop();
  const CounterSet& second = outer.stop();
  EXPECT_EQ(&first, &second);  // same result object, no double close
  EXPECT_FALSE(second.available);
}

TEST(NullBackend, SessionTotalsReportAbsent) {
  EXPECT_FALSE(session_totals().available);
}

TEST(NullBackend, PeakBandwidthHonoursEnvOverride) {
  // No measurement has run in this process and ORDO_PEAK_GBPS is unset.
  EXPECT_EQ(measured_peak_gbps(), 0.0);
}

}  // namespace
}  // namespace ordo::obs::hw

namespace ordo::obs {
namespace {

// --- bench report round-trip ------------------------------------------------

TEST(BenchReport, MedianAndIqrFillFromReps) {
  BenchCase c;
  c.name = "case";
  c.rep_seconds = {3.0, 1.0, 2.0, 5.0, 4.0};
  // median/iqr computed the same way add_case fills them: sorted
  // {1,2,3,4,5} has median 3, q1 = 2, q3 = 4.
  EXPECT_DOUBLE_EQ(median_of(c.rep_seconds), 3.0);
  EXPECT_DOUBLE_EQ(iqr_of(c.rep_seconds), 2.0);
}

TEST(BenchReport, JsonRoundTripsThroughParser) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ordo_bench_rt.json").string();

  BenchCase timed;
  timed.name = "spmv_mesh";
  timed.rep_seconds = {0.011, 0.010, 0.012, 0.010, 0.011};
  timed.counters.emplace_back("cycles", 1.5e9);
  timed.counters.emplace_back("instructions", 2.5e9);
  bench_report().add_case(timed);

  BenchCase info;
  info.name = "membw_peak";
  info.counters.emplace_back("peak_gbps", 42.5);
  bench_report().add_case(info);

  set_bench_report_name("hw_counters_test");
  bench_report().write_json_file(path);

  const ParsedBenchReport parsed = parse_bench_report_file(path);
  std::filesystem::remove(path);

  EXPECT_EQ(parsed.schema_version, kBenchReportSchemaVersion);
  EXPECT_EQ(parsed.name, "hw_counters_test");
  EXPECT_GE(parsed.host.logical_cpus, 1);
  EXPECT_FALSE(parsed.host.cpu.empty());
  EXPECT_FALSE(parsed.host.hw_backend.empty());

  ASSERT_GE(parsed.cases.size(), 2u);
  const BenchCase& timed_back = parsed.cases[0];
  EXPECT_EQ(timed_back.name, "spmv_mesh");
  ASSERT_EQ(timed_back.rep_seconds.size(), 5u);
  EXPECT_DOUBLE_EQ(timed_back.median_seconds, 0.011);
  ASSERT_EQ(timed_back.counters.size(), 2u);
  EXPECT_EQ(timed_back.counters[0].first, "cycles");
  EXPECT_DOUBLE_EQ(timed_back.counters[0].second, 1.5e9);

  const BenchCase& info_back = parsed.cases[1];
  EXPECT_EQ(info_back.name, "membw_peak");
  EXPECT_DOUBLE_EQ(info_back.median_seconds, 0.0);  // no reps: stays unset
  ASSERT_EQ(info_back.counters.size(), 1u);
  EXPECT_EQ(info_back.counters[0].first, "peak_gbps");
  EXPECT_DOUBLE_EQ(info_back.counters[0].second, 42.5);
}

}  // namespace
}  // namespace ordo::obs

namespace ordo {
namespace {

// --- result-file hw columns -------------------------------------------------

MeasurementRow hw_row(bool with_hw) {
  MeasurementRow row;
  row.group = "synthetic";
  row.name = "mesh";
  row.rows = 100;
  row.cols = 100;
  row.nnz = 500;
  row.threads = 8;
  for (std::size_t k = 0; k < study_orderings().size(); ++k) {
    OrderingMeasurement m;
    m.min_thread_nnz = 10;
    m.max_thread_nnz = 90;
    m.mean_thread_nnz = 62.5;
    m.imbalance = 1.44;
    m.seconds = 1e-4 * static_cast<double>(k + 1);
    m.gflops_max = 2.0;
    m.gflops_mean = 1.9;
    m.bandwidth = 37;
    m.profile = 1234;
    m.off_diagonal_nnz = 55;
    if (with_hw) {
      m.has_hw = k % 2 == 0;  // mixed: some orderings measured, some absent
      m.hw_ipc = 1.25 + static_cast<double>(k);
      m.hw_llc_miss_rate = 0.125;
      m.hw_gbps = 10.5;
      m.hw_seconds = 2e-4;
    }
    row.orderings.push_back(m);
  }
  return row;
}

TEST(ResultsFileHw, HwColumnsRoundTripAndHeaderIsSniffed) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ordo_hw_results.txt").string();
  write_results_file(path, {hw_row(true)});

  const std::vector<MeasurementRow> rows = read_results_file(path);
  std::filesystem::remove(path);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].orderings.size(), study_orderings().size());
  for (std::size_t k = 0; k < rows[0].orderings.size(); ++k) {
    const OrderingMeasurement& m = rows[0].orderings[k];
    EXPECT_EQ(m.has_hw, k % 2 == 0);
    if (m.has_hw) {
      EXPECT_DOUBLE_EQ(m.hw_ipc, 1.25 + static_cast<double>(k));
      EXPECT_DOUBLE_EQ(m.hw_llc_miss_rate, 0.125);
      EXPECT_DOUBLE_EQ(m.hw_gbps, 10.5);
    }
  }
}

TEST(ResultsFileHw, HwFreeRowsKeepTheLegacyLayout) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "ordo_legacy_results.txt")
          .string();
  write_results_file(path, {hw_row(false)});

  {
    std::ifstream in(path);
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    EXPECT_EQ(header.find(":hw_valid"), std::string::npos)
        << "hw-less rows must keep the artifact's original columns";
  }
  const std::vector<MeasurementRow> rows = read_results_file(path);
  std::filesystem::remove(path);
  ASSERT_EQ(rows.size(), 1u);
  for (const OrderingMeasurement& m : rows[0].orderings) {
    EXPECT_FALSE(m.has_hw);
  }
}

}  // namespace
}  // namespace ordo
