// Tests for the sparse containers and structural operations.
#include <gtest/gtest.h>

#include "sparse/csr_ops.hpp"
#include "sparse/permutation.hpp"
#include "test_util.hpp"

namespace ordo {
namespace {

using testing::random_square;

TEST(Coo, RejectsOutOfRangeIndices) {
  CooMatrix coo(3, 3);
  EXPECT_THROW(coo.add(3, 0, 1.0), invalid_argument_error);
  EXPECT_THROW(coo.add(0, -1, 1.0), invalid_argument_error);
}

TEST(Csr, FromCooSortsAndSumsDuplicates) {
  CooMatrix coo(2, 4);
  coo.add(0, 3, 1.0);
  coo.add(0, 1, 2.0);
  coo.add(0, 3, 0.5);  // duplicate of (0,3)
  coo.add(1, 0, -1.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(a.num_nonzeros(), 3);
  ASSERT_EQ(a.row_cols(0).size(), 2u);
  EXPECT_EQ(a.row_cols(0)[0], 1);
  EXPECT_EQ(a.row_cols(0)[1], 3);
  EXPECT_DOUBLE_EQ(a.row_values(0)[1], 1.5);
}

TEST(Csr, ValidatesInvariants) {
  // Unsorted columns within a row must be rejected.
  EXPECT_THROW(CsrMatrix(1, 3, {0, 2}, {2, 1}, {1.0, 1.0}),
               invalid_argument_error);
  // row_ptr must end at nnz.
  EXPECT_THROW(CsrMatrix(1, 3, {0, 1}, {0, 1}, {1.0, 1.0}),
               invalid_argument_error);
  // Column out of range.
  EXPECT_THROW(CsrMatrix(1, 2, {0, 1}, {2}, {1.0}), invalid_argument_error);
}

TEST(Csr, SymmetricExpandMirrorsOffDiagonals) {
  CooMatrix coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 0, -1.0);  // lower triangle only
  coo.add(2, 1, -1.0);
  const CsrMatrix a = CsrMatrix::from_coo_symmetric_expand(coo);
  EXPECT_EQ(a.num_nonzeros(), 5);
  EXPECT_TRUE(is_pattern_symmetric(a));
}

TEST(Csr, StorageBytesFormula) {
  const CsrMatrix a = random_square(10, 3.0, 1);
  const std::int64_t expected =
      static_cast<std::int64_t>(11 * sizeof(offset_t)) +
      a.num_nonzeros() *
          static_cast<std::int64_t>(sizeof(index_t) + sizeof(value_t));
  EXPECT_EQ(a.storage_bytes(), expected);
}

TEST(Transpose, InvolutionAndKnownPattern) {
  const CsrMatrix a = random_square(50, 4.0, 3);
  const CsrMatrix att = transpose(transpose(a));
  EXPECT_EQ(a, att);
}

TEST(Transpose, RectangularShape) {
  CooMatrix coo(2, 5);
  coo.add(0, 4, 1.0);
  coo.add(1, 0, 2.0);
  const CsrMatrix t = transpose(CsrMatrix::from_coo(coo));
  EXPECT_EQ(t.num_rows(), 5);
  EXPECT_EQ(t.num_cols(), 2);
  EXPECT_EQ(t.row_cols(4)[0], 0);
}

TEST(Symmetrize, SumsMirroredValues) {
  CooMatrix coo(2, 2);
  coo.add(0, 1, 3.0);
  coo.add(1, 0, 4.0);
  const CsrMatrix s = symmetrize(CsrMatrix::from_coo(coo));
  EXPECT_DOUBLE_EQ(s.row_values(0)[0], 7.0);
  EXPECT_DOUBLE_EQ(s.row_values(1)[0], 7.0);
}

TEST(Symmetrize, ProducesSymmetricPatternOnRandom) {
  const CsrMatrix a = random_square(120, 4.0, 5);
  EXPECT_TRUE(is_pattern_symmetric(symmetrize(a)));
}

TEST(Permutations, InvertAndCompose) {
  const Permutation p = random_permutation(40, 1);
  const Permutation inv = invert_permutation(p);
  EXPECT_EQ(compose_permutations(p, inv), identity_permutation(40));
  EXPECT_EQ(compose_permutations(inv, p), identity_permutation(40));
}

TEST(Permutations, ValidationCatchesDefects) {
  EXPECT_TRUE(is_valid_permutation({2, 0, 1}));
  EXPECT_FALSE(is_valid_permutation({0, 0, 1}));   // duplicate
  EXPECT_FALSE(is_valid_permutation({0, 3, 1}));   // out of range
  EXPECT_FALSE(is_valid_permutation({0, -1, 1}));  // negative
}

TEST(PermuteSymmetric, RoundTripsThroughInverse) {
  const CsrMatrix a = symmetrize(random_square(64, 4.0, 9));
  const Permutation p = random_permutation(64, 2);
  const CsrMatrix b = permute_symmetric(a, p);
  const CsrMatrix back = permute_symmetric(b, invert_permutation(p));
  EXPECT_EQ(a, back);
}

TEST(PermuteSymmetric, MovesEntriesCorrectly) {
  // 2x2 with A(0,1) = 5; swapping rows/cols moves it to B(1,0).
  CooMatrix coo(2, 2);
  coo.add(0, 1, 5.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const CsrMatrix b = permute_symmetric(a, {1, 0});
  EXPECT_EQ(b.row_nonzeros(0), 0);
  EXPECT_EQ(b.row_cols(1)[0], 0);
  EXPECT_DOUBLE_EQ(b.row_values(1)[0], 5.0);
}

TEST(PermuteRows, LeavesColumnsInPlace) {
  CooMatrix coo(3, 3);
  coo.add(0, 2, 1.0);
  coo.add(1, 0, 2.0);
  coo.add(2, 1, 3.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  const CsrMatrix b = permute_rows(a, {2, 0, 1});
  EXPECT_EQ(b.row_cols(0)[0], 1);  // old row 2
  EXPECT_EQ(b.row_cols(1)[0], 2);  // old row 0
  EXPECT_EQ(b.row_cols(2)[0], 0);  // old row 1
}

TEST(Diagonal, CountAndFill) {
  CooMatrix coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(1, 2, 1.0);
  coo.add(3, 3, 1.0);
  const CsrMatrix a = CsrMatrix::from_coo(coo);
  EXPECT_EQ(diagonal_nonzeros(a), 2);
  const CsrMatrix full = with_full_diagonal(a, 9.0);
  EXPECT_EQ(diagonal_nonzeros(full), 4);
  EXPECT_EQ(full.num_nonzeros(), 5);
  EXPECT_DOUBLE_EQ(full.row_values(2)[0], 9.0);
  // Existing diagonal entries keep their value.
  EXPECT_DOUBLE_EQ(full.row_values(0)[0], 1.0);
}

TEST(LowerTriangle, KeepsDiagonalAndBelow) {
  const CsrMatrix a = testing::grid_laplacian_2d(5, 5);
  const CsrMatrix l = lower_triangle(a);
  for (index_t i = 0; i < l.num_rows(); ++i) {
    for (index_t j : l.row_cols(i)) EXPECT_LE(j, i);
  }
  // Symmetric matrix with full diagonal: lower triangle has (nnz + n) / 2.
  EXPECT_EQ(l.num_nonzeros(), (a.num_nonzeros() + a.num_rows()) / 2);
}

}  // namespace
}  // namespace ordo
