// Tests for the symbolic Cholesky substrate: elimination tree structure,
// postorder validity, and cross-validation of the Gilbert–Ng–Peyton column
// counts against the quadratic reference on random and structured matrices.
#include <gtest/gtest.h>

#include <numeric>

#include "cholesky/cholesky.hpp"
#include "reorder/reordering.hpp"
#include "sparse/csr_ops.hpp"
#include "test_util.hpp"

namespace ordo {
namespace {

using testing::grid_laplacian_2d;
using testing::random_symmetric;

TEST(EliminationTree, TridiagonalIsAPath) {
  // Tridiagonal matrix: etree is the path 0 -> 1 -> ... -> n-1.
  const index_t n = 10;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < n) coo.add_symmetric(i, i + 1, -1.0);
  }
  const auto parent = elimination_tree(CsrMatrix::from_coo(coo));
  for (index_t i = 0; i < n - 1; ++i) {
    EXPECT_EQ(parent[static_cast<std::size_t>(i)], i + 1);
  }
  EXPECT_EQ(parent.back(), -1);
}

TEST(EliminationTree, DiagonalMatrixIsAForestOfRoots) {
  const index_t n = 6;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 1.0);
  const auto parent = elimination_tree(CsrMatrix::from_coo(coo));
  for (index_t p : parent) EXPECT_EQ(p, -1);
}

TEST(EliminationTree, ArrowMatrixPointsToApex) {
  // Arrow matrix with last row/column full: every etree parent chain ends at
  // n-1 and, with no other coupling, parent[i] == n-1 directly.
  const index_t n = 8;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 4.0);
  for (index_t i = 0; i + 1 < n; ++i) coo.add_symmetric(i, n - 1, -1.0);
  const auto parent = elimination_tree(CsrMatrix::from_coo(coo));
  for (index_t i = 0; i + 1 < n; ++i) {
    EXPECT_EQ(parent[static_cast<std::size_t>(i)], n - 1);
  }
}

TEST(TreePostorder, ChildrenBeforeParents) {
  const CsrMatrix a = random_symmetric(120, 3.0, 3);
  const auto parent = elimination_tree(a);
  const auto post = tree_postorder(parent);
  ASSERT_TRUE(is_valid_permutation(post));
  std::vector<index_t> position(post.size());
  for (std::size_t k = 0; k < post.size(); ++k) {
    position[static_cast<std::size_t>(post[k])] = static_cast<index_t>(k);
  }
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (parent[v] != -1) {
      EXPECT_LT(position[v], position[static_cast<std::size_t>(parent[v])]);
    }
  }
}

TEST(ColumnCounts, NoFillForTridiagonal) {
  // A tridiagonal matrix factors with zero fill: L has 2 entries per column
  // (diagonal + subdiagonal), except the last.
  const index_t n = 12;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    if (i + 1 < n) coo.add_symmetric(i, i + 1, -1.0);
  }
  const auto counts = cholesky_column_counts(CsrMatrix::from_coo(coo));
  for (index_t j = 0; j < n - 1; ++j) {
    EXPECT_EQ(counts[static_cast<std::size_t>(j)], 2) << "column " << j;
  }
  EXPECT_EQ(counts.back(), 1);
}

TEST(ColumnCounts, DenseMatrixIsFullyFilled) {
  const index_t n = 9;
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) coo.add(i, j, 1.0);
  }
  const auto counts = cholesky_column_counts(CsrMatrix::from_coo(coo));
  for (index_t j = 0; j < n; ++j) {
    EXPECT_EQ(counts[static_cast<std::size_t>(j)], n - j);
  }
}

class ColumnCountsCrossValidation
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ColumnCountsCrossValidation, MatchesQuadraticReference) {
  const CsrMatrix a =
      with_full_diagonal(random_symmetric(150, 4.0, GetParam()), 4.0);
  EXPECT_EQ(cholesky_column_counts(a), symbolic_cholesky_reference(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnCountsCrossValidation,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ColumnCounts, MatchesReferenceOnGrid) {
  const CsrMatrix a = grid_laplacian_2d(14, 11);
  EXPECT_EQ(cholesky_column_counts(a), symbolic_cholesky_reference(a));
}

TEST(ColumnCounts, MatchesReferenceAfterReordering) {
  const CsrMatrix a = grid_laplacian_2d(12, 12);
  for (OrderingKind kind : {OrderingKind::kRcm, OrderingKind::kAmd,
                            OrderingKind::kNd}) {
    const CsrMatrix b = apply_ordering(a, compute_ordering(a, kind));
    EXPECT_EQ(cholesky_column_counts(b), symbolic_cholesky_reference(b))
        << ordering_name(kind);
  }
}

TEST(FillRatio, AmdReducesFillOnShuffledGrid) {
  // A randomly permuted grid factors with far more fill than the same grid
  // ordered by AMD — the core premise of Fig. 6.
  const CsrMatrix a = grid_laplacian_2d(20, 20);
  const CsrMatrix shuffled =
      permute_symmetric(a, random_permutation(a.num_rows(), 31));
  const CsrMatrix amd_ordered =
      apply_ordering(shuffled, compute_ordering(shuffled, OrderingKind::kAmd));
  EXPECT_LT(cholesky_fill_ratio(amd_ordered),
            0.5 * cholesky_fill_ratio(shuffled));
}

TEST(FillRatio, NdCompetitiveWithAmdOnGrid) {
  const CsrMatrix a = grid_laplacian_2d(24, 24);
  const double amd_ratio = cholesky_fill_ratio(
      apply_ordering(a, compute_ordering(a, OrderingKind::kAmd)));
  const double nd_ratio = cholesky_fill_ratio(
      apply_ordering(a, compute_ordering(a, OrderingKind::kNd)));
  // ND should be within a factor 2 of AMD on a mesh problem.
  EXPECT_LT(nd_ratio, 2.0 * amd_ratio);
}

TEST(FillRatio, AtLeastOne) {
  const CsrMatrix a = grid_laplacian_2d(8, 8);
  EXPECT_GE(cholesky_fill_ratio(a), 1.0 - 1e-12);
}

}  // namespace
}  // namespace ordo
